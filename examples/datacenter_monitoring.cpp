// Scenario from the paper's motivation: a network operator wants to track
// the diameter of a large deployed topology, where every probe round is
// expensive, and exact classical computation costs Theta(n) rounds even
// when the diameter is tiny.
//
// We model three datacenter-style fabrics (torus, folded grid with hot
// spare racks, and a two-pod fabric joined by a long maintenance chain)
// and compare the round budgets of the classical baseline against the
// quantum algorithms for a periodic diameter health check.

#include <iostream>

#include "algos/diameter_classical.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace qc;

graph::Graph two_pod_fabric(std::uint32_t pod, std::uint32_t chain) {
  // Two dense pods (torus fabrics) joined by a chain of maintenance
  // switches: small intra-pod distances, diameter dominated by the chain.
  graph::GraphBuilder b;
  auto left = graph::make_torus(pod, pod);
  auto right = graph::make_torus(pod, pod);
  const std::uint32_t off = left.n();
  for (const auto& [u, v] : left.edges()) b.add_edge(u, v);
  for (const auto& [u, v] : right.edges()) b.add_edge(off + u, off + v);
  b.add_path_between(0, off, chain);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool small = cli.get_bool("small", false);
  const std::uint32_t torus_side = small ? 8 : 12;
  const std::uint32_t grid_side = small ? 10 : 16;

  struct Fabric {
    std::string name;
    graph::Graph g;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back(
      {"torus fabric", graph::make_torus(torus_side, torus_side)});
  fabrics.push_back({"grid + spare racks",
                     graph::make_caterpillar(grid_side * grid_side,
                                             2 * grid_side)});
  fabrics.push_back({"two pods + chain", two_pod_fabric(small ? 6 : 8, 12)});

  std::cout << "Periodic diameter health check: rounds per probe\n\n";
  Table t({"fabric", "n", "m", "true D", "classical exact", "quantum exact",
           "quantum 3/2-approx", "approx estimate"});
  for (auto& f : fabrics) {
    const auto true_d = graph::diameter(f.g);
    auto classical = algos::classical_exact_diameter(f.g);
    core::QuantumConfig cfg;
    cfg.oracle = core::OracleMode::kDirect;
    auto quantum = core::quantum_diameter_exact(f.g, cfg);
    auto approx = core::quantum_diameter_approx(f.g, cfg);
    t.add_row({f.name, fmt(f.g.n()), fmt(f.g.m()), fmt(true_d),
               fmt(classical.stats.rounds), fmt(quantum.total_rounds),
               fmt(approx.total_rounds), fmt(approx.estimate)});
    if (classical.diameter != true_d || quantum.diameter != true_d) {
      std::cerr << "BUG: wrong diameter on " << f.name << "\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout
      << "\nInterpretation: on low-diameter fabrics the classical probe "
         "cost is dominated by the Theta(n) term\nwhile the quantum probes "
         "scale with sqrt(n*D) (Theorem 1) or cbrt(n*D) (Theorem 4) — the\n"
         "advantage grows with fabric size, not with diameter.\n";
  return 0;
}
