// Playground for the quantum-simulation layer on its own: watch Grover
// amplification build up amplitude on a marked item, cross-check the
// gate-level state vector against the algebraic amplitude vector, and run
// quantum maximum finding (Corollary 1) on a toy objective.
//
//   ./quantum_search_playground [--qubits=6] [--marked=13]

#include <cmath>
#include <iostream>

#include "qsim/amplitude_vector.hpp"
#include "qsim/search.hpp"
#include "qsim/statevector.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  Cli cli(argc, argv);
  const auto nq = static_cast<std::uint32_t>(cli.get_int("qubits", 6));
  const std::size_t dim = 1ULL << nq;
  const auto marked =
      static_cast<std::size_t>(cli.get_int("marked", 13)) % dim;

  // ---- Grover amplification, gate level vs algebraic level.
  std::cout << "Grover search over " << dim << " items, marked item "
            << marked << ":\n\n";
  qsim::StateVector sv(nq);
  sv.h_all();
  auto av = qsim::AmplitudeVector::uniform(dim);
  const auto psi0 = qsim::AmplitudeVector::uniform(dim);
  const auto pred = [marked](std::size_t i) { return i == marked; };
  const auto pred64 = [marked](std::uint64_t i) { return i == marked; };

  const int optimal =
      static_cast<int>(std::round(M_PI / 4 * std::sqrt(dim)));
  Table t({"iteration", "P[marked] (gates)", "P[marked] (algebraic)",
           "theory sin^2((2j+1)theta)"});
  const double theta = std::asin(1.0 / std::sqrt(dim));
  for (int j = 0; j <= optimal + 2; ++j) {
    t.add_row({fmt(j), fmt(sv.probability(marked), 4),
               fmt(std::norm(av.amp(marked)), 4),
               fmt(std::pow(std::sin((2 * j + 1) * theta), 2), 4)});
    sv.oracle(pred64);
    sv.grover_diffusion();
    av.grover_iterate(pred, psi0);
  }
  t.print(std::cout);
  std::cout << "optimal iteration count ~ pi/4*sqrt(N) = " << optimal
            << "; overshooting loses probability again.\n\n";

  // ---- Quantum maximum finding on a toy objective.
  std::cout << "Quantum maximum finding (Corollary 1) on f(x) = "
               "popcount(x)*16 + (x mod 16):\n";
  auto f = [](std::size_t x) {
    return static_cast<std::int64_t>(__builtin_popcountll(x) * 16 +
                                     (x % 16));
  };
  std::int64_t best = 0;
  for (std::size_t x = 0; x < dim; ++x) best = std::max(best, f(x));
  Rng rng(99);
  auto res = qsim::quantum_maximize(qsim::AmplitudeVector::uniform(dim), f,
                                    1.0 / dim, 0.05, rng);
  std::cout << "  found f(" << res.argmax << ") = " << res.value
            << " (true max " << best << ") using "
            << res.costs.grover_iterations << " Grover iterations, "
            << res.costs.setup_invocations << " Setup preparations\n"
            << "  classical exhaustive search would evaluate all " << dim
            << " items; Grover needs ~sqrt(N) oracle calls.\n";
  return res.value == best ? 0 : 1;
}
