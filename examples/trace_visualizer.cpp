// Visualizes the round-by-round traffic of the paper's procedures as an
// ASCII timeline: a TraceRecorder captures every delivery, and the phases
// of the Figure 2 Evaluation procedure (token walk, tau'-pipelined waves,
// convergecast) become visible as distinct traffic regimes.
//
//   ./trace_visualizer [--n=60] [--d=8] [--u0=5]

#include <algorithm>
#include <iostream>
#include <string>

#include "algos/bfs_tree.hpp"
#include "algos/evaluation.hpp"
#include "congest/trace.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 60));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d", 8));
  const auto u0 = static_cast<graph::NodeId>(cli.get_int("u0", 5));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 4)));
  auto g = graph::make_random_with_diameter(n, d, rng);
  std::cout << "Figure 2 Evaluation on " << g.describe() << ", u0 = " << u0
            << ", window = 2*ecc(root)\n\n";

  congest::TraceRecorder rec;
  const auto cfg = rec.arm({});
  auto tree = algos::build_bfs_tree(g, 0, cfg).tree;
  rec.clear();  // keep only the Evaluation's own traffic
  auto eval = algos::evaluate_window_ecc(g, tree, u0, 2 * tree.height, cfg);

  const auto per_round = rec.bits_per_round();
  std::uint64_t peak = 1;
  for (auto b : per_round) peak = std::max(peak, b);

  const std::uint32_t token_end =
      algos::EvaluationProgram::token_phase_rounds(2 * tree.height);
  const std::uint32_t pipeline_end =
      token_end + 2 * (2 * tree.height) + 2 * tree.height + 2;

  std::cout << "round | traffic (bits, # = " << (peak + 59) / 60
            << " bits)\n";
  for (std::uint32_t r = 1; r < per_round.size(); ++r) {
    const auto bars =
        static_cast<std::size_t>(60.0 * per_round[r] / double(peak));
    std::string phase = r <= token_end          ? "token"
                        : r <= pipeline_end     ? "pipeline"
                                                : "convergecast";
    printf("%5u | %-60s %6llu  %s\n", r, std::string(bars, '#').c_str(),
           static_cast<unsigned long long>(per_round[r]), phase.c_str());
  }
  std::cout << "\nresult: max ecc over the window S(u0) = " << eval.max_ecc
            << " (|S| = " << eval.window.size() << ")\n"
            << "phases: token walk (one message per round), tau'-pipeline "
               "(waves flooding, no congestion),\n        convergecast "
               "(one message per tree edge, scheduled by depth)\n";
  return 0;
}
