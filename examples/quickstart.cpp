// Quickstart: build a network, compute its diameter four ways (classical
// exact, quantum exact, classical 3/2-approx, quantum 3/2-approx) and
// compare round complexities.
//
//   ./quickstart [--n=200] [--d=12] [--seed=42]

#include <iostream>

#include "algos/diameter_classical.hpp"
#include "algos/hprw.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 200));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  Rng rng(seed);
  auto g = graph::make_random_with_diameter(n, d, rng);
  std::cout << "Network: " << g.describe() << ", true diameter " << d
            << "\n\n";

  Table t({"algorithm", "result", "CONGEST rounds", "notes"});

  auto classical = algos::classical_exact_diameter(g);
  t.add_row({"classical exact (PRT12-style)", fmt(classical.diameter),
             fmt(classical.stats.rounds), "O(n + D)"});

  core::QuantumConfig qcfg;
  qcfg.seed = seed;
  auto quantum = core::quantum_diameter_exact(g, qcfg);
  t.add_row({"quantum exact (Theorem 1)", fmt(quantum.diameter),
             fmt(quantum.total_rounds),
             "O~(sqrt(nD)), " + fmt(quantum.costs.grover_iterations) +
                 " Grover iterations"});

  auto capprox = algos::classical_approx_diameter(g);
  t.add_row({"classical 3/2-approx (HPRW14)", fmt(capprox.estimate),
             fmt(capprox.stats.rounds), "O~(sqrt(n) + D)"});

  auto qapprox = core::quantum_diameter_approx(g, qcfg);
  t.add_row({"quantum 3/2-approx (Theorem 4)", fmt(qapprox.estimate),
             fmt(qapprox.total_rounds),
             "O~(cbrt(nD) + D), s = " + fmt(qapprox.s_used)});

  t.print(std::cout);
  std::cout << "\nquantum exact memory: " << quantum.per_node_memory_qubits
            << " qubits/node, " << quantum.leader_memory_qubits
            << " at the leader (O(log^2 n))\n";
  return 0;
}
