// Tutorial: writing your own distributed algorithm against the CONGEST
// simulator API. Implements a two-phase "network census" from scratch:
//   phase 1 — BFS wave from a root, so every node learns its distance;
//   phase 2 — convergecast that simultaneously aggregates the node count,
//             the maximum degree and the sum of degrees (average degree).
// Demonstrates: NodeProgram state machines, Message field layout under a
// bandwidth budget, vote_halt/quiescence, and reading results back out.

#include <iostream>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace qc;
using congest::Message;
using congest::NodeContext;
using graph::NodeId;

class CensusProgram : public congest::NodeProgram {
 public:
  explicit CensusProgram(NodeId root) : root_(root) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() != root_) return;
    dist_ = 0;
    active_ = true;
    // Wave message: (distance, child-claim flag).
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      ctx.send(p, Message().push(0, ctx.id_bits() + 1).push(0, 1));
    }
  }

  void on_round(NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      if (in.msg.num_fields() == 2) {  // wave
        if (in.msg.field(1) == 1) ++children_;
        if (!active_) {
          active_ = true;
          dist_ = static_cast<std::uint32_t>(in.msg.field(0)) + 1;
          parent_port_ = in.port;
          for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
            ctx.send(p, Message()
                            .push(dist_, ctx.id_bits() + 1)
                            .push(p == parent_port_ ? 1 : 0, 1));
          }
        }
      } else {  // census report: (count, max degree, degree sum)
        count_ += in.msg.field(0);
        max_deg_ = std::max(max_deg_, in.msg.field(1));
        deg_sum_ += in.msg.field(2);
        ++reports_;
      }
    }
    // Once every child has reported, fold in our own stats and report up.
    // A node's child count is final at round dist+2 (children activate at
    // dist+1 and their claim flags arrive one round later), so waiting for
    // that round makes "reports == children" safe for leaves too.
    if (active_ && !reported_ && ctx.round() >= dist_ + 2 &&
        reports_ == children_) {
      count_ += 1;
      max_deg_ = std::max<std::uint64_t>(max_deg_, ctx.degree());
      deg_sum_ += ctx.degree();
      if (ctx.id() != root_) {
        ctx.send(parent_port_, Message()
                                   .push(count_, ctx.id_bits() + 1)
                                   .push(max_deg_, ctx.id_bits() + 1)
                                   .push(deg_sum_, 2 * ctx.id_bits()));
      }
      reported_ = true;
    }
    // Stay awake until the report is out: a halted node only wakes on
    // incoming messages, and a leaf expects none after the wave passes.
    if (reported_) ctx.vote_halt();
  }

  std::uint64_t memory_bits() const override { return 6 * 64; }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_degree() const { return max_deg_; }
  std::uint64_t degree_sum() const { return deg_sum_; }
  bool reported() const { return reported_; }

 private:
  NodeId root_;
  bool active_ = false;
  bool reported_ = false;
  std::uint32_t dist_ = 0;
  std::uint32_t parent_port_ = 0;
  std::uint32_t children_ = 0;
  std::uint32_t reports_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t max_deg_ = 0;
  std::uint64_t deg_sum_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint32_t>(cli.get_int("n", 150));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  auto g = graph::make_connected_er(n, 0.03, rng);

  congest::NetworkConfig cfg;
  cfg.bandwidth_bits = 4 * qc::bit_width_for(n) + 8;  // 3 fields + slack
  congest::Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<CensusProgram>(0); });
  auto stats = net.run_until_quiescent(4 * n);

  const auto& root = net.program_as<CensusProgram>(0);
  std::uint64_t true_max_deg = 0, true_deg_sum = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    true_max_deg = std::max<std::uint64_t>(true_max_deg, g.degree(v));
    true_deg_sum += g.degree(v);
  }

  std::cout << "Network census over " << g.describe() << "\n\n";
  Table t({"metric", "distributed result", "ground truth"});
  t.add_row({"node count", fmt(root.count()), fmt(g.n())});
  t.add_row({"max degree", fmt(root.max_degree()), fmt(true_max_deg)});
  t.add_row({"degree sum", fmt(root.degree_sum()), fmt(true_deg_sum)});
  t.add_row({"rounds used", fmt(stats.rounds), "-"});
  t.add_row({"max message bits", fmt(stats.max_edge_bits),
             fmt(cfg.bandwidth_bits) + " (budget)"});
  t.print(std::cout);
  const bool ok = root.count() == g.n() && root.max_degree() == true_max_deg &&
                  root.degree_sum() == true_deg_sum;
  std::cout << (ok ? "\ncensus correct.\n" : "\ncensus WRONG!\n");
  return ok ? 0 : 1;
}
