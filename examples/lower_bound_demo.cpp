// Walkthrough of the lower-bound machinery (Sections 5-6): build a DISJ
// instance, embed it in the HW12 gadget (Figure 4), decide it by computing
// a diameter, and read off the two-party communication costs the
// Theorem 10 simulation would pay. Then stretch the ACHK16 gadget
// (Figure 8) and watch the diameter threshold shift by d.
//
//   ./lower_bound_demo [--s=6] [--k-achk=8] [--d=6] [--seed=1]

#include <iostream>

#include "algos/diameter_classical.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/reductions.hpp"
#include "commcc/two_party.hpp"
#include "graph/algorithms.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qc;
  using namespace qc::commcc;
  Cli cli(argc, argv);
  const auto s = static_cast<std::uint32_t>(cli.get_int("s", 6));
  const auto k_achk = static_cast<std::uint32_t>(cli.get_int("k-achk", 8));
  const auto d = static_cast<std::uint32_t>(cli.get_int("d", 6));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  // ---- Part 1: Figure 4 (Theorem 8) and the Theorem 10 simulation.
  auto red = hw12_reduction(s);
  std::cout << "HW12 gadget: n = " << red.num_nodes << ", k = " << red.k
            << " DISJ bits, b = " << red.b() << " cut edges, decides "
            << "diameter " << red.d1 << " vs " << red.d2 << "\n\n";

  DiameterSolver solver = [](const graph::Graph& g,
                             const congest::NetworkConfig& cfg) {
    auto out = algos::classical_exact_diameter(g, cfg);
    return std::pair{out.diameter, out.stats.rounds};
  };

  Table t({"instance", "DISJ(x,y)", "diameter", "protocol says", "rounds r",
           "2-party messages", "2-party qubits", "cut bits observed"});
  for (bool intersecting : {false, true}) {
    auto [x, y] = random_disj_instance(red.k, intersecting, rng);
    auto run = two_party_diameter_protocol(red, x, y, solver);
    t.add_row({intersecting ? "intersecting" : "disjoint",
               intersecting ? "0" : "1", fmt(run.diameter),
               run.decided_disjoint ? "disjoint" : "intersecting",
               fmt(run.rounds), fmt(run.costs.messages),
               fmt(run.costs.qubits), fmt(run.cut_bits)});
  }
  t.print(std::cout);
  std::cout << "Theorem 10: any r-round algorithm yields a 2r-message DISJ "
               "protocol of O(r*b*log n) qubits;\ncombined with the BGK+15 "
               "bound Omega~(k/m + m) this forces r = Omega~(sqrt(k/b)) = "
               "Omega~(sqrt(n))\n(Theorem 2). Floor here: "
            << fmt(theorem10_round_floor(red.k, red.b()), 1) << " rounds.\n\n";

  // ---- Part 2: Figure 8 (Theorem 3): stretching the cut.
  auto ach = achk16_reduction(k_achk);
  std::cout << "ACHK16 gadget: n = " << ach.num_nodes << ", k = " << ach.k
            << ", b = " << ach.b() << " cut edges (Theta(log n))\n";
  Table t2({"instance", "plain diameter", "subdivided (d=" + fmt(d) + ")"});
  for (bool intersecting : {false, true}) {
    auto [x, y] = random_disj_instance(ach.k, intersecting, rng);
    auto g_plain = ach.instantiate(x, y);
    auto g_sub = subdivide_cut(ach, x, y, d);
    t2.add_row({intersecting ? "intersecting" : "disjoint",
                fmt(graph::diameter(g_plain)), fmt(graph::diameter(g_sub))});
  }
  t2.print(std::cout);
  std::cout << "Each cut edge became a path of " << d + 1
            << " edges: deciding DISJ now means telling diameter " << d + 4
            << " from " << d + 5 << ".\nSince a bit needs " << d
            << " rounds to cross, Theorem 11 compresses any r-round "
               "algorithm to O(r/d) messages,\nand Theorem 3 follows: "
               "r = Omega~(sqrt(nD/s)) for s qubits of node memory.\n";
  return 0;
}
