// qcg2edgelist — expands a .qcg binary graph back into the native
// plain-text edge-list format (diff-friendly, round-trips bit-identically
// through edgelist2qcg).
//
//   qcg2edgelist IN OUT [--quiet]

#include <iostream>

#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) try {
  using namespace qc;
  Cli cli(argc, argv);
  cli.expect_flags({"quiet"});
  const auto& pos = cli.positional();
  if (pos.size() != 2) {
    std::cerr << "usage: qcg2edgelist IN OUT [--quiet]\n";
    return 2;
  }
  require(graph::is_qcg_file(pos[0]),
          "qcg2edgelist: " + pos[0] + " is not a .qcg file");
  const auto g = graph::read_qcg_file(pos[0]);
  graph::write_edge_list_file(pos[1], g, "converted from " + pos[0]);
  if (!cli.get_bool("quiet", false)) {
    std::cout << "wrote " << g.describe() << " to " << pos[1] << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
