// edgelist2qcg — converts a text graph (native edge list or SNAP-style raw
// dataset, auto-detected) into the .qcg binary container.
//
//   edgelist2qcg IN OUT [--encoding=varint|raw] [--verify] [--quiet]
//
// --encoding=varint (default) writes the compact delta-varint payload;
// --encoding=raw writes raw little-endian CSR arrays that load as a
// zero-copy mmap view. --verify reads the written file back and checks the
// CSR is bit-identical to the source graph.

#include <filesystem>
#include <iostream>

#include "graph/import.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace qc;
  Cli cli(argc, argv);
  cli.expect_flags({"encoding", "verify", "quiet"});
  const auto& pos = cli.positional();
  if (pos.size() != 2) {
    std::cerr << "usage: edgelist2qcg IN OUT [--encoding=varint|raw] "
                 "[--verify] [--quiet]\n";
    return 2;
  }
  const std::string& in = pos[0];
  const std::string& out = pos[1];
  const std::string enc_name = cli.get_string("encoding", "varint");
  require(enc_name == "varint" || enc_name == "raw",
          "edgelist2qcg: --encoding must be 'varint' or 'raw'");
  const auto enc = enc_name == "raw" ? graph::QcgEncoding::kRawCsr
                                     : graph::QcgEncoding::kDeltaVarint;

  std::string format;
  const auto g = graph::load_graph_file(in, &format);
  graph::write_qcg_file(out, g, enc);

  if (cli.get_bool("verify", false)) {
    const auto back = graph::read_qcg_file(out);
    check_internal(back.n() == g.n() && back.m() == g.m(),
                   "edgelist2qcg: verify failed (size mismatch)");
    check_internal(std::equal(back.csr_offsets().begin(),
                              back.csr_offsets().end(),
                              g.csr_offsets().begin()) &&
                       std::equal(back.csr_neighbors().begin(),
                                  back.csr_neighbors().end(),
                                  g.csr_neighbors().begin()),
                   "edgelist2qcg: verify failed (CSR mismatch)");
  }

  if (!cli.get_bool("quiet", false)) {
    const auto in_bytes = std::filesystem::file_size(in);
    const auto out_bytes = std::filesystem::file_size(out);
    Table t({"property", "value"});
    t.add_row({"input", in + " (" + format + ")"});
    t.add_row({"graph", g.describe()});
    t.add_row({"output", out + " (" + enc_name + ")"});
    t.add_row({"input bytes", fmt(static_cast<std::uint64_t>(in_bytes))});
    t.add_row({"output bytes", fmt(static_cast<std::uint64_t>(out_bytes))});
    t.add_row({"bytes/edge",
               fmt(g.m() == 0 ? 0.0
                              : static_cast<double>(out_bytes) /
                                    static_cast<double>(g.m()),
                   2)});
    t.add_row({"compression",
               fmt(out_bytes == 0 ? 0.0
                                  : static_cast<double>(in_bytes) /
                                        static_cast<double>(out_bytes),
                   2) +
                   "x"});
    t.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
