#!/bin/sh
# Regenerates every synthetic dataset under data/ from the deterministic
# generators, so the checked-in files can always be audited against a fresh
# build. Usage: tools/make_datasets.sh [BUILD_DIR]   (default: build)
set -eu

build="${1:-build}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
gen="$repo/$build/tools/qcongest"
conv="$repo/$build/tools/edgelist2qcg"

[ -x "$gen" ] || { echo "error: $gen not built (run cmake --build $build)"; exit 1; }
[ -x "$conv" ] || { echo "error: $conv not built"; exit 1; }

# 10,876 nodes mirrors the SNAP p2p-Gnutella04 snapshot; seed 42 is pinned
# by tests/test_dataset.cpp — do not change either without re-pinning.
"$gen" gen pa:10876:3:42 --out="$repo/data/synth-p2p-10k.txt"
"$conv" "$repo/data/synth-p2p-10k.txt" "$repo/data/synth-p2p-10k.qcg" --verify --quiet
"$gen" gen pa:100000:3:42 --out="$repo/data/synth-p2p-100k.qcg"

# data/small-snap.txt is hand-written (it exists to exercise importer
# tolerances a generator would never produce) and is not regenerated here.
echo "datasets regenerated under $repo/data"
