// qcongest — command-line driver for the library: run any of the paper's
// algorithms (and the extensions) on a generated or file-loaded topology.
//
//   qcongest info diam:200:12
//   qcongest diameter er:300:0.02 --algo=quantum --seed=7
//   qcongest approx @mygraph.txt --algo=quantum
//   qcongest radius torus:12:12 --algo=census
//   qcongest decide diam:200:10 --threshold=9
//   qcongest gen hypercube:8 --out=cube.txt
//   qcongest gen pa:100000:3:7 --out=big.qcg --encoding=raw
//   qcongest graph-info @big.qcg
//
// Graphs are given as a generator spec (see `qcongest help`) or as
// "@path" to load a graph file — the format is auto-detected by content:
// .qcg binary container (by magic), native edge list, or SNAP-style raw
// dataset (imported with id compaction).

#include <algorithm>
#include <chrono>
#include <csignal>
#include <iostream>

#include <atomic>

#include "algos/apsp_census.hpp"
#include "algos/bfs_tree.hpp"
#include "algos/diameter_classical.hpp"
#include "congest/shard/sharded_network.hpp"
#include "algos/girth.hpp"
#include "algos/hprw.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_decision.hpp"
#include "core/quantum_diameter.hpp"
#include "core/quantum_radius.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "serve/client.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace qc;

int usage() {
  std::cout <<
      R"(qcongest — quantum CONGEST diameter toolkit (Le Gall & Magniez, PODC 2018)

usage: qcongest <command> <graph> [flags]

commands:
  info        n, m, diameter, radius, center (centralized reference)
  graph-info  format, size, degree stats, load cost — no O(n*BFS) work,
              safe on million-node graphs
  diameter    exact diameter   --algo=classical|quantum|simple   (default quantum)
  approx      3/2-approximation --algo=classical|quantum [--s=N] (default quantum)
  radius      radius + center  --algo=census|quantum             (default quantum)
  girth       shortest cycle length (distributed census)
  decide      diameter > K ?   --threshold=K
  census      all eccentricities (classical O(n)-round APSP census)
  gen         generate a graph --out=FILE (.qcg extension writes the
              binary container; --encoding=varint|raw picks the payload)
  run         drive one distributed algorithm on the CONGEST simulator,
              optionally sharded across worker processes:
              --algo=bfs|ecc|sweep (default ecc), --root=N (default 0),
              --shards=W (default 0 = in-process; W>=1 forks W workers —
              results are bit-identical at every W), --rounds=N (spin N
              extra rounds after the answer; SIGTERM interrupts cleanly),
              --partitioner=contiguous|greedy (node-to-worker placement;
              greedy grows BFS blocks to cut boundary traffic — results
              are bit-identical either way)

client mode (against a running qcongestd — see docs/serving.md):
  --server=ENDPOINT     unix:PATH or HOST:PORT; forwards the command to the
                        daemon instead of computing locally. Commands:
                        ping, load, unload, graph-info, diameter,
                        approx (double sweep; --v=ROOT, default 0),
                        radius, ecc (--v=N), girth, stats, shutdown.
                        <graph> is the server-side path of the graph file.

common flags:
  --seed=N              quantum sampling / generator seed (default 7)
  --oracle=direct|simulate  branch-oracle mode (default simulate; direct
                            for big sweeps — bit-identical results)
  --fault-drop=P        per-message drop probability in [0,1] (default 0)
  --fault-corrupt=P     per-message bit-flip probability in [0,1] (default 0)
  --fault-seed=N        fault-plan seed (default 1; same seed = same faults)
  --metrics-out=FILE    write a JSONL metrics capture of the run to FILE
  --quiet               print only the result value

<graph> is a generator spec or @FILE (.qcg binary, native edge list, or
SNAP-style raw dataset — detected by content, not extension).
)" << graph::spec_help()
            << "\n";
  return 2;
}

graph::Graph load(const std::string& arg, std::string* format = nullptr) {
  if (!arg.empty() && arg[0] == '@') {
    return graph::load_graph_file(arg.substr(1), format);
  }
  if (format != nullptr) *format = "generator";
  return graph::make_from_spec(arg);
}

congest::NetworkConfig net_config(const Cli& cli) {
  congest::NetworkConfig net;
  net.fault.drop_probability = cli.get_double("fault-drop", 0.0);
  net.fault.corrupt_probability = cli.get_double("fault-corrupt", 0.0);
  net.fault.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  return net;
}

// Quantum front-end reports carry subroutine failures (e.g. a fault plan
// breaking a Figure 2 invariant) instead of throwing; the CLI turns them
// back into a loud nonzero exit so a value of 0 is never mistaken for an
// answer.
template <typename Report>
void require_subroutine_ok(const Report& rep) {
  require(!rep.subroutine_failed,
          "quantum subroutine failed: " + rep.failure_reason);
}

core::QuantumConfig quantum_config(const Cli& cli) {
  core::QuantumConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  cfg.oracle = cli.get_string("oracle", "simulate") == "direct"
                   ? core::OracleMode::kDirect
                   : core::OracleMode::kSimulate;
  cfg.net = net_config(cli);
  return cfg;
}

// Client mode: `--server=ENDPOINT` forwards the command to a running
// qcongestd instead of computing locally. The <graph> positional is the
// *server-side* path (a leading '@' is accepted and stripped so the same
// invocation shape works in both modes).
int run_client(const Cli& cli, const std::string& cmd,
               const std::vector<std::string>& pos) {
  const bool quiet = cli.get_bool("quiet", false);
#ifdef SIGPIPE
  // A daemon that dies mid-conversation must surface as a write error,
  // not kill the client (MSG_NOSIGNAL covers Linux; this covers macOS).
  std::signal(SIGPIPE, SIG_IGN);
#endif
  auto client = serve::Client::connect(cli.get_string("server", ""));
  serve::Request req;
  if (pos.size() >= 2) {
    req.path = pos[1][0] == '@' ? pos[1].substr(1) : pos[1];
  }
  const bool needs_graph = cmd != "ping" && cmd != "stats" &&
                           cmd != "shutdown";
  require(!needs_graph || !req.path.empty(),
          "client " + cmd + ": a graph path argument is required");

  if (cmd == "ping") req.op = serve::Op::kPing;
  else if (cmd == "load") req.op = serve::Op::kLoad;
  else if (cmd == "unload") req.op = serve::Op::kUnload;
  else if (cmd == "graph-info") req.op = serve::Op::kGraphInfo;
  else if (cmd == "diameter") req.op = serve::Op::kDiameter;
  else if (cmd == "approx") req.op = serve::Op::kApprox;
  else if (cmd == "radius") req.op = serve::Op::kRadius;
  else if (cmd == "ecc") req.op = serve::Op::kEcc;
  else if (cmd == "girth") req.op = serve::Op::kGirth;
  else if (cmd == "stats") req.op = serve::Op::kStats;
  else if (cmd == "shutdown") req.op = serve::Op::kShutdown;
  else {
    std::cerr << "client mode does not support command '" << cmd << "'\n";
    return 2;
  }
  if (cmd == "ecc") {
    require(cli.has("v"), "client ecc: --v=VERTEX is required");
    req.arg = static_cast<std::uint64_t>(cli.get_int("v", 0));
  }
  if (cmd == "approx") {
    // Server-side approx is a double sweep, not sampling: --v picks the
    // BFS root of the first sweep (default 0), matching docs/serving.md.
    req.arg = static_cast<std::uint64_t>(cli.get_int("v", 0));
  }

  const auto resp = client.call(req);
  if (resp.status != serve::Status::kOk) {
    std::cerr << "server " << serve::status_name(resp.status) << ": "
              << resp.message << "\n";
    return 1;
  }
  if (quiet) {
    // Same quiet-mode convention as the local commands (girth prints
    // "none" on forests instead of the kUnreachable sentinel).
    if (req.op == serve::Op::kGirth && resp.value == graph::kUnreachable) {
      std::cout << "none\n";
    } else {
      std::cout << resp.value << "\n";
    }
    return 0;
  }
  switch (req.op) {
    case serve::Op::kPing:
      std::cout << "pong from " << cli.get_string("server", "") << "\n";
      break;
    case serve::Op::kLoad:
      std::cout << "loaded " << req.path << ": n = " << resp.value
                << ", m = " << resp.aux << " (" << resp.message << ")\n";
      break;
    case serve::Op::kUnload:
      std::cout << "unloaded " << req.path << "\n";
      break;
    case serve::Op::kGraphInfo:
      std::cout << "n = " << resp.value << ", m = " << resp.aux << "  "
                << resp.message << "\n";
      break;
    case serve::Op::kDiameter:
      std::cout << "diameter = " << resp.value << "  (served)\n";
      break;
    case serve::Op::kApprox:
      std::cout << "estimate in [" << resp.value << ", " << resp.aux
                << "]  (double sweep, lb <= D <= 2*lb)\n";
      break;
    case serve::Op::kRadius:
      std::cout << "radius = " << resp.value << ", center = " << resp.aux
                << "  (served)\n";
      break;
    case serve::Op::kEcc:
      std::cout << "ecc(" << req.arg << ") = " << resp.value
                << "  (served)\n";
      break;
    case serve::Op::kGirth:
      if (resp.value == graph::kUnreachable) {
        std::cout << "girth = none (forest)\n";
      } else {
        std::cout << "girth = " << resp.value << "  (served)\n";
      }
      break;
    case serve::Op::kStats:
      std::cout << resp.message << "\n";
      break;
    case serve::Op::kShutdown:
      std::cout << "server shutting down\n";
      break;
  }
  return 0;
}

}  // namespace

// Cooperative stop for `qcongest run`: SIGTERM/SIGINT raise the flag, the
// round loop (coordinator-side for sharded runs, the driver's spin loop
// otherwise) notices at the next round barrier and winds down cleanly —
// workers reaped, exit 0.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

// The `run` command body, generic over the execution engine (in-process
// Network or multi-process ShardedNetwork — the same template drivers the
// parity tests exercise). Returns the process exit code.
template <typename Net>
int run_distributed(Net& net, const graph::Graph& g, const std::string& algo,
                    graph::NodeId root, std::uint32_t spin_rounds,
                    bool quiet) {
  require(root < g.n(), "run: --root out of range");
  congest::RunStats total;
  Table t({"property", "value"});
  std::uint64_t answer = 0;
  if (algo == "bfs") {
    const auto out = algos::build_bfs_tree_on(net, root);
    total = out.stats;
    answer = out.tree.height;
    t.add_row({"algo", "bfs"});
    t.add_row({"root", fmt(root)});
    t.add_row({"tree height", fmt(out.tree.height)});
    t.add_row({"status", algos::to_string(out.status)});
  } else if (algo == "ecc") {
    const auto out = algos::compute_eccentricity_on(net, root);
    total = out.stats;
    answer = out.ecc;
    t.add_row({"algo", "ecc"});
    t.add_row({"root", fmt(root)});
    t.add_row({"eccentricity", fmt(out.ecc)});
    t.add_row({"status", algos::to_string(out.status)});
  } else if (algo == "sweep") {
    // Double sweep: ecc from the root, then ecc from the farthest node
    // found — a classical diameter lower bound in two O(D) phases.
    const auto first = algos::compute_eccentricity_on(net, root);
    graph::NodeId far = root;
    for (graph::NodeId v = 0; v < g.n(); ++v) {
      if (first.tree.depth[v] > first.tree.depth[far]) far = v;
    }
    const auto second = algos::compute_eccentricity_on(net, far);
    total = first.stats;
    total += second.stats;
    answer = second.ecc;
    t.add_row({"algo", "sweep"});
    t.add_row({"root", fmt(root)});
    t.add_row({"far vertex", fmt(far)});
    t.add_row({"diameter lower bound", fmt(second.ecc)});
    t.add_row({"status", algos::to_string(
                             algos::worst_of(first.status, second.status))});
  } else {
    require(false, "run: --algo must be bfs, ecc or sweep");
  }
  // Optional spin phase: keep the (quiescent) network ticking so signal
  // handling and long-running shard sessions can be exercised end to end.
  // Chunked so the driver notices g_stop between chunks on any engine.
  std::uint32_t spun = 0;
  while (spun < spin_rounds && !g_stop.load(std::memory_order_relaxed)) {
    const std::uint32_t chunk = std::min(spin_rounds - spun, 64u);
    total += net.run_rounds(chunk);
    spun += chunk;
  }
  if (g_stop.load(std::memory_order_relaxed)) {
    std::cout << "interrupted\n";
    return 0;
  }
  if (quiet) {
    std::cout << answer << "\n";
    return 0;
  }
  t.add_row({"rounds", fmt(total.rounds)});
  t.add_row({"messages", fmt(total.messages)});
  t.add_row({"bits", fmt(total.bits)});
  t.print(std::cout);
  return 0;
}

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  // Strict flag checking: a typo'd flag (--sead=7) or malformed value
  // (--seed=abc) aborts with a message instead of being silently ignored.
  cli.expect_flags({"seed", "oracle", "fault-drop", "fault-corrupt",
                    "fault-seed", "quiet", "algo", "s", "threshold", "out",
                    "metrics-out", "encoding", "server", "v", "root",
                    "shards", "rounds", "partitioner"});
  const auto& pos = cli.positional();
  if (pos.empty()) return usage();
  const std::string cmd = pos[0];
  const bool quiet = cli.get_bool("quiet", false);
  if (cmd == "help") return usage();
  if (cli.has("server")) return run_client(cli, cmd, pos);
  if (pos.size() < 2) return usage();
  // The export session outlives the root span (destruction runs in reverse
  // order), so the span is closed by the time the JSONL is written.
  metrics::ScopedExport metrics_session(cli.get_string("metrics-out", ""));
  metrics::ScopedTimer cli_span("cli." + cmd);
  metrics::PhaseTimer load_span(metrics::global(), "cli.load_graph");
  std::string format;
  const auto load_start = std::chrono::steady_clock::now();
  auto g = load(pos[1], &format);
  const double load_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_start)
          .count();
  load_span.finish();
  metrics::gauge("cli.graph_n", static_cast<double>(g.n()));
  metrics::gauge("cli.graph_m", static_cast<double>(g.m()));

  if (cmd == "gen") {
    const std::string out = cli.get_string("out", "");
    require(!out.empty(), "gen: --out=FILE is required");
    const std::string enc_name = cli.get_string("encoding", "varint");
    require(enc_name == "varint" || enc_name == "raw",
            "gen: --encoding must be 'varint' or 'raw'");
    // A .qcg extension selects the binary container; anything else keeps
    // the diff-friendly text edge list.
    if (out.size() >= 4 && out.compare(out.size() - 4, 4, ".qcg") == 0) {
      graph::write_qcg_file(out, g,
                            enc_name == "raw"
                                ? graph::QcgEncoding::kRawCsr
                                : graph::QcgEncoding::kDeltaVarint);
    } else {
      graph::write_edge_list_file(out, g,
                                  "generated by qcongest gen " + pos[1]);
    }
    std::cout << "wrote " << g.describe() << " to " << out << "\n";
    return 0;
  }

  if (cmd == "graph-info") {
    // Deliberately avoids diameter/radius (O(n * BFS)) so it stays usable
    // on million-node graphs: everything below is O(n + m) at worst.
    Table t({"property", "value"});
    t.add_row({"source", pos[1][0] == '@' ? pos[1].substr(1) : pos[1]});
    t.add_row({"format", format});
    if (format == "qcg") {
      const auto info = graph::qcg_info_file(pos[1].substr(1));
      t.add_row({"qcg version", fmt(static_cast<std::uint64_t>(info.version))});
      t.add_row({"qcg encoding",
                 info.encoding == graph::QcgEncoding::kRawCsr ? "raw"
                                                              : "varint"});
      t.add_row({"file bytes", fmt(info.file_bytes)});
      t.add_row({"bytes/edge", fmt(info.bytes_per_edge(), 2)});
    }
    t.add_row({"n", fmt(g.n())});
    t.add_row({"m", fmt(g.m())});
    std::uint32_t dmin = g.n() == 0 ? 0 : 0xFFFFFFFFu;
    std::uint32_t dmax = 0;
    for (graph::NodeId v = 0; v < g.n(); ++v) {
      dmin = std::min(dmin, g.degree(v));
      dmax = std::max(dmax, g.degree(v));
    }
    t.add_row({"degree min", fmt(dmin)});
    t.add_row({"degree max", fmt(dmax)});
    t.add_row({"degree avg",
               fmt(g.n() == 0 ? 0.0
                              : 2.0 * static_cast<double>(g.m()) /
                                    static_cast<double>(g.n()),
                   2)});
    t.add_row({"storage", g.is_view() ? "mapped view (zero-copy)" : "owned"});
    t.add_row({"load ms", fmt(load_ms, 2)});
    t.print(std::cout);
    return 0;
  }

  if (cmd == "info") {
    Table t({"property", "value"});
    t.add_row({"n", fmt(g.n())});
    t.add_row({"m", fmt(g.m())});
    t.add_row({"connected", g.is_connected() ? "yes" : "no"});
    if (g.is_connected()) {
      t.add_row({"diameter", fmt(graph::diameter(g))});
      t.add_row({"radius", fmt(graph::radius(g))});
      t.add_row({"center", fmt(graph::center(g))});
    }
    t.print(std::cout);
    return 0;
  }

  require(g.is_connected(), "this command requires a connected graph");

  if (cmd == "diameter") {
    const std::string algo = cli.get_string("algo", "quantum");
    if (algo == "classical") {
      auto rep = algos::classical_exact_diameter(g, net_config(cli));
      if (quiet) {
        std::cout << rep.diameter << "\n";
        return 0;
      }
      std::cout << "diameter = " << rep.diameter << "  ("
                << rep.stats.rounds << " CONGEST rounds, classical O(n+D))\n";
      return 0;
    }
    auto cfg = quantum_config(cli);
    auto rep = algo == "simple" ? core::quantum_diameter_simple(g, cfg)
                                : core::quantum_diameter_exact(g, cfg);
    require_subroutine_ok(rep);
    if (quiet) {
      std::cout << rep.diameter << "\n";
      return 0;
    }
    std::cout << "diameter = " << rep.diameter << "  (" << rep.total_rounds
              << " CONGEST rounds, "
              << (algo == "simple" ? "Section 3.1 O~(sqrt(n) D)"
                                   : "Theorem 1 O~(sqrt(nD))")
              << ", " << rep.costs.grover_iterations
              << " Grover iterations, " << rep.leader_memory_qubits
              << " leader qubits)\n";
    return 0;
  }

  if (cmd == "approx") {
    const std::string algo = cli.get_string("algo", "quantum");
    const auto s = static_cast<std::uint32_t>(cli.get_int("s", 0));
    if (algo == "classical") {
      auto rep = algos::classical_approx_diameter(g, s, net_config(cli));
      require(!rep.aborted, "approx: sampling aborted; re-run");
      if (quiet) {
        std::cout << rep.estimate << "\n";
        return 0;
      }
      std::cout << "estimate = " << rep.estimate << "  (" << rep.stats.rounds
                << " rounds, s = " << rep.s_used
                << ", guarantee est <= D <= 3*est/2)\n";
      return 0;
    }
    auto rep = core::quantum_diameter_approx(g, quantum_config(cli), s);
    require_subroutine_ok(rep);
    require(!rep.aborted, "approx: sampling aborted; re-run");
    if (quiet) {
      std::cout << rep.estimate << "\n";
      return 0;
    }
    std::cout << "estimate = " << rep.estimate << "  (" << rep.total_rounds
              << " rounds = " << rep.prep_rounds << " prep + "
              << rep.quantum_rounds << " quantum, s = " << rep.s_used
              << ", Theorem 4 O~(cbrt(nD)+D))\n";
    return 0;
  }

  if (cmd == "radius") {
    const std::string algo = cli.get_string("algo", "quantum");
    if (algo == "census") {
      auto rep = algos::classical_apsp_census(g, net_config(cli));
      if (quiet) {
        std::cout << rep.radius << "\n";
        return 0;
      }
      std::cout << "radius = " << rep.radius << ", center = " << rep.center
                << "  (" << rep.stats.rounds << " rounds, classical census)\n";
      return 0;
    }
    auto rep = core::quantum_radius(g, quantum_config(cli));
    require_subroutine_ok(rep);
    if (quiet) {
      std::cout << rep.radius << "\n";
      return 0;
    }
    std::cout << "radius = " << rep.radius << ", center = " << rep.center
              << "  (" << rep.total_rounds
              << " rounds, quantum minimum finding)\n";
    return 0;
  }

  if (cmd == "decide") {
    require(cli.has("threshold"), "decide: --threshold=K is required");
    const auto k = static_cast<std::uint32_t>(cli.get_int("threshold", 0));
    auto rep = core::quantum_diameter_decide(g, k, quantum_config(cli));
    require_subroutine_ok(rep);
    if (quiet) {
      std::cout << (rep.diameter_exceeds ? 1 : 0) << "\n";
      return 0;
    }
    std::cout << "diameter " << (rep.diameter_exceeds ? "> " : "<= ") << k
              << "  (" << rep.total_rounds << " rounds";
    if (rep.diameter_exceeds && rep.witness != graph::kInvalidNode) {
      std::cout << ", witness window at node " << rep.witness;
    }
    std::cout << ")\n";
    return 0;
  }

  if (cmd == "girth") {
    auto rep = algos::classical_girth_census(g, net_config(cli));
    if (quiet) {
      if (rep.girth == graph::kUnreachable) {
        std::cout << "none\n";
      } else {
        std::cout << rep.girth << "\n";
      }
      return 0;
    }
    if (rep.girth == graph::kUnreachable) {
      std::cout << "girth = none (forest)";
    } else {
      std::cout << "girth = " << rep.girth;
    }
    std::cout << "  (" << rep.stats.rounds
              << " rounds, distributed Itai-Rodeh census";
    if (rep.status != algos::PhaseStatus::kQuiesced) {
      std::cout << ", status " << algos::to_string(rep.status);
    }
    std::cout << ")\n";
    return 0;
  }

  if (cmd == "census") {
    auto rep = algos::classical_apsp_census(g, net_config(cli));
    Table t({"property", "value"});
    t.add_row({"diameter", fmt(rep.diameter)});
    t.add_row({"radius", fmt(rep.radius)});
    t.add_row({"center", fmt(rep.center)});
    t.add_row({"periphery", fmt(rep.periphery)});
    t.add_row({"rounds", fmt(rep.stats.rounds)});
    t.print(std::cout);
    return 0;
  }

  if (cmd == "run") {
    const std::string algo = cli.get_string("algo", "ecc");
    const auto root =
        static_cast<graph::NodeId>(cli.get_int("root", 0));
    const auto shards = static_cast<std::uint32_t>(cli.get_int("shards", 0));
    const auto spin = static_cast<std::uint32_t>(cli.get_int("rounds", 0));
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    if (shards == 0) {
      congest::Network net(g, net_config(cli));
      return run_distributed(net, g, algo, root, spin, quiet);
    }
    congest::shard::ShardConfig scfg;
    scfg.shards = shards;
    scfg.net = net_config(cli);
    scfg.stop = &g_stop;
    const std::string part = cli.get_string("partitioner", "contiguous");
    if (part == "greedy") {
      scfg.partitioner =
          std::make_shared<congest::shard::GreedyGrowPartitioner>();
    } else if (part != "contiguous") {
      std::cerr << "unknown --partitioner '" << part
                << "' (expected contiguous|greedy)\n";
      return 2;
    }
    congest::shard::ShardedNetwork net(g, scfg);
    const int rc = run_distributed(net, g, algo, root, spin, quiet);
    // Worker pids go to stderr so stdout stays byte-identical across
    // worker counts (the e2e parity check diffs it); scripts use them to
    // audit process hygiene after exit. Printed after the run because
    // each phase's init_programs respawns the worker set.
    std::cerr << "workers:";
    for (const pid_t pid : net.worker_pids()) std::cerr << " " << pid;
    std::cerr << "\n";
    net.shutdown();
    return rc;
  }

  std::cerr << "unknown command '" << cmd << "'\n";
  return usage();
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
