// qcongestd — the long-running query daemon: holds loaded graphs resident
// and answers concurrent diameter / radius / ecc / girth / graph-info
// queries over the length-prefixed protocol of src/serve/ (spec:
// docs/serving.md). Pairs with `qcongest --server=...` as the client.
//
//   qcongestd --socket=/tmp/qc.sock --preload=data/synth-p2p-10k.qcg
//   qcongestd --port=0 --threads=8 --request-log=requests.jsonl
//
// The first query against a graph pays the compute-once eccentricity
// sweep; every later diameter/radius/ecc answer is a cache hit (no BFS
// work — the whole point of keeping graphs resident).

#include <cerrno>
#include <csignal>
#include <iostream>
#include <thread>

#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define QC_HAVE_SOCKETS 1
#else
#define QC_HAVE_SOCKETS 0
#endif

namespace {

using namespace qc;

int usage() {
  std::cout <<
      R"(qcongestd — resident-graph query daemon for the qcongest toolkit

usage: qcongestd [flags]

flags:
  --socket=PATH        listen on a Unix-domain socket at PATH
  --port=N             listen on 127.0.0.1:N instead (0 = ephemeral port;
                       the bound port is printed on startup)
  --threads=N          compute worker threads (default: hardware)
  --max-pending=N      admission bound on queued+running requests (default 64)
  --timeout-ms=N       per-request deadline, 0 = none (default 0)
  --preload=A[,B,...]  graph files to load before accepting connections
  --request-log=FILE   append one JSONL line per request to FILE
  --metrics-out=FILE   write a qc::metrics JSONL capture on shutdown

Exactly one of --socket / --port selects the endpoint. Stop with SIGINT/
SIGTERM or a client `shutdown` request. Protocol spec: docs/serving.md.
)";
  return 2;
}

// Signals are routed through a self-pipe: the handler only write()s (async-
// signal-safe); a normal thread turns the byte into Server::request_stop().
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
#if QC_HAVE_SOCKETS
  const char byte = 1;
  [[maybe_unused]] const auto r = ::write(g_signal_pipe[1], &byte, 1);
#endif
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  cli.expect_flags({"socket", "port", "threads", "max-pending", "timeout-ms",
                    "preload", "request-log", "metrics-out", "help"});
  if (cli.get_bool("help", false)) return usage();

  serve::ServerOptions opts;
  opts.unix_path = cli.get_string("socket", "");
  require(opts.unix_path.empty() || !cli.has("port"),
          "qcongestd: --socket and --port are mutually exclusive");
  require(!opts.unix_path.empty() || cli.has("port"),
          "qcongestd: one of --socket=PATH or --port=N is required");
  // Range-checked flag parsing: an out-of-range or overflowing value
  // (--port=99999999999999999999) aborts here instead of truncating.
  opts.tcp_port =
      static_cast<std::uint16_t>(cli.get_int_in("port", 0, 0, 65535));
  opts.num_threads =
      static_cast<std::uint32_t>(cli.get_int_in("threads", 0, 0, 4096));
  opts.max_pending = static_cast<std::uint32_t>(
      cli.get_int_in("max-pending", 64, 1, 1 << 20));
  opts.timeout_ms = static_cast<std::uint32_t>(
      cli.get_int_in("timeout-ms", 0, 0, 86400000));
  opts.request_log = cli.get_string("request-log", "");

  metrics::ScopedExport metrics_session(cli.get_string("metrics-out", ""));

  serve::Server server(opts);

  // Preload before accepting connections so the first client query hits a
  // resident graph (the ecc sweep itself still runs lazily on first use).
  const std::string preload = cli.get_string("preload", "");
  for (std::size_t start = 0; start < preload.size();) {
    auto end = preload.find(',', start);
    if (end == std::string::npos) end = preload.size();
    const std::string path = preload.substr(start, end - start);
    if (!path.empty()) {
      const auto resident = server.registry().load(path);
      std::cout << "qcongestd: preloaded " << path << " ("
                << resident->graph().describe() << ", "
                << resident->format() << ")\n";
    }
    start = end + 1;
  }

  server.start();
  // The "listening on" line is the readiness signal scripts wait for (and
  // in --port=0 mode the only place the ephemeral port is reported).
  std::cout << "qcongestd: listening on " << server.endpoint() << std::endl;

#if QC_HAVE_SOCKETS
  require(::pipe(g_signal_pipe) == 0, "qcongestd: cannot create signal pipe");
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::thread signal_thread([&server] {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.request_stop();
  });
#endif

  server.wait();
  std::cout << "qcongestd: shutting down" << std::endl;
  server.stop();

#if QC_HAVE_SOCKETS
  // Wake the signal thread if no signal ever arrived (shutdown op path).
  const char byte = 1;
  [[maybe_unused]] const auto r = ::write(g_signal_pipe[1], &byte, 1);
  signal_thread.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
#endif

  const auto& stats = server.stats();
  std::cout << "qcongestd: served " << stats.requests.load()
            << " requests (" << stats.ok.load() << " ok, "
            << stats.errors.load() << " errors, " << stats.rejected.load()
            << " rejected, " << stats.timeouts.load() << " timeouts)"
            << std::endl;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "qcongestd: error: " << e.what() << "\n";
  return 1;
}
