#include "congest/fault.hpp"

namespace qc::congest {

namespace {

// splitmix64 finalizer: the same mixer Rng's seeding uses, applied here as
// a *stateless* hash so fault rolls are independent of evaluation order.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Distinct salts keep the drop roll, the corrupt roll, and the corrupt
// target selection pairwise independent for the same (round, from, to).
constexpr std::uint64_t kDropSalt = 0xd409f0ull;
constexpr std::uint64_t kCorruptSalt = 0xc0994ull;
constexpr std::uint64_t kTargetSalt = 0x7a86e7ull;

std::uint64_t roll(std::uint64_t seed, std::uint64_t salt, std::uint32_t round,
                   graph::NodeId from, graph::NodeId to) {
  std::uint64_t h = mix(seed ^ mix(salt));
  h = mix(h ^ (static_cast<std::uint64_t>(round) << 32 | from));
  return mix(h ^ to);
}

// Uniform double in [0, 1) from a 64-bit hash (top 53 bits).
double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

}  // namespace

bool FaultPlan::crashed(graph::NodeId v, std::uint32_t round) const {
  for (const auto& w : crashes) {
    if (w.node != v) continue;
    if (round >= w.crash_round &&
        (w.recover_round == 0 || round < w.recover_round)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::drops(std::uint32_t round, graph::NodeId from,
                      graph::NodeId to) const {
  if (drop_probability <= 0.0) return false;
  return unit(roll(seed, kDropSalt, round, from, to)) < drop_probability;
}

bool FaultPlan::corrupts(std::uint32_t round, graph::NodeId from,
                         graph::NodeId to) const {
  if (corrupt_probability <= 0.0) return false;
  return unit(roll(seed, kCorruptSalt, round, from, to)) < corrupt_probability;
}

void FaultPlan::corrupt_in_place(Message& msg, std::uint32_t round,
                                 graph::NodeId from, graph::NodeId to) const {
  if (msg.num_fields() == 0) return;
  const std::uint64_t h = roll(seed, kTargetSalt, round, from, to);
  const std::size_t field = static_cast<std::size_t>(h % msg.num_fields());
  const std::uint32_t width = msg.field_bits(field);
  const std::uint32_t bit = static_cast<std::uint32_t>(mix(h) % width);
  msg.set_field(field, msg.field(field) ^ (1ULL << bit));
}

FaultPlan FaultPlan::for_attempt(std::uint32_t attempt) const {
  if (attempt == 0) return *this;
  FaultPlan plan = *this;
  plan.seed = mix(seed + attempt);
  return plan;
}

CrashIndex::CrashIndex(const FaultPlan& plan, std::uint32_t n)
    : windows_(plan.crashes) {
  if (windows_.empty()) return;  // down_ stays empty; down() is always false
  down_.assign(n, 0);
  std::vector<std::uint8_t> seen(n, 0);
  for (const auto& w : windows_) {
    if (!seen[w.node]) {
      seen[w.node] = 1;
      touched_.push_back(w.node);
    }
  }
}

void CrashIndex::refresh(std::uint32_t round) {
  for (const graph::NodeId v : touched_) down_[v] = 0;
  for (const auto& w : windows_) {
    if (round >= w.crash_round &&
        (w.recover_round == 0 || round < w.recover_round)) {
      down_[w.node] = 1;
    }
  }
}

}  // namespace qc::congest
