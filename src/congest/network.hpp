#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/fault.hpp"
#include "congest/message.hpp"
#include "congest/observer.hpp"
#include "graph/graph.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::congest {

using graph::NodeId;

class Network;

/// A message delivered to a node, tagged with the port it arrived on.
struct Incoming {
  std::uint32_t port;
  Message msg;
};

/// Incrementally maintained quiescence state: the exact quantities the old
/// O(n + Σdeg) all_quiet() scan recomputed per round, so the check is O(1).
/// Halt transitions update `halted` immediately; message counts are batched
/// (each compute/deliver slice flushes one add/sub for its whole range, see
/// NodeContext::pending_sends_), so the hot loops pay no per-message atomic
/// RMW. Updates are relaxed atomics — in the parallel engine the round
/// barriers order them before thread 0 reads, and the counters never
/// influence message contents or delivery order, so traces stay
/// bit-identical across engines and thread counts. Debug builds cross-check
/// against the scan.
struct QuiesceCounters {
  std::atomic<std::int64_t> inflight{0};  ///< queued outbox slots not yet consumed
  std::atomic<std::int64_t> halted{0};    ///< nodes whose halted flag is set
};

/// Per-round view a NodeProgram gets of its node. This is the *entire*
/// interface a distributed algorithm may use: local identity, local ports,
/// the global value n (which the CONGEST model grants every node), the
/// current round number, this round's inbox, and send primitives.
class NodeContext {
 public:
  NodeId id() const { return id_; }

  /// Number of incident edges (= number of ports).
  std::uint32_t degree() const { return static_cast<std::uint32_t>(neighbors_.size()); }

  /// Identifier of the neighbor on `port` (nodes know their incident edges).
  NodeId neighbor(std::uint32_t port) const {
    require(port < degree(), "NodeContext::neighbor: port out of range");
    return neighbors_[port];
  }

  /// Port leading to neighbor `v`; throws if v is not adjacent.
  std::uint32_t port_to(NodeId v) const;

  /// Number of nodes in the network (known a priori in the model).
  std::uint32_t n() const { return n_; }

  /// Bit width of a node identifier (= ceil(log2 n)).
  std::uint32_t id_bits() const { return qc::bit_width_for(n_); }

  /// Current round, starting at 1 for the first round with deliveries.
  std::uint32_t round() const { return round_; }

  /// Messages delivered this round (sent by neighbors last round).
  std::span<const Incoming> inbox() const { return inbox_; }

  /// Queues a message on `port` for delivery next round. At most one
  /// message per port per round.
  void send(std::uint32_t port, Message msg);

  /// Queues a message to the neighbor with id `v`.
  void send_to(NodeId v, Message msg) { send(port_to(v), std::move(msg)); }

  /// Sends a copy of `msg` on every port.
  void broadcast(const Message& msg);

  /// Signals that this node has no further work; the quiescence run mode
  /// stops when every node has halted and no message is in flight. A halted
  /// node is re-activated automatically if a message arrives. Halts are
  /// rare (at most one transition per node per round), so the counter
  /// update is immediate rather than batched like the message counts.
  void vote_halt() {
    if (halted_) return;
    halted_ = true;
    quiesce_->halted.fetch_add(1, std::memory_order_relaxed);
  }

  /// Deterministic per-node randomness (seeded from the network seed and
  /// the node id).
  Rng& rng() { return rng_; }

 private:
  friend class Network;
  NodeId id_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t round_ = 0;
  std::vector<NodeId> neighbors_;
  std::vector<Incoming> inbox_;
  /// This node's slice [0, degree) of the Network's flat directed-edge
  /// outbox storage (outbox_flat_ / port_used_flat_): one Message slot and
  /// one used flag per port. Flat storage keeps every sender slot a
  /// receiver pulls from one array index away (see in_slot_) instead of
  /// three dependent loads through the sender's NodeContext. Flags are
  /// uint8_t, not vector<bool>: the delivery loop sits on these
  /// reads/writes and bit-proxy accesses are measurably slower than byte
  /// loads. Raw pointers stay valid across Network moves (vector storage
  /// is stable); the arrays are sized once at construction.
  Message* outbox_ = nullptr;
  std::uint8_t* port_used_ = nullptr;
  /// in_slot_[p] is the flat index of the outbox slot on neighbors_[p]
  /// that targets this node: out_base[neighbor] + reverse port, with the
  /// reverse port precomputed from the sorted-adjacency invariant (see
  /// build_reverse_ports). Lets delivery find the sender's slot in O(1)
  /// with a single indirection instead of binary-searching port_to per
  /// edge per round.
  std::vector<std::uint32_t> in_slot_;
  /// Messages queued by this node since the last counter flush. Owner-
  /// thread-only plain counter; compute_range drains it into
  /// QuiesceCounters::inflight in one batched atomic per slice.
  std::uint32_t pending_sends_ = 0;
  QuiesceCounters* quiesce_ = nullptr;  ///< owned by the Network
  bool halted_ = false;
  Rng rng_{0};
};

/// A distributed algorithm, written once per node. Implementations hold the
/// node's local state as member data; the simulator guarantees they can
/// observe nothing beyond their NodeContext.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 1; typical use: originators send the first
  /// messages (e.g. the BFS root of Figure 1 activating its neighbors).
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// Called every round after delivery; read ctx.inbox(), update state,
  /// send messages.
  virtual void on_round(NodeContext& ctx) = 0;

  /// Number of bits of local working state the program currently holds;
  /// used to audit the paper's per-node memory claims (e.g. O(log n) for
  /// Figures 1-2). Zero means "not reported". If *every* program in a
  /// network reports 0 in the first executed round, the simulator stops
  /// polling this for the rest of the run (the per-round virtual-call sweep
  /// is pure overhead for non-reporting programs); a program that audits
  /// memory must therefore report a nonzero value from round 1 onward.
  virtual std::uint64_t memory_bits() const { return 0; }

  /// State transfer for the multi-process shard backend: append every bit
  /// of observable program state to `out` as explicit-width fields. After a
  /// sharded run the coordinator restores each worker-side program into a
  /// local replica via restore_state, so driver code that reads results
  /// through program_as works unchanged. The pair must round-trip exactly
  /// (restore(serialize(p)) == p in every observable respect); the defaults
  /// throw, so a program that was never taught to move its state fails
  /// loudly at harvest time instead of silently reporting initial state.
  virtual void serialize_state(Message& out) const;
  virtual void restore_state(const Message& in);
};

/// How the network reacts to a bandwidth violation.
enum class BandwidthPolicy {
  kEnforce,   ///< throw BandwidthViolationError immediately (default)
  kRecord,    ///< count violations in the stats but deliver anyway
  kTruncate,  ///< count the violation but deliver Message::truncated(bw):
              ///< leading fields that fit survive, the first overflowing
              ///< field is narrowed to the remaining bits, the rest is
              ///< cut. Stats count the clipped (delivered) bits.
};

/// True iff `neighbors` is strictly increasing — the port-order invariant
/// that NodeContext::port_to's binary search (and the deterministic inbox
/// assembly) relies on. The Network constructor validates every adjacency
/// list with this so an unsorted topology fails loudly at construction
/// instead of silently misrouting messages.
bool neighbors_strictly_sorted(std::span<const graph::NodeId> neighbors);

/// Precomputes, for every node w and port p with neighbor u = adjacency[w][p],
/// the reverse port q such that adjacency[u][q] == w. The Network builds this
/// table once at construction so the delivery loop reaches the sender's
/// outbox slot in O(1) instead of binary-searching port_to on every edge
/// every round. Throws InvalidArgumentError if any list is not strictly
/// sorted (the invariant that makes port numbering well-defined), names a
/// node outside [0, adjacency.size()), or is not symmetric (w lists u but
/// u does not list w) — a corrupted adjacency must fail construction loudly
/// instead of silently misrouting messages.
std::vector<std::vector<std::uint32_t>> build_reverse_ports(
    std::span<const std::vector<graph::NodeId>> adjacency);

/// Execution engine choice; both produce bit-identical traces.
enum class Engine {
  kSequential,
  kParallel,  ///< one worker per hardware thread, std::barrier synchronized
};

struct NetworkConfig {
  /// Per-edge per-direction per-round bandwidth in bits. Zero means "use
  /// the model default" congest_bandwidth_bits(n).
  std::uint32_t bandwidth_bits = 0;
  BandwidthPolicy policy = BandwidthPolicy::kEnforce;
  Engine engine = Engine::kSequential;
  std::uint64_t seed = 1;
  std::uint32_t num_threads = 0;  ///< 0 = hardware_concurrency

  /// Optional observer notified of every delivered message (sender,
  /// receiver, message, round). Used by the lower-bound harness to tally
  /// traffic crossing a vertex partition (Theorems 10/11) and by the
  /// trace/audit tooling. Supported by **both** engines: the parallel
  /// engine buffers events per worker and flushes them at the round
  /// barrier in the same (round, receiver, port) order the sequential
  /// engine produces, so observed streams are bit-identical either way.
  /// Compose several observers with MultiObserver.
  std::shared_ptr<DeliveryObserver> observer;

  /// Deterministic fault schedule (message drops, bit corruption, node
  /// crashes) applied during delivery. Disabled by default; a disabled
  /// plan leaves every execution bit-identical to the pre-fault-layer
  /// behavior. Decisions are stateless hashes of (fault seed, round,
  /// sender, receiver), so for a fixed plan both engines produce the same
  /// trace at every thread count. Observers never see dropped messages and
  /// see corrupted/truncated messages as delivered.
  FaultPlan fault;
};

/// Aggregate statistics of one execution phase. run_rounds and
/// run_until_quiescent return the stats of *that call only* — counters
/// count the phase's own traffic and the maxima are per-phase maxima, not
/// lifetime high-water marks; Network::stats() keeps the lifetime
/// aggregate.
struct RunStats {
  std::uint32_t rounds = 0;        ///< rounds actually executed
  std::uint64_t messages = 0;      ///< messages delivered
  std::uint64_t bits = 0;          ///< total bits delivered
  std::uint32_t max_edge_bits = 0; ///< max bits on one edge-direction in a round
  std::uint64_t violations = 0;    ///< bandwidth violations (kRecord/kTruncate)
  bool quiesced = false;           ///< network was quiescent when the phase ended
  std::uint64_t max_node_memory_bits = 0;  ///< high-water mark of memory_bits()
  std::uint64_t messages_dropped = 0;    ///< deliveries suppressed by the fault plan
  std::uint64_t messages_corrupted = 0;  ///< deliveries with a fault bit flip
  std::uint64_t crashed_node_rounds = 0; ///< (node, round) pairs spent crashed

  /// Merges stats of a later phase into this one (rounds add up, maxima
  /// combine by max, quiesced reflects the later phase).
  RunStats& operator+=(const RunStats& other);
};

/// A synchronous CONGEST network over a Graph topology.
///
/// Usage:
///   Network net(g, cfg);
///   net.init_programs([&](NodeId v) { return std::make_unique<MyProg>(...); });
///   RunStats st = net.run_rounds(T);            // time-driven
///   auto& out = net.program_as<MyProg>(v);      // read outputs
class Network {
 public:
  Network(const graph::Graph& g, NetworkConfig cfg = {});

  /// Instantiates one program per node. `make(v)` returns the program for
  /// node v. Clears any previous programs and resets round/state.
  void init_programs(
      const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make);

  /// Runs exactly `rounds` rounds (time-driven procedures such as Figure 2,
  /// which executes for a fixed 6d-round budget, use this mode). Returns
  /// the stats of this call only (true per-phase deltas).
  RunStats run_rounds(std::uint32_t rounds);

  /// Runs until every node has halted and no message is in flight, or
  /// until `max_rounds` elapses. stats.quiesced tells which happened.
  /// Returns the stats of this call only (true per-phase deltas).
  RunStats run_until_quiescent(std::uint32_t max_rounds);

  const graph::Graph& topology() const { return *graph_; }
  std::uint32_t n() const { return graph_->n(); }
  std::uint32_t bandwidth_bits() const { return bandwidth_bits_; }

  NodeProgram& program(NodeId v) {
    require(v < n() && programs_[v] != nullptr, "Network::program: no program");
    return *programs_[v];
  }
  const NodeProgram& program(NodeId v) const {
    require(v < n() && programs_[v] != nullptr, "Network::program: no program");
    return *programs_[v];
  }

  /// Typed access to a node's program (the caller knows what it installed).
  template <typename T>
  T& program_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&program(v));
    require(p != nullptr, "Network::program_as: wrong program type");
    return *p;
  }

  /// Stats accumulated since init_programs.
  const RunStats& stats() const { return stats_; }

  /// A delivery buffered for a deferred observer flush (parallel workers at
  /// the round barrier, shard workers shipping events to the coordinator).
  /// It names the receiver's inbox slot rather than the sender's outbox
  /// slot so the flushed event carries the message *as delivered* (after
  /// any fault corruption or bandwidth truncation); the inbox is fully
  /// assembled and stable once the deliver pass of the round is over.
  struct PendingDelivery {
    NodeId from;
    NodeId to;
    std::uint32_t inbox_index;
  };

  // ---- Shard-backend hooks (src/congest/shard) ---------------------------
  // A worker process of the multi-process backend holds a full Network
  // replica and drives it through these entry points instead of run_rounds/
  // run_until_quiescent: the coordinator owns the round loop and the
  // quiescence / memory-audit decisions, and each worker executes only its
  // owned slice of every round. The hooks reuse the exact deliver_range /
  // compute_range / flat-outbox code paths of the in-process engines —
  // which is what makes sharded executions bit-identical by construction.
  // Boundary traffic moves by flat outbox slot index: the sending worker
  // extracts a queued slot (without touching the quiescence counter — the
  // send was already counted), the coordinator routes it, and the owning
  // worker injects it into the same slot of its replica, where the normal
  // delivery pass consumes it.

  /// Replaces the observer configuration wholesale: with `collect` true a
  /// placeholder observer is installed so deliver_range records events into
  /// the caller's sink (the real observer lives coordinator-side); with
  /// false observation is disabled entirely. Either way the construction-
  /// time MetricsObserver is dropped — a worker must not double-report into
  /// a registry inherited across fork.
  void shard_set_observer_collection(bool collect);

  /// on_start for nodes in [begin, end) — the worker's share of the
  /// one-time start phase; queued sends are counted locally.
  void shard_start_range(std::uint32_t begin, std::uint32_t end);

  /// Advances to the next round (round_+1) and refreshes the crash index,
  /// exactly as step_round's round prologue does.
  void shard_begin_round();
  std::uint32_t shard_round() const { return round_; }

  void shard_deliver_range(std::uint32_t begin, std::uint32_t end,
                           RunStats& local,
                           std::vector<PendingDelivery>* sink) {
    deliver_range(begin, end, local, sink);
  }
  void shard_compute_range(std::uint32_t begin, std::uint32_t end) {
    compute_range(begin, end);
  }

  /// Max of memory_bits() over [begin, end); the worker's contribution to
  /// the coordinator's audit decision (see memory_audit_).
  std::uint64_t shard_memory_max_range(std::uint32_t begin,
                                       std::uint32_t end) const;
  /// The coordinator owns the disarm-after-round-1 decision for the whole
  /// network; workers just follow it.
  void shard_set_memory_audit(bool on) { memory_audit_ = on; }

  std::uint32_t shard_slot_count() const {
    return static_cast<std::uint32_t>(outbox_flat_.size());
  }
  /// First flat outbox slot of node v; v's port p queues into slot
  /// shard_out_base(v) + p.
  std::uint32_t shard_out_base(NodeId v) const { return out_base_[v]; }
  bool shard_slot_pending(std::uint32_t slot) const {
    return port_used_flat_[slot] != 0;
  }
  /// Moves a queued message out of `slot` and clears its flag. Does NOT
  /// decrement the inflight counter: the message is still in flight (its
  /// receiving worker's delivery pass decrements on consume), so the
  /// per-worker counters sum to the single-process value.
  Message shard_extract_slot(std::uint32_t slot);
  /// Reads a queued slot's message in place — the shm mesh transport
  /// serializes it straight into shared memory without moving it out.
  const Message& shard_slot_message(std::uint32_t slot) const {
    return outbox_flat_[slot];
  }
  /// Clears a queued slot after its contents were copied out, keeping the
  /// message's spill capacity (Message::clear). Same quiescence-counter
  /// contract as shard_extract_slot: the in-flight count is untouched.
  void shard_clear_slot(std::uint32_t slot) {
    port_used_flat_[slot] = 0;
    outbox_flat_[slot].clear();
  }
  /// Places a boundary message into `slot` (which must be free) and sets
  /// its flag. Does NOT increment inflight: the sender's worker already
  /// counted the send.
  void shard_inject_slot(std::uint32_t slot, Message msg);

  std::int64_t shard_inflight() const {
    return quiesce_->inflight.load(std::memory_order_relaxed);
  }
  std::int64_t shard_halted() const {
    return quiesce_->halted.load(std::memory_order_relaxed);
  }

  /// The message a buffered PendingDelivery refers to, as delivered.
  const Message& shard_inbox_message(const PendingDelivery& d) const {
    return contexts_[d.to].inbox_[d.inbox_index].msg;
  }

 private:
  void start_if_needed();
  /// Shared body of run_rounds / run_until_quiescent: executes one phase,
  /// accumulates it into the lifetime stats_, and returns the phase stats.
  RunStats run_phase(std::uint32_t max_rounds, bool until_quiet);
  void step_round(RunStats& phase);
  void compute_range(std::uint32_t begin, std::uint32_t end);
  void deliver_range(std::uint32_t begin, std::uint32_t end,
                     RunStats& local_stats,
                     std::vector<PendingDelivery>* sink);
  /// O(1) quiescence check off the incrementally maintained QuiesceCounters;
  /// debug builds assert it against all_quiet_scan().
  bool all_quiet() const;
  /// The original O(n + Σdeg) rescan, kept as the debug-build ground truth
  /// for the counters.
  bool all_quiet_scan() const;
  void reseed_node_rngs();
  /// Runs up to `max_rounds` with persistent worker threads (one spawn per
  /// call, 3 barriers per round); stops early at quiescence when
  /// `until_quiet`. Accumulates into `phase` and returns rounds executed.
  std::uint32_t run_parallel_block(std::uint32_t max_rounds, bool until_quiet,
                                   RunStats& phase);

  const graph::Graph* graph_;
  NetworkConfig cfg_;
  /// Armed at construction when a global metrics registry is installed:
  /// a MetricsObserver composed into cfg_.observer streams per-round
  /// delivery histograms, and run_phase reports phase totals (incl. the
  /// drops/violations observers never see) as counters. Null when metrics
  /// are disabled — the hot path then only ever checks this pointer.
  std::shared_ptr<class MetricsObserver> metrics_observer_;
  std::uint32_t bandwidth_bits_ = 0;
  bool fault_enabled_ = false;
  /// O(1) per-check crash lookup, refreshed once per round (the hot
  /// delivery loop would otherwise scan the crash list per edge).
  CrashIndex crash_index_;
  std::uint32_t round_ = 0;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<NodeContext> contexts_;
  /// Flat directed-edge outbox storage: slot out_base_[u] + q holds the
  /// message node u queued on its port q. Receivers consume slots through
  /// NodeContext::in_slot_ and clear the used flag as they do — every
  /// queued slot is examined by its unique receiver each round (delivered
  /// or dropped), so the flags are self-clearing and no per-round reset
  /// pass exists. In the parallel engine workers write flags of slots
  /// outside their node slice, but each slot has exactly one receiver and
  /// sender-side writes are on the far side of a round barrier.
  std::vector<Message> outbox_flat_;
  std::vector<std::uint8_t> port_used_flat_;
  std::vector<std::uint32_t> out_base_;
  /// Heap-allocated so NodeContext's raw pointer stays valid if the
  /// Network object itself moves.
  std::unique_ptr<QuiesceCounters> quiesce_ =
      std::make_unique<QuiesceCounters>();
  /// While true, step_round / run_parallel_block sweep every program's
  /// virtual memory_bits() after compute. Cleared permanently (until the
  /// next init_programs) once a whole round reports 0 everywhere — see
  /// NodeProgram::memory_bits.
  bool memory_audit_ = true;
  RunStats stats_;
  bool started_ = false;
};

}  // namespace qc::congest
