#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/fault.hpp"
#include "congest/message.hpp"
#include "congest/observer.hpp"
#include "graph/graph.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::congest {

using graph::NodeId;

class Network;

/// A message delivered to a node, tagged with the port it arrived on.
struct Incoming {
  std::uint32_t port;
  Message msg;
};

/// Per-round view a NodeProgram gets of its node. This is the *entire*
/// interface a distributed algorithm may use: local identity, local ports,
/// the global value n (which the CONGEST model grants every node), the
/// current round number, this round's inbox, and send primitives.
class NodeContext {
 public:
  NodeId id() const { return id_; }

  /// Number of incident edges (= number of ports).
  std::uint32_t degree() const { return static_cast<std::uint32_t>(neighbors_.size()); }

  /// Identifier of the neighbor on `port` (nodes know their incident edges).
  NodeId neighbor(std::uint32_t port) const {
    require(port < degree(), "NodeContext::neighbor: port out of range");
    return neighbors_[port];
  }

  /// Port leading to neighbor `v`; throws if v is not adjacent.
  std::uint32_t port_to(NodeId v) const;

  /// Number of nodes in the network (known a priori in the model).
  std::uint32_t n() const { return n_; }

  /// Bit width of a node identifier (= ceil(log2 n)).
  std::uint32_t id_bits() const { return qc::bit_width_for(n_); }

  /// Current round, starting at 1 for the first round with deliveries.
  std::uint32_t round() const { return round_; }

  /// Messages delivered this round (sent by neighbors last round).
  std::span<const Incoming> inbox() const { return inbox_; }

  /// Queues a message on `port` for delivery next round. At most one
  /// message per port per round.
  void send(std::uint32_t port, Message msg);

  /// Queues a message to the neighbor with id `v`.
  void send_to(NodeId v, Message msg) { send(port_to(v), std::move(msg)); }

  /// Sends a copy of `msg` on every port.
  void broadcast(const Message& msg);

  /// Signals that this node has no further work; the quiescence run mode
  /// stops when every node has halted and no message is in flight. A halted
  /// node is re-activated automatically if a message arrives.
  void vote_halt() { halted_ = true; }

  /// Deterministic per-node randomness (seeded from the network seed and
  /// the node id).
  Rng& rng() { return rng_; }

 private:
  friend class Network;
  NodeId id_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t round_ = 0;
  std::vector<NodeId> neighbors_;
  std::vector<Incoming> inbox_;
  std::vector<Message> outbox_;    // one slot per port
  std::vector<bool> port_used_;    // whether the slot holds a message
  bool halted_ = false;
  Rng rng_{0};
};

/// A distributed algorithm, written once per node. Implementations hold the
/// node's local state as member data; the simulator guarantees they can
/// observe nothing beyond their NodeContext.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 1; typical use: originators send the first
  /// messages (e.g. the BFS root of Figure 1 activating its neighbors).
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// Called every round after delivery; read ctx.inbox(), update state,
  /// send messages.
  virtual void on_round(NodeContext& ctx) = 0;

  /// Number of bits of local working state the program currently holds;
  /// used to audit the paper's per-node memory claims (e.g. O(log n) for
  /// Figures 1-2). Zero means "not reported".
  virtual std::uint64_t memory_bits() const { return 0; }
};

/// How the network reacts to a bandwidth violation.
enum class BandwidthPolicy {
  kEnforce,   ///< throw BandwidthViolationError immediately (default)
  kRecord,    ///< count violations in the stats but deliver anyway
  kTruncate,  ///< count the violation but deliver Message::truncated(bw):
              ///< leading fields that fit survive, the first overflowing
              ///< field is narrowed to the remaining bits, the rest is
              ///< cut. Stats count the clipped (delivered) bits.
};

/// True iff `neighbors` is strictly increasing — the port-order invariant
/// that NodeContext::port_to's binary search (and the deterministic inbox
/// assembly) relies on. The Network constructor validates every adjacency
/// list with this so an unsorted topology fails loudly at construction
/// instead of silently misrouting messages.
bool neighbors_strictly_sorted(std::span<const graph::NodeId> neighbors);

/// Execution engine choice; both produce bit-identical traces.
enum class Engine {
  kSequential,
  kParallel,  ///< one worker per hardware thread, std::barrier synchronized
};

struct NetworkConfig {
  /// Per-edge per-direction per-round bandwidth in bits. Zero means "use
  /// the model default" congest_bandwidth_bits(n).
  std::uint32_t bandwidth_bits = 0;
  BandwidthPolicy policy = BandwidthPolicy::kEnforce;
  Engine engine = Engine::kSequential;
  std::uint64_t seed = 1;
  std::uint32_t num_threads = 0;  ///< 0 = hardware_concurrency

  /// Optional observer notified of every delivered message (sender,
  /// receiver, message, round). Used by the lower-bound harness to tally
  /// traffic crossing a vertex partition (Theorems 10/11) and by the
  /// trace/audit tooling. Supported by **both** engines: the parallel
  /// engine buffers events per worker and flushes them at the round
  /// barrier in the same (round, receiver, port) order the sequential
  /// engine produces, so observed streams are bit-identical either way.
  /// Compose several observers with MultiObserver.
  std::shared_ptr<DeliveryObserver> observer;

  /// Deterministic fault schedule (message drops, bit corruption, node
  /// crashes) applied during delivery. Disabled by default; a disabled
  /// plan leaves every execution bit-identical to the pre-fault-layer
  /// behavior. Decisions are stateless hashes of (fault seed, round,
  /// sender, receiver), so for a fixed plan both engines produce the same
  /// trace at every thread count. Observers never see dropped messages and
  /// see corrupted/truncated messages as delivered.
  FaultPlan fault;
};

/// Aggregate statistics of one execution phase. run_rounds and
/// run_until_quiescent return the stats of *that call only* — counters
/// count the phase's own traffic and the maxima are per-phase maxima, not
/// lifetime high-water marks; Network::stats() keeps the lifetime
/// aggregate.
struct RunStats {
  std::uint32_t rounds = 0;        ///< rounds actually executed
  std::uint64_t messages = 0;      ///< messages delivered
  std::uint64_t bits = 0;          ///< total bits delivered
  std::uint32_t max_edge_bits = 0; ///< max bits on one edge-direction in a round
  std::uint64_t violations = 0;    ///< bandwidth violations (kRecord/kTruncate)
  bool quiesced = false;           ///< network was quiescent when the phase ended
  std::uint64_t max_node_memory_bits = 0;  ///< high-water mark of memory_bits()
  std::uint64_t messages_dropped = 0;    ///< deliveries suppressed by the fault plan
  std::uint64_t messages_corrupted = 0;  ///< deliveries with a fault bit flip
  std::uint64_t crashed_node_rounds = 0; ///< (node, round) pairs spent crashed

  /// Merges stats of a later phase into this one (rounds add up, maxima
  /// combine by max, quiesced reflects the later phase).
  RunStats& operator+=(const RunStats& other);
};

/// A synchronous CONGEST network over a Graph topology.
///
/// Usage:
///   Network net(g, cfg);
///   net.init_programs([&](NodeId v) { return std::make_unique<MyProg>(...); });
///   RunStats st = net.run_rounds(T);            // time-driven
///   auto& out = net.program_as<MyProg>(v);      // read outputs
class Network {
 public:
  Network(const graph::Graph& g, NetworkConfig cfg = {});

  /// Instantiates one program per node. `make(v)` returns the program for
  /// node v. Clears any previous programs and resets round/state.
  void init_programs(
      const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make);

  /// Runs exactly `rounds` rounds (time-driven procedures such as Figure 2,
  /// which executes for a fixed 6d-round budget, use this mode). Returns
  /// the stats of this call only (true per-phase deltas).
  RunStats run_rounds(std::uint32_t rounds);

  /// Runs until every node has halted and no message is in flight, or
  /// until `max_rounds` elapses. stats.quiesced tells which happened.
  /// Returns the stats of this call only (true per-phase deltas).
  RunStats run_until_quiescent(std::uint32_t max_rounds);

  const graph::Graph& topology() const { return *graph_; }
  std::uint32_t n() const { return graph_->n(); }
  std::uint32_t bandwidth_bits() const { return bandwidth_bits_; }

  NodeProgram& program(NodeId v) {
    require(v < n() && programs_[v] != nullptr, "Network::program: no program");
    return *programs_[v];
  }
  const NodeProgram& program(NodeId v) const {
    require(v < n() && programs_[v] != nullptr, "Network::program: no program");
    return *programs_[v];
  }

  /// Typed access to a node's program (the caller knows what it installed).
  template <typename T>
  T& program_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&program(v));
    require(p != nullptr, "Network::program_as: wrong program type");
    return *p;
  }

  /// Stats accumulated since init_programs.
  const RunStats& stats() const { return stats_; }

 private:
  /// A delivery buffered by one parallel worker for the round-barrier
  /// flush. It names the receiver's inbox slot rather than the sender's
  /// outbox slot so the flushed event carries the message *as delivered*
  /// (after any fault corruption or bandwidth truncation); the inbox is
  /// fully assembled and stable at the flush barrier.
  struct PendingDelivery {
    NodeId from;
    NodeId to;
    std::uint32_t inbox_index;
  };

  void start_if_needed();
  /// Shared body of run_rounds / run_until_quiescent: executes one phase,
  /// accumulates it into the lifetime stats_, and returns the phase stats.
  RunStats run_phase(std::uint32_t max_rounds, bool until_quiet);
  void step_round(RunStats& phase);
  void compute_range(std::uint32_t begin, std::uint32_t end);
  void deliver_range(std::uint32_t begin, std::uint32_t end,
                     RunStats& local_stats,
                     std::vector<PendingDelivery>* sink);
  bool all_quiet() const;
  void reseed_node_rngs();
  /// Runs up to `max_rounds` with persistent worker threads (one spawn per
  /// call, 3 barriers per round); stops early at quiescence when
  /// `until_quiet`. Accumulates into `phase` and returns rounds executed.
  std::uint32_t run_parallel_block(std::uint32_t max_rounds, bool until_quiet,
                                   RunStats& phase);

  const graph::Graph* graph_;
  NetworkConfig cfg_;
  /// Armed at construction when a global metrics registry is installed:
  /// a MetricsObserver composed into cfg_.observer streams per-round
  /// delivery histograms, and run_phase reports phase totals (incl. the
  /// drops/violations observers never see) as counters. Null when metrics
  /// are disabled — the hot path then only ever checks this pointer.
  std::shared_ptr<class MetricsObserver> metrics_observer_;
  std::uint32_t bandwidth_bits_ = 0;
  bool fault_enabled_ = false;
  /// O(1) per-check crash lookup, refreshed once per round (the hot
  /// delivery loop would otherwise scan the crash list per edge).
  CrashIndex crash_index_;
  std::uint32_t round_ = 0;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<NodeContext> contexts_;
  RunStats stats_;
  bool started_ = false;
};

}  // namespace qc::congest
