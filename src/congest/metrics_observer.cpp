#include "congest/metrics_observer.hpp"

namespace qc::congest {

namespace {

// Round-level bucket bounds: deliveries per round grow with n, so cover a
// generous power-of-two range; message sizes are O(log n) bits under the
// model, so a finer linear-ish ladder resolves bandwidth occupancy.
const std::vector<double> kRoundBounds = {1,    2,    4,     8,     16,
                                          32,   64,   128,   256,   512,
                                          1024, 4096, 16384, 65536, 262144};
const std::vector<double> kBitsBounds = {8,    16,    32,    64,     128,
                                         256,  1024,  4096,  16384,  65536,
                                         262144, 1048576, 4194304};
const std::vector<double> kMessageBitsBounds = {1,  2,  4,  8,  12, 16, 20,
                                                24, 32, 40, 48, 64, 96, 128};

}  // namespace

MetricsObserver::MetricsObserver(metrics::MetricsRegistry* reg) : reg_(reg) {
  reg_->register_histogram("congest.round_messages", kRoundBounds);
  reg_->register_histogram("congest.round_bits", kBitsBounds);
  reg_->register_histogram("congest.message_bits", kMessageBitsBounds);
}

void MetricsObserver::on_deliver(graph::NodeId /*from*/, graph::NodeId /*to*/,
                                 const Message& msg, std::uint32_t round) {
  if (open_ && round != current_round_) flush();
  open_ = true;
  current_round_ = round;
  ++round_messages_;
  round_bits_ += msg.size_bits();
  reg_->observe("congest.message_bits",
                static_cast<double>(msg.size_bits()));
}

void MetricsObserver::flush() {
  if (!open_) return;
  reg_->observe("congest.round_messages",
                static_cast<double>(round_messages_));
  reg_->observe("congest.round_bits", static_cast<double>(round_bits_));
  round_messages_ = 0;
  round_bits_ = 0;
  open_ = false;
}

}  // namespace qc::congest
