#include "congest/shard/codec.hpp"

#include <string_view>

#include "util/error.hpp"

namespace qc::congest::shard {

using serve::ProtocolError;

namespace {

constexpr std::size_t kHeaderBytes = 4;  // version, op, 2 reserved
// Fixed stats block: u32 + u64*2 + u32 + u64 + u8 + u64*4.
constexpr std::size_t kStatsBytes = 4 + 8 + 8 + 4 + 8 + 1 + 8 + 8 + 8 + 8;

void proto_require(bool cond, const char* msg) {
  if (!cond) throw ProtocolError(msg);
}

/// Unbounded writer over a growing vector — the socket-frame encode path.
/// Mirrors FrameWriter's interface so the body encoders below are written
/// once and instantiated for both destinations (an encoder that diverged
/// between the ring and the socket would break frame parity silently).
class VecWriter {
 public:
  explicit VecWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t x) { out_.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian cursor. Every primitive read validates the
/// remaining byte count, so a strict prefix of a valid payload fails at
/// the first missing byte; done() rejects trailing bytes, so an overlong
/// buffer fails too.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::size_t remaining() const { return buf_.size() - pos_; }

  std::size_t pos() const { return pos_; }

  const std::uint8_t* cursor() const { return buf_.data() + pos_; }

  void skip(std::size_t k) {
    need(k);
    pos_ += k;
  }

  void done() const {
    proto_require(pos_ == buf_.size(),
                  "shard: payload has trailing bytes after its last field");
  }

 private:
  void need(std::size_t k) const {
    proto_require(buf_.size() - pos_ >= k,
                  "shard: payload truncated inside a field");
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

template <class W>
void put_header(W& w, ShardOp op) {
  w.u8(kShardProtocolVersion);
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(0);
  w.u8(0);
}

/// Validates the fixed header and returns a reader positioned at the body.
Reader open_body(std::span<const std::uint8_t> payload, ShardOp expect) {
  proto_require(decode_op(payload) == expect,
                "shard: payload op does not match the expected frame type");
  Reader r(payload);
  r.skip(kHeaderBytes);
  return r;
}

template <class W>
void put_message(W& w, const Message& m) {
  require(m.num_fields() <= kMaxWireMessageFields,
          "shard: message has more fields than the wire cap");
  w.u32(static_cast<std::uint32_t>(m.num_fields()));
  for (std::size_t i = 0; i < m.num_fields(); ++i) {
    w.u8(static_cast<std::uint8_t>(m.field_bits(i)));
    w.u64(m.field(i));
  }
}

void read_message_into(Reader& r, Message& m) {
  const std::uint32_t count = r.u32();
  proto_require(count <= kMaxWireMessageFields,
                "shard: message field count exceeds the cap");
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 9,
                "shard: message field count disagrees with the payload size");
  m.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t width = r.u8();
    const std::uint64_t value = r.u64();
    proto_require(width >= 1 && width <= 64,
                  "shard: message field width outside [1,64]");
    proto_require(width == 64 || value < (1ULL << width),
                  "shard: message field value does not fit its width");
    m.push(value, width);
  }
}

template <class W>
void put_boundary(W& w, const std::vector<BoundaryMsg>& boundary) {
  w.u32(static_cast<std::uint32_t>(boundary.size()));
  for (const auto& b : boundary) {
    w.u32(b.slot);
    put_message(w, b.msg);
  }
}

void read_boundary_into(Reader& r, std::vector<BoundaryMsg>& out) {
  const std::uint32_t count = r.u32();
  // Cheapest-possible encoding of one entry is 8 bytes (slot + empty
  // message); reject length bombs before any allocation of that size.
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 8,
                "shard: boundary count disagrees with the payload size");
  out.resize(count);
  for (auto& b : out) {
    b.slot = r.u32();
    read_message_into(r, b.msg);
  }
}

template <class W>
void put_events(W& w, const std::vector<DeliveryEvent>& events) {
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    w.u32(e.from);
    w.u32(e.to);
    put_message(w, e.msg);
  }
}

void read_events_into(Reader& r, std::vector<DeliveryEvent>& out) {
  const std::uint32_t count = r.u32();
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 12,
                "shard: event count disagrees with the payload size");
  out.resize(count);
  for (auto& e : out) {
    e.from = r.u32();
    e.to = r.u32();
    read_message_into(r, e.msg);
  }
}

template <class W>
void put_stats(W& w, const RunStats& s) {
  w.u32(s.rounds);
  w.u64(s.messages);
  w.u64(s.bits);
  w.u32(s.max_edge_bits);
  w.u64(s.violations);
  w.u8(s.quiesced ? 1 : 0);
  w.u64(s.max_node_memory_bits);
  w.u64(s.messages_dropped);
  w.u64(s.messages_corrupted);
  w.u64(s.crashed_node_rounds);
}

RunStats read_stats(Reader& r) {
  proto_require(r.remaining() >= kStatsBytes,
                "shard: payload truncated inside the stats block");
  RunStats s;
  s.rounds = r.u32();
  s.messages = r.u64();
  s.bits = r.u64();
  s.max_edge_bits = r.u32();
  s.violations = r.u64();
  const std::uint8_t q = r.u8();
  proto_require(q <= 1, "shard: stats quiesced byte is not 0 or 1");
  s.quiesced = q == 1;
  s.max_node_memory_bits = r.u64();
  s.messages_dropped = r.u64();
  s.messages_corrupted = r.u64();
  s.crashed_node_rounds = r.u64();
  return s;
}

template <class W>
void put_round_begin(W& w, const RoundBeginFrame& f) {
  put_header(w, ShardOp::kRoundBegin);
  w.u32(f.round);
  w.u8(f.memory_audit ? 1 : 0);
  put_boundary(w, f.boundary);
}

template <class W>
void put_round_end(W& w, const RoundEndFrame& f) {
  put_header(w, ShardOp::kRoundEnd);
  w.u32(f.round);
  w.u64(static_cast<std::uint64_t>(f.inflight));
  w.u64(static_cast<std::uint64_t>(f.halted));
  w.u64(f.boundary_bytes);
  w.u64(f.boundary_msgs);
  put_stats(w, f.stats);
  put_boundary(w, f.boundary);
  put_events(w, f.events);
}

}  // namespace

const char* shard_op_name(ShardOp op) {
  switch (op) {
    case ShardOp::kStart: return "start";
    case ShardOp::kStartDone: return "start-done";
    case ShardOp::kRoundBegin: return "round-begin";
    case ShardOp::kRoundEnd: return "round-end";
    case ShardOp::kHarvest: return "harvest";
    case ShardOp::kHarvestDone: return "harvest-done";
    case ShardOp::kShutdown: return "shutdown";
    case ShardOp::kError: return "error";
    case ShardOp::kMesh: return "mesh";
  }
  return "unknown";
}

ShardOp decode_op(std::span<const std::uint8_t> payload) {
  proto_require(payload.size() >= kHeaderBytes,
                "shard: payload shorter than the fixed header");
  proto_require(payload[0] == kShardProtocolVersion,
                "shard: unsupported protocol version");
  proto_require(payload[1] <= kMaxShardOp, "shard: unknown op");
  proto_require(payload[2] == 0 && payload[3] == 0,
                "shard: nonzero reserved bytes");
  return static_cast<ShardOp>(payload[1]);
}

std::vector<std::uint8_t> encode_empty(ShardOp op) {
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_header(w, op);
  return out;
}

void decode_empty(std::span<const std::uint8_t> payload, ShardOp op) {
  Reader r = open_body(payload, op);
  r.done();
}

std::vector<std::uint8_t> encode_start_done(const StartDoneFrame& f) {
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_header(w, ShardOp::kStartDone);
  w.u64(static_cast<std::uint64_t>(f.inflight));
  w.u64(static_cast<std::uint64_t>(f.halted));
  put_boundary(w, f.boundary);
  return out;
}

StartDoneFrame decode_start_done(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kStartDone);
  StartDoneFrame f;
  f.inflight = r.i64();
  f.halted = r.i64();
  read_boundary_into(r, f.boundary);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_round_begin(const RoundBeginFrame& f) {
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_round_begin(w, f);
  return out;
}

void decode_round_begin_into(std::span<const std::uint8_t> payload,
                             RoundBeginFrame& f) {
  Reader r = open_body(payload, ShardOp::kRoundBegin);
  f.round = r.u32();
  const std::uint8_t flags = r.u8();
  proto_require(flags <= 1, "shard: unknown round-begin flag bits");
  f.memory_audit = flags == 1;
  read_boundary_into(r, f.boundary);
  r.done();
}

RoundBeginFrame decode_round_begin(std::span<const std::uint8_t> payload) {
  RoundBeginFrame f;
  decode_round_begin_into(payload, f);
  return f;
}

std::vector<std::uint8_t> encode_round_end(const RoundEndFrame& f) {
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_round_end(w, f);
  return out;
}

void decode_round_end_into(std::span<const std::uint8_t> payload,
                           RoundEndFrame& f) {
  Reader r = open_body(payload, ShardOp::kRoundEnd);
  f.round = r.u32();
  f.inflight = r.i64();
  f.halted = r.i64();
  f.boundary_bytes = r.u64();
  f.boundary_msgs = r.u64();
  f.stats = read_stats(r);
  read_boundary_into(r, f.boundary);
  read_events_into(r, f.events);
  r.done();
}

RoundEndFrame decode_round_end(std::span<const std::uint8_t> payload) {
  RoundEndFrame f;
  decode_round_end_into(payload, f);
  return f;
}

bool encode_round_begin_to(std::span<std::uint8_t> buf,
                           const RoundBeginFrame& f, std::size_t& len) {
  FrameWriter w(buf);
  put_round_begin(w, f);
  if (!w.ok()) return false;
  len = w.size();
  return true;
}

bool encode_round_end_to(std::span<std::uint8_t> buf, const RoundEndFrame& f,
                         std::size_t& len) {
  FrameWriter w(buf);
  put_round_end(w, f);
  if (!w.ok()) return false;
  len = w.size();
  return true;
}

bool encode_empty_to(std::span<std::uint8_t> buf, ShardOp op,
                     std::size_t& len) {
  FrameWriter w(buf);
  put_header(w, op);
  if (!w.ok()) return false;
  len = w.size();
  return true;
}

std::vector<std::uint8_t> encode_harvest_done(const HarvestDoneFrame& f) {
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_header(w, ShardOp::kHarvestDone);
  w.u32(static_cast<std::uint32_t>(f.states.size()));
  for (const auto& m : f.states) put_message(w, m);
  return out;
}

HarvestDoneFrame decode_harvest_done(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kHarvestDone);
  const std::uint32_t count = r.u32();
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 4,
                "shard: harvest count disagrees with the payload size");
  HarvestDoneFrame f;
  f.states.resize(count);
  for (auto& m : f.states) read_message_into(r, m);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_error(const std::string& text) {
  // The worker composes the text itself; truncate rather than fail so an
  // oversized what() can never wedge the error path.
  std::string_view msg(text);
  if (msg.size() > serve::kMaxMessageBytes) {
    msg = msg.substr(0, serve::kMaxMessageBytes);
  }
  std::vector<std::uint8_t> out;
  VecWriter w(out);
  put_header(w, ShardOp::kError);
  w.u32(static_cast<std::uint32_t>(msg.size()));
  for (const char c : msg) w.u8(static_cast<std::uint8_t>(c));
  return out;
}

std::string decode_error(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kError);
  const std::uint32_t len = r.u32();
  proto_require(len <= serve::kMaxMessageBytes,
                "shard: error text length exceeds the cap");
  proto_require(r.remaining() == len,
                "shard: error length disagrees with the payload size");
  std::string text(reinterpret_cast<const char*>(r.cursor()), len);
  r.skip(len);
  r.done();
  return text;
}

// ---- Mesh batches ---------------------------------------------------------

MeshWriter::MeshWriter(std::span<std::uint8_t> buf, std::uint32_t round)
    : w_(buf) {
  put_header(w_, ShardOp::kMesh);
  w_.u32(round);
  count_at_ = w_.mark();
  w_.u32(0);  // entry count, patched by finish()
}

bool MeshWriter::add(std::uint32_t slot, const Message& m) {
  w_.u32(slot);
  put_message(w_, m);
  if (!w_.ok()) return false;
  ++count_;
  return true;
}

bool MeshWriter::finish(std::size_t& len) {
  if (!w_.ok()) return false;
  w_.patch_u32(count_at_, count_);
  len = w_.size();
  return true;
}

MeshReader::MeshReader(std::span<const std::uint8_t> payload,
                       std::uint32_t round)
    : buf_(payload) {
  Reader r = open_body(payload, ShardOp::kMesh);
  const std::uint32_t stamp = r.u32();
  proto_require(stamp == round,
                "shard: mesh batch carries the wrong round number");
  count_ = r.u32();
  // Cheapest entry is 8 bytes (slot + empty message).
  proto_require(r.remaining() >= static_cast<std::size_t>(count_) * 8,
                "shard: mesh entry count disagrees with the payload size");
  if (count_ == 0) r.done();
  pos_ = r.pos();
}

bool MeshReader::next(std::uint32_t& slot, Message& m) {
  if (read_ == count_) return false;
  Reader r(buf_.subspan(pos_));
  slot = r.u32();
  read_message_into(r, m);
  pos_ += r.pos();
  ++read_;
  if (read_ == count_) {
    proto_require(pos_ == buf_.size(),
                  "shard: payload has trailing bytes after its last field");
  }
  return true;
}

}  // namespace qc::congest::shard
