#include "congest/shard/codec.hpp"

#include <string_view>

#include "util/error.hpp"

namespace qc::congest::shard {

using serve::ProtocolError;

namespace {

constexpr std::size_t kHeaderBytes = 4;  // version, op, 2 reserved
// Fixed stats block: u32 + u64*2 + u32 + u64 + u8 + u64*4.
constexpr std::size_t kStatsBytes = 4 + 8 + 8 + 4 + 8 + 1 + 8 + 8 + 8 + 8;

void proto_require(bool cond, const char* msg) {
  if (!cond) throw ProtocolError(msg);
}

void append_le32(std::vector<std::uint8_t>& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
}

void append_le64(std::vector<std::uint8_t>& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
}

/// Bounds-checked little-endian cursor. Every primitive read validates the
/// remaining byte count, so a strict prefix of a valid payload fails at
/// the first missing byte; done() rejects trailing bytes, so an overlong
/// buffer fails too.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::size_t remaining() const { return buf_.size() - pos_; }

  const std::uint8_t* cursor() const { return buf_.data() + pos_; }

  void skip(std::size_t k) {
    need(k);
    pos_ += k;
  }

  void done() const {
    proto_require(pos_ == buf_.size(),
                  "shard: payload has trailing bytes after its last field");
  }

 private:
  void need(std::size_t k) const {
    proto_require(buf_.size() - pos_ >= k,
                  "shard: payload truncated inside a field");
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

void append_header(std::vector<std::uint8_t>& out, ShardOp op) {
  out.push_back(kShardProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(op));
  out.push_back(0);
  out.push_back(0);
}

/// Validates the fixed header and returns a reader positioned at the body.
Reader open_body(std::span<const std::uint8_t> payload, ShardOp expect) {
  proto_require(decode_op(payload) == expect,
                "shard: payload op does not match the expected frame type");
  Reader r(payload);
  r.skip(kHeaderBytes);
  return r;
}

void append_message(std::vector<std::uint8_t>& out, const Message& m) {
  require(m.num_fields() <= kMaxWireMessageFields,
          "shard: message has more fields than the wire cap");
  append_le32(out, static_cast<std::uint32_t>(m.num_fields()));
  for (std::size_t i = 0; i < m.num_fields(); ++i) {
    out.push_back(static_cast<std::uint8_t>(m.field_bits(i)));
    append_le64(out, m.field(i));
  }
}

Message read_message(Reader& r) {
  const std::uint32_t count = r.u32();
  proto_require(count <= kMaxWireMessageFields,
                "shard: message field count exceeds the cap");
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 9,
                "shard: message field count disagrees with the payload size");
  Message m;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t width = r.u8();
    const std::uint64_t value = r.u64();
    proto_require(width >= 1 && width <= 64,
                  "shard: message field width outside [1,64]");
    proto_require(width == 64 || value < (1ULL << width),
                  "shard: message field value does not fit its width");
    m.push(value, width);
  }
  return m;
}

void append_boundary(std::vector<std::uint8_t>& out,
                     const std::vector<BoundaryMsg>& boundary) {
  append_le32(out, static_cast<std::uint32_t>(boundary.size()));
  for (const auto& b : boundary) {
    append_le32(out, b.slot);
    append_message(out, b.msg);
  }
}

std::vector<BoundaryMsg> read_boundary(Reader& r) {
  const std::uint32_t count = r.u32();
  // Cheapest-possible encoding of one entry is 8 bytes (slot + empty
  // message); reject length bombs before any allocation of that size.
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 8,
                "shard: boundary count disagrees with the payload size");
  std::vector<BoundaryMsg> out(count);
  for (auto& b : out) {
    b.slot = r.u32();
    b.msg = read_message(r);
  }
  return out;
}

void append_events(std::vector<std::uint8_t>& out,
                   const std::vector<DeliveryEvent>& events) {
  append_le32(out, static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    append_le32(out, e.from);
    append_le32(out, e.to);
    append_message(out, e.msg);
  }
}

std::vector<DeliveryEvent> read_events(Reader& r) {
  const std::uint32_t count = r.u32();
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 12,
                "shard: event count disagrees with the payload size");
  std::vector<DeliveryEvent> out(count);
  for (auto& e : out) {
    e.from = r.u32();
    e.to = r.u32();
    e.msg = read_message(r);
  }
  return out;
}

void append_stats(std::vector<std::uint8_t>& out, const RunStats& s) {
  append_le32(out, s.rounds);
  append_le64(out, s.messages);
  append_le64(out, s.bits);
  append_le32(out, s.max_edge_bits);
  append_le64(out, s.violations);
  out.push_back(s.quiesced ? 1 : 0);
  append_le64(out, s.max_node_memory_bits);
  append_le64(out, s.messages_dropped);
  append_le64(out, s.messages_corrupted);
  append_le64(out, s.crashed_node_rounds);
}

RunStats read_stats(Reader& r) {
  proto_require(r.remaining() >= kStatsBytes,
                "shard: payload truncated inside the stats block");
  RunStats s;
  s.rounds = r.u32();
  s.messages = r.u64();
  s.bits = r.u64();
  s.max_edge_bits = r.u32();
  s.violations = r.u64();
  const std::uint8_t q = r.u8();
  proto_require(q <= 1, "shard: stats quiesced byte is not 0 or 1");
  s.quiesced = q == 1;
  s.max_node_memory_bits = r.u64();
  s.messages_dropped = r.u64();
  s.messages_corrupted = r.u64();
  s.crashed_node_rounds = r.u64();
  return s;
}

}  // namespace

const char* shard_op_name(ShardOp op) {
  switch (op) {
    case ShardOp::kStart: return "start";
    case ShardOp::kStartDone: return "start-done";
    case ShardOp::kRoundBegin: return "round-begin";
    case ShardOp::kRoundEnd: return "round-end";
    case ShardOp::kHarvest: return "harvest";
    case ShardOp::kHarvestDone: return "harvest-done";
    case ShardOp::kShutdown: return "shutdown";
    case ShardOp::kError: return "error";
  }
  return "unknown";
}

ShardOp decode_op(std::span<const std::uint8_t> payload) {
  proto_require(payload.size() >= kHeaderBytes,
                "shard: payload shorter than the fixed header");
  proto_require(payload[0] == kShardProtocolVersion,
                "shard: unsupported protocol version");
  proto_require(payload[1] <= kMaxShardOp, "shard: unknown op");
  proto_require(payload[2] == 0 && payload[3] == 0,
                "shard: nonzero reserved bytes");
  return static_cast<ShardOp>(payload[1]);
}

std::vector<std::uint8_t> encode_empty(ShardOp op) {
  std::vector<std::uint8_t> out;
  append_header(out, op);
  return out;
}

void decode_empty(std::span<const std::uint8_t> payload, ShardOp op) {
  Reader r = open_body(payload, op);
  r.done();
}

std::vector<std::uint8_t> encode_start_done(const StartDoneFrame& f) {
  std::vector<std::uint8_t> out;
  append_header(out, ShardOp::kStartDone);
  append_le64(out, static_cast<std::uint64_t>(f.inflight));
  append_le64(out, static_cast<std::uint64_t>(f.halted));
  append_boundary(out, f.boundary);
  return out;
}

StartDoneFrame decode_start_done(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kStartDone);
  StartDoneFrame f;
  f.inflight = r.i64();
  f.halted = r.i64();
  f.boundary = read_boundary(r);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_round_begin(const RoundBeginFrame& f) {
  std::vector<std::uint8_t> out;
  append_header(out, ShardOp::kRoundBegin);
  append_le32(out, f.round);
  out.push_back(f.memory_audit ? 1 : 0);
  append_boundary(out, f.boundary);
  return out;
}

RoundBeginFrame decode_round_begin(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kRoundBegin);
  RoundBeginFrame f;
  f.round = r.u32();
  const std::uint8_t flags = r.u8();
  proto_require(flags <= 1, "shard: unknown round-begin flag bits");
  f.memory_audit = flags == 1;
  f.boundary = read_boundary(r);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_round_end(const RoundEndFrame& f) {
  std::vector<std::uint8_t> out;
  append_header(out, ShardOp::kRoundEnd);
  append_le32(out, f.round);
  append_le64(out, static_cast<std::uint64_t>(f.inflight));
  append_le64(out, static_cast<std::uint64_t>(f.halted));
  append_stats(out, f.stats);
  append_boundary(out, f.boundary);
  append_events(out, f.events);
  return out;
}

RoundEndFrame decode_round_end(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kRoundEnd);
  RoundEndFrame f;
  f.round = r.u32();
  f.inflight = r.i64();
  f.halted = r.i64();
  f.stats = read_stats(r);
  f.boundary = read_boundary(r);
  f.events = read_events(r);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_harvest_done(const HarvestDoneFrame& f) {
  std::vector<std::uint8_t> out;
  append_header(out, ShardOp::kHarvestDone);
  append_le32(out, static_cast<std::uint32_t>(f.states.size()));
  for (const auto& m : f.states) append_message(out, m);
  return out;
}

HarvestDoneFrame decode_harvest_done(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kHarvestDone);
  const std::uint32_t count = r.u32();
  proto_require(r.remaining() >= static_cast<std::size_t>(count) * 4,
                "shard: harvest count disagrees with the payload size");
  HarvestDoneFrame f;
  f.states.resize(count);
  for (auto& m : f.states) m = read_message(r);
  r.done();
  return f;
}

std::vector<std::uint8_t> encode_error(const std::string& text) {
  // The worker composes the text itself; truncate rather than fail so an
  // oversized what() can never wedge the error path.
  std::string_view msg(text);
  if (msg.size() > serve::kMaxMessageBytes) {
    msg = msg.substr(0, serve::kMaxMessageBytes);
  }
  std::vector<std::uint8_t> out;
  append_header(out, ShardOp::kError);
  append_le32(out, static_cast<std::uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

std::string decode_error(std::span<const std::uint8_t> payload) {
  Reader r = open_body(payload, ShardOp::kError);
  const std::uint32_t len = r.u32();
  proto_require(len <= serve::kMaxMessageBytes,
                "shard: error text length exceeds the cap");
  proto_require(r.remaining() == len,
                "shard: error length disagrees with the payload size");
  std::string text(reinterpret_cast<const char*>(r.cursor()), len);
  r.skip(len);
  r.done();
  return text;
}

}  // namespace qc::congest::shard
