#include "congest/shard/partition.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"

namespace qc::congest::shard {

std::vector<std::uint32_t> ContiguousPartitioner::assign(
    const graph::Graph& g, std::uint32_t shards) const {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> shard_of(n);
  const std::uint32_t base = n / shards;
  const std::uint32_t extra = n % shards;
  std::uint32_t v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t size = base + (s < extra ? 1 : 0);
    for (std::uint32_t i = 0; i < size; ++i) shard_of[v++] = s;
  }
  return shard_of;
}

GreedyGrowPartitioner::GreedyGrowPartitioner(double balance_slack)
    : slack_(balance_slack) {
  require(balance_slack >= 0.0 && balance_slack <= 1.0,
          "GreedyGrowPartitioner: balance_slack must be in [0, 1]");
}

std::vector<std::uint32_t> GreedyGrowPartitioner::assign(
    const graph::Graph& g, std::uint32_t shards) const {
  const std::uint32_t n = g.n();
  const std::uint32_t W = shards;
  const std::uint32_t unassigned = W;  // sentinel owner
  std::vector<std::uint32_t> shard_of(n, unassigned);
  if (W <= 1) {
    std::fill(shard_of.begin(), shard_of.end(), 0u);
    return shard_of;
  }

  const std::uint32_t base = (n + W - 1) / W;  // ceil(n/W)
  const std::uint32_t cap =
      base + std::max<std::uint32_t>(
                 1, static_cast<std::uint32_t>(slack_ * base));
  const double m = static_cast<double>(g.csr_neighbors().size()) / 2.0;
  const double alpha =
      std::sqrt(static_cast<double>(W)) * m / std::pow(n, 1.5);
  constexpr double kGamma = 1.5;

  std::vector<std::uint32_t> sizes(W, 0);
  std::vector<std::uint32_t> gains(W, 0);
  std::queue<NodeId> frontier;

  const auto placement_for = [&](NodeId v) {
    for (std::uint32_t s = 0; s < W; ++s) gains[s] = 0;
    for (const NodeId u : g.neighbors(v)) {
      if (shard_of[u] != unassigned) ++gains[shard_of[u]];
    }
    std::uint32_t best = unassigned;
    double best_score = 0.0;
    for (std::uint32_t s = 0; s < W; ++s) {
      if (sizes[s] >= cap) continue;  // hard balance cap
      const double score =
          static_cast<double>(gains[s]) -
          alpha * kGamma * std::sqrt(static_cast<double>(sizes[s]));
      if (best == unassigned || score > best_score) {
        best = s;
        best_score = score;
      }
    }
    // Some shard is always below cap: sum(cap) >= W * ceil(n/W) >= n and
    // fewer than n nodes are placed when we get here.
    return best;
  };

  const auto place = [&](NodeId v) {
    const std::uint32_t s = placement_for(v);
    shard_of[v] = s;
    ++sizes[s];
    frontier.push(v);
  };

  for (NodeId seed = 0; seed < n; ++seed) {
    if (shard_of[seed] != unassigned) continue;
    place(seed);  // lowest unvisited id seeds the next component
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const NodeId u : g.neighbors(v)) {
        if (shard_of[u] == unassigned) place(u);
      }
    }
  }

  // The balance penalty makes an empty shard very attractive long before
  // any shard hits its cap, so shards are only left empty on degenerate
  // inputs (W close to n). Repair deterministically: move the highest-id
  // node of the largest shard into the empty one.
  for (std::uint32_t s = 0; s < W; ++s) {
    if (sizes[s] != 0) continue;
    std::uint32_t donor = 0;
    for (std::uint32_t t = 1; t < W; ++t) {
      if (sizes[t] > sizes[donor]) donor = t;
    }
    for (NodeId v = n; v-- > 0;) {
      if (shard_of[v] == donor) {
        shard_of[v] = s;
        --sizes[donor];
        ++sizes[s];
        break;
      }
    }
  }
  return shard_of;
}

ShardAssignment make_assignment(const graph::Graph& g, std::uint32_t shards,
                                const Partitioner& p) {
  require(shards >= 1, "shard: need at least one shard");
  require(shards <= g.n(),
          "shard: more shards than nodes (every worker must own a node)");
  ShardAssignment a;
  a.shards = shards;
  a.shard_of = p.assign(g, shards);
  require(a.shard_of.size() == g.n(),
          "shard: partitioner returned the wrong number of owners");
  a.runs.assign(shards, {});
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::uint32_t s = a.shard_of[v];
    require(s < shards, "shard: partitioner assigned an out-of-range shard");
    auto& r = a.runs[s];
    if (!r.empty() && r.back().second == v) {
      r.back().second = v + 1;  // extend the current run
    } else {
      r.emplace_back(v, v + 1);
    }
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    require(!a.runs[s].empty(),
            "shard: partitioner left shard " + std::to_string(s) + " empty");
  }
  return a;
}

std::vector<std::pair<NodeId, NodeId>> boundary_arcs(const graph::Graph& g,
                                                     const ShardAssignment& a,
                                                     std::uint32_t s) {
  require(s < a.shards, "boundary_arcs: shard out of range");
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (const auto& [b, e] : a.runs[s]) {
    for (NodeId u = b; u < e; ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (a.shard_of[v] != s) arcs.emplace_back(u, v);
      }
    }
  }
  return arcs;
}

}  // namespace qc::congest::shard
