#include "congest/shard/partition.hpp"

#include "util/error.hpp"

namespace qc::congest::shard {

std::vector<std::uint32_t> ContiguousPartitioner::assign(
    const graph::Graph& g, std::uint32_t shards) const {
  const std::uint32_t n = g.n();
  std::vector<std::uint32_t> shard_of(n);
  const std::uint32_t base = n / shards;
  const std::uint32_t extra = n % shards;
  std::uint32_t v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t size = base + (s < extra ? 1 : 0);
    for (std::uint32_t i = 0; i < size; ++i) shard_of[v++] = s;
  }
  return shard_of;
}

ShardAssignment make_assignment(const graph::Graph& g, std::uint32_t shards,
                                const Partitioner& p) {
  require(shards >= 1, "shard: need at least one shard");
  require(shards <= g.n(),
          "shard: more shards than nodes (every worker must own a node)");
  ShardAssignment a;
  a.shards = shards;
  a.shard_of = p.assign(g, shards);
  require(a.shard_of.size() == g.n(),
          "shard: partitioner returned the wrong number of owners");
  a.runs.assign(shards, {});
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::uint32_t s = a.shard_of[v];
    require(s < shards, "shard: partitioner assigned an out-of-range shard");
    auto& r = a.runs[s];
    if (!r.empty() && r.back().second == v) {
      r.back().second = v + 1;  // extend the current run
    } else {
      r.emplace_back(v, v + 1);
    }
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    require(!a.runs[s].empty(),
            "shard: partitioner left shard " + std::to_string(s) + " empty");
  }
  return a;
}

std::vector<std::pair<NodeId, NodeId>> boundary_arcs(const graph::Graph& g,
                                                     const ShardAssignment& a,
                                                     std::uint32_t s) {
  require(s < a.shards, "boundary_arcs: shard out of range");
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (const auto& [b, e] : a.runs[s]) {
    for (NodeId u = b; u < e; ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (a.shard_of[v] != s) arcs.emplace_back(u, v);
      }
    }
  }
  return arcs;
}

}  // namespace qc::congest::shard
