#pragma once

// Shared-memory transport for the multi-process CONGEST backend.
//
// PR 9's data plane moved every round's boundary payload through the
// coordinator's socketpairs: each message was encoded worker-side, copied
// through the kernel, decoded, routed and re-encoded by the coordinator,
// copied through the kernel again and decoded once more by its receiving
// worker — with fresh codec buffers allocated at every hop. On the
// flooding workload that put the coordinator's CPU and the allocator on
// the critical path of every round and capped sharded throughput at a
// fraction of the sequential engine (see BENCH_shard.json history and
// docs/performance.md).
//
// This module replaces that data plane with memory the processes already
// share. Everything is carved out of ONE anonymous `mmap(MAP_SHARED)`
// arena created by the coordinator *before* fork, so every worker inherits
// the same physical pages at the same address and no name, unlink or
// permission handling exists at all:
//
//  * `ShmChannel` — a single-slot coordinator<->worker mailbox with a
//    futex doorbell. One channel per direction per worker. The protocol is
//    strict ping-pong (the round barrier admits exactly one outstanding
//    frame per direction), so a single slot is a ring of capacity one and
//    `publish` never waits. A publication is either a codec frame placed
//    in the slot (`kFrame`) or a hint that a frame was written to the
//    control socket instead (`kSocket`) — the socket remains the
//    lifecycle/control/spill path, and the hint keeps the consumer
//    blocking on one futex word only.
//  * `MeshRing` — a double-buffered worker->worker segment carrying one
//    round's boundary batch for one directed shard pair. Workers exchange
//    boundary messages directly; the coordinator never touches the bytes.
//    Double buffering is what makes that safe without extra sync: round r
//    consumers read slot r&1 while round r+1 producers fill slot (r+1)&1,
//    and the coordinator's round barrier (all round_ends of r precede any
//    round_begin of r+1) keeps any slot's writer a full round behind its
//    reader. A slot is stamped with the round its contents feed; a
//    consumer finding any other stamp (a stale slot, a torn writer, a
//    crafted segment) rejects it as a protocol error, exactly like a
//    malformed socket frame.
//  * `CompletionCounter` — one shared futex word the coordinator sleeps
//    on while waiting for "any worker finished": every worker publication
//    bumps it, so the barrier services workers in completion order
//    instead of file-descriptor order (a slow worker 0 no longer
//    serializes the harvest of workers 1..W-1).
//
// Segment contents are untrusted input: every frame read out of shared
// memory goes through the same codec validation as a socket frame
// (tests/test_shard.cpp drives truncated, overlong and stale-round
// segment contents through these classes directly).
//
// All blocking uses FUTEX_WAIT with a bounded timeout and re-checks
// liveness on expiry, so a dead peer degrades into a clean error, never a
// hang. On non-Linux hosts the futex calls degrade to a short-sleep poll
// loop with identical semantics.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace qc::congest::shard {

struct ShardAssignment;  // partition.hpp

/// What a channel publication announces.
enum class ShmSignal : std::uint32_t {
  kNone = 0,    ///< nothing published (poll/wait found the channel idle)
  kFrame = 1,   ///< a codec frame is in the channel's slot
  kSocket = 2,  ///< a codec frame was written to the control socket
};

/// Anonymous MAP_SHARED arena; created pre-fork, inherited by every worker.
/// Move-only; unmapped on destruction (each process unmaps its own view —
/// the pages live until the last mapping goes).
class ShmArena {
 public:
  ShmArena() = default;
  explicit ShmArena(std::size_t bytes);
  ~ShmArena();

  ShmArena(ShmArena&& other) noexcept;
  ShmArena& operator=(ShmArena&& other) noexcept;
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  std::uint8_t* base() const { return base_; }
  std::size_t size() const { return size_; }
  explicit operator bool() const { return base_ != nullptr; }

 private:
  std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Shared futex word the coordinator waits on for "any worker published".
/// Monotonic; the waiter only ever compares against its last-seen value.
class CompletionCounter {
 public:
  static constexpr std::size_t kBytes = 64;  // one exclusive cache line

  CompletionCounter() = default;
  explicit CompletionCounter(std::uint8_t* mem);

  void bump();  ///< producer: increment and wake any waiter
  std::uint32_t load() const;
  /// Sleeps until the counter moves past `last_seen` or `timeout_ms`
  /// expires; returns the current value either way.
  std::uint32_t wait_past(std::uint32_t last_seen, int timeout_ms) const;

 private:
  std::atomic<std::uint32_t>* word_ = nullptr;
};

/// Single-slot SPSC mailbox with a futex doorbell. See file comment.
class ShmChannel {
 public:
  static constexpr std::size_t kHeaderBytes = 64;
  static std::size_t bytes_needed(std::size_t capacity);

  ShmChannel() = default;
  /// Wraps a header+payload region inside the arena. Both sides construct
  /// their own (trivially cheap) view over the same memory; the zero-
  /// initialized mmap page IS the valid empty state, so there is no
  /// explicit create/attach distinction. `agg`, when non-null, is bumped
  /// on every publication (the worker->coordinator channels aggregate
  /// into the barrier's CompletionCounter).
  ShmChannel(std::uint8_t* mem, std::size_t capacity,
             CompletionCounter* agg = nullptr);

  std::size_t capacity() const { return capacity_; }
  bool valid() const { return hdr_ != nullptr; }

  // -- producer side -------------------------------------------------------
  /// True when the previous publication was released by the consumer; the
  /// ping-pong protocol guarantees it at every legitimate publish point.
  bool idle() const;
  /// The slot to encode the next frame into. Contents are undefined until
  /// publish_frame; writing while !idle() is a caller bug.
  std::span<std::uint8_t> buffer();
  /// Publishes `len` bytes of the slot as a frame. Requires idle().
  void publish_frame(std::size_t len);
  /// Publishes a "check the socket" hint. Requires idle().
  void publish_signal(ShmSignal kind);
  /// Best-effort publish for teardown paths: false when the channel is
  /// busy (e.g. the peer died without releasing). Never blocks or throws.
  bool try_publish_signal(ShmSignal kind);

  // -- consumer side -------------------------------------------------------
  /// Non-blocking: the pending publication's kind, or kNone.
  ShmSignal poll() const;
  /// Blocks (short spin, then futex) until a publication arrives or
  /// `timeout_ms` expires; returns kNone on timeout.
  ShmSignal wait(int timeout_ms) const;
  /// The published frame's bytes. Only valid after poll()/wait() returned
  /// kFrame and before release(). Throws serve::ProtocolError if the
  /// published length exceeds the segment capacity (a torn or hostile
  /// writer), like any other malformed frame.
  std::span<const std::uint8_t> frame() const;
  /// Marks the publication consumed, making the channel idle() again.
  void release();

 private:
  struct Header {
    std::atomic<std::uint32_t> doorbell;  // publications; futex word
    std::atomic<std::uint32_t> consumed;  // releases
    std::uint32_t len;
    std::uint32_t kind;
  };
  static_assert(sizeof(Header) <= kHeaderBytes);

  Header* hdr_ = nullptr;
  std::uint8_t* payload_ = nullptr;
  std::size_t capacity_ = 0;
  CompletionCounter* agg_ = nullptr;
};

/// Double-buffered worker->worker boundary segment for one directed shard
/// pair. Producer stamps slot r&1 with round r; consumer of round r
/// requires exactly that stamp. See file comment for why two slots make
/// the overwrite race-free under the round barrier.
class MeshRing {
 public:
  static constexpr std::size_t kSlotHeaderBytes = 64;
  static std::size_t bytes_needed(std::size_t capacity);

  MeshRing() = default;
  MeshRing(std::uint8_t* mem, std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  bool valid() const { return base_ != nullptr; }

  /// Producer: the payload area of the slot that will carry round `round`.
  std::span<std::uint8_t> produce_buffer(std::uint32_t round);
  /// Publishes `len` bytes of that slot, stamped `round`.
  void publish(std::uint32_t round, std::size_t len);

  /// Consumer: the bytes published for `round`. Throws
  /// serve::ProtocolError when the slot's stamp is not exactly `round`
  /// (stale contents / writer skew) or its length exceeds the capacity.
  std::span<const std::uint8_t> consume(std::uint32_t round) const;

 private:
  struct SlotHeader {
    std::atomic<std::uint32_t> round;
    std::uint32_t len;
  };
  static_assert(sizeof(SlotHeader) <= kSlotHeaderBytes);

  SlotHeader* slot_hdr(std::uint32_t i) const;
  std::uint8_t* slot_payload(std::uint32_t i) const;

  std::uint8_t* base_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Where every channel and mesh ring lives inside the arena, plus the
/// capacities they were sized with. Computed once by the coordinator
/// before fork (workers inherit the result), purely from the graph and
/// the assignment, so both sides agree by construction.
struct ShmLayout {
  struct Seg {
    std::size_t off = 0;
    std::size_t cap = 0;  ///< payload capacity; 0 = segment absent
  };
  std::size_t total_bytes = 0;
  std::size_t completion_off = 0;
  std::vector<Seg> c2w;   ///< per worker: coordinator -> worker channel
  std::vector<Seg> w2c;   ///< per worker: worker -> coordinator channel
  /// mesh[s * shards + t]: boundary segment for arcs owner(u)=s ->
  /// owner(v)=t; cap 0 when the pair has no boundary arcs (no ring).
  std::vector<Seg> mesh;
  std::uint32_t shards = 0;

  const Seg& mesh_seg(std::uint32_t s, std::uint32_t t) const {
    return mesh[static_cast<std::size_t>(s) * shards + t];
  }
};

/// Worst-case encoded bytes budgeted per boundary arc when sizing mesh
/// rings: slot id + field count + Message::kInlineFields full fields. A
/// message that spills past the inline capacity may exceed the budget;
/// the transport then falls back to the coordinator-routed socket path
/// for that round (correct, just slower), so the rings stay small while
/// covering every protocol in this repo.
inline constexpr std::size_t kMeshBytesPerArc = 4 + 4 + 7 * 9;
/// Fixed per-mesh-frame overhead (round + count) plus slack.
inline constexpr std::size_t kMeshFrameOverhead = 16;
/// Control-channel slot size: round_begin/round_end skeletons plus spill
/// headroom. Frames that outgrow it take the socket path.
inline constexpr std::size_t kControlChannelBytes = 4096;
/// Extra w2c capacity budgeted per owned inbound arc when the observer
/// stream is collected (events ride the worker->coordinator channel).
inline constexpr std::size_t kEventBytesPerArc = 8 + 4 + 7 * 9;

ShmLayout plan_layout(const graph::Graph& g, const ShardAssignment& asn,
                      bool collect_events);

}  // namespace qc::congest::shard
