#include "congest/shard/worker.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <vector>

#include "congest/shard/codec.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace qc::congest::shard {

namespace {

/// Placeholder for nodes this worker does not own: a correctly driven
/// worker never runs deliver/compute over foreign ranges, so on_round is
/// unreachable; the placeholder only keeps the replica's program table
/// fully populated (init_programs requires it) at zero state.
class InertProgram final : public NodeProgram {
 public:
  void on_round(NodeContext&) override {
    throw InternalError("shard worker: a foreign node's program ran");
  }
};

/// Moves every queued outbound boundary message out of the replica, in
/// extraction order (sender ascending, port ascending — the order
/// `out_slots` was built in).
std::vector<BoundaryMsg> extract_boundary(
    Network& net, const std::vector<std::uint32_t>& out_slots) {
  std::vector<BoundaryMsg> out;
  for (const std::uint32_t slot : out_slots) {
    if (!net.shard_slot_pending(slot)) continue;
    out.push_back(BoundaryMsg{slot, net.shard_extract_slot(slot)});
  }
  return out;
}

}  // namespace

int run_worker(
    int fd, const graph::Graph& g, const NetworkConfig& net_cfg,
    const ShardAssignment& asn, std::uint32_t shard, bool collect_events,
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) noexcept {
  try {
    NetworkConfig wcfg = net_cfg;
    // The coordinator owns the round loop; each worker's slice is driven
    // range-by-range, so the replica's own engine choice is irrelevant.
    wcfg.engine = Engine::kSequential;
    // The user observer lives coordinator-side; shard_set_observer_collection
    // below rebuilds worker-side observation from scratch.
    wcfg.observer = nullptr;
    Network net(g, wcfg);
    net.shard_set_observer_collection(collect_events);
    net.init_programs([&](NodeId v) -> std::unique_ptr<NodeProgram> {
      if (asn.shard_of[v] == shard) return make(v);
      return std::make_unique<InertProgram>();
    });

    // Outbound boundary slots (owned sender -> foreign receiver) in
    // extraction order, and the set of slots the coordinator may inject
    // into (foreign sender -> owned receiver). Anything outside that set
    // in a round-begin frame is a protocol violation.
    std::vector<std::uint32_t> out_slots;
    std::vector<std::uint8_t> inbound_ok(net.shard_slot_count(), 0);
    for (const auto& [b, e] : asn.runs[shard]) {
      for (NodeId u = b; u < e; ++u) {
        const auto nb = g.neighbors(u);
        const std::uint32_t base = net.shard_out_base(u);
        for (std::uint32_t p = 0; p < nb.size(); ++p) {
          if (asn.shard_of[nb[p]] != shard) out_slots.push_back(base + p);
        }
        for (const NodeId v : nb) {
          if (asn.shard_of[v] == shard) continue;
          // The foreign sender v queues for u in slot out_base(v) + port,
          // where port is u's position in v's sorted neighbor list.
          const auto vnb = g.neighbors(v);
          const auto it = std::lower_bound(vnb.begin(), vnb.end(), u);
          inbound_ok[net.shard_out_base(v) +
                     static_cast<std::uint32_t>(it - vnb.begin())] = 1;
        }
      }
    }

    std::vector<std::uint8_t> payload;
    std::vector<Network::PendingDelivery> sink;
    for (;;) {
      if (!serve::read_frame(fd, payload, kMaxShardFrameBytes)) {
        return 0;  // coordinator closed its end: clean teardown
      }
      const ShardOp op = decode_op(payload);
      switch (op) {
        case ShardOp::kStart: {
          decode_empty(payload, ShardOp::kStart);
          for (const auto& [b, e] : asn.runs[shard]) {
            net.shard_start_range(b, e);
          }
          StartDoneFrame f;
          f.inflight = net.shard_inflight();
          f.halted = net.shard_halted();
          f.boundary = extract_boundary(net, out_slots);
          serve::write_frame(fd, encode_start_done(f), kMaxShardFrameBytes);
          break;
        }
        case ShardOp::kRoundBegin: {
          RoundBeginFrame rb = decode_round_begin(payload);
          if (rb.round != net.shard_round() + 1) {
            throw serve::ProtocolError(
                "shard worker: coordinator round out of sequence");
          }
          for (auto& bm : rb.boundary) {
            if (bm.slot >= inbound_ok.size() || !inbound_ok[bm.slot]) {
              throw serve::ProtocolError(
                  "shard worker: injected slot is not an inbound boundary "
                  "slot of this shard");
            }
            net.shard_inject_slot(bm.slot, std::move(bm.msg));
          }
          net.shard_set_memory_audit(rb.memory_audit);
          net.shard_begin_round();
          RoundEndFrame re;
          re.round = rb.round;
          sink.clear();
          for (const auto& [b, e] : asn.runs[shard]) {
            net.shard_deliver_range(b, e, re.stats,
                                    collect_events ? &sink : nullptr);
          }
          for (const auto& [b, e] : asn.runs[shard]) {
            net.shard_compute_range(b, e);
          }
          if (rb.memory_audit) {
            for (const auto& [b, e] : asn.runs[shard]) {
              re.stats.max_node_memory_bits =
                  std::max(re.stats.max_node_memory_bits,
                           net.shard_memory_max_range(b, e));
            }
          }
          re.inflight = net.shard_inflight();
          re.halted = net.shard_halted();
          re.boundary = extract_boundary(net, out_slots);
          if (collect_events) {
            re.events.reserve(sink.size());
            for (const auto& d : sink) {
              re.events.push_back(
                  DeliveryEvent{d.from, d.to, net.shard_inbox_message(d)});
            }
          }
          serve::write_frame(fd, encode_round_end(re), kMaxShardFrameBytes);
          break;
        }
        case ShardOp::kHarvest: {
          decode_empty(payload, ShardOp::kHarvest);
          HarvestDoneFrame f;
          for (const auto& [b, e] : asn.runs[shard]) {
            for (NodeId v = b; v < e; ++v) {
              Message m;
              net.program(v).serialize_state(m);
              f.states.push_back(std::move(m));
            }
          }
          serve::write_frame(fd, encode_harvest_done(f), kMaxShardFrameBytes);
          break;
        }
        case ShardOp::kShutdown: {
          decode_empty(payload, ShardOp::kShutdown);
          return 0;
        }
        default:
          throw serve::ProtocolError(
              std::string("shard worker: unexpected op ") +
              shard_op_name(op));
      }
    }
  } catch (const std::exception& e) {
    // Best effort: tell the coordinator why before dying. If the pipe is
    // already gone the nonzero exit code still reaches waitpid.
    try {
      serve::write_frame(fd, encode_error(e.what()), kMaxShardFrameBytes);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    return 1;
  }
}

}  // namespace qc::congest::shard
