#include "congest/shard/worker.hpp"

#include <poll.h>

#include <algorithm>
#include <exception>
#include <string>
#include <vector>

#include "congest/shard/codec.hpp"
#include "serve/protocol.hpp"
#include "util/alloc_probe.hpp"
#include "util/error.hpp"

namespace qc::congest::shard {

namespace {

constexpr int kWaitSliceMs = 100;

/// Placeholder for nodes this worker does not own: a correctly driven
/// worker never runs deliver/compute over foreign ranges, so on_round is
/// unreachable; the placeholder only keeps the replica's program table
/// fully populated (init_programs requires it) at zero state.
class InertProgram final : public NodeProgram {
 public:
  void on_round(NodeContext&) override {
    throw InternalError("shard worker: a foreign node's program ran");
  }
};

/// One worker process's whole state: the Network replica, its view of the
/// shared transport, and the reusable frame/scratch storage that keeps the
/// steady-state round loop off the heap.
class WorkerState {
 public:
  WorkerState(const WorkerLink& link, const graph::Graph& g,
              const NetworkConfig& net_cfg, const ShardAssignment& asn,
              const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make)
      : link_(link), asn_(asn), net_(g, worker_cfg(net_cfg)) {
    net_.shard_set_observer_collection(link_.collect_events);
    net_.init_programs([&](NodeId v) -> std::unique_ptr<NodeProgram> {
      if (asn.shard_of[v] == link_.shard) return make(v);
      return std::make_unique<InertProgram>();
    });

    const ShmLayout& l = *link_.layout;
    completion_ = CompletionCounter(link_.shm + l.completion_off);
    c2w_ = ShmChannel(link_.shm + l.c2w[link_.shard].off,
                      l.c2w[link_.shard].cap);
    w2c_ = ShmChannel(link_.shm + l.w2c[link_.shard].off,
                      l.w2c[link_.shard].cap, &completion_);
    mesh_out_.resize(l.shards);
    mesh_in_.resize(l.shards);
    for (std::uint32_t t = 0; t < l.shards; ++t) {
      const auto& out = l.mesh_seg(link_.shard, t);
      if (out.cap != 0) {
        mesh_out_[t] = MeshRing(link_.shm + out.off, out.cap);
        out_peers_.push_back(t);
      }
      const auto& in = l.mesh_seg(t, link_.shard);
      if (in.cap != 0) {
        mesh_in_[t] = MeshRing(link_.shm + in.off, in.cap);
        in_peers_.push_back(t);
      }
    }

    // Outbound boundary slots (owned sender -> foreign receiver) grouped
    // by the receiver's shard — the mesh segment they ship through — and
    // the set of slots boundary traffic may inject into (foreign sender ->
    // owned receiver). Anything outside that set arriving over any
    // transport is a protocol violation.
    out_slots_.resize(l.shards);
    inbound_ok_.assign(net_.shard_slot_count(), 0);
    for (const auto& [b, e] : asn.runs[link_.shard]) {
      for (NodeId u = b; u < e; ++u) {
        const auto nb = g.neighbors(u);
        const std::uint32_t base = net_.shard_out_base(u);
        for (std::uint32_t p = 0; p < nb.size(); ++p) {
          const std::uint32_t t = asn.shard_of[nb[p]];
          if (t != link_.shard) out_slots_[t].push_back(base + p);
        }
        for (const NodeId v : nb) {
          if (asn.shard_of[v] == link_.shard) continue;
          // The foreign sender v queues for u in slot out_base(v) + port,
          // where port is u's position in v's sorted neighbor list.
          const auto vnb = g.neighbors(v);
          const auto it = std::lower_bound(vnb.begin(), vnb.end(), u);
          inbound_ok_[net_.shard_out_base(v) +
                      static_cast<std::uint32_t>(it - vnb.begin())] = 1;
        }
      }
    }
  }

  /// Frame service loop; returns the worker's exit code.
  int serve() {
    for (;;) {
      ShmSignal sig = c2w_.wait(kWaitSliceMs);
      bool hinted = true;
      if (sig == ShmSignal::kNone) {
        if (!socket_ready()) continue;
        // The hint is published before the socket write, so visible
        // socket bytes normally mean a visible hint; re-check, and treat
        // a hintless frame (the teardown fallback when the channel was
        // busy) as a plain socket frame.
        sig = c2w_.poll();
        if (sig == ShmSignal::kNone) {
          hinted = false;
          sig = ShmSignal::kSocket;
        }
      }
      std::span<const std::uint8_t> payload;
      if (sig == ShmSignal::kFrame) {
        payload = c2w_.frame();
      } else {
        if (!serve::read_frame(link_.fd, rx_, kMaxShardFrameBytes)) {
          return 0;  // coordinator closed its end: clean teardown
        }
        payload = rx_;
      }
      // Each handler finishes copying out of `payload` before release()
      // makes the channel reusable — the coordinator may publish the next
      // control frame the moment it has this round's replies.
      const ShardOp op = decode_op(payload);
      switch (op) {
        case ShardOp::kStart:
          decode_empty(payload, ShardOp::kStart);
          if (hinted) c2w_.release();
          handle_start();
          break;
        case ShardOp::kRoundBegin:
          decode_round_begin_into(payload, rb_);
          if (hinted) c2w_.release();
          handle_round();
          break;
        case ShardOp::kHarvest:
          decode_empty(payload, ShardOp::kHarvest);
          if (hinted) c2w_.release();
          handle_harvest();
          break;
        case ShardOp::kShutdown:
          decode_empty(payload, ShardOp::kShutdown);
          if (hinted) c2w_.release();
          return 0;
        default:
          throw serve::ProtocolError(
              std::string("shard worker: unexpected op ") +
              shard_op_name(op));
      }
    }
  }

  /// Best-effort error report: the frame goes over the socket (always
  /// writable regardless of channel state) and the doorbell layer is
  /// poked so a coordinator sleeping on the barrier wakes up to find it.
  void report_error(const char* what) {
    try {
      serve::write_frame(link_.fd, encode_error(what), kMaxShardFrameBytes);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    if (w2c_.valid() && !w2c_.try_publish_signal(ShmSignal::kSocket)) {
      completion_.bump();  // busy channel: wake the waiter anyway
    }
  }

 private:
  static NetworkConfig worker_cfg(NetworkConfig cfg) {
    // The coordinator owns the round loop; each worker's slice is driven
    // range-by-range, so the replica's own engine choice is irrelevant.
    cfg.engine = Engine::kSequential;
    // The user observer lives coordinator-side; shard_set_observer_collection
    // rebuilds worker-side observation from scratch.
    cfg.observer = nullptr;
    return cfg;
  }

  bool socket_ready() const {
    pollfd p{};
    p.fd = link_.fd;
    p.events = POLLIN;
    return ::poll(&p, 1, 0) > 0 &&
           (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }

  /// Ships a reply frame: through the w2c ring when it fits, else hinted
  /// over the socket. The ping-pong protocol guarantees the ring is idle
  /// at every legitimate reply point.
  void send_reply(std::span<const std::uint8_t> payload) {
    if (payload.size() <= w2c_.capacity()) {
      auto buf = w2c_.buffer();
      std::copy(payload.begin(), payload.end(), buf.begin());
      w2c_.publish_frame(payload.size());
      return;
    }
    slow_path_ = true;
    w2c_.publish_signal(ShmSignal::kSocket);  // before the write: see wait()
    serve::write_frame(link_.fd, payload, kMaxShardFrameBytes, tx_scratch_);
  }

  /// Moves this round's queued outbound boundary messages into the mesh
  /// segments, stamped for the round that will consume them. A batch that
  /// does not fit its segment is published empty and its messages spill to
  /// `spill` for the coordinator-routed path instead. Every existing
  /// segment gets exactly one publication per round — consumers validate
  /// the stamp, so a skipped publication would (correctly) kill the run.
  void ship_boundary(std::uint32_t consume_round,
                     std::vector<BoundaryMsg>& spill) {
    boundary_bytes_ = 0;
    boundary_msgs_ = 0;
    for (const std::uint32_t t : out_peers_) {
      MeshRing& ring = mesh_out_[t];
      MeshWriter w(ring.produce_buffer(consume_round), consume_round);
      bool fits = true;
      for (const std::uint32_t slot : out_slots_[t]) {
        if (!net_.shard_slot_pending(slot)) continue;
        if (!w.add(slot, net_.shard_slot_message(slot))) {
          fits = false;
          break;
        }
      }
      std::size_t len = 0;
      if (fits && w.finish(len)) {
        for (const std::uint32_t slot : out_slots_[t]) {
          if (net_.shard_slot_pending(slot)) net_.shard_clear_slot(slot);
        }
        boundary_bytes_ += len;
        boundary_msgs_ += w.count();
        ring.publish(consume_round, len);
        continue;
      }
      // Overflow (a spilled many-field message blew the per-arc budget):
      // publish the mandatory empty batch and reroute via the coordinator.
      slow_path_ = true;
      MeshWriter empty(ring.produce_buffer(consume_round), consume_round);
      require(empty.finish(len), "shard worker: mesh segment too small for "
                                 "an empty batch");
      ring.publish(consume_round, len);
      for (const std::uint32_t slot : out_slots_[t]) {
        if (!net_.shard_slot_pending(slot)) continue;
        spill.push_back(BoundaryMsg{slot, net_.shard_extract_slot(slot)});
        boundary_bytes_ += 8 + 9 * spill.back().msg.num_fields();
        ++boundary_msgs_;
      }
    }
  }

  /// Injects one mesh batch worth of inbound boundary traffic, validating
  /// every entry against the inbound slot set.
  void drain_mesh(std::uint32_t round) {
    for (const std::uint32_t s : in_peers_) {
      MeshReader r(mesh_in_[s].consume(round), round);
      std::uint32_t slot = 0;
      while (r.next(slot, scratch_msg_)) {
        check_inbound(slot);
        net_.shard_inject_slot(slot, scratch_msg_);
      }
    }
  }

  void check_inbound(std::uint32_t slot) const {
    if (slot >= inbound_ok_.size() || !inbound_ok_[slot]) {
      throw serve::ProtocolError(
          "shard worker: injected slot is not an inbound boundary slot of "
          "this shard");
    }
  }

  void handle_start() {
    for (const auto& [b, e] : asn_.runs[link_.shard]) {
      net_.shard_start_range(b, e);
    }
    StartDoneFrame f;
    ship_boundary(/*consume_round=*/1, f.boundary);
    start_boundary_bytes_ = boundary_bytes_;
    start_boundary_msgs_ = boundary_msgs_;
    f.inflight = net_.shard_inflight();
    f.halted = net_.shard_halted();
    send_reply(encode_start_done(f));
  }

  void handle_round() {
    slow_path_ = false;
    if (rb_.round != net_.shard_round() + 1) {
      throw serve::ProtocolError(
          "shard worker: coordinator round out of sequence");
    }
    // Spilled boundary messages routed through the coordinator land in the
    // same replica slots the mesh path fills — delivery below cannot tell
    // the transports apart, which is why parity is transport-independent.
    for (auto& bm : rb_.boundary) {
      check_inbound(bm.slot);
      net_.shard_inject_slot(bm.slot, std::move(bm.msg));
      slow_path_ = true;
    }
    drain_mesh(rb_.round);
    net_.shard_set_memory_audit(rb_.memory_audit);
    net_.shard_begin_round();
    re_.round = rb_.round;
    re_.stats = RunStats{};
    sink_.clear();
    for (const auto& [b, e] : asn_.runs[link_.shard]) {
      net_.shard_deliver_range(b, e, re_.stats,
                               link_.collect_events ? &sink_ : nullptr);
    }
    for (const auto& [b, e] : asn_.runs[link_.shard]) {
      net_.shard_compute_range(b, e);
    }
    if (rb_.memory_audit) {
      for (const auto& [b, e] : asn_.runs[link_.shard]) {
        re_.stats.max_node_memory_bits =
            std::max(re_.stats.max_node_memory_bits,
                     net_.shard_memory_max_range(b, e));
      }
    }
    re_.boundary.clear();
    ship_boundary(/*consume_round=*/rb_.round + 1, re_.boundary);
    re_.inflight = net_.shard_inflight();
    re_.halted = net_.shard_halted();
    re_.boundary_bytes = boundary_bytes_ + start_boundary_bytes_;
    re_.boundary_msgs = boundary_msgs_ + start_boundary_msgs_;
    start_boundary_bytes_ = start_boundary_msgs_ = 0;
    re_.events.clear();
    if (link_.collect_events) {
      re_.events.reserve(sink_.size());
      for (const auto& d : sink_) {
        re_.events.push_back(
            DeliveryEvent{d.from, d.to, net_.shard_inbox_message(d)});
      }
    }
    std::size_t len = 0;
    if (encode_round_end_to(w2c_.buffer(), re_, len)) {
      w2c_.publish_frame(len);
    } else {
      send_reply(encode_round_end(re_));
    }
    verify_steady_state_allocs();
  }

  void handle_harvest() {
    HarvestDoneFrame f;
    for (const auto& [b, e] : asn_.runs[link_.shard]) {
      for (NodeId v = b; v < e; ++v) {
        Message m;
        net_.program(v).serialize_state(m);
        f.states.push_back(std::move(m));
      }
    }
    send_reply(encode_harvest_done(f));
  }

  /// The PR 5 alloc_probe discipline applied to the whole worker round:
  /// once past the arm round, a round that stayed on the fast path (ring
  /// transport, no spill) must not have allocated at all. Slow-path rounds
  /// re-arm — they are allowed to touch the heap, that is what makes them
  /// the slow path.
  void verify_steady_state_allocs() {
    const std::uint32_t arm = link_.verify_zero_alloc_from_round;
    if (arm == 0 || rb_.round < arm) return;
    const std::uint64_t now = qc::alloc_probe_count();
    if (alloc_armed_ && !slow_path_ && now != alloc_mark_) {
      throw Error("shard worker: steady-state round " +
                  std::to_string(rb_.round) + " performed " +
                  std::to_string(now - alloc_mark_) +
                  " heap allocation(s); the round loop must be "
                  "allocation-free");
    }
    alloc_mark_ = now;
    alloc_armed_ = true;
  }

  WorkerLink link_;
  const ShardAssignment& asn_;
  Network net_;

  CompletionCounter completion_;
  ShmChannel c2w_;
  ShmChannel w2c_;
  std::vector<MeshRing> mesh_out_;
  std::vector<MeshRing> mesh_in_;
  std::vector<std::uint32_t> out_peers_;
  std::vector<std::uint32_t> in_peers_;
  std::vector<std::vector<std::uint32_t>> out_slots_;
  std::vector<std::uint8_t> inbound_ok_;

  RoundBeginFrame rb_;
  RoundEndFrame re_;
  std::vector<Network::PendingDelivery> sink_;
  Message scratch_msg_;
  std::vector<std::uint8_t> rx_;
  std::vector<std::uint8_t> tx_scratch_;
  std::uint64_t boundary_bytes_ = 0;
  std::uint64_t boundary_msgs_ = 0;
  std::uint64_t start_boundary_bytes_ = 0;
  std::uint64_t start_boundary_msgs_ = 0;
  bool slow_path_ = false;
  bool alloc_armed_ = false;
  std::uint64_t alloc_mark_ = 0;
};

}  // namespace

int run_worker(
    const WorkerLink& link, const graph::Graph& g,
    const NetworkConfig& net_cfg, const ShardAssignment& asn,
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) noexcept {
  try {
    WorkerState state(link, g, net_cfg, asn, make);
    try {
      return state.serve();
    } catch (const std::exception& e) {
      state.report_error(e.what());
      return 1;
    }
  } catch (const std::exception& e) {
    // Construction failed before the transport existed; the socket is the
    // only channel there is. If it is already gone the nonzero exit code
    // still reaches waitpid.
    try {
      serve::write_frame(link.fd, encode_error(e.what()), kMaxShardFrameBytes);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    return 1;
  }
}

}  // namespace qc::congest::shard
