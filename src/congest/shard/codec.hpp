#pragma once

// Shard wire protocol — the coordinator <-> worker frames of the
// multi-process CONGEST backend.
//
// Framing reuses serve::read_frame / serve::write_frame (u32 length prefix,
// little-endian, truncation is an error) under a larger cap, and the payload
// validation follows the same adversarial discipline as src/serve/protocol:
// every count is capped and cross-checked against the remaining bytes,
// unknown version/op bytes and nonzero reserved bytes are rejected, and a
// payload with trailing bytes after its last field is malformed — so every
// strict prefix and every overlong buffer of a valid payload fails decoding.
//
// Grammar (all integers little-endian):
//
//   frame        := u32 payload_len | payload      len in [1, kMaxShardFrameBytes]
//   payload      := u8 version | u8 op | u8 x2 reserved(0) | body
//   message      := u32 num_fields | num_fields x (u8 width | u64 value)
//                   width in [1,64], value < 2^width
//   boundary     := u32 count | count x (u32 slot | message)
//   events       := u32 count | count x (u32 from | u32 to | message)
//   stats        := u32 rounds | u64 messages | u64 bits | u32 max_edge_bits
//                 | u64 violations | u8 quiesced | u64 max_node_memory_bits
//                 | u64 messages_dropped | u64 messages_corrupted
//                 | u64 crashed_node_rounds
//
//   body by op (direction):
//     start        (c->w) := (empty)                 run on_start, report
//     start_done   (w->c) := i64 inflight | i64 halted | boundary
//     round_begin  (c->w) := u32 round | u8 flags | boundary
//                            flags bit 0: memory audit armed
//     round_end    (w->c) := u32 round | i64 inflight | i64 halted
//                          | u64 boundary_bytes | u64 boundary_msgs
//                          | stats | boundary | events
//     harvest      (c->w) := (empty)                 serialize owned programs
//     harvest_done (w->c) := u32 count | count x message
//     shutdown     (c->w) := (empty)                 worker exits 0
//     error        (w->c) := u32 len | len bytes     worker failed; text
//     mesh         (w->w) := u32 round | u32 count | count x
//                            (u32 slot | message)
//
// `mesh` payloads never cross a socket: they are the contents of the
// worker-to-worker shared-memory segments (shm_ring.hpp), carrying one
// round's boundary batch for one directed shard pair. They keep the full
// version/op/reserved header and the same adversarial validation as every
// socket frame — shared memory is still untrusted input. round_end's
// boundary list is the overflow path for batches that did not fit their
// mesh segment (routed through the coordinator like PR 9 did for all of
// them); boundary_bytes/boundary_msgs report what the worker moved through
// both paths combined.
//
// `slot` is a flat outbox slot index of the (identical) Network replica
// every process holds — see Network::shard_out_base. `boundary` lists are
// in extraction order (sender ascending, port ascending); `events` are in
// delivery order (receiver ascending, port ascending). Full protocol and
// determinism contract: docs/distributed.md.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "serve/protocol.hpp"

namespace qc::congest::shard {

using graph::NodeId;

inline constexpr std::uint8_t kShardProtocolVersion = 1;

/// Hard cap on one shard frame's payload. Round frames carry one message
/// per boundary arc (or per delivered edge when observer events ship), so
/// the cap scales with the largest supported per-round cut, not with n;
/// 64 MiB covers every workload in this repo with two orders of margin.
/// A frame above the cap is a protocol error — producers must respect it.
inline constexpr std::uint32_t kMaxShardFrameBytes = 1u << 26;
/// Cap on fields in one wire message. CONGEST messages are bandwidth-
/// bounded (O(log n) bits, so a handful of fields); 4096 is absurdly
/// generous and still rejects length-bomb payloads cheaply.
inline constexpr std::uint32_t kMaxWireMessageFields = 4096;

enum class ShardOp : std::uint8_t {
  kStart = 0,
  kStartDone = 1,
  kRoundBegin = 2,
  kRoundEnd = 3,
  kHarvest = 4,
  kHarvestDone = 5,
  kShutdown = 6,
  kError = 7,
  kMesh = 8,
};
inline constexpr std::uint8_t kMaxShardOp =
    static_cast<std::uint8_t>(ShardOp::kMesh);

const char* shard_op_name(ShardOp op);

/// A boundary-edge message in transit, addressed by the flat outbox slot it
/// occupies in every replica.
struct BoundaryMsg {
  std::uint32_t slot = 0;
  Message msg;
};

/// One delivered message a worker ships for the coordinator's observer
/// flush (the round is implicit in the enclosing round_end frame).
struct DeliveryEvent {
  NodeId from = 0;
  NodeId to = 0;
  Message msg;
};

struct StartDoneFrame {
  std::int64_t inflight = 0;
  std::int64_t halted = 0;
  std::vector<BoundaryMsg> boundary;
};

struct RoundBeginFrame {
  std::uint32_t round = 0;
  bool memory_audit = false;
  std::vector<BoundaryMsg> boundary;
};

struct RoundEndFrame {
  std::uint32_t round = 0;
  std::int64_t inflight = 0;
  std::int64_t halted = 0;
  /// Boundary payload the worker moved this round over both transports
  /// (mesh segments + the spill list below), for the coordinator's
  /// shard.boundary_bytes accounting.
  std::uint64_t boundary_bytes = 0;
  std::uint64_t boundary_msgs = 0;
  RunStats stats;  ///< this worker's slice of the round (quiesced unused)
  std::vector<BoundaryMsg> boundary;  ///< mesh-overflow spill only
  std::vector<DeliveryEvent> events;
};

struct HarvestDoneFrame {
  std::vector<Message> states;  ///< owned programs, canonical node order
};

/// Peeks the op byte of a framed payload after validating the fixed
/// header (length, version, reserved bytes). Throws serve::ProtocolError —
/// the shard codec reuses the serve error type so callers handle one
/// "peer violated the protocol" exception class across both protocols.
ShardOp decode_op(std::span<const std::uint8_t> payload);

// encode_* never fails for inputs within the documented caps; decode_*
// throws serve::ProtocolError on anything malformed. The body-free ops
// (start, harvest, shutdown) share encode_empty / decode_empty.
std::vector<std::uint8_t> encode_empty(ShardOp op);
void decode_empty(std::span<const std::uint8_t> payload, ShardOp op);

std::vector<std::uint8_t> encode_start_done(const StartDoneFrame& f);
StartDoneFrame decode_start_done(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_round_begin(const RoundBeginFrame& f);
RoundBeginFrame decode_round_begin(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_round_end(const RoundEndFrame& f);
RoundEndFrame decode_round_end(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_harvest_done(const HarvestDoneFrame& f);
HarvestDoneFrame decode_harvest_done(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_error(const std::string& text);
std::string decode_error(std::span<const std::uint8_t> payload);

// ---- Allocation-free variants ---------------------------------------------
// The round loop runs every round of every phase; the vector-returning API
// above allocates per call, which PR 9 paid on both sides of the barrier.
// These variants encode into a caller-owned bounded buffer (a shm ring
// slot) and decode into caller-owned reusable frame structs, so a warmed
// steady-state round performs zero heap allocations end to end —
// bench_shard --check pins that with the alloc probe.

/// Bounded little-endian writer over a fixed buffer (a ring slot). An
/// append past the end latches overflow instead of throwing: producers
/// probe whether a frame fits and fall back to the socket path when it
/// does not, so overflow is an expected outcome, not an error.
class FrameWriter {
 public:
  explicit FrameWriter(std::span<std::uint8_t> buf) : buf_(buf) {}

  void u8(std::uint8_t x) {
    if (pos_ + 1 > buf_.size()) {
      ok_ = false;
      return;
    }
    buf_[pos_++] = x;
  }
  void u32(std::uint32_t x) {
    if (pos_ + 4 > buf_.size()) {
      ok_ = false;
      pos_ = buf_.size();
      return;
    }
    for (int i = 0; i < 4; ++i) {
      buf_[pos_++] = static_cast<std::uint8_t>(x >> (8 * i));
    }
  }
  void u64(std::uint64_t x) {
    if (pos_ + 8 > buf_.size()) {
      ok_ = false;
      pos_ = buf_.size();
      return;
    }
    for (int i = 0; i < 8; ++i) {
      buf_[pos_++] = static_cast<std::uint8_t>(x >> (8 * i));
    }
  }

  /// Offset of the next byte — remember it to patch_u32 a count later.
  std::size_t mark() const { return pos_; }
  /// Overwrites 4 bytes at `off` (must already be written).
  void patch_u32(std::size_t off, std::uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      buf_[off + i] = static_cast<std::uint8_t>(x >> (8 * i));
    }
  }

  bool ok() const { return ok_; }
  std::size_t size() const { return pos_; }

 private:
  std::span<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encode into `buf`; on success set `len` and return true. Returns false
/// when the frame does not fit — the caller re-encodes with the vector API
/// and ships it over the socket instead.
bool encode_round_begin_to(std::span<std::uint8_t> buf,
                           const RoundBeginFrame& f, std::size_t& len);
bool encode_round_end_to(std::span<std::uint8_t> buf, const RoundEndFrame& f,
                         std::size_t& len);
bool encode_empty_to(std::span<std::uint8_t> buf, ShardOp op,
                     std::size_t& len);

/// Decode into a reused frame struct: vectors are resized in place and
/// Messages rebuilt with Message::clear() + push, so a warmed frame
/// decodes without touching the heap. Same validation (and the same
/// serve::ProtocolError throws) as the returning variants, which are
/// implemented on top of these.
void decode_round_begin_into(std::span<const std::uint8_t> payload,
                             RoundBeginFrame& f);
void decode_round_end_into(std::span<const std::uint8_t> payload,
                           RoundEndFrame& f);

/// Streams one mesh batch (op kMesh) into a ring slot. add() latches
/// overflow like FrameWriter; the producer then publishes an *empty* batch
/// for the pair (consumers require a publication per ring per round) and
/// spills the messages to the coordinator path.
class MeshWriter {
 public:
  MeshWriter(std::span<std::uint8_t> buf, std::uint32_t round);

  /// Appends one (slot, message) entry; false once anything overflowed.
  bool add(std::uint32_t slot, const Message& m);
  std::uint32_t count() const { return count_; }
  /// Patches the entry count and returns the final byte size; false when
  /// the batch overflowed (the buffer contents are then unusable).
  bool finish(std::size_t& len);

 private:
  FrameWriter w_;
  std::size_t count_at_;
  std::uint32_t count_ = 0;
};

/// Validating cursor over one mesh batch. The constructor checks the
/// header and the round stamp; next() validates each entry as it is read
/// and the exact end-of-buffer after the last one — a truncated, overlong
/// or stale-round segment throws serve::ProtocolError exactly like a
/// malformed socket frame.
class MeshReader {
 public:
  MeshReader(std::span<const std::uint8_t> payload, std::uint32_t round);

  std::uint32_t count() const { return count_; }
  /// Reads the next entry into (slot, m); false when the batch is
  /// exhausted (at which point trailing bytes have been rejected).
  bool next(std::uint32_t& slot, Message& m);

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t read_ = 0;
};

}  // namespace qc::congest::shard
