#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace qc::congest::shard {

using graph::NodeId;

/// A validated node-to-worker assignment plus the derived structure the
/// runtime iterates: per shard, the maximal runs of consecutively owned
/// node ids. The contiguous default yields exactly one run per shard, so
/// worker round loops cost one range call; an arbitrary owner map (a
/// future PowerGraph-style edge-cut partitioner) still works, just with
/// more runs. Runs are ascending, which keeps every worker's delivery and
/// event order ascending in receiver id — the property the coordinator's
/// canonical observer merge relies on (see docs/distributed.md).
struct ShardAssignment {
  std::uint32_t shards = 0;
  std::vector<std::uint32_t> shard_of;  ///< node -> owning shard
  /// Per shard: maximal [begin, end) runs of owned ids, ascending.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> runs;

  std::uint32_t owner(NodeId v) const { return shard_of[v]; }

  std::uint64_t owned_count(std::uint32_t s) const {
    std::uint64_t c = 0;
    for (const auto& [b, e] : runs[s]) c += e - b;
    return c;
  }
};

/// Strategy interface: maps every node to one of `shards` workers.
/// Implementations must cover every node exactly once (enforced by
/// make_assignment) and leave no shard empty.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Returns shard_of: one owner in [0, shards) per node.
  virtual std::vector<std::uint32_t> assign(const graph::Graph& g,
                                            std::uint32_t shards) const = 0;
  virtual const char* name() const = 0;
};

/// Balanced contiguous ranges: the first n % W shards own ceil(n/W) ids,
/// the rest floor(n/W) — every shard non-empty whenever W <= n. Contiguity
/// keeps boundary arcs proportional to the cut of an interval partition
/// and gives each worker a single iteration run.
class ContiguousPartitioner final : public Partitioner {
 public:
  std::vector<std::uint32_t> assign(const graph::Graph& g,
                                    std::uint32_t shards) const override;
  const char* name() const override { return "contiguous"; }
};

/// Cut-minimizing partitioner: visits nodes in BFS order (lowest-id seed
/// per component) and places each on the shard where it has the most
/// already-placed neighbors, minus a Fennel-style balance penalty
/// alpha * gamma * size^(gamma-1) (gamma = 3/2, alpha = sqrt(W) * m /
/// n^(3/2) — Tsourakakis et al., WSDM'14), under a hard capacity cap of
/// ceil(n/W) * (1 + balance_slack). BFS order keeps the stream's
/// neighborhoods warm (a streamed node has placed neighbors to score), the
/// penalty keeps blocks from starving each other, and the cap plus a
/// deterministic repair pass guarantee make_assignment's invariants.
/// Everything tie-breaks on lowest shard id, so the partition is a pure
/// function of the graph — every replica can recompute it identically.
class GreedyGrowPartitioner final : public Partitioner {
 public:
  explicit GreedyGrowPartitioner(double balance_slack = 0.05);
  std::vector<std::uint32_t> assign(const graph::Graph& g,
                                    std::uint32_t shards) const override;
  const char* name() const override { return "greedy"; }

 private:
  double slack_;
};

/// Validates a partitioner's output (size n, every owner in range, every
/// node assigned exactly once by construction of the map, every shard
/// non-empty) and derives the per-shard runs. Requires 1 <= shards <= n.
ShardAssignment make_assignment(const graph::Graph& g, std::uint32_t shards,
                                const Partitioner& p);

/// Directed boundary arcs (u, v) with owner(u) == s and owner(v) != s, in
/// (u ascending, port ascending) order — exactly the order shard s
/// extracts outbound boundary messages in. Test/tooling helper; the
/// runtime precomputes its own slot tables.
std::vector<std::pair<NodeId, NodeId>> boundary_arcs(const graph::Graph& g,
                                                     const ShardAssignment& a,
                                                     std::uint32_t s);

}  // namespace qc::congest::shard
