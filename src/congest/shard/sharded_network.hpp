#pragma once

// Multi-process CONGEST execution: the coordinator side.
//
// ShardedNetwork mirrors congest::Network's driver-facing API
// (init_programs / run_rounds / run_until_quiescent / stats / program_as)
// but executes rounds across W worker processes. At init_programs the
// coordinator maps one shared-memory arena (shm_ring.hpp), then forks W
// workers connected by socketpairs; fork inherits the graph, the program
// factory and the arena, so every worker builds a bit-identical Network
// replica and owns one partition slice of its nodes. Each round the
// coordinator publishes every worker a round-begin frame on its shm
// channel, workers exchange boundary messages directly through the
// worker-to-worker mesh rings and run the unchanged zero-allocation
// deliver/compute hot path over their owned ranges, then publish a
// round-end frame with their stats delta, quiescence counters and (when an
// observer is installed) their delivery events. The sockets remain as the
// control/lifecycle/error path and as the spill transport for frames that
// outgrow their shm segment. The round barrier is the only synchronization
// point in the whole design: within a round workers share nothing and
// proceed independently, and the coordinator harvests round-end frames in
// completion order (one shared futex word), not file-descriptor order.
// A warmed steady-state round allocates nothing on the coordinator —
// frames encode into ring slots and decode into reused frame structs
// (bench_shard --check pins this with the alloc probe).
//
// Determinism contract (enforced by tests/test_differential.cpp and
// tests/test_shard.cpp): RunStats, fault-injection outcomes, report fields
// and the observer event stream of a sharded run are bit-identical to the
// single-process engines for every worker count. Stats merge by sum/max
// (order-independent), fault decisions are stateless hashes of
// (seed, round, from, to) (process-invariant by construction), per-node
// RNGs derive from (seed, node id) identically in every replica, and the
// coordinator k-way merges worker event batches back into the canonical
// (round, receiver ascending, port ascending) order before invoking the
// user observer. See docs/distributed.md for the full argument.
//
// Program results flow back through NodeProgram::serialize_state /
// restore_state: on first access to program(v) after a run the coordinator
// harvests every worker's owned program states and restores them into
// local replicas built by the same factory, so existing driver code reads
// outcomes exactly as it does from an in-process Network.

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "congest/network.hpp"
#include "congest/shard/codec.hpp"
#include "congest/shard/partition.hpp"
#include "congest/shard/shm_ring.hpp"

namespace qc::congest::shard {

struct ShardConfig {
  /// Worker process count W; must satisfy 1 <= W <= n. W=1 still runs the
  /// full fork/protocol path (useful as the parity baseline that exercises
  /// identical machinery).
  std::uint32_t shards = 2;
  /// The network configuration every worker replica is built with. The
  /// observer (if any) is invoked coordinator-side only, in canonical
  /// order; bandwidth/fault/seed semantics are identical to Network's.
  NetworkConfig net;
  /// Node-to-worker strategy; null means ContiguousPartitioner.
  std::shared_ptr<const Partitioner> partitioner;
  /// Optional cooperative stop: checked between rounds (e.g. from a
  /// SIGTERM handler); when it reads true the phase ends early and
  /// interrupted() reports it. The workers still shut down cleanly.
  std::atomic<bool>* stop = nullptr;
  /// When nonzero, every worker arms its allocation probe after this round
  /// and fails the run if a later steady-state (fast-path) round heap-
  /// allocates. Effective only in binaries that install the probe
  /// (QC_INSTALL_ALLOC_PROBE); see bench_shard --check.
  std::uint32_t verify_zero_alloc_from_round = 0;
};

/// Transport-level counters accumulated since init_programs, for
/// bench_shard and the shard.* metrics (docs/observability.md).
struct ShardPerfCounters {
  std::uint64_t rounds = 0;
  /// Wall time the coordinator spent inside the round barrier waiting for
  /// round-end publications.
  std::uint64_t barrier_wait_us = 0;
  /// Encoded boundary payload the workers moved (mesh rings + spill).
  std::uint64_t boundary_bytes = 0;
  std::uint64_t boundary_messages = 0;
  /// Delivery events that were never built or shipped because no observer
  /// is installed (one per delivered message in observer-less runs).
  std::uint64_t events_elided = 0;
  /// Control frames that did not fit their shm slot and fell back to the
  /// socket path (0 in steady state).
  std::uint64_t spilled_frames = 0;
};

class ShardedNetwork {
 public:
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

  ShardedNetwork(const graph::Graph& g, ShardConfig cfg = {});
  ~ShardedNetwork();

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  /// Builds coordinator-side program replicas and (re)spawns the W worker
  /// processes, each constructing its own replica network. Clears any
  /// previous run's state, exactly like Network::init_programs.
  void init_programs(const ProgramFactory& make);

  /// Runs exactly `rounds` rounds across the workers; returns this call's
  /// stats only (the same per-phase semantics as Network::run_rounds).
  RunStats run_rounds(std::uint32_t rounds);

  /// Runs until global quiescence (every node halted, no message in
  /// flight anywhere) or `max_rounds`; stats.quiesced tells which.
  RunStats run_until_quiescent(std::uint32_t max_rounds);

  const graph::Graph& topology() const { return *graph_; }
  std::uint32_t n() const { return graph_->n(); }
  std::uint32_t bandwidth_bits() const { return bandwidth_bits_; }
  const ShardAssignment& assignment() const { return asn_; }

  /// Coordinator-side replica of node v's program, lazily synchronized
  /// from the workers (one harvest round-trip per run phase, on first
  /// access). Requires the workers to be alive — read results before
  /// shutdown().
  NodeProgram& program(NodeId v);

  template <typename T>
  T& program_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&program(v));
    require(p != nullptr, "ShardedNetwork::program_as: wrong program type");
    return *p;
  }

  /// Stats accumulated since init_programs.
  const RunStats& stats() const { return stats_; }

  /// Transport counters accumulated since init_programs.
  const ShardPerfCounters& perf() const { return perf_; }

  /// True when the last phase ended because cfg.stop read true.
  bool interrupted() const { return interrupted_; }

  /// Worker pids, for process-hygiene checks in tests and tooling.
  std::vector<pid_t> worker_pids() const;

  /// Graceful teardown: sends every worker a shutdown frame, closes the
  /// sockets and reaps the processes. Throws qc::Error if any worker did
  /// not exit cleanly with status 0. Idempotent; the destructor performs
  /// the same teardown without throwing.
  void shutdown();

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    /// Latest reported quiescence counters; their sums over workers equal
    /// the single-process counters at every round boundary (extraction
    /// does not decrement, injection does not increment — see the
    /// shard hooks in congest/network.hpp).
    std::int64_t inflight = 0;
    std::int64_t halted = 0;
    /// Boundary messages routed to this worker, delivered with the next
    /// round-begin frame.
    std::vector<BoundaryMsg> pending;
  };

  /// What a barrier collection expects from every worker; selects the
  /// decode applied by dispatch().
  enum class Collect { kStartDone, kRoundEnd, kHarvestDone };

  void spawn_workers();
  /// Closes sockets and reaps every worker. `graceful` sends shutdown
  /// frames first and expects exit 0; non-graceful SIGKILLs. Returns a
  /// description of anything abnormal ("" when clean). Never throws.
  std::string teardown(bool graceful);
  void mark_broken();
  RunStats run_phase(std::uint32_t max_rounds, bool until_quiet);
  void start_if_needed();
  bool all_quiet() const;
  /// Ships `payload` to worker w: shm channel when it fits and is idle,
  /// else a kSocket hint plus a socket frame. Throws (after force-teardown)
  /// when the worker is unreachable.
  void send_frame(std::size_t w, std::span<const std::uint8_t> payload);
  /// Publishes the (reused) rb_ frame to worker w, encoding straight into
  /// the ring slot on the fast path.
  void send_round_begin(std::size_t w);
  /// Waits for one frame from every worker, servicing them in completion
  /// order, and dispatch()es each. A dead worker, a malformed frame or an
  /// error frame becomes a thrown qc::Error after force-tearing down the
  /// remaining workers — a crashed worker is a clean failure, not a hang.
  void collect_all(Collect what);
  void dispatch(std::size_t w, std::span<const std::uint8_t> payload,
                Collect what);
  /// Timeout path of collect_all: peeks every pending worker's socket to
  /// tell "slow" from "dead" and to pick up unhinted error frames.
  void check_liveness(Collect what);
  void route_boundary(std::size_t from_worker,
                      std::vector<BoundaryMsg>& boundary);
  /// Merges the per-worker event batches in re_ into canonical
  /// receiver-ascending order and invokes the user observer.
  void flush_events(std::uint32_t round);
  void sync_programs();

  const graph::Graph* graph_;
  ShardConfig cfg_;
  ShardAssignment asn_;
  std::uint32_t bandwidth_bits_ = 0;
  /// slot -> shard owning the slot's *receiver*: the routing table for
  /// boundary messages spilled through the coordinator.
  std::vector<std::uint32_t> slot_receiver_shard_;
  ProgramFactory factory_;
  std::vector<std::unique_ptr<NodeProgram>> replicas_;
  std::vector<Worker> workers_;
  RunStats stats_;
  ShardPerfCounters perf_;
  std::uint32_t round_ = 0;
  bool spawned_ = false;
  bool started_ = false;
  bool broken_ = false;
  bool needs_harvest_ = false;
  bool memory_audit_ = true;
  bool interrupted_ = false;

  // -- shared-memory transport (rebuilt by every spawn_workers) -------------
  ShmArena arena_;
  ShmLayout layout_;
  CompletionCounter completion_;
  std::uint32_t completion_seen_ = 0;
  std::vector<ShmChannel> c2w_;
  std::vector<ShmChannel> w2c_;
  // -- reused per-round state (the allocation-free barrier) -----------------
  RoundBeginFrame rb_;               ///< encode source, reused every round
  std::vector<RoundEndFrame> re_;    ///< per-worker decode targets
  std::vector<std::uint8_t> done_;   ///< collect_all scoreboard
  std::vector<std::size_t> evt_idx_; ///< flush_events merge cursors
  std::vector<std::uint8_t> rx_;     ///< socket-frame receive scratch
  std::vector<std::uint8_t> tx_;     ///< write_frame assembly scratch
};

}  // namespace qc::congest::shard
