#include "congest/shard/shm_ring.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <thread>

#if defined(__linux__)
#define QC_HAVE_FUTEX 1
#include <linux/futex.h>
#include <sys/syscall.h>
#include <ctime>
#else
#define QC_HAVE_FUTEX 0
#include <chrono>
#endif

#include "congest/shard/partition.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace qc::congest::shard {

namespace {

using serve::ProtocolError;

// One short spin before sleeping. On a multi-core host a peer that is
// about to publish usually does so within a few hundred cycles, so a
// small spin saves two syscalls; on a single-core host spinning only
// steals the cycles the peer needs, so we go straight to the futex.
int spin_budget() {
  static const int budget =
      std::thread::hardware_concurrency() > 1 ? 256 : 1;
  return budget;
}

#if QC_HAVE_FUTEX

void futex_wait(const std::atomic<std::uint32_t>* word, std::uint32_t expect,
                int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  // Spurious wakeups, EAGAIN (value already changed) and EINTR are all
  // fine: every caller re-checks the word in a loop.
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAIT, expect, &ts, nullptr, 0);
}

void futex_wake_all(const std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAKE, INT_MAX, nullptr, nullptr, 0);
}

#else  // !QC_HAVE_FUTEX: sleep-poll with the same contract.

void futex_wait(const std::atomic<std::uint32_t>* word, std::uint32_t expect,
                int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (word->load(std::memory_order_acquire) == expect &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void futex_wake_all(const std::atomic<std::uint32_t>*) {}

#endif

std::size_t page_round(std::size_t bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (bytes + page - 1) / page * page;
}

}  // namespace

// ---- ShmArena -------------------------------------------------------------

ShmArena::ShmArena(std::size_t bytes) : size_(page_round(bytes)) {
  void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    throw Error("shard: mmap of the shared transport arena failed: " +
                std::string(std::strerror(errno)));
  }
  base_ = static_cast<std::uint8_t*>(p);
}

ShmArena::~ShmArena() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

ShmArena::ShmArena(ShmArena&& other) noexcept
    : base_(other.base_), size_(other.size_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

ShmArena& ShmArena::operator=(ShmArena&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) ::munmap(base_, size_);
  base_ = other.base_;
  size_ = other.size_;
  other.base_ = nullptr;
  other.size_ = 0;
  return *this;
}

// ---- CompletionCounter ----------------------------------------------------

CompletionCounter::CompletionCounter(std::uint8_t* mem)
    : word_(reinterpret_cast<std::atomic<std::uint32_t>*>(mem)) {}

void CompletionCounter::bump() {
  word_->fetch_add(1, std::memory_order_release);
  futex_wake_all(word_);
}

std::uint32_t CompletionCounter::load() const {
  return word_->load(std::memory_order_acquire);
}

std::uint32_t CompletionCounter::wait_past(std::uint32_t last_seen,
                                           int timeout_ms) const {
  for (int i = 0; i < spin_budget(); ++i) {
    const std::uint32_t now = load();
    if (now != last_seen) return now;
  }
  futex_wait(word_, last_seen, timeout_ms);
  return load();
}

// ---- ShmChannel -----------------------------------------------------------

std::size_t ShmChannel::bytes_needed(std::size_t capacity) {
  return kHeaderBytes + capacity;
}

ShmChannel::ShmChannel(std::uint8_t* mem, std::size_t capacity,
                       CompletionCounter* agg)
    : hdr_(reinterpret_cast<Header*>(mem)),
      payload_(mem + kHeaderBytes),
      capacity_(capacity),
      agg_(agg) {}

bool ShmChannel::idle() const {
  return hdr_->doorbell.load(std::memory_order_acquire) ==
         hdr_->consumed.load(std::memory_order_acquire);
}

std::span<std::uint8_t> ShmChannel::buffer() {
  return {payload_, capacity_};
}

void ShmChannel::publish_frame(std::size_t len) {
  require(idle(), "ShmChannel::publish_frame: previous frame not consumed");
  require(len <= capacity_, "ShmChannel::publish_frame: frame exceeds slot");
  hdr_->len = static_cast<std::uint32_t>(len);
  hdr_->kind = static_cast<std::uint32_t>(ShmSignal::kFrame);
  hdr_->doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_all(&hdr_->doorbell);
  if (agg_ != nullptr) agg_->bump();
}

void ShmChannel::publish_signal(ShmSignal kind) {
  require(try_publish_signal(kind),
          "ShmChannel::publish_signal: previous frame not consumed");
}

bool ShmChannel::try_publish_signal(ShmSignal kind) {
  if (!idle()) return false;
  hdr_->len = 0;
  hdr_->kind = static_cast<std::uint32_t>(kind);
  hdr_->doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_all(&hdr_->doorbell);
  if (agg_ != nullptr) agg_->bump();
  return true;
}

ShmSignal ShmChannel::poll() const {
  if (idle()) return ShmSignal::kNone;
  const std::uint32_t kind = hdr_->kind;
  if (kind != static_cast<std::uint32_t>(ShmSignal::kFrame) &&
      kind != static_cast<std::uint32_t>(ShmSignal::kSocket)) {
    throw ProtocolError("shard: shm channel publication has an unknown kind");
  }
  return static_cast<ShmSignal>(kind);
}

ShmSignal ShmChannel::wait(int timeout_ms) const {
  for (int i = 0; i < spin_budget(); ++i) {
    const ShmSignal s = poll();
    if (s != ShmSignal::kNone) return s;
  }
  const std::uint32_t seen = hdr_->consumed.load(std::memory_order_acquire);
  // Wait for doorbell != consumed. The doorbell is the futex word; if it
  // already moved past `seen` the wait returns immediately.
  futex_wait(&hdr_->doorbell, seen, timeout_ms);
  return poll();
}

std::span<const std::uint8_t> ShmChannel::frame() const {
  const std::uint32_t len = hdr_->len;
  if (len > capacity_) {
    throw ProtocolError(
        "shard: shm channel frame length exceeds the segment capacity");
  }
  return {payload_, len};
}

void ShmChannel::release() {
  hdr_->consumed.fetch_add(1, std::memory_order_release);
  futex_wake_all(&hdr_->consumed);
}

// ---- MeshRing -------------------------------------------------------------

std::size_t MeshRing::bytes_needed(std::size_t capacity) {
  return 2 * (kSlotHeaderBytes + capacity);
}

MeshRing::MeshRing(std::uint8_t* mem, std::size_t capacity)
    : base_(mem), capacity_(capacity) {}

MeshRing::SlotHeader* MeshRing::slot_hdr(std::uint32_t i) const {
  return reinterpret_cast<SlotHeader*>(base_ +
                                       i * (kSlotHeaderBytes + capacity_));
}

std::uint8_t* MeshRing::slot_payload(std::uint32_t i) const {
  return base_ + i * (kSlotHeaderBytes + capacity_) + kSlotHeaderBytes;
}

std::span<std::uint8_t> MeshRing::produce_buffer(std::uint32_t round) {
  return {slot_payload(round & 1), capacity_};
}

void MeshRing::publish(std::uint32_t round, std::size_t len) {
  require(len <= capacity_, "MeshRing::publish: batch exceeds the segment");
  SlotHeader* h = slot_hdr(round & 1);
  h->len = static_cast<std::uint32_t>(len);
  // The release store of the round stamp is the publication; consumers
  // only look after the coordinator's barrier, so no wake is needed.
  h->round.store(round, std::memory_order_release);
}

std::span<const std::uint8_t> MeshRing::consume(std::uint32_t round) const {
  const SlotHeader* h = slot_hdr(round & 1);
  const std::uint32_t stamp = h->round.load(std::memory_order_acquire);
  if (stamp != round) {
    throw ProtocolError(
        "shard: mesh segment carries the wrong round (stale or torn "
        "publication)");
  }
  const std::uint32_t len = h->len;
  if (len > capacity_) {
    throw ProtocolError(
        "shard: mesh segment length exceeds the segment capacity");
  }
  return {slot_payload(round & 1), len};
}

// ---- plan_layout ----------------------------------------------------------

ShmLayout plan_layout(const graph::Graph& g, const ShardAssignment& asn,
                      bool collect_events) {
  constexpr std::size_t kAlign = 64;
  const std::uint32_t W = asn.shards;
  ShmLayout l;
  l.shards = W;
  l.c2w.resize(W);
  l.w2c.resize(W);
  l.mesh.assign(static_cast<std::size_t>(W) * W, {});

  std::size_t off = 0;
  auto place = [&off](std::size_t bytes) {
    const std::size_t at = off;
    off = (off + bytes + kAlign - 1) / kAlign * kAlign;
    return at;
  };

  l.completion_off = place(CompletionCounter::kBytes);

  // Directed boundary arc counts per shard pair size the mesh rings, and
  // each shard's inbound boundary degree sizes its w2c event headroom.
  std::vector<std::size_t> arcs(static_cast<std::size_t>(W) * W, 0);
  std::vector<std::size_t> owned_in_arcs(W, 0);
  for (NodeId u = 0; u < g.n(); ++u) {
    const std::uint32_t s = asn.shard_of[u];
    for (const NodeId v : g.neighbors(u)) {
      const std::uint32_t t = asn.shard_of[v];
      if (s != t) {
        ++arcs[static_cast<std::size_t>(s) * W + t];
        ++owned_in_arcs[t];
      }
    }
  }

  for (std::uint32_t s = 0; s < W; ++s) {
    l.c2w[s] = {place(ShmChannel::bytes_needed(kControlChannelBytes)),
                kControlChannelBytes};
    // When events ship, a worker's round_end carries up to one event per
    // delivered edge; inbound boundary arcs are the part a remote sender
    // feeds, owned-internal arcs the rest. Budget the worker's full owned
    // in-degree so the common case stays on the ring.
    std::size_t w2c_cap = kControlChannelBytes;
    if (collect_events) {
      std::size_t owned_deg = owned_in_arcs[s];
      for (const auto& [b, e] : asn.runs[s]) {
        for (NodeId v = b; v < e; ++v) {
          for (const NodeId u : g.neighbors(v)) {
            if (asn.shard_of[u] == s) ++owned_deg;
          }
        }
      }
      w2c_cap += owned_deg * kEventBytesPerArc;
    }
    l.w2c[s] = {place(ShmChannel::bytes_needed(w2c_cap)), w2c_cap};
  }

  for (std::uint32_t s = 0; s < W; ++s) {
    for (std::uint32_t t = 0; t < W; ++t) {
      const std::size_t a = arcs[static_cast<std::size_t>(s) * W + t];
      if (a == 0) continue;
      const std::size_t cap = kMeshFrameOverhead + a * kMeshBytesPerArc;
      l.mesh[static_cast<std::size_t>(s) * W + t] = {
          place(MeshRing::bytes_needed(cap)), cap};
    }
  }

  l.total_bytes = off;
  return l;
}

}  // namespace qc::congest::shard
