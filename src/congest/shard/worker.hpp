#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "congest/network.hpp"
#include "congest/shard/partition.hpp"

namespace qc::congest::shard {

/// Body of a forked worker process (internal to the shard backend; exposed
/// for tests). Builds a full Network replica of `g` with `net_cfg` —
/// inherited by value through fork, so every process constructs bit-
/// identical state — instantiates `make(v)` programs for the nodes shard
/// `shard` owns (inert placeholders elsewhere), and services coordinator
/// frames on `fd` until a shutdown frame or EOF (coordinator gone), both
/// of which return 0. Any failure is reported back as an error frame and
/// returns 1; the function never throws — the caller _exit()s with the
/// returned code, skipping atexit machinery the forked child must not run.
int run_worker(
    int fd, const graph::Graph& g, const NetworkConfig& net_cfg,
    const ShardAssignment& asn, std::uint32_t shard, bool collect_events,
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) noexcept;

}  // namespace qc::congest::shard
