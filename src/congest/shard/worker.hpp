#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "congest/network.hpp"
#include "congest/shard/partition.hpp"
#include "congest/shard/shm_ring.hpp"

namespace qc::congest::shard {

/// Everything a forked worker needs to reach its coordinator: the control
/// socket, the shared transport arena (inherited through fork at the same
/// address) and the layout describing its channels and mesh segments.
struct WorkerLink {
  int fd = -1;
  std::uint8_t* shm = nullptr;
  const ShmLayout* layout = nullptr;
  std::uint32_t shard = 0;
  bool collect_events = false;
  /// When nonzero, the worker snapshots the alloc probe after this round
  /// and fails the run if any later steady-state round allocates (rounds
  /// that took a legitimate slow path — socket or mesh spill — re-arm
  /// instead). Only meaningful in binaries that install the probe.
  std::uint32_t verify_zero_alloc_from_round = 0;
};

/// Body of a forked worker process (internal to the shard backend; exposed
/// for tests). Builds a full Network replica of `g` with `net_cfg` —
/// inherited by value through fork, so every process constructs bit-
/// identical state — instantiates `make(v)` programs for the nodes shard
/// `link.shard` owns (inert placeholders elsewhere), and services
/// coordinator publications on its shm channel (with the socket as the
/// hinted control/spill path) until a shutdown frame or EOF (coordinator
/// gone), both of which return 0. Any failure is reported back as an error
/// frame and returns 1; the function never throws — the caller _exit()s
/// with the returned code, skipping atexit machinery the forked child must
/// not run.
int run_worker(
    const WorkerLink& link, const graph::Graph& g,
    const NetworkConfig& net_cfg, const ShardAssignment& asn,
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) noexcept;

}  // namespace qc::congest::shard
