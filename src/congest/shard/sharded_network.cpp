#include "congest/shard/sharded_network.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "congest/shard/worker.hpp"
#include "serve/protocol.hpp"
#include "util/bits.hpp"
#include "util/metrics.hpp"

namespace qc::congest::shard {

namespace {

/// Closes every fd of the freshly forked child except stdio and `keep`:
/// the child inherits the parent's whole fd table (other workers'
/// coordinator-side sockets, listening sockets, open logs...), and a held
/// duplicate of another worker's socket would defeat EOF-based teardown.
/// mmap'ed graph payloads stay valid — a mapping outlives its fd.
void close_other_fds(int keep) {
  std::vector<int> to_close;
  if (DIR* d = ::opendir("/proc/self/fd")) {
    const int dir_fd = ::dirfd(d);
    while (const dirent* ent = ::readdir(d)) {
      char* end = nullptr;
      const long fd = std::strtol(ent->d_name, &end, 10);
      if (end == ent->d_name || *end != '\0') continue;  // "." / ".."
      if (fd <= 2 || fd == keep || fd == dir_fd) continue;
      to_close.push_back(static_cast<int>(fd));
    }
    ::closedir(d);
  } else {
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != keep) to_close.push_back(fd);
    }
  }
  for (const int fd : to_close) ::close(fd);
}

/// Sums worker round deltas the way the in-process engines merge per-round
/// / per-thread stats: counters add, maxima combine by max. Deliberately
/// not RunStats::operator+= (which also adds `rounds` and overwrites
/// `quiesced`; the coordinator owns both of those).
void merge_worker_stats(RunStats& into, const RunStats& d) {
  into.messages += d.messages;
  into.bits += d.bits;
  into.max_edge_bits = std::max(into.max_edge_bits, d.max_edge_bits);
  into.violations += d.violations;
  into.max_node_memory_bits =
      std::max(into.max_node_memory_bits, d.max_node_memory_bits);
  into.messages_dropped += d.messages_dropped;
  into.messages_corrupted += d.messages_corrupted;
  into.crashed_node_rounds += d.crashed_node_rounds;
}

}  // namespace

ShardedNetwork::ShardedNetwork(const graph::Graph& g, ShardConfig cfg)
    : graph_(&g), cfg_(std::move(cfg)) {
  bandwidth_bits_ = cfg_.net.bandwidth_bits != 0
                        ? cfg_.net.bandwidth_bits
                        : qc::congest_bandwidth_bits(g.n());
  const ContiguousPartitioner contiguous;
  const Partitioner& p =
      cfg_.partitioner != nullptr ? *cfg_.partitioner : contiguous;
  asn_ = make_assignment(g, cfg_.shards, p);
  // Routing table: the flat slot of sender u's port p targets
  // neighbors(u)[p], so the slot's messages belong to that receiver's
  // worker. Built once; slot numbering is identical in every replica
  // because it derives from the shared CSR adjacency alone.
  slot_receiver_shard_.reserve(g.csr_neighbors().size());
  for (NodeId u = 0; u < g.n(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      slot_receiver_shard_.push_back(asn_.shard_of[v]);
    }
  }
  replicas_.resize(g.n());
}

ShardedNetwork::~ShardedNetwork() { teardown(/*graceful=*/!broken_); }

std::vector<pid_t> ShardedNetwork::worker_pids() const {
  std::vector<pid_t> pids;
  pids.reserve(workers_.size());
  for (const auto& w : workers_) pids.push_back(w.pid);
  return pids;
}

void ShardedNetwork::init_programs(const ProgramFactory& make) {
  teardown(/*graceful=*/!broken_);
  factory_ = make;
  for (NodeId v = 0; v < n(); ++v) {
    replicas_[v] = make(v);
    require(replicas_[v] != nullptr,
            "ShardedNetwork::init_programs: factory returned null");
  }
  round_ = 0;
  stats_ = RunStats{};
  started_ = false;
  broken_ = false;
  needs_harvest_ = false;  // replicas hold pristine initial state
  memory_audit_ = true;
  interrupted_ = false;
  spawn_workers();
}

void ShardedNetwork::spawn_workers() {
  const bool collect_events = cfg_.net.observer != nullptr;
  workers_.assign(asn_.shards, Worker{});
  // Any buffered stdio the child inherits would be flushed twice (once per
  // process); drain it while there is still only one process.
  std::fflush(nullptr);
  for (std::uint32_t s = 0; s < asn_.shards; ++s) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      const std::string err = std::strerror(errno);
      teardown(/*graceful=*/false);
      throw Error("ShardedNetwork: socketpair failed: " + err);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      ::close(sv[0]);
      ::close(sv[1]);
      teardown(/*graceful=*/false);
      throw Error("ShardedNetwork: fork failed: " + err);
    }
    if (pid == 0) {
      // Worker process. Drop the inherited fd table (including earlier
      // workers' coordinator ends) and the inherited metrics registry —
      // the coordinator reports shard metrics; a worker reporting into a
      // fork-shared registry would double-count and the export would be
      // lost at _exit anyway.
      close_other_fds(sv[1]);
      metrics::set_global(nullptr);
      const int rc = run_worker(sv[1], *graph_, cfg_.net, asn_, s,
                                collect_events, factory_);
      // _exit, not exit: the child must not run the parent's atexit
      // handlers (leak-check finalizers, stdio flushes of inherited
      // buffers) — the same discipline as qcongestd's test forks.
      ::_exit(rc);
    }
    ::close(sv[1]);
    workers_[s].pid = pid;
    workers_[s].fd = sv[0];
  }
  spawned_ = true;
  metrics::count("shard.spawns", asn_.shards);
  metrics::gauge("shard.workers", static_cast<double>(asn_.shards));
}

std::string ShardedNetwork::teardown(bool graceful) {
  std::string problems;
  if (graceful) {
    const auto bye = encode_empty(ShardOp::kShutdown);
    for (auto& w : workers_) {
      if (w.fd < 0) continue;
      try {
        serve::write_frame(w.fd, bye, kMaxShardFrameBytes);
      } catch (...) {  // a dead worker is reported via its exit status
      }
    }
  }
  for (auto& w : workers_) {
    if (w.fd >= 0) {
      ::close(w.fd);  // EOF tells a healthy worker to exit 0
      w.fd = -1;
    }
  }
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    auto& w = workers_[s];
    if (w.pid <= 0) continue;
    if (!graceful) ::kill(w.pid, SIGKILL);
    int st = 0;
    bool reaped = false;
    // Workers exit promptly on shutdown/EOF; poll briefly, then escalate
    // so a wedged worker can never hang the coordinator.
    for (int i = 0; i < 5000; ++i) {
      const pid_t r = ::waitpid(w.pid, &st, WNOHANG);
      if (r == w.pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::usleep(1000);
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &st, 0);
      problems += "worker " + std::to_string(s) + " had to be SIGKILLed; ";
    } else if (graceful && !(WIFEXITED(st) && WEXITSTATUS(st) == 0)) {
      problems += "worker " + std::to_string(s) +
                  (WIFSIGNALED(st)
                       ? " died on signal " + std::to_string(WTERMSIG(st))
                       : " exited with status " +
                             std::to_string(WIFEXITED(st) ? WEXITSTATUS(st)
                                                          : -1)) +
                  "; ";
    }
    w.pid = -1;
  }
  spawned_ = false;
  return problems;
}

void ShardedNetwork::shutdown() {
  if (!spawned_) return;
  const std::string problems = teardown(/*graceful=*/!broken_);
  if (!problems.empty()) {
    throw Error("ShardedNetwork::shutdown: " + problems);
  }
}

void ShardedNetwork::mark_broken() {
  broken_ = true;
  teardown(/*graceful=*/false);
}

void ShardedNetwork::send_to(std::size_t w,
                             const std::vector<std::uint8_t>& payload) {
  try {
    serve::write_frame(workers_[w].fd, payload, kMaxShardFrameBytes);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) +
                " is unreachable (crashed?): " + what);
  }
}

std::vector<std::uint8_t> ShardedNetwork::recv_from(std::size_t w) {
  std::vector<std::uint8_t> payload;
  bool ok = false;
  try {
    ok = serve::read_frame(workers_[w].fd, payload, kMaxShardFrameBytes);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) +
                " sent a malformed frame: " + what);
  }
  if (!ok) {
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) +
                " exited mid-run (crashed?)");
  }
  if (decode_op(payload) == ShardOp::kError) {
    const std::string text = decode_error(payload);
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) + " failed: " + text);
  }
  return payload;
}

void ShardedNetwork::route_boundary(std::size_t from_worker,
                                    std::vector<BoundaryMsg>&& boundary) {
  for (auto& bm : boundary) {
    if (bm.slot >= slot_receiver_shard_.size()) {
      mark_broken();
      throw Error("shard: worker " + std::to_string(from_worker) +
                  " sent an out-of-range boundary slot");
    }
    workers_[slot_receiver_shard_[bm.slot]].pending.push_back(std::move(bm));
  }
}

bool ShardedNetwork::all_quiet() const {
  std::int64_t inflight = 0;
  std::int64_t halted = 0;
  for (const auto& w : workers_) {
    inflight += w.inflight;
    halted += w.halted;
  }
  // Per-worker counters can individually go negative (a worker that mostly
  // receives decrements more than it increments), but the sums track the
  // single-process counters exactly: every queued message is counted +1 by
  // its sender's worker and -1 by its receiver's worker.
  return halted == static_cast<std::int64_t>(n()) && inflight == 0;
}

void ShardedNetwork::start_if_needed() {
  if (started_) return;
  const auto go = encode_empty(ShardOp::kStart);
  for (std::size_t w = 0; w < workers_.size(); ++w) send_to(w, go);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    StartDoneFrame f = decode_start_done(recv_from(w));
    workers_[w].inflight = f.inflight;
    workers_[w].halted = f.halted;
    route_boundary(w, std::move(f.boundary));
  }
  started_ = true;
}

void ShardedNetwork::flush_events(
    std::vector<std::vector<DeliveryEvent>>& per_worker, std::uint32_t round) {
  DeliveryObserver* const obs = cfg_.net.observer.get();
  // Each worker's batch is already ascending in receiver id (workers
  // deliver their runs in ascending order) and receivers are disjoint
  // across workers, so merging by smallest front receiver reproduces the
  // sequential engine's (round, receiver, port) order exactly. For the
  // contiguous partitioner this degenerates to concatenation.
  std::vector<std::size_t> idx(per_worker.size(), 0);
  for (;;) {
    std::size_t best = per_worker.size();
    for (std::size_t w = 0; w < per_worker.size(); ++w) {
      if (idx[w] >= per_worker[w].size()) continue;
      if (best == per_worker.size() ||
          per_worker[w][idx[w]].to < per_worker[best][idx[best]].to) {
        best = w;
      }
    }
    if (best == per_worker.size()) break;
    const DeliveryEvent& e = per_worker[best][idx[best]++];
    obs->on_deliver(e.from, e.to, e.msg, round);
  }
}

RunStats ShardedNetwork::run_phase(std::uint32_t max_rounds, bool until_quiet) {
  require(spawned_,
          "ShardedNetwork::run: init_programs was not called (or the "
          "network was shut down)");
  require(!broken_,
          "ShardedNetwork::run: a worker failed earlier; call init_programs "
          "to respawn");
  metrics::ScopedTimer span("shard.phase");
  start_if_needed();
  RunStats phase;
  std::uint64_t boundary_messages = 0;
  std::uint64_t events_merged = 0;
  std::uint32_t executed = 0;
  std::vector<std::vector<DeliveryEvent>> events(workers_.size());
  while (executed < max_rounds && !(until_quiet && all_quiet())) {
    if (cfg_.stop != nullptr &&
        cfg_.stop->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    ++round_;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      RoundBeginFrame rb;
      rb.round = round_;
      rb.memory_audit = memory_audit_;
      rb.boundary = std::move(workers_[w].pending);
      workers_[w].pending.clear();
      send_to(w, encode_round_begin(rb));
    }
    RunStats round_merged;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      RoundEndFrame re = decode_round_end(recv_from(w));
      if (re.round != round_) {
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " answered for the wrong round");
      }
      merge_worker_stats(round_merged, re.stats);
      workers_[w].inflight = re.inflight;
      workers_[w].halted = re.halted;
      boundary_messages += re.boundary.size();
      route_boundary(w, std::move(re.boundary));
      events[w] = std::move(re.events);
      events_merged += events[w].size();
    }
    if (cfg_.net.observer != nullptr) flush_events(events, round_);
    // The disarm-after-round-1 rule of the in-process engines, decided
    // globally: workers sweep only their owned programs, so only the
    // merged round-1 maximum can tell whether anyone audits memory.
    if (memory_audit_ && round_ == 1 &&
        round_merged.max_node_memory_bits == 0) {
      memory_audit_ = false;
    }
    merge_worker_stats(phase, round_merged);
    ++executed;
  }
  phase.rounds = executed;
  phase.quiesced = all_quiet();
  stats_ += phase;
  needs_harvest_ = true;
  span.add(phase.rounds, phase.messages, phase.bits);
  if (metrics::enabled()) {
    metrics::count("shard.phases");
    metrics::count("shard.rounds", phase.rounds);
    metrics::count("shard.boundary_messages", boundary_messages);
    metrics::count("shard.observer_events_merged", events_merged);
  }
  return phase;
}

RunStats ShardedNetwork::run_rounds(std::uint32_t rounds) {
  return run_phase(rounds, /*until_quiet=*/false);
}

RunStats ShardedNetwork::run_until_quiescent(std::uint32_t max_rounds) {
  return run_phase(max_rounds, /*until_quiet=*/true);
}

void ShardedNetwork::sync_programs() {
  if (!needs_harvest_) return;
  require(spawned_ && !broken_,
          "ShardedNetwork::program: workers are gone; results from the last "
          "run are unavailable (read them before shutdown)");
  const auto req = encode_empty(ShardOp::kHarvest);
  for (std::size_t w = 0; w < workers_.size(); ++w) send_to(w, req);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    HarvestDoneFrame f = decode_harvest_done(recv_from(w));
    if (f.states.size() != asn_.owned_count(static_cast<std::uint32_t>(w))) {
      mark_broken();
      throw Error("shard: worker " + std::to_string(w) +
                  " harvested the wrong number of programs");
    }
    std::size_t i = 0;
    for (const auto& [b, e] : asn_.runs[w]) {
      for (NodeId v = b; v < e; ++v) {
        replicas_[v]->restore_state(f.states[i++]);
      }
    }
  }
  metrics::count("shard.harvests");
  needs_harvest_ = false;
}

NodeProgram& ShardedNetwork::program(NodeId v) {
  require(v < n() && replicas_[v] != nullptr,
          "ShardedNetwork::program: no program");
  sync_programs();
  return *replicas_[v];
}

}  // namespace qc::congest::shard
