#include "congest/shard/sharded_network.hpp"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "congest/shard/worker.hpp"
#include "serve/protocol.hpp"
#include "util/bits.hpp"
#include "util/metrics.hpp"

namespace qc::congest::shard {

namespace {

/// How long one futex sleep at the barrier may last before the coordinator
/// re-checks worker liveness over the sockets. Bounds the time a silently
/// killed worker can stall a phase.
constexpr int kBarrierWaitSliceMs = 100;

/// Closes every fd of the freshly forked child except stdio and `keep`:
/// the child inherits the parent's whole fd table (other workers'
/// coordinator-side sockets, listening sockets, open logs...), and a held
/// duplicate of another worker's socket would defeat EOF-based teardown.
/// mmap'ed graph payloads and the shm arena stay valid — a mapping
/// outlives its fd (and the arena is anonymous, it never had one).
void close_other_fds(int keep) {
  std::vector<int> to_close;
  if (DIR* d = ::opendir("/proc/self/fd")) {
    const int dir_fd = ::dirfd(d);
    while (const dirent* ent = ::readdir(d)) {
      char* end = nullptr;
      const long fd = std::strtol(ent->d_name, &end, 10);
      if (end == ent->d_name || *end != '\0') continue;  // "." / ".."
      if (fd <= 2 || fd == keep || fd == dir_fd) continue;
      to_close.push_back(static_cast<int>(fd));
    }
    ::closedir(d);
  } else {
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != keep) to_close.push_back(fd);
    }
  }
  for (const int fd : to_close) ::close(fd);
}

/// Sums worker round deltas the way the in-process engines merge per-round
/// / per-thread stats: counters add, maxima combine by max. Deliberately
/// not RunStats::operator+= (which also adds `rounds` and overwrites
/// `quiesced`; the coordinator owns both of those).
void merge_worker_stats(RunStats& into, const RunStats& d) {
  into.messages += d.messages;
  into.bits += d.bits;
  into.max_edge_bits = std::max(into.max_edge_bits, d.max_edge_bits);
  into.violations += d.violations;
  into.max_node_memory_bits =
      std::max(into.max_node_memory_bits, d.max_node_memory_bits);
  into.messages_dropped += d.messages_dropped;
  into.messages_corrupted += d.messages_corrupted;
  into.crashed_node_rounds += d.crashed_node_rounds;
}

}  // namespace

ShardedNetwork::ShardedNetwork(const graph::Graph& g, ShardConfig cfg)
    : graph_(&g), cfg_(std::move(cfg)) {
  bandwidth_bits_ = cfg_.net.bandwidth_bits != 0
                        ? cfg_.net.bandwidth_bits
                        : qc::congest_bandwidth_bits(g.n());
  const ContiguousPartitioner contiguous;
  const Partitioner& p =
      cfg_.partitioner != nullptr ? *cfg_.partitioner : contiguous;
  asn_ = make_assignment(g, cfg_.shards, p);
  // Routing table for spilled boundary messages: the flat slot of sender
  // u's port p targets neighbors(u)[p], so the slot's messages belong to
  // that receiver's worker. Built once; slot numbering is identical in
  // every replica because it derives from the shared CSR adjacency alone.
  slot_receiver_shard_.reserve(g.csr_neighbors().size());
  for (NodeId u = 0; u < g.n(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      slot_receiver_shard_.push_back(asn_.shard_of[v]);
    }
  }
  replicas_.resize(g.n());
}

ShardedNetwork::~ShardedNetwork() { teardown(/*graceful=*/!broken_); }

std::vector<pid_t> ShardedNetwork::worker_pids() const {
  std::vector<pid_t> pids;
  pids.reserve(workers_.size());
  for (const auto& w : workers_) pids.push_back(w.pid);
  return pids;
}

void ShardedNetwork::init_programs(const ProgramFactory& make) {
  teardown(/*graceful=*/!broken_);
  factory_ = make;
  for (NodeId v = 0; v < n(); ++v) {
    replicas_[v] = make(v);
    require(replicas_[v] != nullptr,
            "ShardedNetwork::init_programs: factory returned null");
  }
  round_ = 0;
  stats_ = RunStats{};
  perf_ = ShardPerfCounters{};
  started_ = false;
  broken_ = false;
  needs_harvest_ = false;  // replicas hold pristine initial state
  memory_audit_ = true;
  interrupted_ = false;
  spawn_workers();
}

void ShardedNetwork::spawn_workers() {
  const bool collect_events = cfg_.net.observer != nullptr;
  workers_.assign(asn_.shards, Worker{});
  // A fresh arena per spawn: the zero-initialized pages ARE the valid idle
  // state of every channel and ring, so a respawn can never inherit a
  // stale doorbell from a previous (possibly crashed) worker set. The
  // views below and the forked children all alias the same mapping.
  layout_ = plan_layout(*graph_, asn_, collect_events);
  c2w_.clear();
  w2c_.clear();
  arena_ = ShmArena(layout_.total_bytes);
  completion_ = CompletionCounter(arena_.base() + layout_.completion_off);
  completion_seen_ = 0;
  for (std::uint32_t s = 0; s < asn_.shards; ++s) {
    c2w_.emplace_back(arena_.base() + layout_.c2w[s].off, layout_.c2w[s].cap);
    w2c_.emplace_back(arena_.base() + layout_.w2c[s].off, layout_.w2c[s].cap);
  }
  re_.assign(asn_.shards, RoundEndFrame{});
  done_.assign(asn_.shards, 0);
  evt_idx_.assign(asn_.shards, 0);
  // Any buffered stdio the child inherits would be flushed twice (once per
  // process); drain it while there is still only one process.
  std::fflush(nullptr);
  for (std::uint32_t s = 0; s < asn_.shards; ++s) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      const std::string err = std::strerror(errno);
      teardown(/*graceful=*/false);
      throw Error("ShardedNetwork: socketpair failed: " + err);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      ::close(sv[0]);
      ::close(sv[1]);
      teardown(/*graceful=*/false);
      throw Error("ShardedNetwork: fork failed: " + err);
    }
    if (pid == 0) {
      // Worker process. Drop the inherited fd table (including earlier
      // workers' coordinator ends) and the inherited metrics registry —
      // the coordinator reports shard metrics; a worker reporting into a
      // fork-shared registry would double-count and the export would be
      // lost at _exit anyway.
      close_other_fds(sv[1]);
      metrics::set_global(nullptr);
      WorkerLink link;
      link.fd = sv[1];
      link.shm = arena_.base();
      link.layout = &layout_;
      link.shard = s;
      link.collect_events = collect_events;
      link.verify_zero_alloc_from_round = cfg_.verify_zero_alloc_from_round;
      const int rc = run_worker(link, *graph_, cfg_.net, asn_, factory_);
      // _exit, not exit: the child must not run the parent's atexit
      // handlers (leak-check finalizers, stdio flushes of inherited
      // buffers) — the same discipline as qcongestd's test forks.
      ::_exit(rc);
    }
    ::close(sv[1]);
    workers_[s].pid = pid;
    workers_[s].fd = sv[0];
  }
  spawned_ = true;
  metrics::count("shard.spawns", asn_.shards);
  metrics::gauge("shard.workers", static_cast<double>(asn_.shards));
}

std::string ShardedNetwork::teardown(bool graceful) {
  std::string problems;
  if (graceful) {
    const auto bye = encode_empty(ShardOp::kShutdown);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].fd < 0) continue;
      // Prefer the channel (the worker is parked on its futex); fall back
      // to a hinted socket frame, and if even that fails the fd close
      // below surfaces as EOF within one worker wait slice.
      if (w < c2w_.size() && c2w_[w].valid() && c2w_[w].idle() &&
          bye.size() <= c2w_[w].capacity()) {
        std::memcpy(c2w_[w].buffer().data(), bye.data(), bye.size());
        c2w_[w].publish_frame(bye.size());
        continue;
      }
      if (w < c2w_.size() && c2w_[w].valid()) {
        c2w_[w].try_publish_signal(ShmSignal::kSocket);
      }
      try {
        serve::write_frame(workers_[w].fd, bye, kMaxShardFrameBytes);
      } catch (...) {  // a dead worker is reported via its exit status
      }
    }
  }
  for (auto& w : workers_) {
    if (w.fd >= 0) {
      ::close(w.fd);  // EOF tells a healthy worker to exit 0
      w.fd = -1;
    }
  }
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    auto& w = workers_[s];
    if (w.pid <= 0) continue;
    if (!graceful) ::kill(w.pid, SIGKILL);
    int st = 0;
    bool reaped = false;
    // Workers exit promptly on shutdown/EOF; poll briefly, then escalate
    // so a wedged worker can never hang the coordinator.
    for (int i = 0; i < 5000; ++i) {
      const pid_t r = ::waitpid(w.pid, &st, WNOHANG);
      if (r == w.pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::usleep(1000);
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &st, 0);
      problems += "worker " + std::to_string(s) + " had to be SIGKILLed; ";
    } else if (graceful && !(WIFEXITED(st) && WEXITSTATUS(st) == 0)) {
      problems += "worker " + std::to_string(s) +
                  (WIFSIGNALED(st)
                       ? " died on signal " + std::to_string(WTERMSIG(st))
                       : " exited with status " +
                             std::to_string(WIFEXITED(st) ? WEXITSTATUS(st)
                                                          : -1)) +
                  "; ";
    }
    w.pid = -1;
  }
  spawned_ = false;
  return problems;
}

void ShardedNetwork::shutdown() {
  if (!spawned_) return;
  const std::string problems = teardown(/*graceful=*/!broken_);
  if (!problems.empty()) {
    throw Error("ShardedNetwork::shutdown: " + problems);
  }
}

void ShardedNetwork::mark_broken() {
  broken_ = true;
  teardown(/*graceful=*/false);
}

void ShardedNetwork::send_frame(std::size_t w,
                                std::span<const std::uint8_t> payload) {
  auto& ch = c2w_[w];
  if (ch.valid() && ch.idle() && payload.size() <= ch.capacity()) {
    std::memcpy(ch.buffer().data(), payload.data(), payload.size());
    ch.publish_frame(payload.size());
    return;
  }
  // Hint first, then write: the worker blocks on the channel futex alone
  // and only reads the socket after seeing the hint (or on its timeout
  // poll, if the channel was too busy even for the hint).
  if (ch.valid()) ch.try_publish_signal(ShmSignal::kSocket);
  try {
    serve::write_frame(workers_[w].fd, payload, kMaxShardFrameBytes, tx_);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) +
                " is unreachable (crashed?): " + what);
  }
}

void ShardedNetwork::send_round_begin(std::size_t w) {
  // Borrow the worker's pending spill list as rb_'s boundary (both are
  // empty in steady state), encode straight into the ring slot, and hand
  // the vector's capacity back afterwards.
  std::swap(rb_.boundary, workers_[w].pending);
  bool sent = false;
  auto& ch = c2w_[w];
  if (ch.valid() && ch.idle()) {
    std::size_t len = 0;
    if (encode_round_begin_to(ch.buffer(), rb_, len)) {
      ch.publish_frame(len);
      sent = true;
    }
  }
  if (!sent) {
    ++perf_.spilled_frames;
    send_frame(w, encode_round_begin(rb_));
  }
  rb_.boundary.clear();
  std::swap(rb_.boundary, workers_[w].pending);
}

void ShardedNetwork::dispatch(std::size_t w,
                              std::span<const std::uint8_t> payload,
                              Collect what) {
  if (decode_op(payload) == ShardOp::kError) {
    const std::string text = decode_error(payload);
    mark_broken();
    throw Error("shard: worker " + std::to_string(w) + " failed: " + text);
  }
  switch (what) {
    case Collect::kRoundEnd:
      decode_round_end_into(payload, re_[w]);
      break;
    case Collect::kStartDone: {
      StartDoneFrame f = decode_start_done(payload);
      workers_[w].inflight = f.inflight;
      workers_[w].halted = f.halted;
      route_boundary(w, f.boundary);
      break;
    }
    case Collect::kHarvestDone: {
      HarvestDoneFrame f = decode_harvest_done(payload);
      if (f.states.size() !=
          asn_.owned_count(static_cast<std::uint32_t>(w))) {
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " harvested the wrong number of programs");
      }
      std::size_t i = 0;
      for (const auto& [b, e] : asn_.runs[w]) {
        for (NodeId v = b; v < e; ++v) {
          replicas_[v]->restore_state(f.states[i++]);
        }
      }
      break;
    }
  }
}

void ShardedNetwork::check_liveness(Collect what) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (done_[w]) continue;
    pollfd p{};
    p.fd = workers_[w].fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 0);
    if (r <= 0) continue;  // EINTR or nothing pending: just slow, re-wait
    if ((p.revents & POLLIN) != 0) {
      // Socket bytes without a visible channel signal. Normally the hint
      // lands first (it is published before the socket write), so re-check
      // the channel and let the main scan service a hinted frame; a truly
      // unhinted frame is a worker whose error fallback found its channel
      // busy — read and dispatch it here (no channel release to pair).
      if (w2c_[w].poll() != ShmSignal::kNone) continue;
      bool ok = false;
      try {
        ok = serve::read_frame(workers_[w].fd, rx_, kMaxShardFrameBytes);
      } catch (const std::exception& e) {
        const std::string text = e.what();
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " sent a malformed frame: " + text);
      }
      if (!ok) {
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " exited mid-run (crashed?)");
      }
      try {
        dispatch(w, rx_, what);
      } catch (const serve::ProtocolError& e) {
        const std::string text = e.what();
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " sent a malformed frame: " + text);
      }
      done_[w] = 1;
    } else if ((p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
      mark_broken();
      throw Error("shard: worker " + std::to_string(w) +
                  " exited mid-run (crashed?)");
    }
  }
}

void ShardedNetwork::collect_all(Collect what) {
  std::fill(done_.begin(), done_.end(), 0);
  std::size_t remaining = workers_.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (done_[w] != 0) continue;
      const ShmSignal sig = w2c_[w].poll();
      if (sig == ShmSignal::kNone) continue;
      try {
        if (sig == ShmSignal::kFrame) {
          // dispatch() copies everything out of the slot before release()
          // returns the channel to the worker.
          dispatch(w, w2c_[w].frame(), what);
          w2c_[w].release();
        } else {  // kSocket hint: the frame took the spill path
          bool ok = false;
          ok = serve::read_frame(workers_[w].fd, rx_, kMaxShardFrameBytes);
          if (!ok) {
            mark_broken();
            throw Error("shard: worker " + std::to_string(w) +
                        " exited mid-run (crashed?)");
          }
          w2c_[w].release();
          dispatch(w, rx_, what);
        }
      } catch (const serve::ProtocolError& e) {
        const std::string text = e.what();
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " sent a malformed frame: " + text);
      }
      done_[w] = 1;
      progressed = true;
    }
    remaining = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (done_[w] == 0) ++remaining;
    }
    if (remaining == 0) break;
    if (!progressed) {
      // Sleep on the shared completion word until ANY pending worker
      // publishes (completion order, not fd order). A full slice with no
      // movement means someone may be dead — ask the sockets.
      const std::uint32_t seen = completion_seen_;
      completion_seen_ = completion_.wait_past(seen, kBarrierWaitSliceMs);
      if (completion_seen_ == seen) check_liveness(what);
    }
  }
}

void ShardedNetwork::route_boundary(std::size_t from_worker,
                                    std::vector<BoundaryMsg>& boundary) {
  for (auto& bm : boundary) {
    if (bm.slot >= slot_receiver_shard_.size()) {
      mark_broken();
      throw Error("shard: worker " + std::to_string(from_worker) +
                  " sent an out-of-range boundary slot");
    }
    workers_[slot_receiver_shard_[bm.slot]].pending.push_back(std::move(bm));
  }
  boundary.clear();
}

bool ShardedNetwork::all_quiet() const {
  std::int64_t inflight = 0;
  std::int64_t halted = 0;
  for (const auto& w : workers_) {
    inflight += w.inflight;
    halted += w.halted;
  }
  // Per-worker counters can individually go negative (a worker that mostly
  // receives decrements more than it increments), but the sums track the
  // single-process counters exactly: every queued message is counted +1 by
  // its sender's worker and -1 by its receiver's worker.
  return halted == static_cast<std::int64_t>(n()) && inflight == 0;
}

void ShardedNetwork::start_if_needed() {
  if (started_) return;
  const auto go = encode_empty(ShardOp::kStart);
  for (std::size_t w = 0; w < workers_.size(); ++w) send_frame(w, go);
  collect_all(Collect::kStartDone);
  started_ = true;
}

void ShardedNetwork::flush_events(std::uint32_t round) {
  DeliveryObserver* const obs = cfg_.net.observer.get();
  // Each worker's batch is already ascending in receiver id (workers
  // deliver their runs in ascending order) and receivers are disjoint
  // across workers, so merging by smallest front receiver reproduces the
  // sequential engine's (round, receiver, port) order exactly. For the
  // contiguous partitioner this degenerates to concatenation.
  std::fill(evt_idx_.begin(), evt_idx_.end(), 0);
  for (;;) {
    std::size_t best = re_.size();
    for (std::size_t w = 0; w < re_.size(); ++w) {
      if (evt_idx_[w] >= re_[w].events.size()) continue;
      if (best == re_.size() ||
          re_[w].events[evt_idx_[w]].to < re_[best].events[evt_idx_[best]].to) {
        best = w;
      }
    }
    if (best == re_.size()) break;
    const DeliveryEvent& e = re_[best].events[evt_idx_[best]++];
    obs->on_deliver(e.from, e.to, e.msg, round);
  }
}

RunStats ShardedNetwork::run_phase(std::uint32_t max_rounds, bool until_quiet) {
  require(spawned_,
          "ShardedNetwork::run: init_programs was not called (or the "
          "network was shut down)");
  require(!broken_,
          "ShardedNetwork::run: a worker failed earlier; call init_programs "
          "to respawn");
  metrics::ScopedTimer span("shard.phase");
  start_if_needed();
  RunStats phase;
  std::uint64_t boundary_messages = 0;
  std::uint64_t boundary_bytes = 0;
  std::uint64_t events_merged = 0;
  std::uint64_t events_elided = 0;
  std::uint64_t barrier_us = 0;
  std::uint32_t executed = 0;
  const bool have_observer = cfg_.net.observer != nullptr;
  while (executed < max_rounds && !(until_quiet && all_quiet())) {
    if (cfg_.stop != nullptr &&
        cfg_.stop->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    ++round_;
    rb_.round = round_;
    rb_.memory_audit = memory_audit_;
    // Publish round_begin to EVERY worker before blocking on ANY
    // round_end: blocking on worker 0's reply before worker 1 has its
    // round_begin serializes the cluster behind whichever worker happens
    // to be slow (regression-tested with a deliberately delayed worker).
    for (std::size_t w = 0; w < workers_.size(); ++w) send_round_begin(w);
    const auto barrier_t0 = std::chrono::steady_clock::now();
    collect_all(Collect::kRoundEnd);
    const std::uint64_t wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - barrier_t0)
            .count());
    barrier_us += wait_us;
    RunStats round_merged;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      RoundEndFrame& re = re_[w];
      if (re.round != round_) {
        mark_broken();
        throw Error("shard: worker " + std::to_string(w) +
                    " answered for the wrong round");
      }
      merge_worker_stats(round_merged, re.stats);
      workers_[w].inflight = re.inflight;
      workers_[w].halted = re.halted;
      boundary_messages += re.boundary_msgs;
      boundary_bytes += re.boundary_bytes;
      if (!re.boundary.empty()) route_boundary(w, re.boundary);
      events_merged += re.events.size();
    }
    if (have_observer) {
      flush_events(round_);
    } else {
      // Workers never built or shipped these events; every delivered
      // message this round is one elided observer event.
      events_elided += round_merged.messages;
    }
    // The disarm-after-round-1 rule of the in-process engines, decided
    // globally: workers sweep only their owned programs, so only the
    // merged round-1 maximum can tell whether anyone audits memory.
    if (memory_audit_ && round_ == 1 &&
        round_merged.max_node_memory_bits == 0) {
      memory_audit_ = false;
    }
    merge_worker_stats(phase, round_merged);
    ++executed;
    if (metrics::enabled()) {
      metrics::observe("shard.barrier_wait_us",
                       static_cast<double>(wait_us));
    }
  }
  phase.rounds = executed;
  phase.quiesced = all_quiet();
  stats_ += phase;
  perf_.rounds += executed;
  perf_.barrier_wait_us += barrier_us;
  perf_.boundary_bytes += boundary_bytes;
  perf_.boundary_messages += boundary_messages;
  perf_.events_elided += events_elided;
  needs_harvest_ = true;
  span.add(phase.rounds, phase.messages, phase.bits);
  if (metrics::enabled()) {
    metrics::count("shard.phases");
    metrics::count("shard.rounds", phase.rounds);
    metrics::count("shard.boundary_messages", boundary_messages);
    metrics::count("shard.boundary_bytes", boundary_bytes);
    metrics::count("shard.observer_events_merged", events_merged);
    metrics::count("shard.events_elided", events_elided);
  }
  return phase;
}

RunStats ShardedNetwork::run_rounds(std::uint32_t rounds) {
  return run_phase(rounds, /*until_quiet=*/false);
}

RunStats ShardedNetwork::run_until_quiescent(std::uint32_t max_rounds) {
  return run_phase(max_rounds, /*until_quiet=*/true);
}

void ShardedNetwork::sync_programs() {
  if (!needs_harvest_) return;
  require(spawned_ && !broken_,
          "ShardedNetwork::program: workers are gone; results from the last "
          "run are unavailable (read them before shutdown)");
  const auto req = encode_empty(ShardOp::kHarvest);
  for (std::size_t w = 0; w < workers_.size(); ++w) send_frame(w, req);
  collect_all(Collect::kHarvestDone);
  metrics::count("shard.harvests");
  needs_harvest_ = false;
}

NodeProgram& ShardedNetwork::program(NodeId v) {
  require(v < n() && replicas_[v] != nullptr,
          "ShardedNetwork::program: no program");
  sync_programs();
  return *replicas_[v];
}

}  // namespace qc::congest::shard
