#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace qc::congest {

/// A single CONGEST message: an ordered list of unsigned fields, each with
/// an explicit bit width. The size of a message is the sum of its field
/// widths; the network enforces that at most one message crosses each edge
/// per direction per round and that its size does not exceed the model
/// bandwidth (bw = O(log n) bits).
///
/// Carrying explicit widths (instead of, say, always 64-bit words) is what
/// makes the bandwidth constraint *checkable*: a protocol that tries to
/// smuggle too much information through an edge fails loudly.
///
/// Storage is small-buffer optimized: the first kInlineFields fields live
/// inside the object (CONGEST messages are bandwidth-bounded at O(log n)
/// bits, and real protocols pack a handful of ids/distances per message, so
/// inline capacity covers virtually all traffic); only a message with more
/// fields spills to one heap block. Constructing, copying, moving and
/// delivering an un-spilled message therefore never touches the heap —
/// the invariant the network's zero-allocation delivery path relies on
/// (see docs/performance.md). Equality is field-wise and independent of
/// where the fields are stored. size_bits() is a cached running total, not
/// a scan.
class Message {
 public:
  /// Fields stored inline before any heap spill. Widths are 1..64 bits, so
  /// seven fields can hold several full node ids / distances per message —
  /// more than any protocol in this repo queues on one edge.
  static constexpr std::size_t kInlineFields = 7;

  Message() = default;

  Message(const Message& other)
      : count_(other.count_),
        bits_(other.bits_),
        values_(other.values_),
        widths_(other.widths_),
        spill_(other.spill_ ? std::make_unique<Spill>(*other.spill_)
                            : nullptr) {}

  Message& operator=(const Message& other) {
    if (this == &other) return *this;
    count_ = other.count_;
    bits_ = other.bits_;
    values_ = other.values_;
    widths_ = other.widths_;
    if (other.spill_ == nullptr) {
      spill_.reset();
    } else if (spill_ != nullptr) {
      *spill_ = *other.spill_;  // reuse the existing block's capacity
    } else {
      spill_ = std::make_unique<Spill>(*other.spill_);
    }
    return *this;
  }

  /// Moves reset the source to an empty message: a moved-from outbox slot
  /// must be indistinguishable from a fresh one when it is reused.
  Message(Message&& other) noexcept
      : count_(other.count_),
        bits_(other.bits_),
        values_(other.values_),
        widths_(other.widths_),
        spill_(std::move(other.spill_)) {
    other.count_ = 0;
    other.bits_ = 0;
  }

  Message& operator=(Message&& other) noexcept {
    if (this == &other) return *this;
    count_ = other.count_;
    bits_ = other.bits_;
    values_ = other.values_;
    widths_ = other.widths_;
    spill_ = std::move(other.spill_);
    other.count_ = 0;
    other.bits_ = 0;
    return *this;
  }

  ~Message() = default;

  /// Appends a field. `bits` must be in [1, 64] and `value` must fit.
  Message& push(std::uint64_t value, std::uint32_t bits) {
    require(bits >= 1 && bits <= 64, "Message::push: bits must be in [1,64]");
    require(bits == 64 || value < (1ULL << bits),
            "Message::push: value does not fit in declared width");
    if (count_ < kInlineFields) {
      values_[count_] = value;
      widths_[count_] = static_cast<std::uint8_t>(bits);
    } else {
      if (spill_ == nullptr) spill_ = std::make_unique<Spill>();
      spill_->values.push_back(value);
      spill_->widths.push_back(static_cast<std::uint8_t>(bits));
    }
    ++count_;
    bits_ += bits;
    return *this;
  }

  /// Removes every field but keeps any spill block's capacity, so a
  /// message reused as a decode target (or a cleared outbox slot) stays
  /// allocation-free once warmed — unlike move-from, which steals the
  /// spill block, or `*this = Message{}`, which frees it.
  Message& clear() {
    count_ = 0;
    bits_ = 0;
    if (spill_ != nullptr) {
      spill_->values.clear();
      spill_->widths.clear();
    }
    return *this;
  }

  std::uint64_t field(std::size_t i) const {
    require(i < count_, "Message::field: index out of range");
    return value_at(i);
  }

  /// Declared width of field `i` in bits.
  std::uint32_t field_bits(std::size_t i) const {
    require(i < count_, "Message::field_bits: index out of range");
    return width_at(i);
  }

  /// Overwrites field `i`; the new value must fit the declared width.
  /// Used by the fault layer to flip bits without changing the layout.
  void set_field(std::size_t i, std::uint64_t value) {
    require(i < count_, "Message::set_field: index out of range");
    const std::uint32_t w = width_at(i);
    require(w == 64 || value < (1ULL << w),
            "Message::set_field: value does not fit in declared width");
    if (i < kInlineFields) {
      values_[i] = value;
    } else {
      spill_->values[i - kInlineFields] = value;
    }
  }

  /// The message clipped to at most `max_bits`: leading fields are kept
  /// whole while they fit, the first field that does not fit is narrowed
  /// to the remaining bits (low bits of its value), and everything after
  /// it is discarded. This is BandwidthPolicy::kTruncate's wire behavior.
  Message truncated(std::uint32_t max_bits) const {
    Message out;
    std::uint32_t used = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const std::uint32_t w = width_at(i);
      if (used + w <= max_bits) {
        out.push(value_at(i), w);
        used += w;
        continue;
      }
      // Narrow the first overflowing field to the leftover budget. A kept
      // field satisfied used + w <= max_bits, so here rem < w <= 64: the
      // shift below is always defined (no rem >= 64 case exists).
      const std::uint32_t rem = max_bits - used;
      if (rem > 0) out.push(value_at(i) & ((1ULL << rem) - 1), rem);
      break;
    }
    return out;
  }

  std::size_t num_fields() const { return count_; }

  /// Total width in bits; a running total maintained by push(), O(1).
  std::uint32_t size_bits() const { return bits_; }

  /// Field-wise equality (values and widths); independent of whether the
  /// operands spilled to the heap or of any previously moved-out state.
  bool operator==(const Message& other) const {
    if (count_ != other.count_ || bits_ != other.bits_) return false;
    for (std::size_t i = 0; i < count_; ++i) {
      if (value_at(i) != other.value_at(i) || width_at(i) != other.width_at(i))
        return false;
    }
    return true;
  }

 private:
  struct Spill {
    std::vector<std::uint64_t> values;
    std::vector<std::uint8_t> widths;
  };

  // Unchecked accessors for indices already validated against count_.
  std::uint64_t value_at(std::size_t i) const {
    return i < kInlineFields ? values_[i] : spill_->values[i - kInlineFields];
  }
  std::uint32_t width_at(std::size_t i) const {
    return i < kInlineFields ? widths_[i] : spill_->widths[i - kInlineFields];
  }

  std::uint32_t count_ = 0;
  std::uint32_t bits_ = 0;
  std::array<std::uint64_t, kInlineFields> values_{};
  std::array<std::uint8_t, kInlineFields> widths_{};
  std::unique_ptr<Spill> spill_;
};

}  // namespace qc::congest
