#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace qc::congest {

/// A single CONGEST message: an ordered list of unsigned fields, each with
/// an explicit bit width. The size of a message is the sum of its field
/// widths; the network enforces that at most one message crosses each edge
/// per direction per round and that its size does not exceed the model
/// bandwidth (bw = O(log n) bits).
///
/// Carrying explicit widths (instead of, say, always 64-bit words) is what
/// makes the bandwidth constraint *checkable*: a protocol that tries to
/// smuggle too much information through an edge fails loudly.
class Message {
 public:
  Message() = default;

  /// Appends a field. `bits` must be in [1, 64] and `value` must fit.
  Message& push(std::uint64_t value, std::uint32_t bits) {
    require(bits >= 1 && bits <= 64, "Message::push: bits must be in [1,64]");
    require(bits == 64 || value < (1ULL << bits),
            "Message::push: value does not fit in declared width");
    values_.push_back(value);
    widths_.push_back(bits);
    return *this;
  }

  std::uint64_t field(std::size_t i) const {
    require(i < values_.size(), "Message::field: index out of range");
    return values_[i];
  }

  std::size_t num_fields() const { return values_.size(); }

  std::uint32_t size_bits() const {
    std::uint32_t total = 0;
    for (std::uint32_t w : widths_) total += w;
    return total;
  }

  bool operator==(const Message& other) const {
    return values_ == other.values_ && widths_ == other.widths_;
  }

 private:
  std::vector<std::uint64_t> values_;
  std::vector<std::uint32_t> widths_;
};

}  // namespace qc::congest
