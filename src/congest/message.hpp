#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace qc::congest {

/// A single CONGEST message: an ordered list of unsigned fields, each with
/// an explicit bit width. The size of a message is the sum of its field
/// widths; the network enforces that at most one message crosses each edge
/// per direction per round and that its size does not exceed the model
/// bandwidth (bw = O(log n) bits).
///
/// Carrying explicit widths (instead of, say, always 64-bit words) is what
/// makes the bandwidth constraint *checkable*: a protocol that tries to
/// smuggle too much information through an edge fails loudly.
class Message {
 public:
  Message() = default;

  /// Appends a field. `bits` must be in [1, 64] and `value` must fit.
  Message& push(std::uint64_t value, std::uint32_t bits) {
    require(bits >= 1 && bits <= 64, "Message::push: bits must be in [1,64]");
    require(bits == 64 || value < (1ULL << bits),
            "Message::push: value does not fit in declared width");
    values_.push_back(value);
    widths_.push_back(bits);
    return *this;
  }

  std::uint64_t field(std::size_t i) const {
    require(i < values_.size(), "Message::field: index out of range");
    return values_[i];
  }

  /// Declared width of field `i` in bits.
  std::uint32_t field_bits(std::size_t i) const {
    require(i < widths_.size(), "Message::field_bits: index out of range");
    return widths_[i];
  }

  /// Overwrites field `i`; the new value must fit the declared width.
  /// Used by the fault layer to flip bits without changing the layout.
  void set_field(std::size_t i, std::uint64_t value) {
    require(i < values_.size(), "Message::set_field: index out of range");
    require(widths_[i] == 64 || value < (1ULL << widths_[i]),
            "Message::set_field: value does not fit in declared width");
    values_[i] = value;
  }

  /// The message clipped to at most `max_bits`: leading fields are kept
  /// whole while they fit, the first field that does not fit is narrowed
  /// to the remaining bits (low bits of its value), and everything after
  /// it is discarded. This is BandwidthPolicy::kTruncate's wire behavior.
  Message truncated(std::uint32_t max_bits) const {
    Message out;
    std::uint32_t used = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      const std::uint32_t w = widths_[i];
      if (used + w <= max_bits) {
        out.push(values_[i], w);
        used += w;
        continue;
      }
      const std::uint32_t rem = max_bits - used;
      if (rem > 0) {
        const std::uint64_t mask =
            rem >= 64 ? ~0ULL : (1ULL << rem) - 1;
        out.push(values_[i] & mask, rem);
      }
      break;
    }
    return out;
  }

  std::size_t num_fields() const { return values_.size(); }

  std::uint32_t size_bits() const {
    std::uint32_t total = 0;
    for (std::uint32_t w : widths_) total += w;
    return total;
  }

  bool operator==(const Message& other) const {
    return values_ == other.values_ && widths_ == other.widths_;
  }

 private:
  std::vector<std::uint64_t> values_;
  std::vector<std::uint32_t> widths_;
};

}  // namespace qc::congest
