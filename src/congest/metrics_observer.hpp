#pragma once

#include <cstdint>

#include "congest/observer.hpp"
#include "util/metrics.hpp"

namespace qc::congest {

/// Streams per-round delivery histograms into a MetricsRegistry through
/// the engine-agnostic DeliveryObserver seam:
///
///  * "congest.round_messages"  — messages delivered per executed round,
///  * "congest.round_bits"     — bits delivered per executed round,
///  * "congest.message_bits"   — per-message bandwidth occupancy.
///
/// The Network attaches one instance automatically (composed with any
/// caller-supplied observer) whenever a global metrics registry is
/// installed, so both engines feed the same deterministic event stream;
/// drop/corruption/violation totals — which observers never see — are
/// recorded by the Network itself as labeled counters at each phase end.
///
/// Not thread-safe by itself, and does not need to be: both engines
/// invoke observers from a single thread (see DeliveryObserver). The
/// registry behind it is thread-safe, so several Networks (e.g. parallel
/// branch simulations) may each own an instance against the same
/// registry; histogram merges are order-independent, keeping exported
/// totals deterministic at any thread count.
class MetricsObserver final : public DeliveryObserver {
 public:
  explicit MetricsObserver(metrics::MetricsRegistry* reg);

  void on_deliver(graph::NodeId from, graph::NodeId to, const Message& msg,
                  std::uint32_t round) override;

  /// Flushes the still-open round's totals; the Network calls this at the
  /// end of every execution phase. Idempotent.
  void flush();

 private:
  metrics::MetricsRegistry* reg_;
  std::uint32_t current_round_ = 0;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_bits_ = 0;
  bool open_ = false;
};

}  // namespace qc::congest
