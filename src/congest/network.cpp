#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <sstream>
#include <thread>

namespace qc::congest {

std::uint32_t NodeContext::port_to(NodeId v) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), v);
  require(it != neighbors_.end() && *it == v,
          "NodeContext::port_to: not adjacent to that node");
  return static_cast<std::uint32_t>(it - neighbors_.begin());
}

void NodeContext::send(std::uint32_t port, Message msg) {
  require(port < degree(), "NodeContext::send: port out of range");
  require(!port_used_[port],
          "NodeContext::send: at most one message per port per round");
  outbox_[port] = std::move(msg);
  port_used_[port] = true;
}

void NodeContext::broadcast(const Message& msg) {
  for (std::uint32_t p = 0; p < degree(); ++p) send(p, msg);
}

RunStats& RunStats::operator+=(const RunStats& other) {
  rounds += other.rounds;
  messages += other.messages;
  bits += other.bits;
  max_edge_bits = std::max(max_edge_bits, other.max_edge_bits);
  violations += other.violations;
  quiesced = other.quiesced;
  max_node_memory_bits =
      std::max(max_node_memory_bits, other.max_node_memory_bits);
  return *this;
}

Network::Network(const graph::Graph& g, NetworkConfig cfg)
    : graph_(&g), cfg_(std::move(cfg)) {
  bandwidth_bits_ = cfg_.bandwidth_bits != 0
                        ? cfg_.bandwidth_bits
                        : qc::congest_bandwidth_bits(g.n());
  contexts_.resize(g.n());
  Rng master(cfg_.seed);
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& ctx = contexts_[v];
    ctx.id_ = v;
    ctx.n_ = g.n();
    const auto nb = g.neighbors(v);
    ctx.neighbors_.assign(nb.begin(), nb.end());
    ctx.outbox_.resize(ctx.neighbors_.size());
    ctx.port_used_.assign(ctx.neighbors_.size(), false);
    ctx.rng_ = master.child(v);
  }
  programs_.resize(g.n());
}

void Network::init_programs(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) {
  for (NodeId v = 0; v < n(); ++v) {
    programs_[v] = make(v);
    require(programs_[v] != nullptr,
            "Network::init_programs: factory returned null");
    auto& ctx = contexts_[v];
    ctx.round_ = 0;
    ctx.inbox_.clear();
    std::fill(ctx.port_used_.begin(), ctx.port_used_.end(), false);
    ctx.halted_ = false;
  }
  round_ = 0;
  stats_ = RunStats{};
  started_ = false;
}

bool Network::all_quiet() const {
  for (NodeId v = 0; v < n(); ++v) {
    const auto& ctx = contexts_[v];
    if (!ctx.halted_) return false;
    for (bool used : ctx.port_used_) {
      if (used) return false;
    }
  }
  return true;
}

void Network::deliver_range(std::uint32_t begin, std::uint32_t end,
                            RunStats& local,
                            std::vector<PendingDelivery>* sink) {
  // Receiver-driven delivery: node w pulls, in port order, the message its
  // neighbor queued for it last round. Port-order assembly makes the inbox
  // deterministic regardless of engine or thread count. Observer events
  // either fire inline (sequential engine, sink == nullptr) or are
  // buffered per worker and flushed in receiver order at the round
  // barrier — the same (round, to, from) order either way.
  for (NodeId w = begin; w < end; ++w) {
    auto& ctx = contexts_[w];
    ctx.round_ = round_;
    ctx.inbox_.clear();
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      const NodeId u = ctx.neighbors_[p];
      const auto& sender = contexts_[u];
      const std::uint32_t q = sender.port_to(w);
      if (!sender.port_used_[q]) continue;
      const Message& msg = sender.outbox_[q];
      const std::uint32_t sz = msg.size_bits();
      if (sz > bandwidth_bits_) {
        if (cfg_.policy == BandwidthPolicy::kEnforce) {
          std::ostringstream os;
          os << "bandwidth violation: " << sz << " bits on edge " << u << "->"
             << w << " in round " << round_ << " (bw=" << bandwidth_bits_
             << ")";
          throw BandwidthViolationError(os.str());
        }
        ++local.violations;
      }
      ++local.messages;
      local.bits += sz;
      local.max_edge_bits = std::max(local.max_edge_bits, sz);
      if (cfg_.observer != nullptr) {
        if (sink != nullptr) {
          sink->push_back(PendingDelivery{u, w, &msg});
        } else {
          cfg_.observer->on_deliver(u, w, msg, round_);
        }
      }
      ctx.inbox_.push_back(Incoming{p, msg});
      ctx.halted_ = false;  // a message re-activates a halted node
    }
  }
}

void Network::compute_range(std::uint32_t begin, std::uint32_t end) {
  for (NodeId v = begin; v < end; ++v) {
    auto& ctx = contexts_[v];
    // The outbox slots were consumed by every receiver in the deliver
    // phase of this round; clear them before the program writes new ones.
    std::fill(ctx.port_used_.begin(), ctx.port_used_.end(), false);
    if (ctx.halted_ && ctx.inbox_.empty()) continue;
    programs_[v]->on_round(ctx);
  }
}

void Network::step_round() {
  ++round_;
  RunStats local;
  deliver_range(0, n(), local, /*sink=*/nullptr);
  compute_range(0, n());
  for (NodeId v = 0; v < n(); ++v) {
    local.max_node_memory_bits =
        std::max(local.max_node_memory_bits, programs_[v]->memory_bits());
  }
  local.rounds = 1;
  stats_ += local;
}

std::uint32_t Network::run_parallel_block(std::uint32_t max_rounds,
                                          bool until_quiet) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned requested = cfg_.num_threads != 0 ? cfg_.num_threads : hw;
  const unsigned T = std::max(1u, std::min(requested, n() == 0 ? 1u : n()));
  if (T == 1) {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !(until_quiet && all_quiet())) {
      step_round();
      ++executed;
    }
    return executed;
  }

  std::vector<RunStats> local(T);
  std::vector<std::vector<PendingDelivery>> pending(T);
  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> executed{0};
  std::barrier sync(static_cast<std::ptrdiff_t>(T));
  auto slice = [&](unsigned t) {
    const std::uint32_t per = (n() + T - 1) / T;
    const std::uint32_t b = std::min(n(), t * per);
    const std::uint32_t e = std::min(n(), b + per);
    return std::pair<std::uint32_t, std::uint32_t>{b, e};
  };
  // Persistent workers: one spawn per block, three barriers per round.
  auto work = [&](unsigned t) {
    const auto [b, e] = slice(t);
    for (std::uint32_t i = 0; i < max_rounds; ++i) {
      if (t == 0) {
        if (until_quiet && all_quiet()) done.store(true);
        if (!done.load()) {
          ++round_;
          executed.fetch_add(1);
        }
      }
      sync.arrive_and_wait();  // round_ visible / stop decision visible
      if (done.load()) break;
      deliver_range(b, e, local[t], &pending[t]);
      sync.arrive_and_wait();  // all inboxes assembled
      if (cfg_.observer != nullptr) {
        // Single-threaded flush: workers hold contiguous ascending
        // receiver ranges, so draining buffers in worker order replays
        // the sequential engine's (round, receiver, port) event order
        // exactly. The extra barrier keeps the pointed-to outbox slots
        // alive until the flush is done (compute overwrites them).
        if (t == 0) {
          for (auto& buf : pending) {
            for (const auto& ev : buf) {
              cfg_.observer->on_deliver(ev.from, ev.to, *ev.msg, round_);
            }
            buf.clear();
          }
        }
        sync.arrive_and_wait();  // observer flushed
      }
      compute_range(b, e);
      for (NodeId v = b; v < e; ++v) {
        local[t].max_node_memory_bits = std::max(
            local[t].max_node_memory_bits, programs_[v]->memory_bits());
      }
      sync.arrive_and_wait();  // all outboxes written
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(T - 1);
  for (unsigned t = 1; t < T; ++t) threads.emplace_back(work, t);
  work(0);
  for (auto& th : threads) th.join();

  RunStats merged;
  for (const auto& l : local) {
    merged.messages += l.messages;
    merged.bits += l.bits;
    merged.violations += l.violations;
    merged.max_edge_bits = std::max(merged.max_edge_bits, l.max_edge_bits);
    merged.max_node_memory_bits =
        std::max(merged.max_node_memory_bits, l.max_node_memory_bits);
  }
  merged.rounds = executed.load();
  stats_ += merged;
  return executed.load();
}

RunStats Network::run_rounds(std::uint32_t rounds) {
  RunStats before = stats_;
  if (!started_) {
    for (NodeId v = 0; v < n(); ++v) {
      require(programs_[v] != nullptr,
              "Network::run: init_programs was not called");
      programs_[v]->on_start(contexts_[v]);
    }
    started_ = true;
  }
  if (cfg_.engine == Engine::kParallel) {
    run_parallel_block(rounds, /*until_quiet=*/false);
  } else {
    for (std::uint32_t i = 0; i < rounds; ++i) step_round();
  }
  RunStats delta = stats_;
  delta.rounds -= before.rounds;
  delta.messages -= before.messages;
  delta.bits -= before.bits;
  delta.violations -= before.violations;
  return delta;
}

RunStats Network::run_until_quiescent(std::uint32_t max_rounds) {
  RunStats before = stats_;
  if (!started_) {
    for (NodeId v = 0; v < n(); ++v) {
      require(programs_[v] != nullptr,
              "Network::run: init_programs was not called");
      programs_[v]->on_start(contexts_[v]);
    }
    started_ = true;
  }
  if (cfg_.engine == Engine::kParallel) {
    run_parallel_block(max_rounds, /*until_quiet=*/true);
  } else {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !all_quiet()) {
      step_round();
      ++executed;
    }
  }
  const bool quiesced = all_quiet();
  stats_.quiesced = quiesced;
  RunStats delta = stats_;
  delta.rounds -= before.rounds;
  delta.messages -= before.messages;
  delta.bits -= before.bits;
  delta.violations -= before.violations;
  delta.quiesced = quiesced;
  return delta;
}

}  // namespace qc::congest
