#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <sstream>
#include <thread>

#include "congest/metrics_observer.hpp"
#include "util/metrics.hpp"

namespace qc::congest {

bool neighbors_strictly_sorted(std::span<const graph::NodeId> neighbors) {
  return std::adjacent_find(neighbors.begin(), neighbors.end(),
                            std::greater_equal<graph::NodeId>()) ==
         neighbors.end();
}

std::uint32_t NodeContext::port_to(NodeId v) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), v);
  require(it != neighbors_.end() && *it == v,
          "NodeContext::port_to: not adjacent to that node");
  return static_cast<std::uint32_t>(it - neighbors_.begin());
}

void NodeContext::send(std::uint32_t port, Message msg) {
  require(port < degree(), "NodeContext::send: port out of range");
  require(!port_used_[port],
          "NodeContext::send: at most one message per port per round");
  outbox_[port] = std::move(msg);
  port_used_[port] = true;
}

void NodeContext::broadcast(const Message& msg) {
  for (std::uint32_t p = 0; p < degree(); ++p) send(p, msg);
}

RunStats& RunStats::operator+=(const RunStats& other) {
  rounds += other.rounds;
  messages += other.messages;
  bits += other.bits;
  max_edge_bits = std::max(max_edge_bits, other.max_edge_bits);
  violations += other.violations;
  quiesced = other.quiesced;
  max_node_memory_bits =
      std::max(max_node_memory_bits, other.max_node_memory_bits);
  messages_dropped += other.messages_dropped;
  messages_corrupted += other.messages_corrupted;
  crashed_node_rounds += other.crashed_node_rounds;
  return *this;
}

Network::Network(const graph::Graph& g, NetworkConfig cfg)
    : graph_(&g), cfg_(std::move(cfg)) {
  bandwidth_bits_ = cfg_.bandwidth_bits != 0
                        ? cfg_.bandwidth_bits
                        : qc::congest_bandwidth_bits(g.n());
  require(cfg_.fault.drop_probability >= 0.0 &&
              cfg_.fault.drop_probability <= 1.0,
          "Network: fault drop_probability must be in [0,1]");
  require(cfg_.fault.corrupt_probability >= 0.0 &&
              cfg_.fault.corrupt_probability <= 1.0,
          "Network: fault corrupt_probability must be in [0,1]");
  for (const auto& w : cfg_.fault.crashes) {
    require(w.node < g.n(), "Network: crash schedule names unknown node");
    require(w.crash_round >= 1, "Network: crash rounds are 1-based");
    require(w.recover_round == 0 || w.recover_round > w.crash_round,
            "Network: crash window must recover after it crashes");
  }
  fault_enabled_ = cfg_.fault.enabled();
  crash_index_ = CrashIndex(cfg_.fault, g.n());
  if (auto* m = metrics::global()) {
    // Observe-only: composing the histogram observer into the delivery
    // seam never alters inboxes, stats or round accounting, so every
    // execution stays bit-identical to a metrics-off run.
    metrics_observer_ = std::make_shared<MetricsObserver>(m);
    cfg_.observer =
        MultiObserver::combine(std::move(cfg_.observer), metrics_observer_);
  }
  contexts_.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& ctx = contexts_[v];
    ctx.id_ = v;
    ctx.n_ = g.n();
    const auto nb = g.neighbors(v);
    require(neighbors_strictly_sorted(nb),
            "Network: Graph::neighbors must be strictly sorted (port_to "
            "binary-searches the adjacency list; an unsorted list would "
            "silently misroute messages)");
    ctx.neighbors_.assign(nb.begin(), nb.end());
    ctx.outbox_.resize(ctx.neighbors_.size());
    ctx.port_used_.assign(ctx.neighbors_.size(), false);
  }
  reseed_node_rngs();
  programs_.resize(g.n());
}

void Network::reseed_node_rngs() {
  Rng master(cfg_.seed);
  for (NodeId v = 0; v < n(); ++v) contexts_[v].rng_ = master.child(v);
}

void Network::init_programs(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) {
  for (NodeId v = 0; v < n(); ++v) {
    programs_[v] = make(v);
    require(programs_[v] != nullptr,
            "Network::init_programs: factory returned null");
    auto& ctx = contexts_[v];
    ctx.round_ = 0;
    ctx.inbox_.clear();
    std::fill(ctx.port_used_.begin(), ctx.port_used_.end(), false);
    ctx.halted_ = false;
  }
  // Restart the per-node RNG streams from the master seed so a rerun of a
  // randomized program on the same Network reproduces the first run
  // bit-for-bit (the constructor seeds identically, so run one after
  // construction is unaffected).
  reseed_node_rngs();
  round_ = 0;
  stats_ = RunStats{};
  started_ = false;
}

bool Network::all_quiet() const {
  for (NodeId v = 0; v < n(); ++v) {
    const auto& ctx = contexts_[v];
    if (!ctx.halted_) return false;
    for (bool used : ctx.port_used_) {
      if (used) return false;
    }
  }
  return true;
}

void Network::deliver_range(std::uint32_t begin, std::uint32_t end,
                            RunStats& local,
                            std::vector<PendingDelivery>* sink) {
  // Receiver-driven delivery: node w pulls, in port order, the message its
  // neighbor queued for it last round. Port-order assembly makes the inbox
  // deterministic regardless of engine or thread count. Observer events
  // either fire inline (sequential engine, sink == nullptr) or are
  // buffered per worker and flushed in receiver order at the round
  // barrier — the same (round, to, from) order either way. Fault decisions
  // are stateless hashes of (seed, round, from, to), so they are the same
  // under both engines as well. Crash checks go through the per-round
  // CrashIndex (refreshed at round start) instead of scanning the crash
  // list per edge.
  const FaultPlan& fault = cfg_.fault;
  for (NodeId w = begin; w < end; ++w) {
    auto& ctx = contexts_[w];
    ctx.round_ = round_;
    ctx.inbox_.clear();
    const bool w_crashed = fault_enabled_ && crash_index_.down(w);
    if (w_crashed) ++local.crashed_node_rounds;
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      const NodeId u = ctx.neighbors_[p];
      const auto& sender = contexts_[u];
      const std::uint32_t q = sender.port_to(w);
      if (!sender.port_used_[q]) continue;
      if (fault_enabled_ &&
          (w_crashed || crash_index_.down(u) || fault.drops(round_, u, w))) {
        ++local.messages_dropped;
        continue;
      }
      const Message& msg = sender.outbox_[q];
      const std::uint32_t sz = msg.size_bits();
      Message delivered = msg;
      if (sz > bandwidth_bits_) {
        if (cfg_.policy == BandwidthPolicy::kEnforce) {
          std::ostringstream os;
          os << "bandwidth violation: " << sz << " bits on edge " << u << "->"
             << w << " in round " << round_ << " (bw=" << bandwidth_bits_
             << ")";
          throw BandwidthViolationError(os.str());
        }
        ++local.violations;
        if (cfg_.policy == BandwidthPolicy::kTruncate) {
          delivered = msg.truncated(bandwidth_bits_);
        }
      }
      if (fault_enabled_ && fault.corrupts(round_, u, w)) {
        fault.corrupt_in_place(delivered, round_, u, w);
        ++local.messages_corrupted;
      }
      const std::uint32_t delivered_bits = delivered.size_bits();
      ++local.messages;
      local.bits += delivered_bits;
      local.max_edge_bits = std::max(local.max_edge_bits, delivered_bits);
      ctx.inbox_.push_back(Incoming{p, std::move(delivered)});
      if (cfg_.observer != nullptr) {
        if (sink != nullptr) {
          sink->push_back(PendingDelivery{
              u, w, static_cast<std::uint32_t>(ctx.inbox_.size() - 1)});
        } else {
          cfg_.observer->on_deliver(u, w, ctx.inbox_.back().msg, round_);
        }
      }
      ctx.halted_ = false;  // a message re-activates a halted node
    }
  }
}

void Network::compute_range(std::uint32_t begin, std::uint32_t end) {
  for (NodeId v = begin; v < end; ++v) {
    auto& ctx = contexts_[v];
    // The outbox slots were consumed by every receiver in the deliver
    // phase of this round; clear them before the program writes new ones.
    // A crashed node's slots clear too — whatever it queued before the
    // crash is lost with it — but its program does not run.
    std::fill(ctx.port_used_.begin(), ctx.port_used_.end(), false);
    if (fault_enabled_ && crash_index_.down(v)) continue;
    if (ctx.halted_ && ctx.inbox_.empty()) continue;
    programs_[v]->on_round(ctx);
  }
}

void Network::step_round(RunStats& phase) {
  ++round_;
  if (fault_enabled_) crash_index_.refresh(round_);
  RunStats local;
  deliver_range(0, n(), local, /*sink=*/nullptr);
  compute_range(0, n());
  for (NodeId v = 0; v < n(); ++v) {
    local.max_node_memory_bits =
        std::max(local.max_node_memory_bits, programs_[v]->memory_bits());
  }
  local.rounds = 1;
  phase += local;
}

std::uint32_t Network::run_parallel_block(std::uint32_t max_rounds,
                                          bool until_quiet, RunStats& phase) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned requested = cfg_.num_threads != 0 ? cfg_.num_threads : hw;
  const unsigned T = std::max(1u, std::min(requested, n() == 0 ? 1u : n()));
  if (T == 1) {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !(until_quiet && all_quiet())) {
      step_round(phase);
      ++executed;
    }
    return executed;
  }

  std::vector<RunStats> local(T);
  std::vector<std::vector<PendingDelivery>> pending(T);
  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> executed{0};
  std::barrier sync(static_cast<std::ptrdiff_t>(T));
  auto slice = [&](unsigned t) {
    const std::uint32_t per = (n() + T - 1) / T;
    const std::uint32_t b = std::min(n(), t * per);
    const std::uint32_t e = std::min(n(), b + per);
    return std::pair<std::uint32_t, std::uint32_t>{b, e};
  };
  // Persistent workers: one spawn per block, three barriers per round.
  auto work = [&](unsigned t) {
    const auto [b, e] = slice(t);
    for (std::uint32_t i = 0; i < max_rounds; ++i) {
      if (t == 0) {
        if (until_quiet && all_quiet()) done.store(true);
        if (!done.load()) {
          ++round_;
          executed.fetch_add(1);
          if (fault_enabled_) crash_index_.refresh(round_);
        }
      }
      sync.arrive_and_wait();  // round_ / crash index / stop decision visible
      if (done.load()) break;
      deliver_range(b, e, local[t], &pending[t]);
      sync.arrive_and_wait();  // all inboxes assembled
      if (cfg_.observer != nullptr) {
        // Single-threaded flush: workers hold contiguous ascending
        // receiver ranges, so draining buffers in worker order replays
        // the sequential engine's (round, receiver, port) event order
        // exactly. The flushed message is read from the receiver's inbox
        // slot, i.e. exactly what was delivered (post-fault/truncation);
        // the extra barrier keeps the flush ahead of the compute phase.
        if (t == 0) {
          for (auto& buf : pending) {
            for (const auto& ev : buf) {
              cfg_.observer->on_deliver(
                  ev.from, ev.to, contexts_[ev.to].inbox_[ev.inbox_index].msg,
                  round_);
            }
            buf.clear();
          }
        }
        sync.arrive_and_wait();  // observer flushed
      }
      compute_range(b, e);
      for (NodeId v = b; v < e; ++v) {
        local[t].max_node_memory_bits = std::max(
            local[t].max_node_memory_bits, programs_[v]->memory_bits());
      }
      sync.arrive_and_wait();  // all outboxes written
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(T - 1);
  for (unsigned t = 1; t < T; ++t) threads.emplace_back(work, t);
  work(0);
  for (auto& th : threads) th.join();

  RunStats merged;
  for (const auto& l : local) {
    merged.messages += l.messages;
    merged.bits += l.bits;
    merged.violations += l.violations;
    merged.max_edge_bits = std::max(merged.max_edge_bits, l.max_edge_bits);
    merged.max_node_memory_bits =
        std::max(merged.max_node_memory_bits, l.max_node_memory_bits);
    merged.messages_dropped += l.messages_dropped;
    merged.messages_corrupted += l.messages_corrupted;
    merged.crashed_node_rounds += l.crashed_node_rounds;
  }
  merged.rounds = executed.load();
  phase += merged;
  return executed.load();
}

void Network::start_if_needed() {
  if (started_) return;
  for (NodeId v = 0; v < n(); ++v) {
    require(programs_[v] != nullptr,
            "Network::run: init_programs was not called");
    programs_[v]->on_start(contexts_[v]);
  }
  started_ = true;
}

RunStats Network::run_phase(std::uint32_t max_rounds, bool until_quiet) {
  start_if_needed();
  RunStats phase;
  if (cfg_.engine == Engine::kParallel) {
    run_parallel_block(max_rounds, until_quiet, phase);
  } else {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !(until_quiet && all_quiet())) {
      step_round(phase);
      ++executed;
    }
  }
  // Per-phase truth, not lifetime state: quiesced reports whether the
  // network is quiescent *now*, at the end of this call.
  phase.quiesced = all_quiet();
  stats_ += phase;
  if (metrics_observer_ != nullptr) {
    metrics_observer_->flush();
    if (auto* m = metrics::global()) {
      m->add_counter("congest.phases");
      m->add_counter("congest.rounds", phase.rounds);
      m->add_counter("congest.messages", phase.messages);
      m->add_counter("congest.bits", phase.bits);
      m->add_counter("congest.messages_dropped", phase.messages_dropped);
      m->add_counter("congest.messages_corrupted", phase.messages_corrupted);
      m->add_counter("congest.bandwidth_violations", phase.violations);
      m->add_counter("congest.crashed_node_rounds", phase.crashed_node_rounds);
    }
  }
  return phase;
}

RunStats Network::run_rounds(std::uint32_t rounds) {
  return run_phase(rounds, /*until_quiet=*/false);
}

RunStats Network::run_until_quiescent(std::uint32_t max_rounds) {
  return run_phase(max_rounds, /*until_quiet=*/true);
}

}  // namespace qc::congest
