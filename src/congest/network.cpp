#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <sstream>
#include <thread>

#include "congest/metrics_observer.hpp"
#include "util/metrics.hpp"

namespace qc::congest {

bool neighbors_strictly_sorted(std::span<const graph::NodeId> neighbors) {
  return std::adjacent_find(neighbors.begin(), neighbors.end(),
                            std::greater_equal<graph::NodeId>()) ==
         neighbors.end();
}

std::vector<std::vector<std::uint32_t>> build_reverse_ports(
    std::span<const std::vector<graph::NodeId>> adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::vector<std::uint32_t>> reverse(n);
  for (std::size_t w = 0; w < n; ++w) {
    const auto& nb = adjacency[w];
    require(neighbors_strictly_sorted(nb),
            "build_reverse_ports: adjacency lists must be strictly sorted "
            "(port numbering and the reverse-port table both rely on it; an "
            "unsorted list would silently misroute messages)");
    reverse[w].resize(nb.size());
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const graph::NodeId u = nb[p];
      require(u < n, "build_reverse_ports: adjacency names an unknown node");
      const auto& unb = adjacency[u];
      const auto it = std::lower_bound(unb.begin(), unb.end(),
                                       static_cast<graph::NodeId>(w));
      require(it != unb.end() && *it == static_cast<graph::NodeId>(w),
              "build_reverse_ports: adjacency is not symmetric (a node "
              "lists a neighbor whose list omits the reverse edge)");
      reverse[w][p] = static_cast<std::uint32_t>(it - unb.begin());
    }
  }
  return reverse;
}

std::uint32_t NodeContext::port_to(NodeId v) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), v);
  require(it != neighbors_.end() && *it == v,
          "NodeContext::port_to: not adjacent to that node");
  return static_cast<std::uint32_t>(it - neighbors_.begin());
}

void NodeContext::send(std::uint32_t port, Message msg) {
  require(port < degree(), "NodeContext::send: port out of range");
  require(!port_used_[port],
          "NodeContext::send: at most one message per port per round");
  outbox_[port] = std::move(msg);
  port_used_[port] = 1;
  ++pending_sends_;  // drained into the quiescence counter per slice
}

void NodeContext::broadcast(const Message& msg) {
  // Copy-assigns straight into each outbox slot instead of routing through
  // send(): the by-value Message parameter there costs a second copy per
  // port, and broadcast is the hot send primitive of flooding workloads.
  const std::uint32_t deg = degree();
  for (std::uint32_t p = 0; p < deg; ++p) {
    require(!port_used_[p],
            "NodeContext::send: at most one message per port per round");
    outbox_[p] = msg;
    port_used_[p] = 1;
  }
  pending_sends_ += deg;
}

void NodeProgram::serialize_state(Message&) const {
  throw Error(
      "NodeProgram::serialize_state: this program does not implement shard "
      "state transfer (required to read results from a sharded run)");
}

void NodeProgram::restore_state(const Message&) {
  throw Error(
      "NodeProgram::restore_state: this program does not implement shard "
      "state transfer (required to read results from a sharded run)");
}

RunStats& RunStats::operator+=(const RunStats& other) {
  rounds += other.rounds;
  messages += other.messages;
  bits += other.bits;
  max_edge_bits = std::max(max_edge_bits, other.max_edge_bits);
  violations += other.violations;
  quiesced = other.quiesced;
  max_node_memory_bits =
      std::max(max_node_memory_bits, other.max_node_memory_bits);
  messages_dropped += other.messages_dropped;
  messages_corrupted += other.messages_corrupted;
  crashed_node_rounds += other.crashed_node_rounds;
  return *this;
}

Network::Network(const graph::Graph& g, NetworkConfig cfg)
    : graph_(&g), cfg_(std::move(cfg)) {
  bandwidth_bits_ = cfg_.bandwidth_bits != 0
                        ? cfg_.bandwidth_bits
                        : qc::congest_bandwidth_bits(g.n());
  require(cfg_.fault.drop_probability >= 0.0 &&
              cfg_.fault.drop_probability <= 1.0,
          "Network: fault drop_probability must be in [0,1]");
  require(cfg_.fault.corrupt_probability >= 0.0 &&
              cfg_.fault.corrupt_probability <= 1.0,
          "Network: fault corrupt_probability must be in [0,1]");
  for (const auto& w : cfg_.fault.crashes) {
    require(w.node < g.n(), "Network: crash schedule names unknown node");
    require(w.crash_round >= 1, "Network: crash rounds are 1-based");
    require(w.recover_round == 0 || w.recover_round > w.crash_round,
            "Network: crash window must recover after it crashes");
  }
  fault_enabled_ = cfg_.fault.enabled();
  crash_index_ = CrashIndex(cfg_.fault, g.n());
  if (auto* m = metrics::global()) {
    // Observe-only: composing the histogram observer into the delivery
    // seam never alters inboxes, stats or round accounting, so every
    // execution stays bit-identical to a metrics-off run.
    metrics_observer_ = std::make_shared<MetricsObserver>(m);
    cfg_.observer =
        MultiObserver::combine(std::move(cfg_.observer), metrics_observer_);
  }
  contexts_.resize(g.n());
  std::vector<std::vector<NodeId>> adjacency(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    adjacency[v].assign(nb.begin(), nb.end());
  }
  // Validates sortedness and symmetry of every adjacency list, then gives
  // delivery O(1) access to the sender's outbox slot for each edge.
  const auto reverse_ports = build_reverse_ports(adjacency);
  out_base_.resize(g.n());
  std::uint32_t slots = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    out_base_[v] = slots;
    slots += static_cast<std::uint32_t>(adjacency[v].size());
  }
  outbox_flat_.resize(slots);
  port_used_flat_.assign(slots, 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& ctx = contexts_[v];
    ctx.id_ = v;
    ctx.n_ = g.n();
    ctx.neighbors_ = std::move(adjacency[v]);
    ctx.outbox_ = outbox_flat_.data() + out_base_[v];
    ctx.port_used_ = port_used_flat_.data() + out_base_[v];
    // Fuse the reverse-port table with the flat-slot offsets: the slot
    // receiver v pulls from on port p is one array index away.
    ctx.in_slot_.resize(ctx.neighbors_.size());
    for (std::size_t p = 0; p < ctx.neighbors_.size(); ++p) {
      ctx.in_slot_[p] = out_base_[ctx.neighbors_[p]] + reverse_ports[v][p];
    }
    ctx.quiesce_ = quiesce_.get();
  }
  reseed_node_rngs();
  programs_.resize(g.n());
}

void Network::reseed_node_rngs() {
  Rng master(cfg_.seed);
  for (NodeId v = 0; v < n(); ++v) contexts_[v].rng_ = master.child(v);
}

void Network::init_programs(
    const std::function<std::unique_ptr<NodeProgram>(NodeId)>& make) {
  for (NodeId v = 0; v < n(); ++v) {
    programs_[v] = make(v);
    require(programs_[v] != nullptr,
            "Network::init_programs: factory returned null");
    auto& ctx = contexts_[v];
    ctx.round_ = 0;
    ctx.inbox_.clear();
    ctx.pending_sends_ = 0;
    ctx.halted_ = false;
  }
  // A mid-run re-init may leave queued-but-undelivered slots behind; wipe
  // the flat flags so the self-clearing invariant restarts from empty.
  std::fill(port_used_flat_.begin(), port_used_flat_.end(), std::uint8_t{0});
  quiesce_->inflight.store(0, std::memory_order_relaxed);
  quiesce_->halted.store(0, std::memory_order_relaxed);
  memory_audit_ = true;
  // Restart the per-node RNG streams from the master seed so a rerun of a
  // randomized program on the same Network reproduces the first run
  // bit-for-bit (the constructor seeds identically, so run one after
  // construction is unaffected).
  reseed_node_rngs();
  round_ = 0;
  stats_ = RunStats{};
  started_ = false;
}

bool Network::all_quiet_scan() const {
  for (NodeId v = 0; v < n(); ++v) {
    if (!contexts_[v].halted_) return false;
  }
  for (const std::uint8_t used : port_used_flat_) {
    if (used) return false;
  }
  return true;
}

bool Network::all_quiet() const {
  const bool quiet =
      quiesce_->halted.load(std::memory_order_relaxed) ==
          static_cast<std::int64_t>(n()) &&
      quiesce_->inflight.load(std::memory_order_relaxed) == 0;
  // The counters are the old scan incrementally maintained; keep the scan
  // as the debug-build ground truth. (inflight counts un-consumed outbox
  // slots, but at every all_quiet call site delivery has consumed all
  // slots of the previous round and only fresh sends remain, so the two
  // formulations agree exactly.)
  assert(quiet == all_quiet_scan());
  return quiet;
}

void Network::deliver_range(std::uint32_t begin, std::uint32_t end,
                            RunStats& local,
                            std::vector<PendingDelivery>* sink) {
  // Receiver-driven delivery: node w pulls, in port order, the message its
  // neighbor queued for it last round. Port-order assembly makes the inbox
  // deterministic regardless of engine or thread count. Observer events
  // either fire inline (sequential engine, sink == nullptr) or are
  // buffered per worker and flushed in receiver order at the round
  // barrier — the same (round, to, from) order either way. Fault decisions
  // are stateless hashes of (seed, round, from, to), so they are the same
  // under both engines as well. Crash checks go through the per-round
  // CrashIndex (refreshed at round start) instead of scanning the crash
  // list per edge.
  //
  // The common path is allocation-free and O(1) per edge: the sender's
  // outbox slot is one flat array index away (in_slot_, the precomputed
  // reverse-port table fused with the slot offsets — no binary search, no
  // detour through the sender's NodeContext) and is *moved* into the
  // receiver's inbox — each directed edge has exactly one receiver, so the
  // slot is consumed exactly once per round; the receiver clears the used
  // flag as it consumes, and the sender only writes it again on the far
  // side of a round barrier. Only bandwidth truncation builds a new
  // message; fault corruption flips a bit in the inbox slot in place.
  // Consumed messages are counted locally and drained into the quiescence
  // counter once per call, not once per message.
  // Loop-invariant members hoisted into locals: the compiler cannot keep
  // them in registers itself because the opaque calls in the loop body
  // (observer virtual call, inbox growth) could alias any member.
  const FaultPlan& fault = cfg_.fault;
  const bool fault_enabled = fault_enabled_;
  const std::uint32_t round = round_;
  const std::uint32_t bandwidth_bits = bandwidth_bits_;
  std::uint8_t* const port_used = port_used_flat_.data();
  Message* const outbox = outbox_flat_.data();
  DeliveryObserver* const observer = cfg_.observer.get();
  std::int64_t consumed = 0;
  for (NodeId w = begin; w < end; ++w) {
    auto& ctx = contexts_[w];
    ctx.round_ = round;
    ctx.inbox_.clear();
    const bool w_crashed = fault_enabled && crash_index_.down(w);
    if (w_crashed) ++local.crashed_node_rounds;
    const std::uint32_t deg = ctx.degree();
    for (std::uint32_t p = 0; p < deg; ++p) {
      const std::uint32_t s = ctx.in_slot_[p];
      if (!port_used[s]) continue;
      port_used[s] = 0;
      ++consumed;
      const NodeId u = ctx.neighbors_[p];
      if (fault_enabled &&
          (w_crashed || crash_index_.down(u) || fault.drops(round, u, w))) {
        ++local.messages_dropped;
        continue;
      }
      Message& slot = outbox[s];
      const std::uint32_t sz = slot.size_bits();
      if (sz > bandwidth_bits) [[unlikely]] {
        if (cfg_.policy == BandwidthPolicy::kEnforce) {
          std::ostringstream os;
          os << "bandwidth violation: " << sz << " bits on edge " << u << "->"
             << w << " in round " << round_ << " (bw=" << bandwidth_bits_
             << ")";
          throw BandwidthViolationError(os.str());
        }
        ++local.violations;
        if (cfg_.policy == BandwidthPolicy::kTruncate) {
          ctx.inbox_.emplace_back(p, slot.truncated(bandwidth_bits_));
        } else {
          ctx.inbox_.emplace_back(p, std::move(slot));
        }
      } else {
        ctx.inbox_.emplace_back(p, std::move(slot));
      }
      Message& delivered = ctx.inbox_.back().msg;
      if (fault_enabled && fault.corrupts(round, u, w)) {
        fault.corrupt_in_place(delivered, round, u, w);
        ++local.messages_corrupted;
      }
      const std::uint32_t delivered_bits = delivered.size_bits();
      ++local.messages;
      local.bits += delivered_bits;
      local.max_edge_bits = std::max(local.max_edge_bits, delivered_bits);
      if (observer != nullptr) {
        if (sink != nullptr) {
          sink->push_back(PendingDelivery{
              u, w, static_cast<std::uint32_t>(ctx.inbox_.size() - 1)});
        } else {
          observer->on_deliver(u, w, delivered, round);
        }
      }
      if (ctx.halted_) {  // a message re-activates a halted node
        ctx.halted_ = false;
        quiesce_->halted.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  if (consumed != 0) {
    quiesce_->inflight.fetch_sub(consumed, std::memory_order_relaxed);
  }
}

void Network::compute_range(std::uint32_t begin, std::uint32_t end) {
  // No flag-clearing pass: every queued slot was consumed (and its flag
  // cleared) by its receiver in this round's deliver phase — including a
  // crashed node's slots, whose messages were dropped with it. Programs
  // queue this round's sends into clean slots; their pending-send counts
  // drain into the quiescence counter in one batched atomic per slice.
  std::uint32_t sends = 0;
  for (NodeId v = begin; v < end; ++v) {
    auto& ctx = contexts_[v];
    if (fault_enabled_ && crash_index_.down(v)) continue;
    if (ctx.halted_ && ctx.inbox_.empty()) continue;
    programs_[v]->on_round(ctx);
    sends += ctx.pending_sends_;
    ctx.pending_sends_ = 0;
  }
  if (sends != 0) {
    quiesce_->inflight.fetch_add(sends, std::memory_order_relaxed);
  }
}

void Network::step_round(RunStats& phase) {
  ++round_;
  if (fault_enabled_) crash_index_.refresh(round_);
  RunStats local;
  deliver_range(0, n(), local, /*sink=*/nullptr);
  compute_range(0, n());
  if (memory_audit_) {
    for (NodeId v = 0; v < n(); ++v) {
      local.max_node_memory_bits =
          std::max(local.max_node_memory_bits, programs_[v]->memory_bits());
    }
    // Every program reported "not audited" in the first round: stop paying
    // the per-round virtual-call sweep (see NodeProgram::memory_bits).
    if (round_ == 1 && local.max_node_memory_bits == 0) memory_audit_ = false;
  }
  local.rounds = 1;
  phase += local;
}

std::uint32_t Network::run_parallel_block(std::uint32_t max_rounds,
                                          bool until_quiet, RunStats& phase) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned requested = cfg_.num_threads != 0 ? cfg_.num_threads : hw;
  const unsigned T = std::max(1u, std::min(requested, n() == 0 ? 1u : n()));
  if (T == 1) {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !(until_quiet && all_quiet())) {
      step_round(phase);
      ++executed;
    }
    return executed;
  }

  std::vector<RunStats> local(T);
  std::vector<std::vector<PendingDelivery>> pending(T);
  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> executed{0};
  std::barrier sync(static_cast<std::ptrdiff_t>(T));
  auto slice = [&](unsigned t) {
    const std::uint32_t per = (n() + T - 1) / T;
    const std::uint32_t b = std::min(n(), t * per);
    const std::uint32_t e = std::min(n(), b + per);
    return std::pair<std::uint32_t, std::uint32_t>{b, e};
  };
  // Persistent workers: one spawn per block, three barriers per round.
  auto work = [&](unsigned t) {
    const auto [b, e] = slice(t);
    for (std::uint32_t i = 0; i < max_rounds; ++i) {
      if (t == 0) {
        // Memory-audit decision for the round that just finished: workers
        // wrote their local[] maxima before the round-end barrier, so
        // thread 0 may read them here race-free (see step_round for the
        // sequential twin of this rule).
        if (memory_audit_ && round_ == 1) {
          std::uint64_t mx = 0;
          for (const auto& l : local) {
            mx = std::max(mx, l.max_node_memory_bits);
          }
          if (mx == 0) memory_audit_ = false;
        }
        if (until_quiet && all_quiet()) done.store(true);
        if (!done.load()) {
          ++round_;
          executed.fetch_add(1);
          if (fault_enabled_) crash_index_.refresh(round_);
        }
      }
      sync.arrive_and_wait();  // round_ / crash index / stop decision visible
      if (done.load()) break;
      deliver_range(b, e, local[t], &pending[t]);
      sync.arrive_and_wait();  // all inboxes assembled
      if (cfg_.observer != nullptr) {
        // Single-threaded flush: workers hold contiguous ascending
        // receiver ranges, so draining buffers in worker order replays
        // the sequential engine's (round, receiver, port) event order
        // exactly. The flushed message is read from the receiver's inbox
        // slot, i.e. exactly what was delivered (post-fault/truncation);
        // the extra barrier keeps the flush ahead of the compute phase.
        if (t == 0) {
          for (auto& buf : pending) {
            for (const auto& ev : buf) {
              cfg_.observer->on_deliver(
                  ev.from, ev.to, contexts_[ev.to].inbox_[ev.inbox_index].msg,
                  round_);
            }
            buf.clear();
          }
        }
        sync.arrive_and_wait();  // observer flushed
      }
      compute_range(b, e);
      if (memory_audit_) {
        for (NodeId v = b; v < e; ++v) {
          local[t].max_node_memory_bits = std::max(
              local[t].max_node_memory_bits, programs_[v]->memory_bits());
        }
      }
      sync.arrive_and_wait();  // all outboxes written
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(T - 1);
  for (unsigned t = 1; t < T; ++t) threads.emplace_back(work, t);
  work(0);
  for (auto& th : threads) th.join();

  RunStats merged;
  for (const auto& l : local) {
    merged.messages += l.messages;
    merged.bits += l.bits;
    merged.violations += l.violations;
    merged.max_edge_bits = std::max(merged.max_edge_bits, l.max_edge_bits);
    merged.max_node_memory_bits =
        std::max(merged.max_node_memory_bits, l.max_node_memory_bits);
    merged.messages_dropped += l.messages_dropped;
    merged.messages_corrupted += l.messages_corrupted;
    merged.crashed_node_rounds += l.crashed_node_rounds;
  }
  merged.rounds = executed.load();
  // A block that ended right after round 1 never reached the top-of-round
  // decision point; settle the memory-audit question here so later phases
  // skip the sweep too.
  if (memory_audit_ && round_ == 1 && merged.max_node_memory_bits == 0) {
    memory_audit_ = false;
  }
  phase += merged;
  return executed.load();
}

void Network::shard_set_observer_collection(bool collect) {
  metrics_observer_.reset();
  if (collect) {
    // Non-null so deliver_range records into the caller's sink; never
    // invoked directly because shard workers always pass a sink.
    cfg_.observer = std::make_shared<CallbackObserver>(
        [](NodeId, NodeId, const Message&, std::uint32_t) {});
  } else {
    cfg_.observer = nullptr;
  }
}

void Network::shard_start_range(std::uint32_t begin, std::uint32_t end) {
  std::uint32_t sends = 0;
  for (NodeId v = begin; v < end; ++v) {
    require(programs_[v] != nullptr,
            "Network::shard_start_range: init_programs was not called");
    programs_[v]->on_start(contexts_[v]);
    sends += contexts_[v].pending_sends_;
    contexts_[v].pending_sends_ = 0;
  }
  if (sends != 0) {
    quiesce_->inflight.fetch_add(sends, std::memory_order_relaxed);
  }
}

void Network::shard_begin_round() {
  ++round_;
  if (fault_enabled_) crash_index_.refresh(round_);
}

std::uint64_t Network::shard_memory_max_range(std::uint32_t begin,
                                              std::uint32_t end) const {
  std::uint64_t mx = 0;
  for (NodeId v = begin; v < end; ++v) {
    mx = std::max(mx, programs_[v]->memory_bits());
  }
  return mx;
}

Message Network::shard_extract_slot(std::uint32_t slot) {
  require(slot < outbox_flat_.size() && port_used_flat_[slot] != 0,
          "Network::shard_extract_slot: slot is not queued");
  port_used_flat_[slot] = 0;
  return std::move(outbox_flat_[slot]);  // move resets the slot to empty
}

void Network::shard_inject_slot(std::uint32_t slot, Message msg) {
  require(slot < outbox_flat_.size() && port_used_flat_[slot] == 0,
          "Network::shard_inject_slot: slot is already queued");
  outbox_flat_[slot] = std::move(msg);
  port_used_flat_[slot] = 1;
}

void Network::start_if_needed() {
  if (started_) return;
  std::uint32_t sends = 0;
  for (NodeId v = 0; v < n(); ++v) {
    require(programs_[v] != nullptr,
            "Network::run: init_programs was not called");
    programs_[v]->on_start(contexts_[v]);
    sends += contexts_[v].pending_sends_;
    contexts_[v].pending_sends_ = 0;
  }
  if (sends != 0) {
    quiesce_->inflight.fetch_add(sends, std::memory_order_relaxed);
  }
  started_ = true;
}

RunStats Network::run_phase(std::uint32_t max_rounds, bool until_quiet) {
  start_if_needed();
  RunStats phase;
  if (cfg_.engine == Engine::kParallel) {
    run_parallel_block(max_rounds, until_quiet, phase);
  } else {
    std::uint32_t executed = 0;
    while (executed < max_rounds && !(until_quiet && all_quiet())) {
      step_round(phase);
      ++executed;
    }
  }
  // Per-phase truth, not lifetime state: quiesced reports whether the
  // network is quiescent *now*, at the end of this call.
  phase.quiesced = all_quiet();
  stats_ += phase;
  if (metrics_observer_ != nullptr) {
    metrics_observer_->flush();
    if (auto* m = metrics::global()) {
      m->add_counter("congest.phases");
      m->add_counter("congest.rounds", phase.rounds);
      m->add_counter("congest.messages", phase.messages);
      m->add_counter("congest.bits", phase.bits);
      m->add_counter("congest.messages_dropped", phase.messages_dropped);
      m->add_counter("congest.messages_corrupted", phase.messages_corrupted);
      m->add_counter("congest.bandwidth_violations", phase.violations);
      m->add_counter("congest.crashed_node_rounds", phase.crashed_node_rounds);
    }
  }
  return phase;
}

RunStats Network::run_rounds(std::uint32_t rounds) {
  return run_phase(rounds, /*until_quiet=*/false);
}

RunStats Network::run_until_quiescent(std::uint32_t max_rounds) {
  return run_phase(max_rounds, /*until_quiet=*/true);
}

}  // namespace qc::congest
