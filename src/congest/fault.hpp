#pragma once

#include <cstdint>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace qc::congest {

/// One node-crash interval of a FaultPlan: `node` is down for every round
/// r with crash_round <= r < recover_round (rounds are 1-based). A
/// recover_round of 0 means the node never comes back.
///
/// While down, a node neither sends nor receives nor computes: messages it
/// queued before the crash are lost, messages addressed to it are dropped,
/// and `on_round` is not invoked. Its `vote_halt` state is frozen, so a
/// permanently crashed node that had not halted keeps
/// `run_until_quiescent` from reporting quiescence (the run times out —
/// the graceful-degradation layer in src/algos turns that into a
/// timed-out/degraded status instead of an abort).
struct CrashWindow {
  graph::NodeId node = 0;
  std::uint32_t crash_round = 1;
  std::uint32_t recover_round = 0;  ///< 0 = never recovers
};

/// Deterministic fault schedule applied by Network::deliver_range — a
/// model *extension* beyond the paper, whose CONGEST network is perfectly
/// reliable (see docs/model.md).
///
/// Every decision (drop this message? corrupt it? which bit?) is a pure
/// function of (seed, round, sender, receiver): no shared RNG stream is
/// consumed, so the decisions do not depend on delivery order, engine, or
/// thread count. For a fixed plan, sequential and parallel executions are
/// bit-identical — the same guarantee the observer layer gives for
/// fault-free runs.
struct FaultPlan {
  /// Per-delivery probability that a queued message vanishes in transit.
  double drop_probability = 0.0;
  /// Per-delivery probability that one bit of one field is flipped (the
  /// flipped bit stays inside the field's declared width, so a corrupted
  /// message is still well-formed and costs the same bandwidth).
  double corrupt_probability = 0.0;
  /// Seed of the stateless per-edge-per-round fault rolls.
  std::uint64_t seed = 1;
  /// Node crash/recover schedule; empty = no crashes.
  std::vector<CrashWindow> crashes;

  /// True if the plan can affect an execution at all. A disabled plan is
  /// never consulted, so default-constructed configs behave exactly as
  /// before the fault layer existed.
  bool enabled() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           !crashes.empty();
  }

  /// True iff `v` is down in round `round` under the crash schedule.
  bool crashed(graph::NodeId v, std::uint32_t round) const;

  /// True iff the message from->to of round `round` is dropped.
  bool drops(std::uint32_t round, graph::NodeId from, graph::NodeId to) const;

  /// True iff the message from->to of round `round` gets a bit flip.
  bool corrupts(std::uint32_t round, graph::NodeId from,
                graph::NodeId to) const;

  /// Flips one deterministically chosen bit of one field of `msg` (no-op
  /// for field-less messages). Call only when corrupts(...) returned true.
  void corrupt_in_place(Message& msg, std::uint32_t round, graph::NodeId from,
                        graph::NodeId to) const;

  /// The same plan with a seed decorrelated per retry attempt; attempt 0
  /// returns the plan unchanged, so a single attempt is bit-identical to
  /// calling the un-wrapped function. Used by the retry-with-extended-
  /// budget wrappers in src/algos.
  FaultPlan for_attempt(std::uint32_t attempt) const;
};

/// O(1)-per-check view of a FaultPlan's crash schedule.
///
/// FaultPlan::crashed linearly scans the crash list, which the delivery
/// hot loop would otherwise pay per (sender, receiver) edge per round. The
/// Network instead builds one CrashIndex at construction and refreshes it
/// once per round: refresh(r) recomputes the down-set in O(#crash windows)
/// (only nodes named by some window are ever touched), after which down(v)
/// is a flat array read.
///
/// Semantics are exactly FaultPlan::crashed — proven by a parity test over
/// every (node, round) pair (see tests/test_faults.cpp).
class CrashIndex {
 public:
  CrashIndex() = default;
  /// `n` = node count; windows naming nodes >= n are rejected upstream by
  /// the Network constructor.
  CrashIndex(const FaultPlan& plan, std::uint32_t n);

  /// Recomputes the down-set for `round`. Call once per round, before any
  /// down() query for that round.
  void refresh(std::uint32_t round);

  /// True iff `v` is down in the round last passed to refresh().
  bool down(graph::NodeId v) const {
    return !down_.empty() && down_[v] != 0;
  }

 private:
  std::vector<CrashWindow> windows_;
  std::vector<graph::NodeId> touched_;  ///< distinct nodes with windows
  std::vector<std::uint8_t> down_;      ///< empty when no crash windows
};

}  // namespace qc::congest
