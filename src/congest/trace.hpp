#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"

namespace qc::congest {

/// One delivered message, as seen by a TraceRecorder.
struct TraceEvent {
  std::uint32_t round = 0;
  graph::NodeId from = 0;
  graph::NodeId to = 0;
  std::uint32_t bits = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// Records every delivery of the executions it observes — the raw material
/// for the lower-bound audits (information light cones, per-block cut
/// traffic) and for debugging distributed algorithms round by round.
///
/// Like commcc::CutMeter, arm() returns a NetworkConfig with the recorder
/// installed (composed with any observer already present); the recorder
/// accumulates across all executions run under that config. Works under
/// either engine — the parallel engine delivers the same event stream as
/// the sequential one.
class TraceRecorder {
 public:
  TraceRecorder() : sink_(std::make_shared<Sink>()) {}

  NetworkConfig arm(NetworkConfig base) const {
    base.observer = MultiObserver::combine(std::move(base.observer), sink_);
    return base;
  }

  /// The recorder as a plain observer, for manual composition.
  std::shared_ptr<DeliveryObserver> observer() const { return sink_; }

  const std::vector<TraceEvent>& events() const { return sink_->events; }

  /// Largest round index observed (tracked incrementally, O(1)).
  std::uint32_t last_round() const { return sink_->last_round; }

  /// Total delivered bits per round (index 0 unused; rounds are 1-based).
  std::vector<std::uint64_t> bits_per_round() const {
    std::vector<std::uint64_t> out(sink_->last_round + 1, 0);
    for (const auto& e : sink_->events) out[e.round] += e.bits;
    return out;
  }

  void clear() {
    sink_->events.clear();
    sink_->last_round = 0;
  }

 private:
  struct Sink final : DeliveryObserver {
    void on_deliver(graph::NodeId from, graph::NodeId to, const Message& msg,
                    std::uint32_t round) override {
      events.push_back(TraceEvent{round, from, to, msg.size_bits()});
      if (round > last_round) last_round = round;
    }

    std::vector<TraceEvent> events;
    std::uint32_t last_round = 0;
  };

  std::shared_ptr<Sink> sink_;
};

}  // namespace qc::congest
