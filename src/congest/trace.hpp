#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"

namespace qc::congest {

/// One delivered message, as seen by a TraceRecorder.
struct TraceEvent {
  std::uint32_t round = 0;
  graph::NodeId from = 0;
  graph::NodeId to = 0;
  std::uint32_t bits = 0;
};

/// Records every delivery of the executions it observes — the raw material
/// for the lower-bound audits (information light cones, per-block cut
/// traffic) and for debugging distributed algorithms round by round.
///
/// Like commcc::CutMeter, arm() returns a NetworkConfig with the observer
/// installed (sequential engine enforced); the recorder accumulates across
/// all executions run under that config.
class TraceRecorder {
 public:
  TraceRecorder() : events_(std::make_shared<std::vector<TraceEvent>>()) {}

  NetworkConfig arm(NetworkConfig base) const {
    base.engine = Engine::kSequential;
    auto events = events_;
    base.on_deliver = [events](graph::NodeId from, graph::NodeId to,
                               const Message& msg, std::uint32_t round) {
      events->push_back(TraceEvent{round, from, to, msg.size_bits()});
    };
    return base;
  }

  const std::vector<TraceEvent>& events() const { return *events_; }

  std::uint32_t last_round() const {
    std::uint32_t r = 0;
    for (const auto& e : *events_) r = std::max(r, e.round);
    return r;
  }

  /// Total delivered bits per round (index 0 unused; rounds are 1-based).
  std::vector<std::uint64_t> bits_per_round() const {
    std::vector<std::uint64_t> out(last_round() + 1, 0);
    for (const auto& e : *events_) out[e.round] += e.bits;
    return out;
  }

  void clear() { events_->clear(); }

 private:
  std::shared_ptr<std::vector<TraceEvent>> events_;
};

}  // namespace qc::congest
