#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace qc::congest {

/// Engine-agnostic sink for delivered messages. Both execution engines
/// feed it the same event stream in the same deterministic order — for
/// every round, receivers ascending, and per receiver the senders in port
/// (= neighbor-id) order. The sequential engine invokes the sink inline;
/// the parallel engine buffers per worker and flushes the merged stream
/// from one thread at the round barrier, so implementations never need
/// their own locking and traces are bit-identical across engines.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;

  /// One delivered message: `from` sent `msg` to `to`, arriving in `round`.
  virtual void on_deliver(graph::NodeId from, graph::NodeId to,
                          const Message& msg, std::uint32_t round) = 0;
};

/// Wraps a callable as an observer — for tests and one-off tooling where a
/// dedicated class is overkill.
class CallbackObserver final : public DeliveryObserver {
 public:
  using Callback = std::function<void(graph::NodeId from, graph::NodeId to,
                                      const Message& msg,
                                      std::uint32_t round)>;

  explicit CallbackObserver(Callback cb) : cb_(std::move(cb)) {}

  void on_deliver(graph::NodeId from, graph::NodeId to, const Message& msg,
                  std::uint32_t round) override {
    cb_(from, to, msg, round);
  }

 private:
  Callback cb_;
};

/// First-class observer composition: fans every delivery out to each child
/// in registration order. This replaces ad-hoc lambda chaining — drivers
/// that want to add their own instrumentation on top of a caller-supplied
/// observer combine the two instead of wrapping closures.
class MultiObserver final : public DeliveryObserver {
 public:
  MultiObserver() = default;
  explicit MultiObserver(
      std::vector<std::shared_ptr<DeliveryObserver>> children)
      : children_(std::move(children)) {}

  void add(std::shared_ptr<DeliveryObserver> child) {
    if (child != nullptr) children_.push_back(std::move(child));
  }

  void on_deliver(graph::NodeId from, graph::NodeId to, const Message& msg,
                  std::uint32_t round) override {
    for (const auto& child : children_) {
      child->on_deliver(from, to, msg, round);
    }
  }

  /// Combines two possibly-null observers into one: returns the non-null
  /// one when the other is null, otherwise a MultiObserver invoking
  /// `first` then `second` per event.
  static std::shared_ptr<DeliveryObserver> combine(
      std::shared_ptr<DeliveryObserver> first,
      std::shared_ptr<DeliveryObserver> second) {
    if (first == nullptr) return second;
    if (second == nullptr) return first;
    return std::make_shared<MultiObserver>(
        std::vector<std::shared_ptr<DeliveryObserver>>{std::move(first),
                                                       std::move(second)});
  }

 private:
  std::vector<std::shared_ptr<DeliveryObserver>> children_;
};

}  // namespace qc::congest
