#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace qc::commcc {

using graph::Edge;
using graph::NodeId;

/// A (b, k, d1, d2)-reduction from disjointness to diameter computation
/// (Definition 3): a fixed two-sided graph, b cut edges, and input maps
/// g_n / h_n that add edges *within* each side so that
///   DISJ_k(x, y) = 1  =>  diameter(G_n(x, y)) <= d1,
///   DISJ_k(x, y) = 0  =>  diameter(G_n(x, y)) >= d2.
///
/// (Definition 3 states the conditions on Delta(G), the largest U-V
/// distance; in both constructions used here the intra-side distances never
/// exceed d1, so Delta and the full diameter coincide on the relevant
/// threshold — the tests verify the diameter form directly.)
struct Reduction {
  std::string name;
  std::uint32_t k = 0;   ///< DISJ input length
  std::uint32_t d1 = 0;  ///< diameter when disjoint
  std::uint32_t d2 = 0;  ///< diameter when intersecting
  std::uint32_t num_nodes = 0;

  std::vector<NodeId> u_side;  ///< Alice's vertices
  std::vector<NodeId> v_side;  ///< Bob's vertices

  std::vector<Edge> fixed_edges;  ///< input-independent edges (both kinds)
  std::vector<Edge> cut_edges;    ///< the b fixed edges crossing the partition

  /// Input-dependent edges within U (resp. V).
  std::function<std::vector<Edge>(const std::vector<bool>&)> left_edges;
  std::function<std::vector<Edge>(const std::vector<bool>&)> right_edges;

  std::uint32_t b() const {
    return static_cast<std::uint32_t>(cut_edges.size());
  }

  /// side_of[v] == true iff v is on the U (Alice) side.
  std::vector<bool> u_mask() const;

  /// Builds G_n(x, y).
  graph::Graph instantiate(const std::vector<bool>& x,
                           const std::vector<bool>& y) const;
};

/// Theorem 8 [HW12] (Figure 4): a (Theta(n), Theta(n^2), 2, 3)-reduction.
/// `s` is the per-clique size; n = 4s + 2 nodes, k = s^2.
Reduction hw12_reduction(std::uint32_t s);

/// Theorem 9 [ACHK16]: a (Theta(log n), Theta(n), 4, 5)-reduction with only
/// b = 2*ceil(log2 k) + 1 cut edges.
///
/// ACHK16's construction is cited but not spelled out in the paper; this is
/// a bit-gadget reconstruction with the same (b, k, d1, d2) parameters (see
/// DESIGN.md §1): side hubs p_l/p_u (resp. q_r/q_v), bit nodes u_h^c
/// (resp. v_h^c) wired so that d(l_i, r_j) = 3 whenever i != j via any
/// differing bit, while d(l_i, r_i) = 5 unless an input edge (x_i = 0 or
/// y_i = 0) shortcuts it to 3. Conditions (i)/(ii) are verified
/// exhaustively in the tests.
Reduction achk16_reduction(std::uint32_t k);

/// The Figure 8 construction: instantiate G_n(x, y) and replace each of the
/// b cut edges by a path of d+1 edges (d fresh nodes each), turning the
/// (b, k, d1, d2)-reduction into a decision between diameter d+d1 and
/// d+d2 on a Theta(n + b*d)-node network. If `u_mask_out` is non-null it
/// receives the Alice-side mask of the *subdivided* graph, with each path's
/// first half assigned to Alice (matching the P_1..P_d layering of
/// Section 6.2).
graph::Graph subdivide_cut(const Reduction& red, const std::vector<bool>& x,
                           const std::vector<bool>& y, std::uint32_t d,
                           std::vector<bool>* u_mask_out = nullptr);

/// The path network G_d of Figure 5: nodes A = 0, P_1..P_d = 1..d,
/// B = d+1; d+2 nodes, d+1 edges.
graph::Graph path_network(std::uint32_t d);

}  // namespace qc::commcc
