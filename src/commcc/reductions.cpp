#include "commcc/reductions.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::commcc {

std::vector<bool> Reduction::u_mask() const {
  std::vector<bool> mask(num_nodes, false);
  for (NodeId v : u_side) mask[v] = true;
  return mask;
}

graph::Graph Reduction::instantiate(const std::vector<bool>& x,
                                    const std::vector<bool>& y) const {
  require(x.size() == k && y.size() == k,
          "Reduction::instantiate: input length must be k");
  std::vector<Edge> edges = fixed_edges;
  const auto lx = left_edges(x);
  const auto ry = right_edges(y);
  edges.insert(edges.end(), lx.begin(), lx.end());
  edges.insert(edges.end(), ry.begin(), ry.end());
  return graph::Graph::from_edges(num_nodes, edges);
}

Reduction hw12_reduction(std::uint32_t s) {
  require(s >= 2, "hw12_reduction: need s >= 2");
  Reduction red;
  red.name = "hw12";
  red.k = s * s;
  red.d1 = 2;
  red.d2 = 3;
  // Layout (Figure 4): L = [0, s), L' = [s, 2s), a = 2s on the U side;
  // R = [2s+1, 3s+1), R' = [3s+1, 4s+1), b = 4s+1 on the V side.
  const NodeId L = 0, Lp = s, a = 2 * s;
  const NodeId R = 2 * s + 1, Rp = 3 * s + 1, bnode = 4 * s + 1;
  red.num_nodes = 4 * s + 2;
  for (NodeId v = 0; v <= a; ++v) red.u_side.push_back(v);
  for (NodeId v = R; v <= bnode; ++v) red.v_side.push_back(v);

  auto& E = red.fixed_edges;
  for (std::uint32_t i = 0; i < s; ++i) {
    for (std::uint32_t j = i + 1; j < s; ++j) {
      E.push_back({L + i, L + j});    // L clique
      E.push_back({Lp + i, Lp + j});  // L' clique
      E.push_back({R + i, R + j});    // R clique
      E.push_back({Rp + i, Rp + j});  // R' clique
    }
    E.push_back({a, L + i});
    E.push_back({a, Lp + i});
    E.push_back({bnode, R + i});
    E.push_back({bnode, Rp + i});
    // The Theta(n) cut: l_i - r_i and l'_i - r'_i.
    red.cut_edges.push_back({L + i, R + i});
    red.cut_edges.push_back({Lp + i, Rp + i});
  }
  red.cut_edges.push_back({a, bnode});
  E.insert(E.end(), red.cut_edges.begin(), red.cut_edges.end());

  // x_{i,j} = 0 adds {l_i, l'_j}; y_{i,j} = 0 adds {r_i, r'_j}.
  red.left_edges = [s, L, Lp](const std::vector<bool>& x) {
    std::vector<Edge> out;
    for (std::uint32_t i = 0; i < s; ++i) {
      for (std::uint32_t j = 0; j < s; ++j) {
        if (!x[i * s + j]) out.push_back({L + i, Lp + j});
      }
    }
    return out;
  };
  red.right_edges = [s, R, Rp](const std::vector<bool>& y) {
    std::vector<Edge> out;
    for (std::uint32_t i = 0; i < s; ++i) {
      for (std::uint32_t j = 0; j < s; ++j) {
        if (!y[i * s + j]) out.push_back({R + i, Rp + j});
      }
    }
    return out;
  };
  return red;
}

Reduction achk16_reduction(std::uint32_t k) {
  require(k >= 2, "achk16_reduction: need k >= 2");
  const std::uint32_t B = qc::ceil_log2(k) == 0 ? 1 : qc::ceil_log2(k);
  Reduction red;
  red.name = "achk16";
  red.k = k;
  red.d1 = 4;
  red.d2 = 5;

  // U side: l_1..l_k, bit nodes u_h^c, hubs p_l (adjacent to all l_i) and
  // p_u (adjacent to all u_h^c). V side mirrors with r/v/q_r/q_v.
  const NodeId Lbase = 0;
  const NodeId Ubit = k;             // u_h^c at Ubit + 2h + c
  const NodeId p_l = k + 2 * B, p_u = p_l + 1;
  const NodeId Rbase = p_u + 1;
  const NodeId Vbit = Rbase + k;     // v_h^c at Vbit + 2h + c
  const NodeId q_r = Rbase + k + 2 * B, q_v = q_r + 1;
  red.num_nodes = q_v + 1;
  for (NodeId v = 0; v <= p_u; ++v) red.u_side.push_back(v);
  for (NodeId v = Rbase; v <= q_v; ++v) red.v_side.push_back(v);

  auto ubit = [Ubit](std::uint32_t h, std::uint32_t c) {
    return Ubit + 2 * h + c;
  };
  auto vbit = [Vbit](std::uint32_t h, std::uint32_t c) {
    return Vbit + 2 * h + c;
  };

  auto& E = red.fixed_edges;
  for (std::uint32_t i = 0; i < k; ++i) {
    E.push_back({p_l, Lbase + i});
    E.push_back({q_r, Rbase + i});
    for (std::uint32_t h = 0; h < B; ++h) {
      E.push_back({Lbase + i, ubit(h, qc::bit_at(i, h))});
      E.push_back({Rbase + i, vbit(h, qc::bit_at(i, h))});
    }
  }
  E.push_back({p_l, p_u});
  E.push_back({q_r, q_v});
  for (std::uint32_t h = 0; h < B; ++h) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      E.push_back({p_u, ubit(h, c)});
      E.push_back({q_v, vbit(h, c)});
      // The bit-gadget cut: u_h^c -- v_h^{1-c}.
      if (c == 0) {
        red.cut_edges.push_back({ubit(h, 0), vbit(h, 1)});
        red.cut_edges.push_back({ubit(h, 1), vbit(h, 0)});
      }
    }
  }
  red.cut_edges.push_back({p_u, q_v});
  E.insert(E.end(), red.cut_edges.begin(), red.cut_edges.end());

  // x_i = 0 shortcuts l_i to the complement bit nodes (all of them, so the
  // d(l_i, r_i) = 3 path exists through any position); same on the right.
  red.left_edges = [k, B, Lbase, ubit](const std::vector<bool>& x) {
    std::vector<Edge> out;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (x[i]) continue;
      for (std::uint32_t h = 0; h < B; ++h) {
        out.push_back({Lbase + i, ubit(h, 1 - qc::bit_at(i, h))});
      }
    }
    return out;
  };
  red.right_edges = [k, B, Rbase, vbit](const std::vector<bool>& y) {
    std::vector<Edge> out;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (y[i]) continue;
      for (std::uint32_t h = 0; h < B; ++h) {
        out.push_back({Rbase + i, vbit(h, 1 - qc::bit_at(i, h))});
      }
    }
    return out;
  };
  return red;
}

graph::Graph subdivide_cut(const Reduction& red, const std::vector<bool>& x,
                           const std::vector<bool>& y, std::uint32_t d,
                           std::vector<bool>* u_mask_out) {
  require(d >= 1, "subdivide_cut: need d >= 1");
  // Assemble all edges except the cut, then path-expand each cut edge.
  graph::GraphBuilder builder(red.num_nodes);
  auto is_cut = [&](const Edge& e) {
    const Edge canon{std::min(e.first, e.second),
                     std::max(e.first, e.second)};
    for (const auto& c : red.cut_edges) {
      if (Edge{std::min(c.first, c.second), std::max(c.first, c.second)} ==
          canon) {
        return true;
      }
    }
    return false;
  };
  for (const auto& e : red.fixed_edges) {
    if (!is_cut(e)) builder.add_edge(e.first, e.second);
  }
  for (const auto& e : red.left_edges(x)) builder.add_edge(e.first, e.second);
  for (const auto& e : red.right_edges(y)) builder.add_edge(e.first, e.second);

  const auto umask_base = red.u_mask();
  std::vector<bool> umask = umask_base;
  for (const auto& [cu, cv] : red.cut_edges) {
    // Orient each path from the U endpoint to the V endpoint so the first
    // half of the dummies belongs to Alice's simulation layers.
    const NodeId from = umask_base[cu] ? cu : cv;
    const NodeId to = umask_base[cu] ? cv : cu;
    auto inner = builder.add_path_between(from, to, d);
    umask.resize(builder.num_nodes(), false);
    for (std::uint32_t j = 0; j < inner.size(); ++j) {
      umask[inner[j]] = j < (d + 1) / 2;
    }
  }
  if (u_mask_out != nullptr) *u_mask_out = umask;
  return builder.build();
}

graph::Graph path_network(std::uint32_t d) {
  return graph::make_path(d + 2);
}

}  // namespace qc::commcc
