#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "commcc/reductions.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "graph/graph.hpp"
#include "qsim/search.hpp"
#include "util/rng.hpp"

namespace qc::commcc {

/// Communication costs of a two-party protocol obtained by simulating a
/// distributed algorithm (the transformations of Theorems 10 and 11).
struct TwoPartyCosts {
  std::uint32_t distributed_rounds = 0;
  std::uint64_t messages = 0;  ///< messages Alice <-> Bob
  std::uint64_t qubits = 0;    ///< qubit capacity the simulation ships
};

/// Theorem 10: an r-round algorithm on G_n(x, y) with b cut edges of
/// bandwidth bw becomes a 2r-message protocol of O(r * b * bw) qubits (one
/// message per direction per round carrying all b edge contents).
TwoPartyCosts theorem10_transform(std::uint32_t rounds, std::uint32_t b,
                                  std::uint32_t bw);

/// Theorem 11: an r-round algorithm on the path network G_d whose
/// intermediate nodes hold at most s qubits becomes an O(r/d)-message
/// protocol of O(r * (bw + s)) qubits — each of the ~r/d blocks of the
/// Figure 7 simulation ships d message registers (bw qubits) and d private
/// registers (s qubits).
TwoPartyCosts theorem11_transform(std::uint32_t rounds, std::uint32_t d,
                                  std::uint32_t bw, std::uint64_t s_memory);

/// The [BGK+15] bound (Theorem 5): an m-message quantum protocol for
/// DISJ_k needs Omega~(k/m + m) qubits. Returns the bound with the polylog
/// suppressed.
double bgk_lower_bound(double k, double messages);

/// Theorem 10 + Theorem 5 combined: any quantum algorithm deciding the
/// (b, k, d1, d2) diameter gap needs Omega~(sqrt(k/b)) rounds.
double theorem10_round_floor(double k, double b);

/// Theorem 3: with s qubits of memory per node, exact diameter needs
/// Omega~(sqrt(n*D/s)) rounds.
double theorem3_round_floor(double n, double diameter, double s_memory);

/// Tallies the traffic crossing a fixed vertex partition during CONGEST
/// executions — the executable core of the Theorem 10 proof: everything
/// Alice's simulation must forward to Bob's is exactly this traffic.
///
/// Arm a NetworkConfig with arm() and pass it to any driver; the meter
/// accumulates across all executions it observes (phased drivers run
/// several Networks). Works under either engine: the meter is a
/// congest::DeliveryObserver, and both engines feed observers the same
/// deterministic event stream.
class CutMeter {
 public:
  explicit CutMeter(std::vector<bool> u_mask);

  /// Returns `base` with the meter installed, composed with any observer
  /// already present.
  congest::NetworkConfig arm(congest::NetworkConfig base) const;

  /// The meter as a plain observer, for manual composition.
  std::shared_ptr<congest::DeliveryObserver> observer() const {
    return sink_;
  }

  std::uint64_t crossing_bits() const { return sink_->bits; }
  std::uint64_t crossing_messages() const { return sink_->messages; }
  /// Largest round index observed with crossing traffic.
  std::uint32_t last_crossing_round() const { return sink_->last_round; }

 private:
  struct Sink final : congest::DeliveryObserver {
    void on_deliver(graph::NodeId from, graph::NodeId to,
                    const congest::Message& msg,
                    std::uint32_t round) override;

    std::vector<bool> u_mask;
    std::uint64_t bits = 0;
    std::uint64_t messages = 0;
    std::uint32_t last_round = 0;
  };
  std::shared_ptr<Sink> sink_;
};

/// Executable Theorem 10: runs a diameter `solver` on G_n(x, y), metering
/// the cut, and packages the result as a two-party DISJ_k protocol
/// transcript ("diameter <= d1" <=> disjoint).
struct TwoPartyRun {
  bool decided_disjoint = false;
  std::uint32_t diameter = 0;
  std::uint32_t rounds = 0;          ///< distributed rounds simulated
  std::uint64_t cut_bits = 0;        ///< traffic Alice <-> Bob actually carried
  TwoPartyCosts costs;               ///< the Theorem 10 charge
};

using DiameterSolver = std::function<std::pair<std::uint32_t, std::uint32_t>(
    const graph::Graph&, const congest::NetworkConfig&)>;

TwoPartyRun two_party_diameter_protocol(const Reduction& red,
                                        const std::vector<bool>& x,
                                        const std::vector<bool>& y,
                                        const DiameterSolver& solver,
                                        congest::NetworkConfig base = {});

/// A concrete protocol over the Figure 5 path network: A holds x, B holds
/// y (k bits each); A streams its input in bandwidth-sized chunks, B
/// answers with DISJ_k(x, y), and the result is relayed back to A.
/// r = Theta(d + k/bw) rounds with s = Theta(bw) bits per intermediate
/// node — the workload the Theorem 11 block simulation is then applied to.
struct PathDisjOutcome {
  bool is_disjoint = false;
  std::uint32_t rounds = 0;
  std::uint64_t max_intermediate_memory_bits = 0;
  TwoPartyCosts theorem11;  ///< the block-simulation charge
};

PathDisjOutcome run_path_disjointness(const std::vector<bool>& x,
                                      const std::vector<bool>& y,
                                      std::uint32_t d,
                                      congest::NetworkConfig cfg = {});

/// Constructive audit of the Theorem 11 premise on a recorded execution
/// over the path network G_d (node ids = positions 0..d+1): information
/// travels one hop per round, so anything B-dependent observed at A (or
/// vice versa) needs >= d+1 rounds, and the execution decomposes into
/// ceil(r/d) blocks whose frontier traffic fits the O(d(bw+s))-qubit
/// shipments of the Figure 7 simulation.
struct Theorem11Audit {
  /// earliest round at which A-originated influence can reach position p
  /// (computed by chasing the trace's message graph).
  std::vector<std::uint32_t> earliest_influence;
  std::uint32_t rounds = 0;
  std::uint32_t blocks = 0;                  ///< ceil(rounds / d)
  std::uint64_t max_block_frontier_bits = 0; ///< per-block mid-cut traffic
  bool light_cone_respected = false;         ///< influence speed <= 1 hop/round
};

Theorem11Audit audit_path_trace(const std::vector<congest::TraceEvent>& trace,
                                std::uint32_t d);

/// The O(sqrt(k) log k)-qubit quantum protocol for DISJ_k ([BCW98], cited
/// in Section 2.2): Alice Grover-searches for a common index, and each
/// oracle query ships the O(log k)-qubit index register to Bob (who
/// phases indices with y_i = 1 among those with x_i = 1) and back.
/// Together with [BGK+15]'s Omega~(k/m + m) this brackets the
/// unbounded-round quantum communication complexity of DISJ at
/// Theta~(sqrt(k)) — the starting point of the paper's lower bounds.
struct QuantumDisjRun {
  bool is_disjoint = false;
  std::size_t witness = 0;      ///< a common index when intersecting
  std::uint64_t messages = 0;   ///< Alice <-> Bob messages
  std::uint64_t qubits = 0;     ///< total qubits shipped
  qsim::SearchCosts costs;
};

QuantumDisjRun quantum_disjointness_protocol(const std::vector<bool>& x,
                                             const std::vector<bool>& y,
                                             double delta, Rng& rng);

}  // namespace qc::commcc
