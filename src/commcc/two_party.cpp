#include "commcc/two_party.hpp"

#include <algorithm>
#include <cmath>

#include "commcc/disjointness.hpp"
#include "congest/trace.hpp"
#include "graph/algorithms.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::commcc {

using congest::Message;
using congest::Network;
using congest::NodeContext;

TwoPartyCosts theorem10_transform(std::uint32_t rounds, std::uint32_t b,
                                  std::uint32_t bw) {
  TwoPartyCosts c;
  c.distributed_rounds = rounds;
  c.messages = 2ULL * rounds;
  c.qubits = 2ULL * rounds * b * bw;
  return c;
}

TwoPartyCosts theorem11_transform(std::uint32_t rounds, std::uint32_t d,
                                  std::uint32_t bw, std::uint64_t s_memory) {
  require(d >= 1, "theorem11_transform: d must be positive");
  TwoPartyCosts c;
  c.distributed_rounds = rounds;
  const std::uint64_t blocks = (rounds + d - 1) / d;
  // Each block ships ~d message registers (bw qubits) plus d private
  // registers (s qubits), concatenated into one message; one extra message
  // carries the final output (end of the Theorem 11 proof).
  c.messages = blocks + 1;
  c.qubits = blocks * static_cast<std::uint64_t>(d) * (bw + s_memory);
  return c;
}

double bgk_lower_bound(double k, double messages) {
  require(k > 0 && messages > 0, "bgk_lower_bound: positive inputs required");
  return k / messages + messages;
}

double theorem10_round_floor(double k, double b) {
  require(k > 0 && b > 0, "theorem10_round_floor: positive inputs required");
  return std::sqrt(k / b);
}

double theorem3_round_floor(double n, double diameter, double s_memory) {
  require(n > 0 && diameter > 0 && s_memory > 0,
          "theorem3_round_floor: positive inputs required");
  return std::sqrt(n * diameter / s_memory);
}

CutMeter::CutMeter(std::vector<bool> u_mask)
    : sink_(std::make_shared<Sink>()) {
  sink_->u_mask = std::move(u_mask);
}

void CutMeter::Sink::on_deliver(graph::NodeId from, graph::NodeId to,
                                const Message& msg, std::uint32_t round) {
  if (from >= u_mask.size() || to >= u_mask.size()) return;
  if (u_mask[from] != u_mask[to]) {
    bits += msg.size_bits();
    ++messages;
    last_round = std::max(last_round, round);
  }
}

congest::NetworkConfig CutMeter::arm(congest::NetworkConfig base) const {
  base.observer =
      congest::MultiObserver::combine(std::move(base.observer), sink_);
  return base;
}

TwoPartyRun two_party_diameter_protocol(const Reduction& red,
                                        const std::vector<bool>& x,
                                        const std::vector<bool>& y,
                                        const DiameterSolver& solver,
                                        congest::NetworkConfig base) {
  auto g = red.instantiate(x, y);
  CutMeter meter(red.u_mask());
  const auto cfg = meter.arm(base);
  const auto [diameter, rounds] = solver(g, cfg);

  TwoPartyRun run;
  run.diameter = diameter;
  run.rounds = rounds;
  run.decided_disjoint = diameter <= red.d1;
  run.cut_bits = meter.crossing_bits();
  run.costs = theorem10_transform(
      rounds, red.b(),
      cfg.bandwidth_bits != 0 ? cfg.bandwidth_bits
                              : qc::congest_bandwidth_bits(g.n()));
  return run;
}

namespace {

/// CONGEST programs realizing the path-DISJ protocol of
/// run_path_disjointness. Node 0 is A (holds x), node d+1 is B (holds y);
/// the intermediates only relay.
class PathDisjProgram : public congest::NodeProgram {
 public:
  PathDisjProgram(std::vector<bool> input, std::uint32_t k, bool is_a,
                  bool is_b, std::uint32_t chunk_bits)
      : input_(std::move(input)),
        k_(k),
        is_a_(is_a),
        is_b_(is_b),
        chunk_bits_(chunk_bits) {}

  void on_start(NodeContext& ctx) override {
    if (is_a_) send_next_chunk(ctx);
  }

  void on_round(NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      if (is_b_) {
        if (in.msg.num_fields() == 1) {
          absorb_chunk(in.msg.field(0));
          if (received_bits_ >= k_) {
            answer_ = disjoint(peer_bits_, input_);
            have_answer_ = true;
            // Answer travels back as a 2-field message.
            ctx.send(in.port, Message().push(answer_ ? 1 : 0, 1).push(0, 1));
          }
        }
      } else if (is_a_) {
        if (in.msg.num_fields() == 2) {
          answer_ = in.msg.field(0) == 1;
          have_answer_ = true;
        }
      } else {
        // Relay away from the arrival port.
        const std::uint32_t out = in.port == 0 ? 1 : 0;
        if (out < ctx.degree()) {
          relay_bits_ = in.msg.size_bits();
          ctx.send(out, in.msg);
        }
      }
    }
    if (is_a_ && next_chunk_ * chunk_bits_ < k_) {
      send_next_chunk(ctx);
    }
    // A must stay awake (a halted node is only re-activated by incoming
    // messages) until its whole input has been streamed out.
    if (!is_a_ || next_chunk_ * chunk_bits_ >= k_) ctx.vote_halt();
  }

  std::uint64_t memory_bits() const override {
    if (is_a_ || is_b_) return k_ + 8;  // the players hold their inputs
    return relay_bits_ + 4;             // intermediates hold one message
  }

  bool have_answer() const { return have_answer_; }
  bool answer() const { return answer_; }

 private:
  void send_next_chunk(NodeContext& ctx) {
    std::uint64_t payload = 0;
    const std::uint32_t base = next_chunk_ * chunk_bits_;
    for (std::uint32_t j = 0; j < chunk_bits_ && base + j < k_; ++j) {
      if (input_[base + j]) payload |= 1ULL << j;
    }
    ctx.send(0, Message().push(payload, chunk_bits_));
    ++next_chunk_;
  }

  void absorb_chunk(std::uint64_t payload) {
    for (std::uint32_t j = 0; j < chunk_bits_ && received_bits_ < k_; ++j) {
      peer_bits_.push_back((payload >> j) & 1ULL);
      ++received_bits_;
    }
  }

  std::vector<bool> input_;
  std::uint32_t k_;
  bool is_a_, is_b_;
  std::uint32_t chunk_bits_;
  std::uint32_t next_chunk_ = 0;
  std::uint32_t received_bits_ = 0;
  std::vector<bool> peer_bits_;
  std::uint64_t relay_bits_ = 0;
  bool have_answer_ = false;
  bool answer_ = false;
};

}  // namespace

PathDisjOutcome run_path_disjointness(const std::vector<bool>& x,
                                      const std::vector<bool>& y,
                                      std::uint32_t d,
                                      congest::NetworkConfig cfg) {
  require(x.size() == y.size() && !x.empty(),
          "run_path_disjointness: inputs must be equal nonempty length");
  require(d >= 1, "run_path_disjointness: need d >= 1");
  const auto k = static_cast<std::uint32_t>(x.size());
  auto g = path_network(d);
  const std::uint32_t bw = cfg.bandwidth_bits != 0
                               ? cfg.bandwidth_bits
                               : qc::congest_bandwidth_bits(g.n());
  const std::uint32_t chunk_bits = std::min(bw, 64u);

  Network net(g, cfg);
  const graph::NodeId a = 0, b = d + 1;
  net.init_programs([&](graph::NodeId v) {
    return std::make_unique<PathDisjProgram>(
        v == a ? x : (v == b ? y : std::vector<bool>{}), k, v == a, v == b,
        chunk_bits);
  });
  const std::uint32_t cap = 2 * (d + 2) + 2 * (k / chunk_bits + 2) + 8;
  auto stats = net.run_until_quiescent(cap);
  check_internal(stats.quiesced, "run_path_disjointness: did not quiesce");

  const auto& pa = net.program_as<PathDisjProgram>(a);
  check_internal(pa.have_answer(), "run_path_disjointness: A has no answer");

  PathDisjOutcome out;
  out.is_disjoint = pa.answer();
  out.rounds = stats.rounds;
  // Intermediate memory: the relays held one bw-bit message at a time.
  std::uint64_t s_mem = 0;
  for (graph::NodeId v = 1; v <= d; ++v) {
    s_mem = std::max(s_mem, net.program(v).memory_bits());
  }
  out.max_intermediate_memory_bits = s_mem;
  out.theorem11 = theorem11_transform(out.rounds, d, bw, s_mem);
  return out;
}

Theorem11Audit audit_path_trace(const std::vector<congest::TraceEvent>& trace,
                                std::uint32_t d) {
  require(d >= 1, "audit_path_trace: need d >= 1");
  const std::uint32_t positions = d + 2;
  Theorem11Audit audit;
  audit.earliest_influence.assign(positions, graph::kUnreachable);
  audit.earliest_influence[0] = 0;  // A holds its input from round 0

  // Influence chase: a message delivered to p at round r carries
  // A-influence iff its sender was already influenced at round r-1. Events
  // arrive in round order, and same-round deliveries only depend on
  // previous-round state, so a single pass suffices.
  for (const auto& e : trace) {
    require(e.from < positions && e.to < positions,
            "audit_path_trace: event outside the path");
    audit.rounds = std::max(audit.rounds, e.round);
    if (audit.earliest_influence[e.from] < e.round) {
      audit.earliest_influence[e.to] =
          std::min(audit.earliest_influence[e.to], e.round);
    }
  }

  // The light cone: position p cannot be influenced before round p.
  audit.light_cone_respected = true;
  for (std::uint32_t p = 0; p < positions; ++p) {
    if (audit.earliest_influence[p] != graph::kUnreachable &&
        audit.earliest_influence[p] < p) {
      audit.light_cone_respected = false;
    }
  }

  // Block decomposition (Figure 7): blocks of d rounds; the frontier is
  // the middle edge of the path, whose per-block traffic bounds what one
  // block shipment must carry.
  audit.blocks = (audit.rounds + d - 1) / d;
  const std::uint32_t mid = positions / 2;
  std::vector<std::uint64_t> block_bits(audit.blocks + 1, 0);
  for (const auto& e : trace) {
    const bool crosses = (e.from < mid) != (e.to < mid);
    if (!crosses) continue;
    const std::uint32_t b = (e.round + d - 1) / d;
    block_bits[std::min<std::uint32_t>(b, audit.blocks)] += e.bits;
  }
  for (auto bits : block_bits) {
    audit.max_block_frontier_bits =
        std::max(audit.max_block_frontier_bits, bits);
  }
  return audit;
}

QuantumDisjRun quantum_disjointness_protocol(const std::vector<bool>& x,
                                             const std::vector<bool>& y,
                                             double delta, Rng& rng) {
  require(x.size() == y.size() && !x.empty(),
          "quantum_disjointness_protocol: equal nonempty inputs required");
  const std::size_t k = x.size();

  // Alice's search register lives over [k]; the joint oracle marks the
  // common indices. Alice can apply her own x-phase locally; Bob's y-phase
  // needs the register shipped over and back — two messages of
  // ceil(log2 k) + O(1) qubits per amplification iterate. The diffusion
  // is local to Alice.
  auto setup = qsim::AmplitudeVector::uniform(k);
  auto marked = [&](std::size_t i) { return x[i] && y[i]; };
  auto res = qsim::amplitude_amplification_search(setup, marked, 1.0 / k,
                                                  delta, rng);

  QuantumDisjRun run;
  run.costs = res.costs;
  const std::uint64_t reg_qubits = qc::bit_width_for(k) + 1;
  // Per iterate: register to Bob and back. Per measurement candidate:
  // Alice sends the classical index, Bob answers one bit (the classical
  // verification both players can do).
  run.messages =
      2 * res.costs.grover_iterations + 2 * res.costs.candidate_evaluations;
  run.qubits = 2 * res.costs.grover_iterations * reg_qubits +
               res.costs.candidate_evaluations * (reg_qubits + 1);
  if (res.found) {
    run.is_disjoint = false;
    run.witness = res.item;
  } else {
    run.is_disjoint = true;
  }
  return run;
}

}  // namespace qc::commcc
