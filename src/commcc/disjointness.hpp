#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::commcc {

/// The set-disjointness function of Section 2.2: DISJ_k(x, y) = 0 iff some
/// index i has x_i = y_i = 1; 1 (disjoint) otherwise.
inline bool disjoint(const std::vector<bool>& x, const std::vector<bool>& y) {
  require(x.size() == y.size(), "disjoint: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] && y[i]) return false;
  }
  return true;
}

/// A random DISJ_k instance with a forced answer. For `intersecting`
/// instances exactly one common index is planted (the hard regime of the
/// [KS92, Raz92, BGK+15] bounds); each other coordinate pair is drawn from
/// the disjoint distribution {00, 01, 10}.
inline std::pair<std::vector<bool>, std::vector<bool>> random_disj_instance(
    std::size_t k, bool intersecting, Rng& rng) {
  require(k >= 1, "random_disj_instance: k must be positive");
  std::vector<bool> x(k, false), y(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    switch (rng.next_below(3)) {
      case 0: break;
      case 1: x[i] = true; break;
      default: y[i] = true; break;
    }
  }
  if (intersecting) {
    const std::size_t i = static_cast<std::size_t>(rng.next_below(k));
    x[i] = y[i] = true;
  }
  return {x, y};
}

}  // namespace qc::commcc
