#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qc {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());

  if (xs.size() >= 2) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }

  // One sort, three O(1) lookups — quantile(sorted, p) per percentile
  // would copy and re-select the sample three more times.
  s.median = quantile_sorted(sorted, 0.5);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "fit_linear: size mismatch");
  require(xs.size() >= 2, "fit_linear: need at least 2 points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    // Degenerate: all x equal. Report a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  require(xs.size() == ys.size(), "fit_power_law: size mismatch");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    require(xs[i] > 0 && ys[i] > 0,
            "fit_power_law: inputs must be strictly positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size() && xs.size() >= 2,
          "correlation: need equal sizes >= 2");
  const auto sx = summarize(xs);
  const auto sy = summarize(ys);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

double quantile(std::vector<double> xs, double p) {
  require(!xs.empty(), "quantile: empty sample");
  require(p >= 0.0 && p <= 1.0, "quantile: p must be in [0,1]");
  if (xs.size() == 1) return xs[0];
  // Selection instead of a full sort: one nth_element gives the lo-th
  // order statistic and partitions everything >= it to the right, so the
  // hi-th (= lo+1-th) order statistic is the minimum of that tail. Values
  // are the exact order statistics a sort would produce, so the
  // interpolation below is bit-identical to the historical
  // copy-and-sort implementation (pinned by Stats.QuantileMatchesSortedReference).
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  const auto lo_it = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), lo_it, xs.end());
  const double lo_val = *lo_it;
  const double hi_val = hi == lo
                            ? lo_val
                            : *std::min_element(std::next(lo_it), xs.end());
  return lo_val * (1.0 - frac) + hi_val * frac;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  require(!sorted.empty(), "quantile: empty sample");
  require(p >= 0.0 && p <= 1.0, "quantile: p must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace qc
