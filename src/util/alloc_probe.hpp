#pragma once

// Opt-in heap-allocation counting for zero-allocation assertions on hot
// paths (the CONGEST delivery loop pins "no heap allocation per delivered
// message" with it — see docs/performance.md and tests/test_hotpath.cpp).
//
// Usage: include this header anywhere to read the counter; expand
// QC_INSTALL_ALLOC_PROBE() at global scope in exactly ONE translation unit
// of a test or bench binary to replace the global allocator with a counting
// one. Never install the probe in the library itself — it is a measurement
// harness, not a production allocator.
//
// The replacement functions forward to std::malloc/std::free, so they
// compose with ASan/TSan (whose malloc interceptors still see every
// allocation) and satisfy the usual alignment guarantees for non-over-
// aligned types. Over-aligned allocations take the separate aligned
// operator new, which is deliberately left untouched.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace qc {

/// Global operator new / new[] calls since process start when the probe is
/// installed in this binary; stays 0 forever otherwise. Snapshot it around
/// a region and compare to assert the region allocates nothing.
inline std::atomic<std::uint64_t>& alloc_probe_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

namespace detail {
inline void* probe_allocate(std::size_t size) {
  alloc_probe_count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace detail

}  // namespace qc

// clang-format off
#define QC_INSTALL_ALLOC_PROBE()                                             \
  void* operator new(std::size_t size) { return qc::detail::probe_allocate(size); } \
  void* operator new[](std::size_t size) { return qc::detail::probe_allocate(size); } \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  static_assert(true, "QC_INSTALL_ALLOC_PROBE requires a trailing semicolon")
// clang-format on
