#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qc {

/// Minimal ASCII table formatter used by the benchmark harness to print
/// paper-style result tables.
///
///   Table t({"n", "classical rounds", "quantum rounds"});
///   t.add_row({"256", "311", "97"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

/// Formats a double with `digits` significant decimals, trimming noise.
std::string fmt(double value, int digits = 2);

/// Formats an integer count.
std::string fmt(std::int64_t value);
std::string fmt(std::uint64_t value);
std::string fmt(int value);
std::string fmt(unsigned value);

}  // namespace qc
