#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace qc {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(begin, &end, 10);
  // A valid parse consumes the entire (non-empty) value; anything else
  // (e.g. "--trials=abc", "--seed=", "--n=12x") is a user error, not a 0.
  require(end != begin && *end == '\0',
          "flag --" + name + ": '" + it->second + "' is not an integer");
  // strtoll saturates to INT64_MIN/MAX and sets ERANGE on overflow; a value
  // like --n=99999999999999999999 must be rejected, not silently clamped.
  require(errno != ERANGE,
          "flag --" + name + ": '" + it->second + "' is out of range");
  return value;
}

std::int64_t Cli::get_int_in(const std::string& name, std::int64_t def,
                             std::int64_t lo, std::int64_t hi) const {
  const std::int64_t value = get_int(name, def);
  require(value >= lo && value <= hi,
          "flag --" + name + ": " + std::to_string(value) +
              " is outside the allowed range [" + std::to_string(lo) + ", " +
              std::to_string(hi) + "]");
  return value;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  require(end != begin && *end == '\0',
          "flag --" + name + ": '" + it->second + "' is not a number");
  // Overflow saturates to +-HUGE_VAL with ERANGE; reject it like get_int
  // does. Underflow-to-denormal also reports ERANGE but returns a faithful
  // tiny value, so only the saturating case is an error.
  require(errno != ERANGE || (value < 1.0 && value > -1.0),
          "flag --" + name + ": '" + it->second + "' is out of range");
  return value;
}

std::string Cli::get_string(const std::string& name, std::string def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  require(v == "false" || v == "0" || v == "no",
          "flag --" + name + ": '" + v +
              "' is not a boolean (use true/false/1/0/yes/no)");
  return false;
}

std::vector<std::string> Cli::unknown_flags(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool known = false;
    for (const auto& a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(name);
  }
  return unknown;
}

void Cli::expect_flags(const std::vector<std::string>& allowed) const {
  const auto unknown = unknown_flags(allowed);
  if (unknown.empty()) return;
  std::string msg = "unknown flag";
  if (unknown.size() > 1) msg += "s";
  for (const auto& f : unknown) msg += " --" + f;
  msg += " (known:";
  for (const auto& a : allowed) msg += " --" + a;
  msg += ")";
  require(false, msg);
}

}  // namespace qc
