#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace qc {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& name, std::string def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace qc
