#pragma once

#include <bit>
#include <cstdint>

namespace qc {

/// Number of bits needed to represent values in [0, n-1]; bit_width_for(1)
/// is 1 by convention (a single value still occupies one wire/qubit).
constexpr std::uint32_t bit_width_for(std::uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

/// ceil(log2(n)) for n >= 1.
constexpr std::uint32_t ceil_log2(std::uint64_t n) {
  if (n <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

/// The CONGEST bandwidth in bits for an n-node network: c * ceil(log2 n)
/// with the conventional constant c = 4 (enough for a constant number of
/// node ids / distances per message, as the paper's procedures require).
/// Floored at 4c bits so that O(log n)-bit protocols remain runnable on the
/// tiny graphs used in unit tests (constants are free under O(log n)).
constexpr std::uint32_t congest_bandwidth_bits(std::uint64_t n, int c = 4) {
  const std::uint32_t lg = ceil_log2(n < 2 ? 2 : n);
  const std::uint32_t bw = static_cast<std::uint32_t>(c) * (lg < 1 ? 1 : lg);
  const auto floor_bits = static_cast<std::uint32_t>(4 * c);
  return bw < floor_bits ? floor_bits : bw;
}

/// Bit at position `pos` (LSB = 0) of `v`.
constexpr std::uint32_t bit_at(std::uint64_t v, std::uint32_t pos) {
  return static_cast<std::uint32_t>((v >> pos) & 1ULL);
}

}  // namespace qc
