#pragma once

#include <stdexcept>
#include <string>

namespace qc {

/// Base class for all errors raised by the qcongest library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A simulated CONGEST round tried to push more bits through an edge than
/// the model's bandwidth allows (see congest::BandwidthPolicy).
class BandwidthViolationError : public Error {
 public:
  explicit BandwidthViolationError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgumentError with `msg` unless `cond` holds.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgumentError(msg);
}

/// Literal-message overload: hot paths (Message::push, NodeContext::send)
/// assert preconditions on every call, and the std::string parameter above
/// would heap-allocate the message *on success* at every call site. This
/// overload defers the string construction to the throw.
inline void require(bool cond, const char* msg) {
  if (!cond) [[unlikely]] throw InvalidArgumentError(msg);
}

/// Throws InternalError with `msg` unless `cond` holds.
inline void check_internal(bool cond, const std::string& msg) {
  if (!cond) throw InternalError(msg);
}

/// Literal-message overload of check_internal; see require(bool, const char*).
inline void check_internal(bool cond, const char* msg) {
  if (!cond) [[unlikely]] throw InternalError(msg);
}

}  // namespace qc
