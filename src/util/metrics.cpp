#include "util/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "util/error.hpp"

namespace qc::metrics {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

// Innermost open spans of the current thread. Entries carry the owning
// registry so a span begun against one registry can never become the
// parent of a span in another (tests swap registries freely).
thread_local std::vector<std::pair<const MetricsRegistry*, std::uint64_t>>
    tls_span_stack;

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry* global() {
  return g_registry.load(std::memory_order_relaxed);
}

void set_global(MetricsRegistry* reg) {
  g_registry.store(reg, std::memory_order_release);
}

bool enabled() { return global() != nullptr; }

void count(std::string_view name, std::uint64_t delta,
           std::string_view label) {
  if (auto* m = global()) m->add_counter(name, delta, label);
}

void gauge(std::string_view name, double value, std::string_view label) {
  if (auto* m = global()) m->set_gauge(name, value, label);
}

void observe(std::string_view name, double value) {
  if (auto* m = global()) m->observe(name, value);
}

MetricsRegistry::MetricsRegistry() {
  epoch_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t MetricsRegistry::now_ns() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta,
                                  std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) {
    if (c.name == name && c.label == label) {
      c.value += delta;
      return;
    }
  }
  counters_.push_back(Counter{std::string(name), std::string(label), delta});
}

void MetricsRegistry::set_gauge(std::string_view name, double value,
                                std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& g : gauges_) {
    if (g.name == name && g.label == label) {
      g.value = value;
      return;
    }
  }
  gauges_.push_back(Gauge{std::string(name), std::string(label), value});
}

MetricsRegistry::Histogram& MetricsRegistry::histogram_locked(
    std::string_view name) {
  for (auto& h : histograms_) {
    if (h.name == name) return h;
  }
  Histogram h;
  h.name = std::string(name);
  for (double b = 1.0; b <= 1048576.0; b *= 2.0) h.bounds.push_back(b);
  h.counts.assign(h.bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
  return histograms_.back();
}

void MetricsRegistry::register_histogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  require(!upper_bounds.empty(),
          "MetricsRegistry::register_histogram: empty bounds");
  require(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
          "MetricsRegistry::register_histogram: bounds must be ascending");
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& h : histograms_) {
    if (h.name == name) return;  // idempotent: first bounds win
  }
  Histogram h;
  h.name = std::string(name);
  h.bounds = std::move(upper_bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histogram_locked(name);
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  ++h.counts[static_cast<std::size_t>(it - h.bounds.begin())];
  ++h.total;
  h.sum += value;
}

std::uint64_t MetricsRegistry::begin_span(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t parent = 0;
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (it->first == this) {
      parent = it->second;
      break;
    }
  }
  SpanSample s;
  s.id = next_span_id_++;
  s.parent = parent;
  s.name = std::string(name);
  s.start_ns = now_ns();
  spans_.push_back(std::move(s));
  tls_span_stack.emplace_back(this, spans_.back().id);
  return spans_.back().id;
}

void MetricsRegistry::end_span(std::uint64_t id, std::uint64_t rounds,
                               std::uint64_t messages, std::uint64_t bits) {
  std::lock_guard<std::mutex> lock(mu_);
  require(id >= 1 && id < next_span_id_, "MetricsRegistry::end_span: bad id");
  SpanSample& s = spans_[id - 1];
  if (!s.complete) {
    s.duration_ns = now_ns() - s.start_ns;
    s.rounds = rounds;
    s.messages = messages;
    s.bits = bits;
    s.complete = true;
  }
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (it->first == this && it->second == id) {
      tls_span_stack.erase(std::next(it).base());
      break;
    }
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) {
    if (c.name == name && c.label == label) return c.value;
  }
  return 0;
}

std::vector<SpanSample> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"type\":\"meta\",\"schema_version\":" << kSchemaVersion
     << ",\"producer\":\"qcongest\"}\n";

  auto counters = counters_;
  std::sort(counters.begin(), counters.end(),
            [](const Counter& a, const Counter& b) {
              return std::tie(a.name, a.label) < std::tie(b.name, b.label);
            });
  for (const auto& c : counters) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(c.name)
       << "\",\"label\":\"" << json_escape(c.label)
       << "\",\"value\":" << c.value << "}\n";
  }

  auto gauges = gauges_;
  std::sort(gauges.begin(), gauges.end(), [](const Gauge& a, const Gauge& b) {
    return std::tie(a.name, a.label) < std::tie(b.name, b.label);
  });
  for (const auto& g : gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
       << "\",\"label\":\"" << json_escape(g.label)
       << "\",\"value\":" << fmt_double(g.value) << "}\n";
  }

  auto histograms = histograms_;
  std::sort(histograms.begin(), histograms.end(),
            [](const Histogram& a, const Histogram& b) {
              return a.name < b.name;
            });
  for (const auto& h : histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
       << "\",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) os << ",";
      os << fmt_double(h.bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) os << ",";
      os << h.counts[i];
    }
    os << "],\"count\":" << h.total << ",\"sum\":" << fmt_double(h.sum)
       << "}\n";
  }

  for (const auto& s : spans_) {  // already in id order
    os << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << json_escape(s.name)
       << "\",\"start_ns\":" << s.start_ns
       << ",\"duration_ns\":" << s.duration_ns << ",\"rounds\":" << s.rounds
       << ",\"messages\":" << s.messages << ",\"bits\":" << s.bits << "}\n";
  }
}

void MetricsRegistry::write_jsonl_file(const std::string& path) const {
  std::ofstream ofs(path);
  require(ofs.good(), "MetricsRegistry: cannot open " + path + " for write");
  write_jsonl(ofs);
  ofs.flush();
  require(ofs.good(), "MetricsRegistry: failed writing " + path);
}

PhaseTimer::PhaseTimer(MetricsRegistry* reg, std::string_view name)
    : reg_(reg) {
  if (reg_ != nullptr) id_ = reg_->begin_span(name);
}

PhaseTimer::~PhaseTimer() { finish(); }

void PhaseTimer::add(std::uint64_t rounds, std::uint64_t messages,
                     std::uint64_t bits) {
  rounds_ += rounds;
  messages_ += messages;
  bits_ += bits;
}

void PhaseTimer::finish() {
  if (reg_ != nullptr && id_ != 0) {
    reg_->end_span(id_, rounds_, messages_, bits_);
    id_ = 0;
  }
}

ScopedExport::ScopedExport(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) {
    reg_ = std::make_unique<MetricsRegistry>();
    set_global(reg_.get());
  }
}

ScopedExport::~ScopedExport() {
  if (reg_ != nullptr) {
    if (global() == reg_.get()) set_global(nullptr);
    try {
      reg_->write_jsonl_file(path_);
    } catch (const std::exception& e) {
      // A destructor must not throw; an unwritable path loses telemetry
      // only, never the computation.
      std::fprintf(stderr, "metrics: %s\n", e.what());
    }
  }
}

}  // namespace qc::metrics
