#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qc {

/// A small fixed-size worker pool: submit fire-and-forget jobs, then block
/// on wait_idle() until everything submitted has run. Workers live for the
/// pool's lifetime, so a batch costs one notify per job rather than one
/// thread spawn. Used by core::BranchEvaluator to fan independent branch
/// simulations out; kept dependency-free so any layer can reuse it.
///
/// Jobs must not throw — capture exceptions inside the job and surface
/// them after wait_idle() (BranchEvaluator shows the pattern).
class ThreadPool {
 public:
  /// `num_threads` = 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0) {
    unsigned n = num_threads;
    if (n == 0) n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    workers_.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
      ++outstanding_;
    }
    work_cv_.notify_one();
  }

  /// Blocks until every job submitted so far has finished running.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ set and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  std::uint64_t outstanding_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qc
