#include "util/rng.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::next_in: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return next_double() < p;
}

Rng Rng::child(std::uint64_t stream_id) const {
  // Mix the parent's seed with the stream id through splitmix64 twice so
  // adjacent stream ids land far apart in state space.
  std::uint64_t x = seed_ ^ (0x5851f42d4c957f2dULL * (stream_id + 1));
  std::uint64_t mixed = splitmix64(x);
  mixed ^= splitmix64(x);
  return Rng(mixed);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must be <= n");
  // Floyd's algorithm: O(k) expected inserts.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qc
