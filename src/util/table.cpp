#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace qc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table::add_row: cell count does not match header count");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto print_line = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  print_line();
  print_cells(headers_);
  print_line();
  for (const auto& row : rows_) {
    if (row.separator) {
      print_line();
    } else {
      print_cells(row.cells);
    }
  }
  print_line();
  return os.str();
}

std::string fmt(double value, int digits) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt(std::int64_t value) { return std::to_string(value); }
std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(int value) { return std::to_string(value); }
std::string fmt(unsigned value) { return std::to_string(value); }

}  // namespace qc
