#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qc {

/// Tiny command-line flag parser for the bench/example binaries.
///
/// Accepts flags of the form `--name=value`; bare `--name` is treated as
/// boolean true. Anything not starting with "--" is a positional argument.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if the flag appeared on the command line at all.
  bool has(const std::string& name) const;

  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, std::string def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace qc
