#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qc {

/// Tiny command-line flag parser for the bench/example binaries.
///
/// Accepts flags of the form `--name=value`; bare `--name` is treated as
/// boolean true. Anything not starting with "--" is a positional argument.
///
/// Numeric and boolean accessors parse strictly: `--trials=abc` throws
/// InvalidArgumentError instead of silently yielding 0. expect_flags()
/// rejects flags outside a binary's declared set, so a typo'd flag fails
/// loudly instead of being silently ignored.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if the flag appeared on the command line at all.
  bool has(const std::string& name) const;

  /// Value of `--name`, or `def` when absent. Throws InvalidArgumentError
  /// when the value is present but does not parse fully as an integer /
  /// double / boolean (accepted booleans: true/false/1/0/yes/no), or when
  /// it overflows the type (strtoll/strtod saturation is rejected, so
  /// `--n=99999999999999999999` fails loudly instead of becoming INT64_MAX).
  std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// get_int plus an inclusive range check — the form flags with a
  /// documented domain (ports, queue limits, timeouts) should use.
  std::int64_t get_int_in(const std::string& name, std::int64_t def,
                          std::int64_t lo, std::int64_t hi) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  std::string get_string(const std::string& name, std::string def) const;

  /// Flags on the command line that are not in `allowed`.
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& allowed) const;

  /// Throws InvalidArgumentError naming every unknown flag (strict mode;
  /// catches typos like `--trialz=5`). Call once after construction with
  /// the binary's full flag set.
  void expect_flags(const std::vector<std::string>& allowed) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace qc
