#pragma once

// qc::metrics — opt-in observability for the whole stack.
//
// The paper's only cost metric is round/bit complexity; the repo grew three
// disjoint views of it (congest::RunStats, per-report fields, ad-hoc bench
// prints). This registry unifies them into one machine-readable stream:
//
//  * counters   — monotonically increasing uint64, optionally labeled
//                 (e.g. "algos.phase_status" labeled "bfs_tree/quiesced"),
//  * gauges     — last-write-wins doubles (workload parameters),
//  * histograms — fixed-bucket distributions (per-round delivery counts,
//                 per-message bandwidth occupancy),
//  * spans      — hierarchical timed phases carrying the *model-level*
//                 costs next to the wall time: CONGEST rounds, messages
//                 and bits attributed to that phase.
//
// Enablement contract: the registry is DISABLED by default. Every
// instrumentation site goes through the free functions below (or
// ScopedTimer), which first do one relaxed atomic load of the global
// registry pointer; when it is null they return immediately — no locks, no
// allocations, no behavioral difference. All algorithm reports, RunStats
// and the distributed executions are bit-identical with metrics on or off
// (the registry only observes; it never feeds back), which
// tests/test_metrics.cpp asserts.
//
// Model-level costs (rounds/bits — paper-faithful) and implementation-level
// telemetry (wall time) are both captured but never mixed: spans carry them
// in separate fields. See docs/observability.md.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qc::metrics {

/// Version of the JSONL export schema. Bump on any change to the per-type
/// key sets; tests/test_metrics.cpp pins the key sets for this version.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// One exported span: a named phase with hierarchy (parent span id, 0 =
/// top level), wall time, and the model-level costs attributed to it.
struct SpanSample {
  std::uint64_t id = 0;      ///< 1-based, unique per registry
  std::uint64_t parent = 0;  ///< 0 when the span has no enclosing span
  std::string name;
  std::uint64_t start_ns = 0;     ///< relative to registry construction
  std::uint64_t duration_ns = 0;  ///< 0 while still open
  std::uint64_t rounds = 0;       ///< CONGEST rounds attributed to the span
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  bool complete = false;
};

/// Thread-safe metrics store. One instance per capture session; install it
/// with set_global() to arm the instrumentation sites, uninstall (or
/// destroy a ScopedExport) to write the JSONL out.
///
/// Fork contract: the registry is a single-process object — its export
/// runs once, in the process that installed it. A child process that
/// inherits an armed registry across fork() must call
/// set_global(nullptr) before doing any work (the shard workers in
/// src/congest/shard/ do exactly this), or the parent's capture would
/// double-count and the child's _exit path would race the buffers.
/// Model-level quantities observed in workers are instead reported over
/// the shard protocol and accounted once, coordinator-side, under the
/// shard.* names (docs/distributed.md).
class MetricsRegistry {
 public:
  MetricsRegistry();

  // -- counters / gauges ---------------------------------------------------
  void add_counter(std::string_view name, std::uint64_t delta = 1,
                   std::string_view label = {});
  void set_gauge(std::string_view name, double value,
                 std::string_view label = {});

  // -- histograms ----------------------------------------------------------
  /// Registers a histogram with the given ascending bucket upper bounds
  /// (an implicit +inf bucket is appended). Idempotent: re-registering an
  /// existing name keeps the first bounds.
  void register_histogram(std::string_view name,
                          std::vector<double> upper_bounds);
  /// Records one observation; auto-registers with power-of-two bounds
  /// (1, 2, 4, ..., 2^20) when the name is new.
  void observe(std::string_view name, double value);

  // -- spans (use PhaseTimer / ScopedTimer rather than calling directly) --
  /// Opens a span; its parent is the innermost span this thread currently
  /// has open in this registry. Returns the span id.
  std::uint64_t begin_span(std::string_view name);
  /// Closes a span and attributes model-level costs to it.
  void end_span(std::uint64_t id, std::uint64_t rounds, std::uint64_t messages,
                std::uint64_t bits);

  // -- export / inspection -------------------------------------------------
  /// Writes the whole registry as JSON Lines: one meta line (schema
  /// version), then counters, gauges, histograms and spans, each with a
  /// fixed per-type key set. Deterministic order: counters/gauges sorted by
  /// (name, label), histograms by name, spans by id.
  void write_jsonl(std::ostream& os) const;
  /// write_jsonl to a file; throws qc::Error when the file cannot be
  /// written.
  void write_jsonl_file(const std::string& path) const;

  std::uint64_t counter_value(std::string_view name,
                              std::string_view label = {}) const;
  std::vector<SpanSample> spans() const;

 private:
  struct Counter {
    std::string name, label;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name, label;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;         ///< ascending upper bounds
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow)
    std::uint64_t total = 0;
    double sum = 0.0;
  };

  std::uint64_t now_ns() const;
  Histogram& histogram_locked(std::string_view name);

  mutable std::mutex mu_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  std::vector<SpanSample> spans_;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction
};

/// The process-global registry; nullptr (disabled) by default.
MetricsRegistry* global();
/// Installs `reg` as the global registry (nullptr disables). The caller
/// keeps ownership and must keep it alive while installed.
void set_global(MetricsRegistry* reg);
/// True when a global registry is installed. Instrumentation sites that
/// need to build labels/values may guard on this to keep the disabled
/// path allocation-free.
bool enabled();

// Free functions against the global registry; all no-ops when disabled.
void count(std::string_view name, std::uint64_t delta = 1,
           std::string_view label = {});
void gauge(std::string_view name, double value, std::string_view label = {});
void observe(std::string_view name, double value);

/// A hierarchical timed phase against an explicit registry. Opens the span
/// on construction (inert when `reg` is null); closes it on finish() or
/// destruction, attributing whatever model-level costs were add()ed.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* reg, std::string_view name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Attributes CONGEST costs to this span (accumulates across calls).
  void add(std::uint64_t rounds, std::uint64_t messages, std::uint64_t bits);
  /// Closes the span now (idempotent).
  void finish();

 private:
  MetricsRegistry* reg_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t rounds_ = 0, messages_ = 0, bits_ = 0;
};

/// PhaseTimer bound to the global registry — the form instrumentation
/// sites use; free when metrics are disabled.
class ScopedTimer : public PhaseTimer {
 public:
  explicit ScopedTimer(std::string_view name) : PhaseTimer(global(), name) {}
};

/// RAII capture session: installs a fresh registry when `path` is
/// non-empty; on destruction uninstalls it and writes the JSONL to
/// `path`. With an empty path the whole object is inert, so drivers can
/// construct one unconditionally from a --metrics-out flag.
class ScopedExport {
 public:
  explicit ScopedExport(std::string path);
  ~ScopedExport();
  ScopedExport(const ScopedExport&) = delete;
  ScopedExport& operator=(const ScopedExport&) = delete;

  MetricsRegistry* registry() { return reg_.get(); }

 private:
  std::string path_;
  std::unique_ptr<MetricsRegistry> reg_;
};

}  // namespace qc::metrics
