#include "util/mmap_file.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define QC_HAVE_MMAP 0
#endif

namespace qc {

void MappedFile::swap(MappedFile& other) noexcept {
  std::swap(data_, other.data_);
  std::swap(size_, other.size_);
  std::swap(heap_fallback_, other.heap_fallback_);
}

void MappedFile::reset() {
  if (data_ == nullptr) return;
  if (heap_fallback_) {
    delete[] data_;
  } else {
#if QC_HAVE_MMAP
    ::munmap(const_cast<std::byte*>(data_), size_);
#endif
  }
  data_ = nullptr;
  size_ = 0;
  heap_fallback_ = false;
}

MappedFile MappedFile::open_portable(const std::string& path) {
  // Size via a 64-bit stat, not fseek(SEEK_END)/ftell: ftell returns a
  // `long`, which silently mis-sizes >2 GiB files on LP32/Windows, and the
  // old code also ignored fseek failures (pipes, directories).
  std::error_code ec;
  const std::filesystem::path fspath(path);
  if (!std::filesystem::is_regular_file(fspath, ec) || ec) {
    throw InvalidArgumentError("MappedFile: cannot stat regular file " +
                               path);
  }
  const std::uintmax_t len = std::filesystem::file_size(fspath, ec);
  require(!ec, "MappedFile: cannot size " + path);
  if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
    require(len <= static_cast<std::uintmax_t>(SIZE_MAX),
            "MappedFile: file larger than the address space: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  require(f != nullptr, "MappedFile: cannot open " + path);
  MappedFile mf;
  if (len == 0) {
    std::fclose(f);
    return mf;
  }
  auto* buf = new std::byte[static_cast<std::size_t>(len)];
  const auto got = std::fread(buf, 1, static_cast<std::size_t>(len), f);
  std::fclose(f);
  if (got != static_cast<std::size_t>(len)) {
    delete[] buf;
    throw InvalidArgumentError("MappedFile: short read on " + path);
  }
  mf.data_ = buf;
  mf.size_ = static_cast<std::size_t>(len);
  mf.heap_fallback_ = true;
  return mf;
}

#if QC_HAVE_MMAP

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  require(fd >= 0, "MappedFile: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    throw InvalidArgumentError("MappedFile: cannot stat regular file " +
                               path);
  }
  MappedFile mf;
  mf.size_ = static_cast<std::size_t>(st.st_size);
  if (mf.size_ == 0) {
    ::close(fd);
    return mf;
  }
  void* p = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  require(p != MAP_FAILED, "MappedFile: mmap failed for " + path);
  mf.data_ = static_cast<const std::byte*>(p);
  return mf;
}

#else

MappedFile MappedFile::open(const std::string& path) {
  return open_portable(path);
}

#endif

}  // namespace qc
