#pragma once

#include <cstddef>
#include <string>

namespace qc {

/// Read-only memory-mapped file.
///
/// RAII, move-only owner of one mapping; data() points straight at the
/// page cache, so loading a mapped graph copies zero payload bytes. On
/// POSIX hosts this is mmap(2); elsewhere it degrades to one read() into a
/// single heap buffer (same interface, one allocation, still no per-record
/// work). Empty files yield a valid object with size() == 0.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; throws InvalidArgumentError when the file
  /// cannot be opened, sized, or mapped.
  static MappedFile open(const std::string& path);

  /// The portable no-mmap path: one read() into a heap buffer behind the
  /// same interface. This is what open() degrades to on hosts without
  /// mmap, but it is compiled (and unit-tested) everywhere. Sizing goes
  /// through a 64-bit stat — never fseek/ftell into a `long`, which
  /// silently truncates >2 GiB files on LP32/Windows.
  static MappedFile open_portable(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  void reset();
  void swap(MappedFile& other) noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool heap_fallback_ = false;  ///< buffer came from new[], not mmap
};

}  // namespace qc
