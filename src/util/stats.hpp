#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qc {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Computes summary statistics. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> xs);

/// Result of an ordinary least-squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// OLS fit of y against x. Requires xs.size() == ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = C * x^e by OLS on (log x, log y); returns e as `slope`, log C as
/// `intercept`. All xs and ys must be strictly positive.
///
/// This is how scaling exponents in the benchmark harness are estimated:
/// e.g. classical exact diameter should fit e ~ 1.0 in n, the quantum
/// algorithm of Theorem 1 should fit e ~ 0.5.
LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys);

/// Pearson correlation coefficient; requires sizes equal and >= 2.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Exact p-quantile (linear interpolation) of the sample, p in [0,1].
/// Selection-based (nth_element), O(n) per query — no full sort, and the
/// by-value sample is consumed in place, so callers that own their vector
/// should std::move it in.
double quantile(std::vector<double> xs, double p);

/// quantile() for a sample that is already sorted ascending: O(1), no
/// copy. Same interpolation, bit-identical results. Callers computing
/// several percentiles of one sample should sort once and use this.
double quantile_sorted(std::span<const double> sorted, double p);

}  // namespace qc
