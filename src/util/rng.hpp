#pragma once

#include <cstdint>
#include <vector>

namespace qc {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// splitmix64 so that nearby seeds give independent streams.
///
/// All randomness in the library flows through this type so that every
/// simulation, test and benchmark is reproducible from a single seed.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Derives an independent child stream; child(i) streams are pairwise
  /// decorrelated. Used to give each simulated node its own RNG.
  Rng child(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random k-subset of {0,...,n-1}, in increasing order.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace qc
