#include "core/quantum_decision.hpp"

#include <algorithm>
#include <memory>

#include "core/detail.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::core {

DecisionReport quantum_diameter_decide(const graph::Graph& g,
                                       std::uint32_t threshold,
                                       const QuantumConfig& cfg) {
  metrics::ScopedTimer span("core.quantum_diameter_decide");
  DecisionReport rep;
  rep.threshold = threshold;
  if (g.n() <= 1) {
    rep.diameter_exceeds = false;
    return rep;
  }

  detail::InitPhase init = detail::run_initialization(g, cfg.net);
  rep.init_rounds = init.rounds;
  rep.t_setup = init.t_setup;

  // Cheap exits the classical preliminaries already settle: d <= D <= 2d.
  if (init.d > threshold) {
    rep.diameter_exceeds = true;
    rep.witness = init.leader;
    rep.total_rounds = init.rounds;
    return rep;
  }
  if (2 * init.d <= threshold) {
    rep.diameter_exceeds = false;
    rep.total_rounds = init.rounds;
    return rep;
  }

  const std::uint32_t steps = 2 * init.d;
  const std::uint32_t branch_threads = detail::effective_branch_threads(cfg);
  auto oracle = std::make_shared<detail::WindowOracle>(
      g, init.tree, steps, cfg.oracle, cfg.net, std::vector<bool>{},
      branch_threads);
  rep.t_eval_forward = oracle->t_eval_forward();

  SearchProblem prob;
  prob.domain_size = g.n();
  prob.marked = [oracle, threshold](std::size_t x) {
    return (*oracle)(x) > static_cast<std::int64_t>(threshold);
  };
  prob.t_init = init.rounds;
  prob.t_setup = init.t_setup;
  prob.t_eval_forward = oracle->t_eval_forward();
  // If D > threshold, Lemma 1 marks at least the windows covering a
  // peripheral vertex: P_M >= d/2n.
  prob.epsilon = std::min(
      1.0, static_cast<double>(init.d) / (2.0 * static_cast<double>(g.n())));
  prob.delta = cfg.delta;
  prob.num_threads = branch_threads;

  Rng rng(cfg.seed ^ 0xdec1deULL);
  metrics::PhaseTimer quantum_span(metrics::global(), "core.quantum_phase");
  auto s = distributed_quantum_search(prob, rng);
  quantum_span.add(s.total_rounds - init.rounds, 0, 0);
  quantum_span.finish();
  detail::record_quantum_costs("quantum_diameter_decide", s.costs,
                               s.distinct_evaluations,
                               oracle->reference_bfs_runs());

  rep.subroutine_failed = s.subroutine_failed;
  rep.failure_reason = s.failure_reason;
  rep.diameter_exceeds = s.found;
  rep.witness = s.found ? static_cast<graph::NodeId>(s.witness)
                        : graph::kInvalidNode;
  rep.total_rounds = s.total_rounds;
  rep.costs = s.costs;
  rep.distinct_branch_evaluations = s.distinct_evaluations;
  rep.reference_bfs_runs = oracle->reference_bfs_runs();
  rep.per_node_memory_qubits = s.per_node_memory_qubits;
  rep.leader_memory_qubits = s.leader_memory_qubits;
  span.add(rep.total_rounds, 0, 0);
  return rep;
}

}  // namespace qc::core
