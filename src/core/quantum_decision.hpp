#pragma once

#include <cstdint>

#include "core/quantum_diameter.hpp"
#include "graph/graph.hpp"

namespace qc::core {

/// Report of a diameter threshold decision.
struct DecisionReport {
  bool diameter_exceeds = false;  ///< true iff diameter > threshold (whp)
  graph::NodeId witness = graph::kInvalidNode;  ///< a u with f(u) > threshold
  std::uint32_t threshold = 0;

  std::uint64_t total_rounds = 0;
  std::uint32_t init_rounds = 0;
  std::uint32_t t_setup = 0;
  std::uint32_t t_eval_forward = 0;
  qsim::SearchCosts costs;
  std::uint64_t distinct_branch_evaluations = 0;
  /// BFS runs of the centralized reference path (<= n; see
  /// QuantumDiameterReport::reference_bfs_runs).
  std::uint64_t reference_bfs_runs = 0;
  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;

  /// Propagated from SearchReport: the checking subroutine raised a
  /// qc::Error and `diameter_exceeds` is meaningless.
  bool subroutine_failed = false;
  std::string failure_reason;
};

/// Decides "diameter > threshold?" — the decision form the paper's lower
/// bounds are stated against (e.g. Theorem 2's diameter-2-vs-3, Theorem 3's
/// (d+4)-vs-(d+5)).
///
/// One amplitude-amplification search (Theorem 6) over the Theorem 1
/// windows: u is marked iff max_{v in S(u)} ecc(v) > threshold. If the
/// diameter exceeds the threshold, every window containing a peripheral
/// vertex is marked, so P_M >= d/2n by Lemma 1; otherwise no window is
/// marked. O~(sqrt(nD)) rounds, like Theorem 1 but without the
/// maximization ladder (one log factor cheaper).
DecisionReport quantum_diameter_decide(const graph::Graph& g,
                                       std::uint32_t threshold,
                                       const QuantumConfig& cfg = {});

}  // namespace qc::core
