#include "core/detail.hpp"

#include <algorithm>
#include <thread>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::core::detail {

using graph::NodeId;

std::uint32_t effective_branch_threads(const QuantumConfig& cfg) {
  if (cfg.net.observer != nullptr) return 1;
  if (cfg.branch_threads != 0) return cfg.branch_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

void record_quantum_costs(const char* algo, const qsim::SearchCosts& costs,
                          std::uint64_t distinct_evaluations,
                          std::uint64_t reference_bfs_runs) {
  if (!metrics::enabled()) return;
  metrics::count("core.grover_iterations", costs.grover_iterations, algo);
  metrics::count("core.setup_invocations", costs.setup_invocations, algo);
  metrics::count("core.candidate_evaluations", costs.candidate_evaluations,
                 algo);
  metrics::count("core.distinct_branch_evaluations", distinct_evaluations,
                 algo);
  metrics::count("core.reference_bfs_runs", reference_bfs_runs, algo);
}

InitPhase run_initialization(const graph::Graph& g,
                             const congest::NetworkConfig& net) {
  metrics::ScopedTimer span("core.init");
  InitPhase init;
  congest::RunStats acc;

  const auto election = algos::elect_leader(g, net);
  acc += election.stats;
  init.leader = election.leader;

  auto ecc = algos::compute_eccentricity(g, init.leader, net);
  acc += ecc.stats;
  init.tree = std::move(ecc.tree);
  init.d = ecc.ecc;

  const std::uint32_t id_bits = qc::bit_width_for(g.n()) + 1;
  acc += algos::broadcast_from_root(g, init.tree, init.d, id_bits, net).stats;
  init.rounds = acc.rounds;

  // Proposition 2: Setup broadcasts the internal register down BFS(leader)
  // with CNOT copies — per branch this is exactly a value broadcast, so
  // measure its round cost with one instrumentation run (not charged).
  init.t_setup =
      algos::broadcast_from_root(g, init.tree, 0, id_bits, net).stats.rounds;
  span.add(acc.rounds, acc.messages, acc.bits);
  return init;
}

WindowOracle::WindowOracle(const graph::Graph& g,
                           const algos::TreeState& tree, std::uint32_t steps,
                           OracleMode mode, congest::NetworkConfig net,
                           std::vector<bool> mask, std::uint32_t num_threads)
    : g_(&g),
      tree_(&tree),
      steps_(steps),
      mode_(mode),
      net_(std::move(net)),
      mask_(std::move(mask)),
      engine_(g, num_threads) {
  metrics::ScopedTimer span("core.oracle_build");
  graph::BfsTree walk_tree =
      mask_.empty() ? tree.to_bfs_tree()
                    : graph::induced_subtree(tree.to_bfs_tree(), mask_);
  num_ = graph::dfs_numbering(walk_tree);
  // One eccentricity sweep (n BFS) plus an O(len log len) table build here;
  // every branch's reference value is then an O(1) range-max query.
  seg_max_ = engine_.segment_max(num_);
  // Figure 2's round budget is oblivious to u0: Step 1 runs 3*steps rounds
  // (token + probe/reply cycles), Step 2 its fixed pipeline window,
  // Steps 3-4 one convergecast. Every branch costs the same.
  t_eval_forward_ = algos::EvaluationProgram::token_phase_rounds(steps_) +
                    (2 * steps_ + 2 * tree.height + 2) + tree.height + 1;
}

std::int64_t WindowOracle::operator()(std::size_t u0) {
  const auto node = static_cast<NodeId>(u0);
  metrics::count("core.branch_evaluations");
  const std::uint32_t reference = seg_max_.max_ecc_in_segment(node, steps_);
  if (mode_ == OracleMode::kSimulate || !validated_once_) {
    metrics::ScopedTimer span("core.branch_simulate");
    auto eval = algos::evaluate_window_ecc(*g_, *tree_, node, steps_, net_,
                                           mask_.empty() ? nullptr : &mask_);
    span.add(eval.stats.rounds, eval.stats.messages, eval.stats.bits);
    check_internal(eval.stats.rounds == t_eval_forward_,
                   "WindowOracle: evaluation round budget mismatch");
    check_internal(eval.max_ecc == reference,
                   "WindowOracle: distributed Evaluation disagrees with "
                   "centralized reference");
    validated_once_ = true;
  }
  return static_cast<std::int64_t>(reference);
}

}  // namespace qc::core::detail
