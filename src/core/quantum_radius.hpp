#pragma once

#include <cstdint>

#include "core/quantum_diameter.hpp"
#include "graph/graph.hpp"

namespace qc::core {

/// Report of a quantum radius/center computation.
struct RadiusReport {
  std::uint32_t radius = 0;
  graph::NodeId center = graph::kInvalidNode;
  graph::NodeId leader = graph::kInvalidNode;

  std::uint64_t total_rounds = 0;
  std::uint32_t init_rounds = 0;
  std::uint32_t t_setup = 0;
  std::uint32_t t_eval_forward = 0;
  qsim::SearchCosts costs;
  std::uint64_t distinct_branch_evaluations = 0;
  bool budget_exhausted = false;
  /// BFS runs of the centralized reference path (<= n; see
  /// QuantumDiameterReport::reference_bfs_runs).
  std::uint64_t reference_bfs_runs = 0;
  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;

  /// Propagated from OptimizationReport: the Evaluation subroutine raised
  /// a qc::Error and `radius`/`center` are meaningless.
  bool subroutine_failed = false;
  std::string failure_reason;
};

/// Quantum radius (and a center vertex) in O~(sqrt(n) * D) rounds: the
/// Section 3.1 framework run as *minimum* finding (maximize -ecc(u),
/// P_opt >= 1/n).
///
/// This is an extension beyond the paper: the Section 3.2 window trick does
/// not transfer (the maximum of ecc over a window upper-bounds the window's
/// members, which is the wrong direction for a minimum), so the radius
/// stays at the un-windowed O~(sqrt(n) D) cost. Implemented to exercise the
/// framework's generality (Section 2.4 explicitly covers any optimization
/// direction via Durr-Hoyer).
RadiusReport quantum_radius(const graph::Graph& g,
                            const QuantumConfig& cfg = {});

}  // namespace qc::core
