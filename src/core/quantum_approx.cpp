#include "core/quantum_approx.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "algos/bfs_tree.hpp"
#include "algos/hprw.hpp"
#include "algos/leader_election.hpp"
#include "core/detail.hpp"
#include "graph/algorithms.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::core {

using graph::NodeId;

QuantumApproxReport quantum_diameter_approx(const graph::Graph& g,
                                            const QuantumConfig& cfg,
                                            std::uint32_t s_override) {
  metrics::ScopedTimer span("core.quantum_diameter_approx");
  QuantumApproxReport rep;
  if (g.n() <= 2) {
    rep.estimate = g.n() <= 1 ? 0 : 1;
    rep.s_used = 1;
    return rep;
  }

  congest::RunStats prep_acc;

  // Choosing s needs an estimate of D; use d = ecc(leader) (within a
  // factor 2 of D), obtained with the standard O(D) preliminaries.
  const auto election = algos::elect_leader(g, cfg.net);
  prep_acc += election.stats;
  auto lead_ecc = algos::compute_eccentricity(g, election.leader, cfg.net);
  prep_acc += lead_ecc.stats;
  const std::uint32_t d_leader = std::max(1u, lead_ecc.ecc);

  std::uint32_t s = s_override;
  if (s == 0) {
    const double n = static_cast<double>(g.n());
    s = static_cast<std::uint32_t>(std::ceil(
        std::pow(n, 2.0 / 3.0) / std::cbrt(static_cast<double>(d_leader))));
  }
  s = std::clamp<std::uint32_t>(s, 1, g.n());
  rep.s_used = s;

  // Figure 3 preparation = [HPRW14] Steps 1-3.
  auto prep = algos::hprw_preparation(g, s, cfg.net);
  prep_acc += prep.stats;
  rep.prep_rounds = prep_acc.rounds;
  rep.aborted = prep.aborted;
  if (prep.aborted) {
    rep.total_rounds = rep.prep_rounds;
    return rep;
  }
  rep.w = prep.w;

  // Quantum phase: maximize f over R with DFS windows on BFS(w) restricted
  // to R ("replacing leader by w and mod 2n by mod 2s", Section 4).
  auto subtree =
      graph::induced_subtree(prep.tree_w.to_bfs_tree(), prep.r_mask);
  const std::uint32_t d_sub = subtree.height;  // depth of the R-ball
  std::vector<std::size_t> support;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (prep.r_mask[v]) support.push_back(v);
  }
  check_internal(support.size() == prep.r_size,
                 "quantum_diameter_approx: R size mismatch");

  std::uint32_t quantum_value = 0;
  if (prep.r_size == 1) {
    // R = {w}: its eccentricity is already known from BFS(w).
    quantum_value = prep.ecc_w;
  } else {
    const std::uint32_t steps = 2 * std::max(1u, d_sub);
    const std::uint32_t id_bits = qc::bit_width_for(g.n()) + 1;
    // Setup distributes u0 over BFS(w); measure its cost (Prop. 2).
    const std::uint32_t t_setup =
        algos::broadcast_from_root(g, prep.tree_w, 0, id_bits, cfg.net)
            .stats.rounds;
    // Announce the window parameter (2d_sub) so nodes know the schedule.
    prep_acc += algos::broadcast_from_root(g, prep.tree_w, d_sub, id_bits,
                                           cfg.net)
                    .stats;
    rep.prep_rounds = prep_acc.rounds;

    // The same Figure 2 oracle as the exact algorithm, restricted to R via
    // the mask (windows walk the DFS numbering of BFS(w) induced on R).
    const std::uint32_t branch_threads = detail::effective_branch_threads(cfg);
    auto oracle = std::make_shared<detail::WindowOracle>(
        g, prep.tree_w, steps, cfg.oracle, cfg.net, prep.r_mask,
        branch_threads);
    const std::uint32_t t_eval_forward = oracle->t_eval_forward();

    OptimizationProblem prob;
    prob.domain_size = g.n();
    prob.support = support;
    prob.evaluate = [oracle](std::size_t x) { return (*oracle)(x); };
    prob.t_init = 0;  // preparation is charged separately in prep_rounds
    prob.t_setup = t_setup;
    prob.t_eval_forward = t_eval_forward;
    prob.epsilon = std::min(
        1.0, static_cast<double>(std::max(1u, d_sub)) /
                 (2.0 * static_cast<double>(prep.r_size)));
    prob.delta = cfg.delta;
    prob.num_threads = branch_threads;

    Rng rng(cfg.seed ^ 0xa99ae5u);
    metrics::PhaseTimer quantum_span(metrics::global(), "core.quantum_phase");
    auto opt = distributed_quantum_optimize(prob, rng);
    quantum_span.add(opt.total_rounds, 0, 0);
    quantum_span.finish();
    detail::record_quantum_costs("quantum_diameter_approx", opt.costs,
                                 opt.distinct_evaluations,
                                 oracle->reference_bfs_runs());
    rep.subroutine_failed = opt.subroutine_failed;
    rep.failure_reason = opt.failure_reason;
    quantum_value =
        opt.subroutine_failed ? 0 : static_cast<std::uint32_t>(opt.value);
    rep.quantum_rounds = opt.total_rounds;
    rep.costs = opt.costs;
    rep.distinct_branch_evaluations = opt.distinct_evaluations;
    rep.reference_bfs_runs = oracle->reference_bfs_runs();
    rep.per_node_memory_qubits = opt.per_node_memory_qubits;
    rep.leader_memory_qubits = opt.leader_memory_qubits;
  }

  rep.estimate = std::max({prep.ecc_w, prep.max_ecc_sample, quantum_value});
  rep.total_rounds = rep.prep_rounds + rep.quantum_rounds;
  span.add(rep.total_rounds, 0, 0);
  return rep;
}

}  // namespace qc::core
