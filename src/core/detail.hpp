#pragma once

// Internal building blocks shared by the quantum diameter/radius/decision
// front-ends: the classical initialization phase of Section 3 and the
// Figure 2 branch oracle. Not part of the public API surface.

#include <atomic>
#include <cstdint>
#include <vector>

#include "algos/evaluation.hpp"
#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/graph.hpp"

namespace qc::core::detail {

/// The classical preliminaries of Section 3: elect a leader, build
/// BFS(leader) with distances (Proposition 1), learn d = ecc(leader), and
/// broadcast d so every node can compute the Figure 2 schedule lengths.
/// Also measures the Proposition 2 Setup cost with one instrumentation
/// broadcast (not charged).
struct InitPhase {
  graph::NodeId leader = graph::kInvalidNode;
  std::uint32_t d = 0;
  algos::TreeState tree;
  std::uint32_t rounds = 0;
  std::uint32_t t_setup = 0;
};

InitPhase run_initialization(const graph::Graph& g,
                             const congest::NetworkConfig& net);

/// Branch-evaluation workers a front-end should actually use: the
/// configured branch_threads (0 = hardware concurrency), forced to 1 when
/// a delivery observer is armed — concurrent branch simulations would
/// interleave the observed event stream nondeterministically.
std::uint32_t effective_branch_threads(const QuantumConfig& cfg);

/// Tags a completed quantum phase in the global metrics registry (no-op
/// when metrics are disabled): Grover/Setup/check counters labeled with
/// the front-end name, plus the branch-evaluation and reference-BFS
/// totals. Shared by all four front-ends so the exported counter names
/// stay uniform.
void record_quantum_costs(const char* algo, const qsim::SearchCosts& costs,
                          std::uint64_t distinct_evaluations,
                          std::uint64_t reference_bfs_runs);

/// The branch oracle for f(u) = max_{v in segment window of u} ecc(v),
/// with the two evaluation modes of OracleMode. Cross-checks the
/// distributed Figure 2 execution against the centralized reference (on
/// every branch in kSimulate mode, at least once in kDirect mode).
///
/// The centralized reference is served by a shared graph::EccEngine — one
/// BFS per vertex for the whole oracle lifetime plus an O(1) sparse-table
/// segment query per branch — instead of the naive Theta(d) BFS per
/// branch. Only the reference path changed: the distributed Figure 2
/// simulation, its round accounting, and the kSimulate cross-check are
/// untouched and stay bit-identical.
///
/// operator() is safe to call from several threads at once (each branch
/// simulation builds its own Network over the shared read-only graph and
/// tree), so a core::BranchEvaluator can fan branches across workers.
class WindowOracle {
 public:
  /// `num_threads` fans the engine's one-time eccentricity sweep across
  /// that many workers (0 = hardware concurrency); results are identical
  /// at any value.
  WindowOracle(const graph::Graph& g, const algos::TreeState& tree,
               std::uint32_t steps, OracleMode mode,
               congest::NetworkConfig net, std::vector<bool> mask = {},
               std::uint32_t num_threads = 1);

  std::uint32_t t_eval_forward() const { return t_eval_forward_; }

  /// BFS runs of the centralized reference path (<= n by construction).
  std::uint64_t reference_bfs_runs() const { return engine_.bfs_runs(); }

  /// f(u0), per the configured mode.
  std::int64_t operator()(std::size_t u0);

 private:
  const graph::Graph* g_;
  const algos::TreeState* tree_;
  std::uint32_t steps_;
  OracleMode mode_;
  congest::NetworkConfig net_;
  std::vector<bool> mask_;
  graph::DfsNumbering num_;
  graph::EccEngine engine_;
  graph::EccEngine::SegmentMax seg_max_;
  std::uint32_t t_eval_forward_ = 0;
  std::atomic<bool> validated_once_{false};
};

}  // namespace qc::core::detail
