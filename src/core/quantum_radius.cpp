#include "core/quantum_radius.hpp"

#include <memory>

#include "core/detail.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::core {

RadiusReport quantum_radius(const graph::Graph& g, const QuantumConfig& cfg) {
  metrics::ScopedTimer span("core.quantum_radius");
  RadiusReport rep;
  if (g.n() <= 1) {
    rep.radius = 0;
    rep.center = g.n() == 1 ? 0 : graph::kInvalidNode;
    return rep;
  }

  detail::InitPhase init = detail::run_initialization(g, cfg.net);
  rep.leader = init.leader;
  rep.init_rounds = init.rounds;
  rep.t_setup = init.t_setup;

  // steps = 0: the window is {u}, so the oracle returns ecc(u) exactly
  // (the Section 3.1 objective); we maximize its negation.
  const std::uint32_t branch_threads = detail::effective_branch_threads(cfg);
  auto oracle = std::make_shared<detail::WindowOracle>(
      g, init.tree, /*steps=*/0, cfg.oracle, cfg.net, std::vector<bool>{},
      branch_threads);
  rep.t_eval_forward = oracle->t_eval_forward();

  OptimizationProblem prob;
  prob.domain_size = g.n();
  prob.evaluate = [oracle](std::size_t x) { return -(*oracle)(x); };
  prob.t_init = init.rounds;
  prob.t_setup = init.t_setup;
  prob.t_eval_forward = oracle->t_eval_forward();
  prob.epsilon = 1.0 / static_cast<double>(g.n());
  prob.delta = cfg.delta;
  prob.num_threads = branch_threads;

  Rng rng(cfg.seed ^ 0x5ad105ULL);
  metrics::PhaseTimer quantum_span(metrics::global(), "core.quantum_phase");
  auto opt = distributed_quantum_optimize(prob, rng);
  quantum_span.add(opt.total_rounds - init.rounds, 0, 0);
  quantum_span.finish();
  detail::record_quantum_costs("quantum_radius", opt.costs,
                               opt.distinct_evaluations,
                               oracle->reference_bfs_runs());

  rep.subroutine_failed = opt.subroutine_failed;
  rep.failure_reason = opt.failure_reason;
  rep.radius = opt.subroutine_failed
                   ? 0
                   : static_cast<std::uint32_t>(-opt.value);
  rep.center = static_cast<graph::NodeId>(opt.argmax);
  rep.total_rounds = opt.total_rounds;
  rep.costs = opt.costs;
  rep.distinct_branch_evaluations = opt.distinct_evaluations;
  rep.reference_bfs_runs = oracle->reference_bfs_runs();
  rep.budget_exhausted = opt.budget_exhausted;
  rep.per_node_memory_qubits = opt.per_node_memory_qubits;
  rep.leader_memory_qubits = opt.leader_memory_qubits;
  span.add(rep.total_rounds, 0, 0);
  return rep;
}

}  // namespace qc::core
