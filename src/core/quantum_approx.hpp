#pragma once

#include <cstdint>

#include "core/quantum_diameter.hpp"
#include "graph/graph.hpp"

namespace qc::core {

/// Report of the Theorem 4 / Figure 3 quantum 3/2-approximation.
struct QuantumApproxReport {
  std::uint32_t estimate = 0;  ///< D-bar with D-bar <= D <= 3*D-bar/2 whp
  bool aborted = false;        ///< the |S| cap fired (resample to retry)
  std::uint32_t s_used = 0;    ///< the parameter s (= Theta(n^{2/3} D^{-1/3}))
  graph::NodeId w = graph::kInvalidNode;

  std::uint64_t total_rounds = 0;
  std::uint64_t prep_rounds = 0;     ///< classical preparation (Figure 3 top)
  std::uint64_t quantum_rounds = 0;  ///< the quantum optimization phase

  qsim::SearchCosts costs;
  std::uint64_t distinct_branch_evaluations = 0;
  /// BFS runs of the centralized reference path (<= n; see
  /// QuantumDiameterReport::reference_bfs_runs).
  std::uint64_t reference_bfs_runs = 0;
  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;

  /// Propagated from OptimizationReport: the quantum phase's Evaluation
  /// subroutine failed and `estimate` rests on the classical phase only.
  bool subroutine_failed = false;
  std::string failure_reason;
};

/// Theorem 4: the quantum 3/2-approximation of Figure 3. The preparation
/// phase is the classical [HPRW14] Steps 1-3 (polynomial classical memory,
/// O~(n/s + D) rounds); the second phase computes the maximum eccentricity
/// over R by distributed quantum optimization restricted to R
/// (polylog quantum memory, O~(sqrt(s*D) + D) rounds). With
/// s = Theta(n^{2/3} / D^{1/3}) the total is O~(cbrt(n*D) + D).
///
/// `s_override` forces a specific s (0 = choose the optimum from the
/// measured d = ecc(leader)).
QuantumApproxReport quantum_diameter_approx(const graph::Graph& g,
                                            const QuantumConfig& cfg = {},
                                            std::uint32_t s_override = 0);

}  // namespace qc::core
