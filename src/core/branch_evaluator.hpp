#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/thread_pool.hpp"

namespace qc::core {

/// Parallel fan-out of independent oracle branches with a shared memo
/// cache.
///
/// Every Grover iterate of the Section 2.4 framework applies the
/// Evaluation unitary to all populated basis branches at once, and each
/// branch is an independent deterministic CONGEST simulation — so the
/// branch set can be evaluated in any order, on any number of workers,
/// with bit-identical results. prefetch() evaluates a branch set exactly
/// once each across the pool (replacing the old per-call lazy memos);
/// operator() then serves from the cache, falling back to an inline
/// evaluation on a miss. Results, and everything derived from them
/// (values, round counts, RunStats aggregation), are independent of the
/// thread count.
///
/// The evaluation function must be safe to call from several threads at
/// once when num_threads > 1 (the WindowOracle is; a capture that mutates
/// unsynchronized state is not — run such oracles with num_threads = 1).
template <typename Value>
class BranchEvaluator {
 public:
  using Eval = std::function<Value(std::size_t)>;

  /// `num_threads` = 0 means hardware_concurrency; 1 evaluates inline on
  /// the calling thread (no pool, exactly the historical serial path).
  explicit BranchEvaluator(Eval eval, std::uint32_t num_threads = 1)
      : eval_(std::move(eval)),
        num_threads_(num_threads != 0
                         ? num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {}

  /// Evaluates every not-yet-cached branch in `branches` exactly once,
  /// fanning out across the worker pool. The first exception thrown by a
  /// branch evaluation is rethrown here (on the calling thread) and
  /// remaining work is abandoned.
  void prefetch(const std::vector<std::size_t>& branches) {
    std::vector<std::size_t> missing;
    {
      std::unordered_set<std::size_t> seen;
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t b : branches) {
        if (memo_.find(b) == memo_.end() && seen.insert(b).second) {
          missing.push_back(b);
        }
      }
    }
    if (missing.empty()) return;

    const std::uint32_t workers = static_cast<std::uint32_t>(
        std::min<std::size_t>(num_threads_, missing.size()));
    if (workers <= 1) {
      for (std::size_t b : missing) {
        const Value v = eval_(b);
        std::lock_guard<std::mutex> lock(mu_);
        memo_.emplace(b, v);
      }
      return;
    }

    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mu;
    for (std::uint32_t w = 0; w < workers; ++w) {
      pool_->submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= missing.size()) return;
          try {
            const Value v = eval_(missing[i]);
            std::lock_guard<std::mutex> lock(mu_);
            memo_.emplace(missing[i], v);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
            next.store(missing.size());  // abandon remaining branches
            return;
          }
        }
      });
    }
    pool_->wait_idle();
    if (error) std::rethrow_exception(error);
  }

  /// Convenience: prefetch the full domain [0, domain_size).
  void prefetch_all(std::size_t domain_size) {
    std::vector<std::size_t> all(domain_size);
    for (std::size_t i = 0; i < domain_size; ++i) all[i] = i;
    prefetch(all);
  }

  /// f(x), from the cache when present. A miss evaluates inline and
  /// caches (single-threaded callers only, e.g. the quantum sampling
  /// loop after a full prefetch).
  Value operator()(std::size_t x) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = memo_.find(x);
      if (it != memo_.end()) return it->second;
    }
    const Value v = eval_(x);
    std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(x, v);
    return v;
  }

  /// Number of distinct branches evaluated so far.
  std::uint64_t distinct_evaluations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return memo_.size();
  }

 private:
  Eval eval_;
  std::uint32_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, Value> memo_;
};

}  // namespace qc::core
