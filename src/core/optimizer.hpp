#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qsim/search.hpp"
#include "util/rng.hpp"

namespace qc::core {

/// A distributed optimization problem in the framework of Section 2.4
/// (Theorem 7): a leader coordinates quantum maximum finding over a domain
/// X whose evaluation runs as a distributed subroutine.
///
/// The round costs of the three black boxes are *measured* from CONGEST
/// executions by the caller and passed in:
///  - t_init: rounds of Initialization (run once),
///  - t_setup: rounds of one Setup application (Proposition 2's CNOT-copy
///    broadcast; its inverse costs the same),
///  - t_eval_forward: rounds of Steps 1-4 of the Evaluation procedure
///    (Figure 2). The Evaluation *unitary* costs 2*t_eval_forward (Step 5
///    reverts Steps 1-4 to clean all registers).
struct OptimizationProblem {
  std::size_t domain_size = 0;        ///< |X|
  /// Support of the Setup superposition; empty means uniform over X
  /// (Section 3), otherwise uniform over these indices (Figure 3's R).
  std::vector<std::size_t> support;
  /// The objective f, evaluated per basis branch. Deterministic — the
  /// framework memoizes it, exactly as the Evaluation unitary maps equal
  /// branches to equal results.
  std::function<std::int64_t(std::size_t)> evaluate;

  std::uint32_t t_init = 0;
  std::uint32_t t_setup = 0;
  std::uint32_t t_eval_forward = 0;

  double epsilon = 0;  ///< lower bound on P_opt (e.g. d/2n from Lemma 1)
  double delta = 0.01; ///< target failure probability

  /// Branch-evaluation workers: the whole support is evaluated up front
  /// through a core::BranchEvaluator (exactly the branch set every Grover
  /// iterate touches), so results and round accounting are independent of
  /// this value. 1 = inline on the calling thread (safe for any
  /// `evaluate`); > 1 requires `evaluate` to be thread-safe; 0 = one
  /// worker per hardware thread.
  std::uint32_t num_threads = 1;
};

/// Outcome of distributed quantum optimization with full cost accounting.
struct OptimizationReport {
  std::size_t argmax = 0;
  std::int64_t value = 0;
  bool budget_exhausted = false;
  /// True when a branch simulation (the distributed Evaluation subroutine)
  /// raised a qc::Error — e.g. a bandwidth violation under kEnforce or an
  /// internal consistency failure under a fault plan. The report is then
  /// returned with `failure_reason` instead of propagating the exception;
  /// argmax/value/costs are meaningless.
  bool subroutine_failed = false;
  std::string failure_reason;

  qsim::SearchCosts costs;            ///< Setup/Grover/check counts
  std::uint64_t distinct_evaluations = 0;  ///< distinct branches simulated

  /// Total CONGEST rounds:
  ///   t_init
  /// + setup_invocations * t_setup                  (fresh preparations)
  /// + grover_iterations * 2*(2*t_eval_forward + t_setup)
  ///     (each iterate: Evaluation, phase, Evaluation^-1 for the oracle —
  ///      the unitary Evaluation itself being forward+revert — and
  ///      Setup^-1, Setup for the reflection)
  /// + candidate_evaluations * t_eval_forward       (classical checks)
  std::uint64_t total_rounds = 0;

  /// Qubit memory per the Theorem 7 analysis: every node holds the data
  /// register plus O(log n) working counters; the leader additionally
  /// records O(log(1/epsilon)) amplification outcomes of log|X| qubits
  /// each (measurements are deferred to the end).
  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;
};

/// Runs Theorem 7: leader-coordinated quantum maximization with the given
/// measured subroutine costs. Randomness comes from `rng` (reproducible).
OptimizationReport distributed_quantum_optimize(const OptimizationProblem& p,
                                                Rng& rng);

/// A distributed *decision* problem in the Theorem 6 (amplitude
/// amplification) setting: is any basis branch marked? This is the shape
/// of the paper's lower-bound statements ("decide whether the diameter is
/// at most d1 or at least d2") and needs no threshold ladder — one
/// amplitude-amplification search suffices, saving a log factor over full
/// maximization.
struct SearchProblem {
  std::size_t domain_size = 0;
  std::vector<std::size_t> support;  ///< empty = uniform over the domain
  /// The checking predicate (implemented as Evaluation + comparison +
  /// Evaluation^-1 on the real machine). Memoized like the optimizer's f.
  std::function<bool(std::size_t)> marked;

  std::uint32_t t_init = 0;
  std::uint32_t t_setup = 0;
  std::uint32_t t_eval_forward = 0;

  double epsilon = 0;  ///< promise: P_M = 0 or P_M >= epsilon
  double delta = 0.01;

  /// Branch-evaluation workers; same semantics as
  /// OptimizationProblem::num_threads.
  std::uint32_t num_threads = 1;
};

struct SearchReport {
  bool found = false;
  std::size_t witness = 0;  ///< a marked element when found
  /// Same contract as OptimizationReport::subroutine_failed.
  bool subroutine_failed = false;
  std::string failure_reason;

  qsim::SearchCosts costs;
  std::uint64_t distinct_evaluations = 0;
  std::uint64_t total_rounds = 0;  ///< same accounting as the optimizer
  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;
};

/// Runs Theorem 6 distributively with the given measured subroutine costs.
SearchReport distributed_quantum_search(const SearchProblem& p, Rng& rng);

}  // namespace qc::core
