#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "core/optimizer.hpp"
#include "graph/graph.hpp"

namespace qc::core {

/// How the branch oracle f(u0) is obtained.
enum class OracleMode {
  /// Every distinct branch runs the full Figure 2 procedure on the CONGEST
  /// simulator and is cross-checked against the centralized reference.
  /// This is the default and what the test suite exercises.
  kSimulate,
  /// Branches are evaluated with the centralized reference
  /// (graph::max_ecc_in_segment); one CONGEST execution still runs to
  /// measure the round costs and validate that branch. Bit-for-bit the
  /// same values as kSimulate (the procedures agree — tested), at a
  /// fraction of the wall-clock cost; intended for large benchmark sweeps.
  kDirect,
};

struct QuantumConfig {
  congest::NetworkConfig net;
  double delta = 0.01;       ///< failure probability target
  OracleMode oracle = OracleMode::kSimulate;
  std::uint64_t seed = 7;    ///< drives the quantum sampling

  /// Workers for the branch fan-out: each Grover branch is an independent
  /// deterministic CONGEST simulation, so the quantum front-ends evaluate
  /// the branch set through a core::BranchEvaluator on this many threads.
  /// 0 = one per hardware thread (default), 1 = serial (bit-for-bit the
  /// historical behavior; so is every other value — results and round
  /// counts do not depend on it). Forced to 1 when `net.observer` is
  /// armed, so observed event streams keep their deterministic order.
  std::uint32_t branch_threads = 0;
};

/// Full report of a quantum diameter computation; "rounds" quantities are
/// CONGEST rounds of the simulated distributed execution, everything else
/// is bookkeeping for the benchmark harness.
struct QuantumDiameterReport {
  std::uint32_t diameter = 0;      ///< the algorithm's output
  graph::NodeId leader = graph::kInvalidNode;
  std::uint32_t ecc_leader = 0;    ///< the d with d <= D <= 2d

  std::uint64_t total_rounds = 0;  ///< init + quantum phase
  std::uint32_t init_rounds = 0;   ///< measured classical initialization
  std::uint32_t t_setup = 0;       ///< measured Setup cost (Prop. 2)
  std::uint32_t t_eval_forward = 0;///< measured Figure 2 Steps 1-4 cost

  qsim::SearchCosts costs;
  std::uint64_t distinct_branch_evaluations = 0;
  bool budget_exhausted = false;

  /// BFS runs spent by the centralized reference path (the EccEngine
  /// behind the branch oracle): <= n, versus Theta(n*d) before the shared
  /// engine. Purely simulator bookkeeping — no CONGEST rounds involved.
  std::uint64_t reference_bfs_runs = 0;

  std::uint64_t per_node_memory_qubits = 0;
  std::uint64_t leader_memory_qubits = 0;

  /// Propagated from OptimizationReport: the distributed Evaluation
  /// subroutine raised a qc::Error (e.g. under a fault plan) and
  /// `diameter` is meaningless.
  bool subroutine_failed = false;
  std::string failure_reason;
};

/// The simpler algorithm of Section 3.1: quantum maximization of
/// f(u) = ecc(u) with P_opt >= 1/n. O(sqrt(n) * D) rounds.
QuantumDiameterReport quantum_diameter_simple(const graph::Graph& g,
                                              const QuantumConfig& cfg = {});

/// Theorem 1 (Section 3.2): quantum maximization of
/// f(u) = max_{v in S(u)} ecc(v) over DFS windows of width 2d, with
/// P_opt >= d/2n by Lemma 1. O(sqrt(n * D)) rounds, O(log^2 n) qubits of
/// memory per node.
QuantumDiameterReport quantum_diameter_exact(const graph::Graph& g,
                                             const QuantumConfig& cfg = {});

}  // namespace qc::core
