#include "core/quantum_diameter.hpp"

#include <algorithm>
#include <memory>

#include "core/detail.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::core {

using graph::NodeId;

namespace {

QuantumDiameterReport run_diameter_optimization(const graph::Graph& g,
                                                const QuantumConfig& cfg,
                                                bool windowed) {
  const char* algo =
      windowed ? "quantum_diameter_exact" : "quantum_diameter_simple";
  metrics::ScopedTimer span(windowed ? "core.quantum_diameter_exact"
                                     : "core.quantum_diameter_simple");
  QuantumDiameterReport rep;
  if (g.n() <= 1) {
    rep.diameter = 0;
    rep.leader = g.n() == 1 ? 0 : graph::kInvalidNode;
    return rep;
  }

  detail::InitPhase init = detail::run_initialization(g, cfg.net);
  rep.leader = init.leader;
  rep.ecc_leader = init.d;
  rep.init_rounds = init.rounds;
  rep.t_setup = init.t_setup;

  // Section 3.1 takes S(u) = {u} (f = ecc), Section 3.2 takes windows of
  // width 2d; Lemma 1 gives P_opt >= d/2n for the latter, the trivial
  // bound P_opt >= 1/n for the former.
  const std::uint32_t steps = windowed ? 2 * init.d : 0;
  const double n = static_cast<double>(g.n());
  const double epsilon =
      windowed ? std::min(1.0, static_cast<double>(init.d) / (2.0 * n))
               : 1.0 / n;

  const std::uint32_t branch_threads = detail::effective_branch_threads(cfg);
  auto oracle = std::make_shared<detail::WindowOracle>(
      g, init.tree, steps, cfg.oracle, cfg.net, std::vector<bool>{},
      branch_threads);
  rep.t_eval_forward = oracle->t_eval_forward();

  OptimizationProblem prob;
  prob.domain_size = g.n();
  prob.evaluate = [oracle](std::size_t x) { return (*oracle)(x); };
  prob.t_init = init.rounds;
  prob.t_setup = init.t_setup;
  prob.t_eval_forward = oracle->t_eval_forward();
  prob.epsilon = epsilon;
  prob.delta = cfg.delta;
  prob.num_threads = branch_threads;

  Rng rng(cfg.seed);
  metrics::PhaseTimer quantum_span(metrics::global(), "core.quantum_phase");
  auto opt = distributed_quantum_optimize(prob, rng);
  quantum_span.add(opt.total_rounds - init.rounds, 0, 0);
  quantum_span.finish();
  detail::record_quantum_costs(algo, opt.costs, opt.distinct_evaluations,
                               oracle->reference_bfs_runs());

  rep.diameter = static_cast<std::uint32_t>(opt.value);
  rep.total_rounds = opt.total_rounds;
  rep.costs = opt.costs;
  rep.distinct_branch_evaluations = opt.distinct_evaluations;
  rep.reference_bfs_runs = oracle->reference_bfs_runs();
  rep.budget_exhausted = opt.budget_exhausted;
  rep.per_node_memory_qubits = opt.per_node_memory_qubits;
  rep.leader_memory_qubits = opt.leader_memory_qubits;
  rep.subroutine_failed = opt.subroutine_failed;
  rep.failure_reason = opt.failure_reason;
  span.add(rep.total_rounds, 0, 0);
  return rep;
}

}  // namespace

QuantumDiameterReport quantum_diameter_simple(const graph::Graph& g,
                                              const QuantumConfig& cfg) {
  return run_diameter_optimization(g, cfg, /*windowed=*/false);
}

QuantumDiameterReport quantum_diameter_exact(const graph::Graph& g,
                                             const QuantumConfig& cfg) {
  return run_diameter_optimization(g, cfg, /*windowed=*/true);
}

}  // namespace qc::core
