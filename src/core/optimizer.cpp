#include "core/optimizer.hpp"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "qsim/amplitude_vector.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::core {

OptimizationReport distributed_quantum_optimize(const OptimizationProblem& p,
                                                Rng& rng) {
  require(p.domain_size >= 1, "optimize: empty domain");
  require(p.evaluate != nullptr, "optimize: no objective");
  require(p.epsilon > 0 && p.epsilon <= 1, "optimize: epsilon out of range");

  const auto setup_state =
      p.support.empty()
          ? qsim::AmplitudeVector::uniform(p.domain_size)
          : qsim::AmplitudeVector::over_support(p.domain_size, p.support);

  // Memoization mirrors the determinism of the Evaluation unitary: the
  // same basis branch always evaluates to the same value, so the branch
  // simulation needs to run once per distinct x (the *quantum* cost is
  // still charged per oracle application via the counters).
  auto memo = std::make_shared<std::unordered_map<std::size_t, std::int64_t>>();
  auto f = [memo, &p](std::size_t x) {
    auto it = memo->find(x);
    if (it != memo->end()) return it->second;
    const std::int64_t v = p.evaluate(x);
    memo->emplace(x, v);
    return v;
  };

  auto m = qsim::quantum_maximize(setup_state, f, p.epsilon, p.delta, rng);

  OptimizationReport rep;
  rep.argmax = m.argmax;
  rep.value = m.value;
  rep.budget_exhausted = m.budget_exhausted;
  rep.costs = m.costs;
  rep.distinct_evaluations = memo->size();

  const std::uint64_t t_eval_unitary = 2ULL * p.t_eval_forward;
  rep.total_rounds =
      p.t_init + m.costs.setup_invocations * static_cast<std::uint64_t>(p.t_setup) +
      m.costs.grover_iterations * (2ULL * t_eval_unitary + 2ULL * p.t_setup) +
      m.costs.candidate_evaluations * static_cast<std::uint64_t>(p.t_eval_forward);

  // Theorem 7 memory analysis. |X| <= domain_size; the working counters of
  // Figures 1-2 are a constant number of O(log domain)-bit registers.
  const std::uint64_t x_bits = qc::bit_width_for(p.domain_size);
  rep.per_node_memory_qubits = x_bits + 4ULL * (x_bits + 2);
  const auto outcome_slots = static_cast<std::uint64_t>(
      std::ceil(std::log2(1.0 / p.epsilon)) + 1);
  rep.leader_memory_qubits =
      rep.per_node_memory_qubits + x_bits * outcome_slots;
  return rep;
}

SearchReport distributed_quantum_search(const SearchProblem& p, Rng& rng) {
  require(p.domain_size >= 1, "search: empty domain");
  require(p.marked != nullptr, "search: no predicate");
  require(p.epsilon > 0 && p.epsilon <= 1, "search: epsilon out of range");

  const auto setup_state =
      p.support.empty()
          ? qsim::AmplitudeVector::uniform(p.domain_size)
          : qsim::AmplitudeVector::over_support(p.domain_size, p.support);

  auto memo = std::make_shared<std::unordered_map<std::size_t, bool>>();
  auto pred = [memo, &p](std::size_t x) {
    auto it = memo->find(x);
    if (it != memo->end()) return it->second;
    const bool v = p.marked(x);
    memo->emplace(x, v);
    return v;
  };

  auto s = qsim::amplitude_amplification_search(setup_state, pred, p.epsilon,
                                                p.delta, rng);

  SearchReport rep;
  rep.found = s.found;
  rep.witness = s.item;
  rep.costs = s.costs;
  rep.distinct_evaluations = memo->size();

  const std::uint64_t t_eval_unitary = 2ULL * p.t_eval_forward;
  rep.total_rounds =
      p.t_init +
      s.costs.setup_invocations * static_cast<std::uint64_t>(p.t_setup) +
      s.costs.grover_iterations * (2ULL * t_eval_unitary + 2ULL * p.t_setup) +
      s.costs.candidate_evaluations *
          static_cast<std::uint64_t>(p.t_eval_forward);

  const std::uint64_t x_bits = qc::bit_width_for(p.domain_size);
  rep.per_node_memory_qubits = x_bits + 4ULL * (x_bits + 2);
  rep.leader_memory_qubits = rep.per_node_memory_qubits + x_bits;
  return rep;
}

}  // namespace qc::core
