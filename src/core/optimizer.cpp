#include "core/optimizer.hpp"

#include <cmath>

#include "core/branch_evaluator.hpp"
#include "qsim/amplitude_vector.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::core {

OptimizationReport distributed_quantum_optimize(const OptimizationProblem& p,
                                                Rng& rng) {
  require(p.domain_size >= 1, "optimize: empty domain");
  require(p.evaluate != nullptr, "optimize: no objective");
  require(p.epsilon > 0 && p.epsilon <= 1, "optimize: epsilon out of range");
  OptimizationReport rep;
  // Precondition violations above are caller bugs and still throw; a
  // qc::Error from here on comes from the distributed subroutine (branch
  // simulation) and is surfaced in the report instead.
  try {
  const auto setup_state =
      p.support.empty()
          ? qsim::AmplitudeVector::uniform(p.domain_size)
          : qsim::AmplitudeVector::over_support(p.domain_size, p.support);

  // The shared memo mirrors the determinism of the Evaluation unitary:
  // the same basis branch always evaluates to the same value, so each
  // branch simulation runs once per distinct x (the *quantum* cost is
  // still charged per oracle application via the counters). Every Grover
  // iterate touches the whole populated support, so the full support is
  // prefetched — fanned across num_threads workers — before the sampling
  // loop consumes any randomness.
  BranchEvaluator<std::int64_t> branches(p.evaluate, p.num_threads);
  if (p.support.empty()) {
    branches.prefetch_all(p.domain_size);
  } else {
    branches.prefetch(p.support);
  }

  auto m = qsim::quantum_maximize(
      setup_state, [&branches](std::size_t x) { return branches(x); },
      p.epsilon, p.delta, rng);

  rep.argmax = m.argmax;
  rep.value = m.value;
  rep.budget_exhausted = m.budget_exhausted;
  rep.costs = m.costs;
  rep.distinct_evaluations = branches.distinct_evaluations();

  const std::uint64_t t_eval_unitary = 2ULL * p.t_eval_forward;
  rep.total_rounds =
      p.t_init + m.costs.setup_invocations * static_cast<std::uint64_t>(p.t_setup) +
      m.costs.grover_iterations * (2ULL * t_eval_unitary + 2ULL * p.t_setup) +
      m.costs.candidate_evaluations * static_cast<std::uint64_t>(p.t_eval_forward);

  // Theorem 7 memory analysis. |X| <= domain_size; the working counters of
  // Figures 1-2 are a constant number of O(log domain)-bit registers.
  const std::uint64_t x_bits = qc::bit_width_for(p.domain_size);
  rep.per_node_memory_qubits = x_bits + 4ULL * (x_bits + 2);
  const auto outcome_slots = static_cast<std::uint64_t>(
      std::ceil(std::log2(1.0 / p.epsilon)) + 1);
  rep.leader_memory_qubits =
      rep.per_node_memory_qubits + x_bits * outcome_slots;
  } catch (const qc::Error& e) {
    rep.subroutine_failed = true;
    rep.failure_reason = e.what();
  }
  return rep;
}

SearchReport distributed_quantum_search(const SearchProblem& p, Rng& rng) {
  require(p.domain_size >= 1, "search: empty domain");
  require(p.marked != nullptr, "search: no predicate");
  require(p.epsilon > 0 && p.epsilon <= 1, "search: epsilon out of range");
  SearchReport rep;
  try {
  const auto setup_state =
      p.support.empty()
          ? qsim::AmplitudeVector::uniform(p.domain_size)
          : qsim::AmplitudeVector::over_support(p.domain_size, p.support);

  BranchEvaluator<bool> branches(p.marked, p.num_threads);
  if (p.support.empty()) {
    branches.prefetch_all(p.domain_size);
  } else {
    branches.prefetch(p.support);
  }

  auto s = qsim::amplitude_amplification_search(
      setup_state, [&branches](std::size_t x) { return branches(x); },
      p.epsilon, p.delta, rng);

  rep.found = s.found;
  rep.witness = s.item;
  rep.costs = s.costs;
  rep.distinct_evaluations = branches.distinct_evaluations();

  const std::uint64_t t_eval_unitary = 2ULL * p.t_eval_forward;
  rep.total_rounds =
      p.t_init +
      s.costs.setup_invocations * static_cast<std::uint64_t>(p.t_setup) +
      s.costs.grover_iterations * (2ULL * t_eval_unitary + 2ULL * p.t_setup) +
      s.costs.candidate_evaluations *
          static_cast<std::uint64_t>(p.t_eval_forward);

  const std::uint64_t x_bits = qc::bit_width_for(p.domain_size);
  rep.per_node_memory_qubits = x_bits + 4ULL * (x_bits + 2);
  rep.leader_memory_qubits = rep.per_node_memory_qubits + x_bits;
  } catch (const qc::Error& e) {
    rep.subroutine_failed = true;
    rep.failure_reason = e.what();
  }
  return rep;
}

}  // namespace qc::core
