#pragma once

#include <cstdint>
#include <string>

#include "util/metrics.hpp"

namespace qc::algos {

/// How a distributed phase (BFS wave, convergecast, broadcast, census
/// exchange) ended. Under the paper's fault-free model every phase ends
/// kQuiesced; the other states exist for executions under a
/// congest::FaultPlan, where the graceful-degradation contract is to
/// *report* the failure instead of aborting via check_internal.
///
/// The enum is ordered by severity (kQuiesced best), so combining phase
/// statuses is a max.
enum class PhaseStatus : std::uint8_t {
  kQuiesced = 0,  ///< quiesced within budget and outputs are complete
  kTimedOut = 1,  ///< round budget elapsed before quiescence
  kDegraded = 2,  ///< quiesced, but outputs are incomplete or inconsistent
                  ///< (e.g. a dropped activation or a corrupted report)
};

inline const char* to_string(PhaseStatus s) {
  switch (s) {
    case PhaseStatus::kQuiesced: return "quiesced";
    case PhaseStatus::kTimedOut: return "timed-out";
    case PhaseStatus::kDegraded: return "degraded";
  }
  return "?";
}

/// Combined status of a multi-phase pipeline: the worst of the parts.
inline PhaseStatus worst_of(PhaseStatus a, PhaseStatus b) {
  return a >= b ? a : b;
}

/// Report a phase outcome to the metrics registry as a labeled counter
/// ("algos.phase_status" with label "<phase>/<status>"). One relaxed
/// atomic load and no allocations when metrics are disabled.
inline void report_phase_status(const char* phase, PhaseStatus s) {
  if (!metrics::enabled()) return;
  metrics::count("algos.phase_status", 1,
                 std::string(phase) + "/" + to_string(s));
}

/// Bounded retry discipline for phases running under a fault plan: each
/// attempt multiplies the round budget by `budget_growth` and re-derives
/// the fault seed via FaultPlan::for_attempt, so a deterministic plan that
/// starved one attempt does not starve the next one identically. Attempt
/// 0 uses the caller's plan unchanged — with max_attempts == 1 the
/// wrapper is bit-identical to the un-wrapped call.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< total attempts, >= 1
  std::uint32_t budget_growth = 2; ///< round-budget multiplier per retry
};

}  // namespace qc::algos
