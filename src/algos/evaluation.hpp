#pragma once

#include <cstdint>
#include <vector>

#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// The Evaluation procedure of Figure 2 (Proposition 4), run as one
/// time-driven CONGEST execution with three internally scheduled phases:
///
///  * Step 1  (rounds 1 .. 3*steps): a DFS token walks `steps` edges of
///    the BFS tree starting at u0, continuing the Euler tour from u0's
///    position and wrapping at the root. Nodes hold only their parent
///    pointer (O(log n) bits), so the token discovers "next child after c"
///    with a probe/reply cycle: the holder broadcasts PROBE(threshold),
///    every (mask-eligible) child answers with whether its id exceeds the
///    threshold, and the holder forwards the token to the smallest
///    qualifying child — or up to its parent, or (at the root) wraps to
///    its smallest child. Three rounds per walk step. Every node first
///    reached at walk position t records tau'(v) = t and joins S;
///    tau'(u0) = 0.
///  * Step 2  (the next pipeline_len rounds): every v in S broadcasts its
///    start message (tau'(v), 0) at local round 2*tau'(v) + 1; all nodes
///    run the filter/keep/extend rule of Figure 2 Step 2(3). The schedule
///    guarantees congestion-freeness (Lemmas 2-4); the implementation
///    *asserts* the Lemma 4 invariant instead of trusting it.
///  * Steps 3-4 (the final height+1 rounds): a max convergecast of the dv
///    values up the BFS tree (each node only needs its parent and depth)
///    delivers max_{v in S} ecc(v) to the root.
///
/// Step 5 of Figure 2 (reverting steps 3 to 1 to clean all registers,
/// which makes the procedure a unitary usable inside amplitude
/// amplification) is charged by the caller as a second pass of the same
/// length; see core::DistributedQuantumOptimizer.
///
/// One off-by-one deviation from the paper's text: Figure 2 has nodes keep
/// dv = max(dv, delta) while rebroadcasting (tau', delta+1), which would
/// make a node at distance k from the source keep k-1. We keep
/// dv = max(dv, delta+1) so dv is exactly max_{u in S processed} d(u, v),
/// which is what the correctness argument (and "delta = d(u,v)") intends.
class EvaluationProgram : public congest::NodeProgram {
 public:
  struct Params {
    graph::NodeId u0 = 0;             ///< start of the DFS segment
    std::uint32_t steps = 0;          ///< token moves (2d in the paper)
    std::uint32_t pipeline_len = 0;   ///< length of the Step 2 window
    std::uint32_t tree_height = 0;    ///< height of the BFS tree
    std::uint32_t n = 0;              ///< network size (message widths)
  };

  /// `tree_parent`/`depth`: this node's slice of the BFS tree;
  /// `in_mask`: whether this node participates in the token walk (true
  /// for the Theorem 1 evaluation; membership in R for the Figure 3
  /// variant — a locally known bit).
  EvaluationProgram(Params params, graph::NodeId tree_parent,
                    std::uint32_t depth, bool in_mask);

  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;

  bool in_window() const { return tau_prime_ >= 0; }
  std::int64_t tau_prime() const { return tau_prime_; }
  std::uint32_t dv() const { return dv_; }
  bool has_result() const { return has_result_; }
  std::uint32_t result() const { return result_; }

  /// Total Step 1 duration in rounds (3 per walk step).
  static std::uint32_t token_phase_rounds(std::uint32_t steps) {
    return 3 * steps;
  }

 private:
  // Message kinds of the Step 1 sub-protocol.
  enum Kind : std::uint64_t { kToken = 0, kProbe = 1, kReply = 2 };

  void token_round(congest::NodeContext& ctx);
  void pipeline_round(congest::NodeContext& ctx, std::uint32_t local_round);
  void convergecast_round(congest::NodeContext& ctx,
                          std::uint32_t local_round);
  void receive_token(congest::NodeContext& ctx, std::uint32_t position,
                     bool from_parent, graph::NodeId came_from);

  Params p_;
  graph::NodeId tree_parent_;
  std::uint32_t depth_;
  bool in_mask_;

  std::uint32_t kind_bits_, tau_bits_, delta_bits_, dist_bits_, id_bits_;

  // Step 1 state: O(log n) — the current probe context while holding the
  // token, plus tau'.
  std::int64_t tau_prime_ = -1;
  bool awaiting_replies_ = false;
  std::uint32_t token_position_ = 0;
  std::int64_t probe_threshold_ = -1;  // -1 = "any child"

  // Step 2 state (exactly the tv/dv of Figure 2).
  std::int64_t tv_ = -1;
  std::uint32_t dv_ = 0;

  // Steps 3-4 state.
  std::uint32_t conv_max_ = 0;
  bool has_result_ = false;
  std::uint32_t result_ = 0;
};

struct EvaluationOutcome {
  std::uint32_t max_ecc = 0;            ///< f(u0) = max_{v in S(u0)} ecc(v)
  std::vector<graph::NodeId> window;    ///< the set S, sorted by id
  std::vector<std::int64_t> tau_prime;  ///< per node, -1 if not in S
  congest::RunStats stats;              ///< forward execution (Steps 1-4)
};

/// Runs the Evaluation procedure on `g`.
///
/// `tree` is the full BFS tree (of the leader, or of w for the Figure 3
/// variant). `mask`, if non-null, restricts the token walk to the
/// ancestor-closed subtree it selects (the set R); u0 must be in it.
/// `steps` is the walk length (2d in the paper; anything >= the full
/// Euler tour makes S the whole (sub)tree, which is how the O(n)-round
/// classical exact algorithm reuses this machinery).
EvaluationOutcome evaluate_window_ecc(const graph::Graph& g,
                                      const TreeState& tree, graph::NodeId u0,
                                      std::uint32_t steps,
                                      congest::NetworkConfig cfg = {},
                                      const std::vector<bool>* mask = nullptr);

/// Executable Step 5 of Figure 2: runs the Evaluation forward while
/// recording its trace, then *replays the exact message schedule in
/// reverse* through the network (message at forward round t is re-sent,
/// reversed, at round T-t+1). Reversing a feasible synchronous schedule
/// is itself feasible — every edge carries in reverse exactly what it
/// carried forward — which is the operational content of "revert steps 3
/// to 1 in order to clean all registers": the uncomputation pass costs
/// exactly the forward budget and respects the same bandwidth.
///
/// Returns the forward outcome plus the measured revert statistics; the
/// unitary Evaluation cost charged by the optimizer (2 * T_eval_forward)
/// equals forward.rounds + revert.rounds by construction (asserted).
struct UnitaryEvaluationOutcome {
  EvaluationOutcome forward;
  congest::RunStats revert_stats;
  std::uint64_t total_rounds = 0;  ///< forward + revert
};

UnitaryEvaluationOutcome evaluate_window_ecc_unitary(
    const graph::Graph& g, const TreeState& tree, graph::NodeId u0,
    std::uint32_t steps, congest::NetworkConfig cfg = {},
    const std::vector<bool>* mask = nullptr);

}  // namespace qc::algos
