#include "algos/hprw.hpp"

#include <algorithm>
#include <cmath>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "algos/source_detection.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::algos {

using graph::NodeId;

namespace {

/// Count, via one broadcast+convergecast pair over `tree`, the nodes whose
/// (depth, id) is lexicographically <= (t, c); c == kInvalidNode means
/// "all ids at depth <= t-1 only... " — we encode the probe directly.
std::uint64_t probe_count(const graph::Graph& g, const TreeState& tree,
                          std::uint32_t t, NodeId c,
                          congest::NetworkConfig cfg, congest::RunStats& acc) {
  const std::uint32_t id_bits = qc::bit_width_for(g.n()) + 1;
  // Nodes need the probe parameters: broadcast (t, c) packed in one value.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(t) << id_bits) | static_cast<std::uint64_t>(c);
  acc += broadcast_from_root(g, tree, packed, 2 * id_bits, cfg).stats;

  std::vector<std::uint64_t> ind(g.n(), 0), zero(g.n(), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const std::uint32_t d = tree.depth[v];
    ind[v] = (d < t || (d == t && v <= c)) ? 1 : 0;
  }
  auto agg = aggregate_to_root(g, tree, AggregateOp::kSum, ind, zero,
                               id_bits, 1, cfg);
  acc += agg.stats;
  return agg.primary;
}

}  // namespace

PreparationOutcome hprw_preparation(const graph::Graph& g, std::uint32_t s,
                                    congest::NetworkConfig cfg) {
  require(g.n() >= 2, "hprw_preparation: need at least 2 nodes");
  require(s >= 1, "hprw_preparation: need s >= 1");
  PreparationOutcome out;
  const std::uint32_t n = g.n();

  // Leader and an aggregation tree.
  const auto election = elect_leader(g, cfg);
  out.stats += election.stats;
  auto lead = compute_eccentricity(g, election.leader, cfg);
  out.stats += lead.stats;
  const TreeState& tree_l = lead.tree;

  // Step 1: every vertex joins S with probability ln(n)/s, using its own
  // (deterministic, per-node) randomness, then a count convergecast checks
  // the with-high-probability cap.
  const double p = std::min(1.0, std::log(static_cast<double>(n)) /
                                     static_cast<double>(s));
  std::vector<bool> in_sample(n, false);
  Rng master(cfg.seed ^ 0x5a5a5a5aULL);
  for (NodeId v = 0; v < n; ++v) {
    Rng node_rng = master.child(v);
    in_sample[v] = node_rng.next_bool(p);
  }
  // An empty sample makes d(v, S) undefined; promote the leader, which
  // only helps the estimate (ecc(leader) <= D).
  if (std::none_of(in_sample.begin(), in_sample.end(),
                   [](bool b) { return b; })) {
    in_sample[election.leader] = true;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (in_sample[v]) out.sample.push_back(v);
  }

  const std::uint32_t id_bits = qc::bit_width_for(n) + 1;
  {
    std::vector<std::uint64_t> ind(n, 0), zero(n, 0);
    for (NodeId v = 0; v < n; ++v) ind[v] = in_sample[v] ? 1 : 0;
    auto cnt = aggregate_to_root(g, tree_l, AggregateOp::kSum, ind, zero,
                                 id_bits, 1, cfg);
    out.stats += cnt.stats;
    const double log_n = std::log(static_cast<double>(n));
    const double cap = static_cast<double>(n) * log_n * log_n /
                       static_cast<double>(s);
    if (static_cast<double>(cnt.primary) > std::max(cap, 1.0)) {
      out.aborted = true;
      return out;
    }
  }

  // Eccentricities of all of S ([LP13] source detection + batched
  // convergecast): the O(|S| + D) = O~(n/s + D) part.
  auto det = detect_sources(g, in_sample, cfg);
  out.stats += det.stats;
  auto eccs = batched_eccentricities(g, tree_l, det.distances, cfg);
  out.stats += eccs.stats;
  for (const auto& [src, e] : eccs.ecc) {
    out.max_ecc_sample = std::max(out.max_ecc_sample, e);
  }

  // Step 2: w = argmax_v d(v, p(v)) = argmax_v d(v, S).
  {
    std::vector<std::uint64_t> dmin(n, 0), ids(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      std::uint32_t best = graph::kUnreachable;
      for (const auto& [src, d] : det.distances[v]) best = std::min(best, d);
      dmin[v] = best;
      ids[v] = v;
    }
    auto agg = aggregate_to_root(g, tree_l, AggregateOp::kMax, dmin, ids,
                                 id_bits, id_bits, cfg);
    out.stats += agg.stats;
    out.w = static_cast<NodeId>(agg.secondary);
    out.stats += broadcast_from_root(g, tree_l, out.w, id_bits, cfg).stats;
  }

  // Step 3: BFS(w); the s closest nodes (by (depth, id)) join R. The
  // cutoff is located with two binary searches of count probes.
  auto wtree = compute_eccentricity(g, out.w, cfg);
  out.stats += wtree.stats;
  out.tree_w = std::move(wtree.tree);
  out.ecc_w = wtree.ecc;

  const std::uint32_t target = std::min<std::uint32_t>(s, n);
  std::uint32_t t_lo = 0, t_hi = out.ecc_w;
  while (t_lo < t_hi) {  // smallest t with |{v : depth <= t}| >= target
    const std::uint32_t mid = (t_lo + t_hi) / 2;
    const std::uint64_t cnt =
        probe_count(g, out.tree_w, mid, n - 1, cfg, out.stats);
    if (cnt >= target) {
      t_hi = mid;
    } else {
      t_lo = mid + 1;
    }
  }
  const std::uint32_t t_star = t_lo;
  NodeId c_lo = 0, c_hi = n - 1;
  while (c_lo < c_hi) {  // smallest c with count(t_star, c) >= target
    const NodeId mid = (c_lo + c_hi) / 2;
    const std::uint64_t cnt =
        probe_count(g, out.tree_w, t_star, mid, cfg, out.stats);
    if (cnt >= target) {
      c_hi = mid;
    } else {
      c_lo = mid + 1;
    }
  }
  const NodeId c_star = c_lo;
  // Final probe doubles as the "announce the cutoff" broadcast.
  const std::uint64_t r_size =
      probe_count(g, out.tree_w, t_star, c_star, cfg, out.stats);
  check_internal(r_size == target, "hprw_preparation: cutoff search failed");

  out.r_mask.assign(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = out.tree_w.depth[v];
    out.r_mask[v] = d < t_star || (d == t_star && v <= c_star);
  }
  out.r_size = static_cast<std::uint32_t>(r_size);
  return out;
}

ApproxOutcome classical_approx_diameter(const graph::Graph& g,
                                        std::uint32_t s,
                                        congest::NetworkConfig cfg) {
  metrics::ScopedTimer span("algos.classical_approx");
  ApproxOutcome out;
  if (s == 0) {
    s = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(g.n()))));
  }
  out.s_used = s;

  auto prep = hprw_preparation(g, s, cfg);
  out.prep_stats = prep.stats;
  out.aborted = prep.aborted;
  if (prep.aborted) {
    out.stats = out.prep_stats;
    span.add(out.stats.rounds, out.stats.messages, out.stats.bits);
    return out;
  }

  // Classical second phase: eccentricity of every node of R by source
  // detection from R — O(s + D) rounds.
  auto det = detect_sources(g, prep.r_mask, cfg);
  out.phase2_stats += det.stats;
  auto eccs = batched_eccentricities(g, prep.tree_w, det.distances, cfg);
  out.phase2_stats += eccs.stats;

  std::uint32_t max_ecc_r = 0;
  for (const auto& [src, e] : eccs.ecc) max_ecc_r = std::max(max_ecc_r, e);
  out.estimate = std::max({prep.ecc_w, prep.max_ecc_sample, max_ecc_r});

  out.stats = out.prep_stats;
  out.stats += out.phase2_stats;
  span.add(out.stats.rounds, out.stats.messages, out.stats.bits);
  return out;
}

}  // namespace qc::algos
