#pragma once

#include "algos/bfs_tree.hpp"
#include "algos/evaluation.hpp"
#include "algos/leader_election.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// Result of a full distributed diameter computation (classical baseline).
struct DiameterOutcome {
  std::uint32_t diameter = 0;
  graph::NodeId leader = graph::kInvalidNode;
  congest::RunStats init_stats;  ///< election + BFS tree + eccentricity
  congest::RunStats eval_stats;  ///< the pipelined all-sources phase
  congest::RunStats stats;       ///< total

  std::uint32_t total_rounds() const { return stats.rounds; }
};

/// Exact classical diameter in O(n + D) rounds (the PRT12-style baseline of
/// Table 1's first row).
///
/// Pipeline: elect a leader and build BFS(leader) in O(D) rounds, then run
/// the Figure 2 machinery with the DFS segment covering the *entire* Euler
/// tour (steps = 2(n-1)), so S = V and the convergecast yields
/// max_{v in V} ecc(v) = D. The Step 2 schedule stretches the start times
/// over 2 * 2(n-1) rounds, hence the O(n) total — exactly why classical
/// exact diameter is linear and what Theorem 1 beats.
DiameterOutcome classical_exact_diameter(const graph::Graph& g,
                                         congest::NetworkConfig cfg = {});

}  // namespace qc::algos
