#include "algos/evaluation.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "congest/trace.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

EvaluationProgram::EvaluationProgram(Params params, NodeId tree_parent,
                                     std::uint32_t depth, bool in_mask)
    : p_(params), tree_parent_(tree_parent), depth_(depth), in_mask_(in_mask) {
  kind_bits_ = 2;
  tau_bits_ = qc::bit_width_for(static_cast<std::uint64_t>(p_.steps) + 2);
  delta_bits_ =
      qc::bit_width_for(static_cast<std::uint64_t>(p_.pipeline_len) + 2);
  dist_bits_ = delta_bits_;
  id_bits_ = qc::bit_width_for(p_.n) + 1;
}

void EvaluationProgram::receive_token(NodeContext& ctx,
                                      std::uint32_t position, bool from_parent,
                                      NodeId came_from) {
  if (tau_prime_ < 0) {
    tau_prime_ = static_cast<std::int64_t>(position);
  }
  if (position >= p_.steps) return;  // segment complete, token dies here

  // The holder does not know its children (only O(log n) bits of state:
  // its parent pointer); it discovers the next hop with a probe. After a
  // top-down arrival the tour continues at the smallest child; after
  // returning from child c, at the smallest child with id > c.
  token_position_ = position;
  probe_threshold_ = from_parent ? -1 : static_cast<std::int64_t>(came_from);
  awaiting_replies_ = true;
  const std::uint64_t threshold_enc =
      probe_threshold_ < 0 ? 0
                           : static_cast<std::uint64_t>(probe_threshold_) + 1;
  ctx.broadcast(Message()
                    .push(kProbe, kind_bits_)
                    .push(threshold_enc, id_bits_ + 1));
}

void EvaluationProgram::token_round(NodeContext& ctx) {
  // Collect this round's Step 1 messages. At any round the in-flight
  // traffic is homogeneous (token / probes / replies alternate), but each
  // message carries its kind so nothing depends on that.
  bool reply_round = false;
  NodeId best_greater = graph::kInvalidNode;  // min child id > threshold
  NodeId best_any = graph::kInvalidNode;      // min child id overall
  for (const auto& in : ctx.inbox()) {
    const auto kind = static_cast<Kind>(in.msg.field(0));
    const NodeId sender = ctx.neighbor(in.port);
    switch (kind) {
      case kToken: {
        const auto position = static_cast<std::uint32_t>(in.msg.field(1));
        receive_token(ctx, position, sender == tree_parent_, sender);
        break;
      }
      case kProbe: {
        // Reply iff the prober is our tree parent and we participate in
        // the walk; report whether our id clears the threshold.
        if (sender == tree_parent_ && in_mask_) {
          const std::uint64_t enc = in.msg.field(1);
          const bool greater =
              enc == 0 || static_cast<std::uint64_t>(ctx.id()) + 1 > enc;
          ctx.send(in.port, Message()
                                .push(kReply, kind_bits_)
                                .push(greater ? 1 : 0, 1));
        }
        break;
      }
      case kReply: {
        check_internal(awaiting_replies_,
                       "Evaluation: unsolicited probe reply");
        reply_round = true;
        if (best_any == graph::kInvalidNode || sender < best_any) {
          best_any = sender;
        }
        if (in.msg.field(1) == 1 &&
            (best_greater == graph::kInvalidNode || sender < best_greater)) {
          best_greater = sender;
        }
        break;
      }
      default:
        check_internal(false, "Evaluation: unknown Step 1 message kind");
    }
  }

  if (awaiting_replies_) {
    // Replies (if any children exist) arrive exactly two rounds after the
    // probe; a childless holder sees an empty reply round, which is
    // indistinguishable from "not yet" — so track the schedule: the probe
    // was sent when the token arrived, replies land two rounds later.
    // We detect the reply round by round parity relative to the token
    // arrival: the token arrives at rounds 3j, replies at 3j + 2.
    const bool is_reply_round = (ctx.round() % 3) == 2;
    if (reply_round || is_reply_round) {
      awaiting_replies_ = false;
      NodeId next = best_greater;
      if (next == graph::kInvalidNode) {
        if (tree_parent_ != graph::kInvalidNode) {
          next = tree_parent_;  // subtree done: go up
        } else {
          // Root finished (or restarted) the tour; wrap to the beginning.
          check_internal(best_any != graph::kInvalidNode,
                         "Evaluation: token stuck at childless root");
          next = best_any;
        }
      }
      ctx.send_to(next, Message()
                            .push(kToken, kind_bits_)
                            .push(token_position_ + 1, tau_bits_));
    }
  }
}

void EvaluationProgram::on_start(NodeContext& ctx) {
  if (ctx.id() != p_.u0) return;
  check_internal(in_mask_, "Evaluation: u0 must be on the walk");
  // The walk starts at u0 as a first (top-down) visit at position 0. The
  // on_start probe goes out "at round 0": replies arrive at round 2 and
  // the first token move lands at round 3 — position j arrives at 3j.
  receive_token(ctx, 0, /*from_parent=*/true, graph::kInvalidNode);
}

void EvaluationProgram::pipeline_round(NodeContext& ctx,
                                       std::uint32_t local_round) {
  // Figure 2 Step 2(3a/3b): disregard stale types, keep one fresh message.
  bool have_kept = false;
  std::int64_t kept_tau = 0;
  std::uint64_t kept_delta = 0;
  for (const auto& in : ctx.inbox()) {
    const auto tau = static_cast<std::int64_t>(in.msg.field(0));
    const std::uint64_t delta = in.msg.field(1);
    if (tau <= tv_) continue;  // 3a: already processed this type
    if (have_kept) {
      // Lemma 4 as an executable invariant: every fresh message this round
      // must be identical.
      check_internal(tau == kept_tau && delta == kept_delta,
                     "Lemma 4 violated: distinct fresh messages in a round");
      continue;
    }
    have_kept = true;
    kept_tau = tau;
    kept_delta = delta;
  }

  // Figure 2 Step 2(2): a window member launches its own wave at local
  // round 2*tau'(v) + 1 (the +1 shift keeps round numbers 1-based).
  const bool own_start =
      tau_prime_ >= 0 &&
      local_round == 2 * static_cast<std::uint64_t>(tau_prime_) + 1;
  if (own_start) {
    // The scheduling lemmas guarantee no fresh foreign wave lands exactly
    // on a member's start round (see Lemma 2); assert rather than assume.
    check_internal(!have_kept,
                   "Evaluation schedule clash: foreign wave on start round");
    tv_ = tau_prime_;
    ctx.broadcast(Message()
                      .push(static_cast<std::uint64_t>(tau_prime_), tau_bits_)
                      .push(0, delta_bits_));
    return;
  }
  if (have_kept) {
    tv_ = kept_tau;
    // delta counts hops already traveled; this node is one hop further.
    dv_ = std::max(dv_, static_cast<std::uint32_t>(kept_delta) + 1);
    ctx.broadcast(Message()
                      .push(static_cast<std::uint64_t>(kept_tau), tau_bits_)
                      .push(kept_delta + 1, delta_bits_));
  }
}

void EvaluationProgram::convergecast_round(NodeContext& ctx,
                                           std::uint32_t local_round) {
  for (const auto& in : ctx.inbox()) {
    // A 2-field message here would mean the Step 2 pipeline outlived its
    // budget and leaked into Step 3 — the schedule bounds would be wrong.
    check_internal(in.msg.num_fields() == 1,
                   "Evaluation: pipeline message leaked into convergecast");
    conv_max_ =
        std::max(conv_max_, static_cast<std::uint32_t>(in.msg.field(0)));
  }
  const bool is_root = tree_parent_ == graph::kInvalidNode;
  // Deterministic schedule: depth-k nodes report at local round
  // height - k + 1, exactly one round after all their children did.
  if (!is_root && local_round == p_.tree_height - depth_ + 1) {
    ctx.send_to(tree_parent_,
                Message().push(std::max(dv_, conv_max_), dist_bits_));
  }
  if (is_root && local_round == p_.tree_height + 1) {
    result_ = std::max(dv_, conv_max_);
    has_result_ = true;
  }
}

void EvaluationProgram::on_round(NodeContext& ctx) {
  const std::uint32_t round = ctx.round();
  const std::uint32_t token_rounds = token_phase_rounds(p_.steps);
  if (round <= token_rounds) {
    token_round(ctx);
  } else if (round <= token_rounds + p_.pipeline_len) {
    pipeline_round(ctx, round - token_rounds);
  } else {
    convergecast_round(ctx, round - token_rounds - p_.pipeline_len);
  }
}

std::uint64_t EvaluationProgram::memory_bits() const {
  // Working state of Figure 2: tau', tv, dv, the probe context, the
  // convergecast maximum and a few flags — a constant number of
  // O(log n)-bit counters. (The parent pointer and depth are the |init>
  // data of Proposition 1, also O(log n).)
  return 3ULL * (tau_bits_ + delta_bits_) + 2ULL * id_bits_ + 4;
}

EvaluationOutcome evaluate_window_ecc(const graph::Graph& g,
                                      const TreeState& tree, NodeId u0,
                                      std::uint32_t steps,
                                      congest::NetworkConfig cfg,
                                      const std::vector<bool>* mask) {
  require(u0 < g.n(), "evaluate_window_ecc: u0 out of range");
  require(tree.n() == g.n(), "evaluate_window_ecc: tree size mismatch");
  require(mask == nullptr || mask->size() == g.n(),
          "evaluate_window_ecc: mask size mismatch");
  require(mask == nullptr || (*mask)[u0],
          "evaluate_window_ecc: u0 must be in the mask");

  EvaluationOutcome out;
  if (g.n() == 1) {
    out.max_ecc = 0;
    out.window = {0};
    out.tau_prime = {0};
    return out;
  }

  EvaluationProgram::Params p;
  p.u0 = u0;
  p.steps = steps;
  p.pipeline_len = 2 * steps + 2 * tree.height + 2;
  p.tree_height = tree.height;
  p.n = g.n();

  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    return std::make_unique<EvaluationProgram>(
        p, tree.parent[v], tree.depth[v],
        mask == nullptr ? true : (*mask)[v]);
  });
  const std::uint32_t total = EvaluationProgram::token_phase_rounds(steps) +
                              p.pipeline_len + tree.height + 1;
  out.stats = net.run_rounds(total);

  out.tau_prime.assign(g.n(), -1);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& prog = net.program_as<EvaluationProgram>(v);
    out.tau_prime[v] = prog.tau_prime();
    if (prog.in_window()) out.window.push_back(v);
  }
  const auto& rootp = net.program_as<EvaluationProgram>(tree.root);
  check_internal(rootp.has_result(),
                 "evaluate_window_ecc: root produced no result");
  out.max_ecc = rootp.result();
  return out;
}

namespace {

/// Re-issues a fixed per-round send schedule (used by the Step 5 replay:
/// the recorded forward messages, reversed in time and direction). Only
/// message *sizes* matter — the revert pass uncomputes, and what the
/// bandwidth checker must certify is that the mirrored schedule fits the
/// same channels.
class ScheduleReplayProgram : public congest::NodeProgram {
 public:
  /// schedule[r] = sizes (in bits) to send per port at send-round r
  /// (r == 0 means on_start).
  using Schedule = std::map<std::uint32_t,
                            std::vector<std::pair<std::uint32_t, std::uint32_t>>>;

  explicit ScheduleReplayProgram(Schedule schedule)
      : schedule_(std::move(schedule)) {}

  void on_start(NodeContext& ctx) override { emit(ctx, 0); }
  void on_round(NodeContext& ctx) override { emit(ctx, ctx.round()); }
  std::uint64_t memory_bits() const override { return 64; }

 private:
  void emit(NodeContext& ctx, std::uint32_t round) {
    const auto it = schedule_.find(round);
    if (it == schedule_.end()) return;
    for (const auto& [port, bits] : it->second) {
      Message m;
      for (std::uint32_t sent = 0; sent < bits; sent += 32) {
        m.push(0, std::min(32u, bits - sent));
      }
      ctx.send(port, m);
    }
  }

  Schedule schedule_;
};

}  // namespace

UnitaryEvaluationOutcome evaluate_window_ecc_unitary(
    const graph::Graph& g, const TreeState& tree, NodeId u0,
    std::uint32_t steps, congest::NetworkConfig cfg,
    const std::vector<bool>* mask) {
  // Forward pass, traced; arm() composes the recorder with any observer
  // the caller installed (MultiObserver, caller's observer first).
  congest::TraceRecorder recorder;
  auto traced = recorder.arm(std::move(cfg));

  UnitaryEvaluationOutcome out;
  out.forward = evaluate_window_ecc(g, tree, u0, steps, traced, mask);
  const std::uint32_t total = out.forward.stats.rounds;
  if (total == 0) {  // single-vertex graph
    out.total_rounds = 0;
    return out;
  }

  // Mirror the schedule: a message delivered at forward round t was sent
  // at t-1; its reverse copy travels to->from and must be *delivered* at
  // revert round total - t + 1, i.e. sent at total - t.
  std::vector<ScheduleReplayProgram::Schedule> schedules(g.n());
  for (const auto& e : recorder.events()) {
    const std::uint32_t send_round = total - e.round;
    // The reverse sender is the forward receiver.
    const auto port = [&] {
      const auto nb = g.neighbors(e.to);
      const auto it = std::lower_bound(nb.begin(), nb.end(), e.from);
      check_internal(it != nb.end() && *it == e.from,
                     "unitary replay: trace edge missing");
      return static_cast<std::uint32_t>(it - nb.begin());
    }();
    schedules[e.to][send_round].push_back({port, e.bits});
  }

  congest::NetworkConfig revert_cfg;
  revert_cfg.bandwidth_bits = congest::Network(g, {}).bandwidth_bits();
  congest::Network net(g, revert_cfg);
  net.init_programs([&](NodeId v) {
    return std::make_unique<ScheduleReplayProgram>(std::move(schedules[v]));
  });
  // If the mirrored schedule violated bandwidth this would throw; running
  // clean is the feasibility certificate for Step 5.
  out.revert_stats = net.run_rounds(total);

  check_internal(out.revert_stats.rounds == out.forward.stats.rounds,
                 "unitary evaluation: revert/forward round mismatch");
  check_internal(out.revert_stats.bits == out.forward.stats.bits,
                 "unitary evaluation: revert/forward traffic mismatch");
  out.total_rounds = static_cast<std::uint64_t>(out.forward.stats.rounds) +
                     out.revert_stats.rounds;
  return out;
}

}  // namespace qc::algos
