#include "algos/diameter_classical.hpp"

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::algos {

DiameterOutcome classical_exact_diameter(const graph::Graph& g,
                                         congest::NetworkConfig cfg) {
  metrics::ScopedTimer span("algos.classical_diameter");
  require(g.n() >= 1, "classical_exact_diameter: empty graph");
  DiameterOutcome out;
  if (g.n() == 1) {
    out.diameter = 0;
    out.leader = 0;
    return out;
  }

  const auto election = elect_leader(g, cfg);
  out.leader = election.leader;
  out.init_stats += election.stats;

  // Proposition 1 (Figure 1) plus the eccentricity convergecast.
  auto ecc = compute_eccentricity(g, out.leader, cfg);
  out.init_stats += ecc.stats;

  // Full-tour evaluation: S = V, so the result is the diameter.
  const std::uint32_t full_tour = 2 * (g.n() - 1);
  auto eval = evaluate_window_ecc(g, ecc.tree, out.leader, full_tour, cfg);
  check_internal(eval.window.size() == g.n(),
                 "classical_exact_diameter: full tour missed nodes");
  out.eval_stats = eval.stats;
  out.diameter = eval.max_ecc;

  out.stats = out.init_stats;
  out.stats += out.eval_stats;
  span.add(out.stats.rounds, out.stats.messages, out.stats.bits);
  return out;
}

}  // namespace qc::algos
