#include "algos/source_detection.hpp"

#include <algorithm>
#include <memory>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

void SourceDetectionProgram::learn(NodeId src, std::uint32_t dist,
                                   NodeId hop) {
  auto it = dist_.find(src);
  if (it != dist_.end() && it->second <= dist) return;
  if (it != dist_.end()) {
    unsent_.erase({it->second, src});
    it->second = dist;
  } else {
    dist_.emplace(src, dist);
  }
  hop_[src] = hop;
  unsent_[{dist, src}] = true;
}

void SourceDetectionProgram::on_start(NodeContext& ctx) {
  if (is_source_) {
    learn(ctx.id(), 0, ctx.id());
  }
  on_round(ctx);
}

void SourceDetectionProgram::on_round(NodeContext& ctx) {
  for (const auto& in : ctx.inbox()) {
    const auto src = static_cast<NodeId>(in.msg.field(0));
    const auto d = static_cast<std::uint32_t>(in.msg.field(1));
    const auto hop = static_cast<NodeId>(in.msg.field(2));
    // A depth-1 node is its own branch label; deeper nodes inherit.
    learn(src, d + 1, d == 0 ? ctx.id() : hop);
  }
  if (!unsent_.empty()) {
    const auto [key, _] = *unsent_.begin();
    unsent_.erase(unsent_.begin());
    const auto [d, src] = key;
    ctx.broadcast(Message()
                      .push(src, ctx.id_bits())
                      .push(d, ctx.id_bits() + 1)
                      .push(hop_.at(src), ctx.id_bits()));
  } else {
    ctx.vote_halt();
  }
}

std::uint64_t SourceDetectionProgram::memory_bits() const {
  // Theta(|known sources| * log n) bits — deliberately *not* polylog; this
  // is the polynomial-classical-memory preparation phase.
  return (dist_.size() + hop_.size() + unsent_.size()) * 2ULL * 32;
}

SourceDetectionOutcome detect_sources(const graph::Graph& g,
                                      const std::vector<bool>& is_source,
                                      congest::NetworkConfig cfg) {
  require(is_source.size() == g.n(), "detect_sources: mask size mismatch");
  std::uint32_t num_sources = 0;
  for (bool b : is_source) num_sources += b ? 1 : 0;
  require(num_sources >= 1, "detect_sources: need at least one source");

  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    return std::make_unique<SourceDetectionProgram>(is_source[v]);
  });
  SourceDetectionOutcome out;
  // O(|S| + D) with a generous constant; the hard ceiling only guards
  // against protocol bugs.
  const std::uint32_t cap = 4 * (num_sources + g.n()) + 16;
  out.stats = net.run_until_quiescent(cap);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;

  out.distances.resize(g.n());
  out.first_hops.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& prog = net.program_as<SourceDetectionProgram>(v);
    if (prog.distances().size() != num_sources) {
      // A wave lost to the fault plan: report the partial tables instead
      // of aborting (on a fault-free network this cannot happen).
      out.status = worst_of(out.status, PhaseStatus::kDegraded);
    }
    out.distances[v] = prog.distances();
    out.first_hops[v] = prog.first_hops();
  }
  report_phase_status("source_detection", out.status);
  return out;
}

BatchedMaxConvergecastProgram::BatchedMaxConvergecastProgram(
    NodeId parent, std::uint32_t num_children, std::uint32_t depth,
    std::uint32_t height,
    std::vector<std::pair<NodeId, std::uint32_t>> values, std::uint32_t n)
    : parent_(parent),
      num_children_(num_children),
      depth_(depth),
      height_(height),
      values_(std::move(values)),
      n_(n) {
  check_internal(std::is_sorted(values_.begin(), values_.end()),
                 "BatchedMaxConvergecast: values must be sorted by source");
}

void BatchedMaxConvergecastProgram::on_round(NodeContext& ctx) {
  const std::uint32_t id_bits = ctx.id_bits();
  for (const auto& in : ctx.inbox()) {
    const auto src = static_cast<NodeId>(in.msg.field(0));
    const auto value = static_cast<std::uint32_t>(in.msg.field(1));
    const auto it = std::lower_bound(
        values_.begin(), values_.end(), src,
        [](const auto& p, NodeId s) { return p.first < s; });
    check_internal(it != values_.end() && it->first == src,
                   "BatchedMaxConvergecast: stream misaligned");
    it->second = std::max(it->second, value);
  }
  // Stream item i leaves a depth-k node at local round (height-k) + i + 1.
  const std::uint32_t r = ctx.round();
  if (next_to_send_ < values_.size() &&
      r == (height_ - depth_) + static_cast<std::uint32_t>(next_to_send_) + 1) {
    if (parent_ != graph::kInvalidNode) {
      const auto& [src, value] = values_[next_to_send_];
      ctx.send_to(parent_,
                  Message().push(src, id_bits).push(value, id_bits + 1));
    }
    // The root's "send" slot is where its i-th maximum becomes final.
    ++next_to_send_;
  }
  if (next_to_send_ >= values_.size()) ctx.vote_halt();
}

std::uint64_t BatchedMaxConvergecastProgram::memory_bits() const {
  return values_.size() * 2ULL * 32 + 64;
}

BatchedEccOutcome batched_eccentricities(
    const graph::Graph& g, const TreeState& tree,
    const std::vector<std::map<NodeId, std::uint32_t>>& distances,
    congest::NetworkConfig cfg) {
  require(distances.size() == g.n(),
          "batched_eccentricities: distances size mismatch");
  const std::size_t num_sources = distances.empty() ? 0 : distances[0].size();
  require(num_sources >= 1, "batched_eccentricities: no sources");

  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    std::vector<std::pair<NodeId, std::uint32_t>> vals(distances[v].begin(),
                                                       distances[v].end());
    check_internal(vals.size() == num_sources,
                   "batched_eccentricities: ragged distance table");
    return std::make_unique<BatchedMaxConvergecastProgram>(
        tree.parent[v],
        static_cast<std::uint32_t>(tree.children[v].size()), tree.depth[v],
        tree.height, std::move(vals), g.n());
  });
  BatchedEccOutcome out;
  const auto total = tree.height + static_cast<std::uint32_t>(num_sources) + 2;
  out.stats = net.run_until_quiescent(total);
  check_internal(out.stats.quiesced,
                 "batched_eccentricities: did not quiesce");
  const auto& rootp =
      net.program_as<BatchedMaxConvergecastProgram>(tree.root);
  check_internal(rootp.done(), "batched_eccentricities: root incomplete");
  out.ecc = rootp.maxima();
  return out;
}

}  // namespace qc::algos
