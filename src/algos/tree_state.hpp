#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/algorithms.hpp"

namespace qc::algos {

using congest::RunStats;
using graph::NodeId;

/// Distributed knowledge produced by the Initialization phase (Proposition 1
/// plus the standard leader-election/eccentricity preliminaries of Section 3)
/// and consumed by the later phases.
///
/// Conceptually each node only holds *its own* row of these vectors (its
/// parent, its depth, its child list); the driver keeps them together so it
/// can hand the right slice to each NodeProgram it constructs. Per-node
/// working memory claims are audited separately via NodeProgram::memory_bits.
struct TreeState {
  NodeId root = graph::kInvalidNode;
  std::vector<NodeId> parent;                 ///< kInvalidNode at root
  std::vector<std::uint32_t> depth;           ///< distance to root
  std::vector<std::vector<NodeId>> children;  ///< sorted by id
  std::uint32_t height = 0;                   ///< max depth = ecc(root)

  std::uint32_t n() const { return static_cast<std::uint32_t>(parent.size()); }

  graph::BfsTree to_bfs_tree() const {
    graph::BfsTree t;
    t.root = root;
    t.parent = parent;
    t.depth = depth;
    t.children = children;
    t.height = height;
    return t;
  }

  static TreeState from_bfs_tree(const graph::BfsTree& t) {
    TreeState s;
    s.root = t.root;
    s.parent = t.parent;
    s.depth = t.depth;
    s.children = t.children;
    s.height = t.height;
    return s;
  }
};

}  // namespace qc::algos
