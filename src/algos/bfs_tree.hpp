#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "algos/phase_status.hpp"
#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

/// Figure 1 / Proposition 1: distributed BFS-tree construction from a known
/// root in O(ecc(root)) rounds with O(log n) bits of working state.
///
/// The activation wave carries the sender's distance to the root; a node
/// adopts as parent the smallest-id neighbor among the first activations it
/// receives (the same tie-break as the centralized graph::bfs_tree, so both
/// constructions yield the identical tree). A node acknowledges its parent
/// with a child-claim flag so every node also learns its tree children.
class BfsTreeProgram : public congest::NodeProgram {
 public:
  explicit BfsTreeProgram(graph::NodeId root) : root_(root) {}

  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;
  void serialize_state(congest::Message& out) const override;
  void restore_state(const congest::Message& in) override;

  bool active() const { return active_; }
  std::uint32_t dist() const { return dist_; }
  graph::NodeId parent() const { return parent_; }
  std::uint32_t child_count() const { return child_count_; }

 private:
  graph::NodeId root_;
  bool active_ = false;
  std::uint32_t dist_ = 0;
  graph::NodeId parent_ = graph::kInvalidNode;
  // Only the *count* of children is kept: O(log n) working state, which
  // is all the later convergecasts need. (Child identities stay with the
  // children — they know their parent.)
  std::uint32_t child_count_ = 0;
};

/// Aggregation operator for ConvergecastProgram.
enum class AggregateOp {
  kMax,  ///< lexicographic max of (primary, secondary) pairs — argmax
  kMin,  ///< lexicographic min of (primary, secondary) pairs — argmin
  kSum,  ///< sum of primaries (secondary ignored)
};

/// Bottom-up aggregation over an already-built BFS tree: leaves report
/// first, every internal node forwards one combined message once all its
/// children have reported. O(height) rounds, one message per tree edge,
/// O(log n) state.
///
/// This is the workhorse behind Step 3 of Figure 2 ("bottom up on
/// BFS(leader), at each node only the maximum of received values is
/// transmitted") and all counting/argmax aggregations of Figure 3.
class ConvergecastProgram : public congest::NodeProgram {
 public:
  /// `parent`/`num_children` are this node's slice of the tree (O(log n)
  /// bits); `primary` and `secondary` its local contribution; widths give
  /// the message layout.
  ConvergecastProgram(graph::NodeId parent, std::uint32_t num_children,
                      AggregateOp op, std::uint64_t primary,
                      std::uint64_t secondary, std::uint32_t primary_bits,
                      std::uint32_t secondary_bits);

  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;
  void serialize_state(congest::Message& out) const override;
  void restore_state(const congest::Message& in) override;

  bool done() const { return sent_ || reported_root_; }
  std::uint64_t primary() const { return primary_; }
  std::uint64_t secondary() const { return secondary_; }

 private:
  void absorb(std::uint64_t p, std::uint64_t s);

  graph::NodeId parent_;
  AggregateOp op_;
  std::uint64_t primary_, secondary_;
  std::uint32_t primary_bits_, secondary_bits_;
  std::uint32_t pending_children_;
  bool sent_ = false;
  bool reported_root_ = false;
};

/// Top-down broadcast of one value from the root; O(height) rounds.
/// Nodes know only their parent, so each node forwards to *all* non-parent
/// neighbors once and accepts only the copy arriving from its parent —
/// O(log n) state, one message per edge.
class TreeBroadcastProgram : public congest::NodeProgram {
 public:
  TreeBroadcastProgram(graph::NodeId parent, std::uint64_t value,
                       std::uint32_t value_bits);

  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;
  void serialize_state(congest::Message& out) const override;
  void restore_state(const congest::Message& in) override;

  bool received() const { return received_; }
  std::uint64_t value() const { return value_; }

 private:
  void forward(congest::NodeContext& ctx);
  graph::NodeId parent_;
  std::uint64_t value_;
  std::uint32_t value_bits_;
  bool received_;
};

struct BfsOutcome {
  TreeState tree;
  congest::RunStats stats;
  /// kQuiesced: every node was activated and child claims are consistent.
  /// kTimedOut: the wave did not quiesce within the round budget.
  /// kDegraded: quiesced, but some node was never activated or a child
  /// claim went missing (possible only under a fault plan) — `tree` then
  /// covers only the reached nodes (unreached nodes keep kInvalidNode
  /// parents and depth 0).
  PhaseStatus status = PhaseStatus::kQuiesced;
  std::uint32_t attempts = 1;  ///< attempts consumed (retry wrapper only)
};

/// Runs BfsTreeProgram from `root` and assembles the TreeState.
/// `max_rounds` of 0 means the default budget n + 2, which always
/// suffices on a fault-free network. Never throws on degradation: the
/// outcome's status reports it.
BfsOutcome build_bfs_tree(const graph::Graph& g, graph::NodeId root,
                          congest::NetworkConfig cfg = {},
                          std::uint32_t max_rounds = 0);

/// build_bfs_tree with the bounded retry-with-extended-budget discipline
/// of RetryPolicy: re-runs (fresh programs, per-attempt fault seed,
/// growing round budget) until an attempt returns kQuiesced or the
/// attempt budget is spent. The returned stats accumulate every attempt;
/// tree/status are the last attempt's.
BfsOutcome build_bfs_tree_with_retry(const graph::Graph& g,
                                     graph::NodeId root,
                                     congest::NetworkConfig cfg = {},
                                     RetryPolicy policy = {});

struct AggregateOutcome {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;
  congest::RunStats stats;
  /// kTimedOut: no quiescence in height+2 rounds; kDegraded: quiesced but
  /// the root never combined all reports (a dropped/crashed child).
  PhaseStatus status = PhaseStatus::kQuiesced;
};

/// Convergecast of per-node (primary, secondary) contributions to the root.
/// Never throws on degradation: check the outcome's status.
AggregateOutcome aggregate_to_root(const graph::Graph& g,
                                   const TreeState& tree, AggregateOp op,
                                   const std::vector<std::uint64_t>& primary,
                                   const std::vector<std::uint64_t>& secondary,
                                   std::uint32_t primary_bits,
                                   std::uint32_t secondary_bits,
                                   congest::NetworkConfig cfg = {});

struct BroadcastOutcome {
  congest::RunStats stats;
  /// kDegraded: some node missed the broadcast (dropped on every path).
  PhaseStatus status = PhaseStatus::kQuiesced;
};

/// Broadcasts `value` from the tree root to every node. Never throws on
/// degradation: check the outcome's status.
BroadcastOutcome broadcast_from_root(const graph::Graph& g,
                                     const TreeState& tree,
                                     std::uint64_t value,
                                     std::uint32_t value_bits,
                                     congest::NetworkConfig cfg = {});

struct EccOutcome {
  std::uint32_t ecc = 0;
  TreeState tree;
  congest::RunStats stats;
  /// worst_of the BFS build and the convergecast, escalated to kDegraded
  /// when the convergecast disagrees with the tree height.
  PhaseStatus status = PhaseStatus::kQuiesced;
};

/// ecc(root): BFS-tree construction plus a max-depth convergecast; the
/// O(D)-round classical preliminary of Section 3.
EccOutcome compute_eccentricity(const graph::Graph& g, graph::NodeId root,
                                congest::NetworkConfig cfg = {});

// ---------------------------------------------------------------------------
// Engine-generic drivers.
//
// The `_on` templates below are the real algorithm drivers: they run
// against any network type with the congest::Network driver surface
// (init_programs / run_until_quiescent / program_as / topology), which
// today means congest::Network and congest::shard::ShardedNetwork. The
// plain functions above are thin wrappers that construct an in-process
// Network and delegate here, so the single-process and sharded paths
// execute literally the same driver code — the property the differential
// parity harness leans on.
//
// A driver may be handed a network that already ran another phase:
// init_programs fully resets round counters, quiescence state and stats,
// so reuse is bit-identical to a freshly constructed network (and is what
// compute_eccentricity_on does to avoid re-forking workers per phase).
// ---------------------------------------------------------------------------

template <typename Net>
BfsOutcome build_bfs_tree_on(Net& net, graph::NodeId root,
                             std::uint32_t max_rounds = 0) {
  const graph::Graph& g = net.topology();
  require(root < g.n(), "build_bfs_tree: root out of range");
  require(g.is_connected(), "build_bfs_tree: graph must be connected");
  net.init_programs([root](graph::NodeId) {
    return std::make_unique<BfsTreeProgram>(root);
  });
  BfsOutcome out;
  const std::uint32_t budget = max_rounds != 0 ? max_rounds : g.n() + 2;
  out.stats = net.run_until_quiescent(budget);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;

  auto& t = out.tree;
  t.root = root;
  t.parent.assign(g.n(), graph::kInvalidNode);
  t.depth.assign(g.n(), 0);
  t.children.assign(g.n(), {});
  bool complete = true;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.template program_as<BfsTreeProgram>(v);
    if (!p.active()) {
      // Possible only under a fault plan (a dropped activation); the node
      // keeps the kInvalidNode parent and depth 0 it started with.
      complete = false;
      continue;
    }
    t.parent[v] = p.parent();
    t.depth[v] = p.dist();
    t.height = std::max(t.height, p.dist());
  }
  // Child lists are reconstructed driver-side (each node only keeps its
  // parent and a child count); sorted by id to match dfs_numbering.
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    if (v != root && t.parent[v] != graph::kInvalidNode) {
      t.children[t.parent[v]].push_back(v);
    }
  }
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    std::sort(t.children[v].begin(), t.children[v].end());
    // A dropped child-claim flag leaves the distributed count behind the
    // reconstructed list; both ways of disagreeing mark degradation.
    if (net.template program_as<BfsTreeProgram>(v).child_count() !=
        t.children[v].size()) {
      complete = false;
    }
  }
  if (out.status == PhaseStatus::kQuiesced && !complete) {
    out.status = PhaseStatus::kDegraded;
  }
  report_phase_status("bfs_tree", out.status);
  return out;
}

template <typename Net>
AggregateOutcome aggregate_to_root_on(
    Net& net, const TreeState& tree, AggregateOp op,
    const std::vector<std::uint64_t>& primary,
    const std::vector<std::uint64_t>& secondary, std::uint32_t primary_bits,
    std::uint32_t secondary_bits) {
  const graph::Graph& g = net.topology();
  require(tree.n() == g.n(), "aggregate_to_root: tree/graph size mismatch");
  require(primary.size() == g.n() && secondary.size() == g.n(),
          "aggregate_to_root: contribution size mismatch");
  net.init_programs([&](graph::NodeId v) {
    return std::make_unique<ConvergecastProgram>(
        tree.parent[v], static_cast<std::uint32_t>(tree.children[v].size()),
        op, primary[v], secondary[v], primary_bits, secondary_bits);
  });
  AggregateOutcome out;
  out.stats = net.run_until_quiescent(tree.height + 2);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;
  const auto& rootp = net.template program_as<ConvergecastProgram>(tree.root);
  if (!rootp.done()) {
    // A dropped or crash-lost report keeps the root waiting forever; its
    // partial aggregate is still returned, flagged as degraded.
    out.status = worst_of(out.status, PhaseStatus::kDegraded);
  }
  out.primary = rootp.primary();
  out.secondary = rootp.secondary();
  report_phase_status("aggregate", out.status);
  return out;
}

template <typename Net>
BroadcastOutcome broadcast_from_root_on(Net& net, const TreeState& tree,
                                        std::uint64_t value,
                                        std::uint32_t value_bits) {
  const graph::Graph& g = net.topology();
  net.init_programs([&](graph::NodeId v) {
    return std::make_unique<TreeBroadcastProgram>(
        tree.parent[v], v == tree.root ? value : 0, value_bits);
  });
  BroadcastOutcome out;
  out.stats = net.run_until_quiescent(tree.height + 2);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    if (!net.template program_as<TreeBroadcastProgram>(v).received()) {
      out.status = worst_of(out.status, PhaseStatus::kDegraded);
      break;
    }
  }
  report_phase_status("broadcast", out.status);
  return out;
}

template <typename Net>
EccOutcome compute_eccentricity_on(Net& net, graph::NodeId root) {
  const graph::Graph& g = net.topology();
  EccOutcome out;
  auto bfs = build_bfs_tree_on(net, root);
  out.tree = std::move(bfs.tree);
  out.stats = bfs.stats;
  out.status = bfs.status;

  std::vector<std::uint64_t> depths(g.n()), ids(g.n());
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    depths[v] = out.tree.depth[v];
    ids[v] = v;
  }
  const std::uint32_t bits = qc::bit_width_for(g.n()) + 1;
  auto agg = aggregate_to_root_on(net, out.tree, AggregateOp::kMax, depths,
                                  ids, bits, bits);
  out.stats += agg.stats;
  out.status = worst_of(out.status, agg.status);
  out.ecc = static_cast<std::uint32_t>(agg.primary);
  if (out.ecc != out.tree.height) {
    // On a fault-free network this is unreachable (the convergecast
    // maximum of tree depths IS the height); under faults a corrupted or
    // partial aggregate can disagree — surface it, don't abort.
    out.status = worst_of(out.status, PhaseStatus::kDegraded);
  }
  report_phase_status("eccentricity", out.status);
  return out;
}

}  // namespace qc::algos
