#pragma once

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

struct ElectionOutcome {
  graph::NodeId leader = graph::kInvalidNode;
  congest::RunStats stats;
};

/// Flood-max leader election: every node repeatedly forwards the largest
/// identifier it has heard whenever that value improves. The wave of the
/// maximum id sweeps the network in at most D+1 rounds, after which the
/// network is quiescent; the unique node whose own id equals its known
/// maximum is the leader.
///
/// This is the "standard method" Section 3 assumes for electing a leader in
/// O(D) classical rounds with O(log n) bits of state per node. (Distributed
/// termination *detection* would add a convergecast; like the paper, we let
/// the synchronous model's quiescence end the phase.)
ElectionOutcome elect_leader(const graph::Graph& g,
                             congest::NetworkConfig cfg = {});

/// The node program behind elect_leader, exposed for tests.
class FloodMaxProgram : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;

  graph::NodeId max_seen() const { return max_seen_; }

 private:
  graph::NodeId max_seen_ = graph::kInvalidNode;
};

}  // namespace qc::algos
