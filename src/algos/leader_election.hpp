#pragma once

#include <memory>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"

namespace qc::algos {

struct ElectionOutcome {
  graph::NodeId leader = graph::kInvalidNode;
  congest::RunStats stats;
};

/// Flood-max leader election: every node repeatedly forwards the largest
/// identifier it has heard whenever that value improves. The wave of the
/// maximum id sweeps the network in at most D+1 rounds, after which the
/// network is quiescent; the unique node whose own id equals its known
/// maximum is the leader.
///
/// This is the "standard method" Section 3 assumes for electing a leader in
/// O(D) classical rounds with O(log n) bits of state per node. (Distributed
/// termination *detection* would add a convergecast; like the paper, we let
/// the synchronous model's quiescence end the phase.)
ElectionOutcome elect_leader(const graph::Graph& g,
                             congest::NetworkConfig cfg = {});

/// The node program behind elect_leader, exposed for tests.
class FloodMaxProgram : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;
  void serialize_state(congest::Message& out) const override;
  void restore_state(const congest::Message& in) override;

  graph::NodeId max_seen() const { return max_seen_; }

 private:
  graph::NodeId max_seen_ = graph::kInvalidNode;
};

/// Engine-generic elect_leader driver (see the `_on` note in bfs_tree.hpp):
/// runs against congest::Network or shard::ShardedNetwork alike; the plain
/// elect_leader above delegates here with a fresh in-process Network.
template <typename Net>
ElectionOutcome elect_leader_on(Net& net) {
  const graph::Graph& g = net.topology();
  require(g.n() >= 1, "elect_leader: empty graph");
  require(g.is_connected(), "elect_leader: graph must be connected");
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<FloodMaxProgram>(); });
  // Flood-max quiesces within D+2 rounds; n+2 is a safe hard ceiling.
  ElectionOutcome out;
  out.stats = net.run_until_quiescent(g.n() + 2);
  check_internal(out.stats.quiesced, "elect_leader: flooding did not quiesce");
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.template program_as<FloodMaxProgram>(v);
    check_internal(p.max_seen() == g.n() - 1,
                   "elect_leader: node missed the maximum id");
  }
  out.leader = g.n() - 1;
  return out;
}

}  // namespace qc::algos
