#include "algos/bfs_tree.hpp"

#include <algorithm>
#include <memory>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

namespace {
// Message layout for the BFS wave: (distance of sender, child-claim flag).
constexpr std::size_t kDistField = 0;
constexpr std::size_t kClaimField = 1;
}  // namespace

void BfsTreeProgram::on_start(NodeContext& ctx) {
  if (ctx.id() != root_) return;
  active_ = true;
  dist_ = 0;
  Message m;
  m.push(0, ctx.id_bits() + 1).push(0, 1);
  ctx.broadcast(m);
}

void BfsTreeProgram::on_round(NodeContext& ctx) {
  // Child claims may arrive in any later round (from nodes we activated).
  for (const auto& in : ctx.inbox()) {
    if (in.msg.field(kClaimField) == 1) {
      ++child_count_;
    }
  }
  if (!active_) {
    // First activation this round; the inbox is in port order, hence the
    // first activating message comes from the smallest-id neighbor —
    // the same parent the centralized BFS picks.
    for (const auto& in : ctx.inbox()) {
      active_ = true;
      dist_ = static_cast<std::uint32_t>(in.msg.field(kDistField)) + 1;
      parent_ = ctx.neighbor(in.port);
      break;
    }
    if (active_) {
      const std::uint32_t parent_port = ctx.port_to(parent_);
      for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
        Message m;
        m.push(dist_, ctx.id_bits() + 1).push(p == parent_port ? 1 : 0, 1);
        ctx.send(p, m);
      }
    }
  }
  ctx.vote_halt();
}

std::uint64_t BfsTreeProgram::memory_bits() const {
  // Working state of Figure 1: activation flag, distance, parent id and
  // the child counter — a constant number of O(log n)-bit registers.
  return 1 + 3ULL * 32;
}

BfsOutcome build_bfs_tree(const graph::Graph& g, NodeId root,
                          congest::NetworkConfig cfg,
                          std::uint32_t max_rounds) {
  require(root < g.n(), "build_bfs_tree: root out of range");
  require(g.is_connected(), "build_bfs_tree: graph must be connected");
  Network net(g, cfg);
  net.init_programs([root](NodeId) {
    return std::make_unique<BfsTreeProgram>(root);
  });
  BfsOutcome out;
  const std::uint32_t budget = max_rounds != 0 ? max_rounds : g.n() + 2;
  out.stats = net.run_until_quiescent(budget);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;

  auto& t = out.tree;
  t.root = root;
  t.parent.assign(g.n(), graph::kInvalidNode);
  t.depth.assign(g.n(), 0);
  t.children.assign(g.n(), {});
  bool complete = true;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.program_as<BfsTreeProgram>(v);
    if (!p.active()) {
      // Possible only under a fault plan (a dropped activation); the node
      // keeps the kInvalidNode parent and depth 0 it started with.
      complete = false;
      continue;
    }
    t.parent[v] = p.parent();
    t.depth[v] = p.dist();
    t.height = std::max(t.height, p.dist());
  }
  // Child lists are reconstructed driver-side (each node only keeps its
  // parent and a child count); sorted by id to match dfs_numbering.
  for (NodeId v = 0; v < g.n(); ++v) {
    if (v != root && t.parent[v] != graph::kInvalidNode) {
      t.children[t.parent[v]].push_back(v);
    }
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    std::sort(t.children[v].begin(), t.children[v].end());
    // A dropped child-claim flag leaves the distributed count behind the
    // reconstructed list; both ways of disagreeing mark degradation.
    if (net.program_as<BfsTreeProgram>(v).child_count() !=
        t.children[v].size()) {
      complete = false;
    }
  }
  if (out.status == PhaseStatus::kQuiesced && !complete) {
    out.status = PhaseStatus::kDegraded;
  }
  report_phase_status("bfs_tree", out.status);
  return out;
}

BfsOutcome build_bfs_tree_with_retry(const graph::Graph& g, NodeId root,
                                     congest::NetworkConfig cfg,
                                     RetryPolicy policy) {
  require(policy.max_attempts >= 1,
          "build_bfs_tree_with_retry: need at least one attempt");
  require(policy.budget_growth >= 1,
          "build_bfs_tree_with_retry: budget_growth must be >= 1");
  congest::RunStats acc;
  BfsOutcome out;
  std::uint32_t budget = g.n() + 2;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    auto attempt_cfg = cfg;
    attempt_cfg.fault = cfg.fault.for_attempt(attempt);
    out = build_bfs_tree(g, root, attempt_cfg, budget);
    acc += out.stats;
    out.attempts = attempt + 1;
    if (out.status == PhaseStatus::kQuiesced) break;
    budget *= policy.budget_growth;
  }
  out.stats = acc;
  return out;
}

ConvergecastProgram::ConvergecastProgram(NodeId parent,
                                         std::uint32_t num_children,
                                         AggregateOp op, std::uint64_t primary,
                                         std::uint64_t secondary,
                                         std::uint32_t primary_bits,
                                         std::uint32_t secondary_bits)
    : parent_(parent),
      op_(op),
      primary_(primary),
      secondary_(secondary),
      primary_bits_(primary_bits),
      secondary_bits_(secondary_bits),
      pending_children_(num_children) {}

void ConvergecastProgram::absorb(std::uint64_t p, std::uint64_t s) {
  switch (op_) {
    case AggregateOp::kMax:
      if (p > primary_ || (p == primary_ && s > secondary_)) {
        primary_ = p;
        secondary_ = s;
      }
      break;
    case AggregateOp::kMin:
      if (p < primary_ || (p == primary_ && s < secondary_)) {
        primary_ = p;
        secondary_ = s;
      }
      break;
    case AggregateOp::kSum:
      primary_ += p;
      break;
  }
}

void ConvergecastProgram::on_round(NodeContext& ctx) {
  for (const auto& in : ctx.inbox()) {
    absorb(in.msg.field(0), in.msg.field(1));
    check_internal(pending_children_ > 0,
                   "ConvergecastProgram: unexpected extra report");
    --pending_children_;
  }
  if (pending_children_ == 0 && !sent_ && !reported_root_) {
    if (parent_ == graph::kInvalidNode) {
      reported_root_ = true;  // root holds the aggregate
    } else {
      Message m;
      m.push(primary_, primary_bits_).push(secondary_, secondary_bits_);
      ctx.send_to(parent_, m);
      sent_ = true;
    }
  }
  ctx.vote_halt();
}

std::uint64_t ConvergecastProgram::memory_bits() const {
  return primary_bits_ + secondary_bits_ + 32 + 2;
}

TreeBroadcastProgram::TreeBroadcastProgram(NodeId parent, std::uint64_t value,
                                           std::uint32_t value_bits)
    : parent_(parent),
      value_(value),
      value_bits_(value_bits),
      received_(parent == graph::kInvalidNode) {}

void TreeBroadcastProgram::forward(NodeContext& ctx) {
  // The node does not know which neighbors are its children; sending to
  // every non-parent neighbor costs one message per edge and the claim
  // "accept only from the parent" keeps the semantics of a tree broadcast.
  for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
    if (parent_ != graph::kInvalidNode && ctx.neighbor(p) == parent_) {
      continue;
    }
    ctx.send(p, Message().push(value_, value_bits_));
  }
}

void TreeBroadcastProgram::on_start(NodeContext& ctx) {
  if (parent_ == graph::kInvalidNode) forward(ctx);
}

void TreeBroadcastProgram::on_round(NodeContext& ctx) {
  if (!received_) {
    for (const auto& in : ctx.inbox()) {
      if (ctx.neighbor(in.port) != parent_) continue;
      value_ = in.msg.field(0);
      received_ = true;
      forward(ctx);
      break;
    }
  }
  ctx.vote_halt();
}

std::uint64_t TreeBroadcastProgram::memory_bits() const {
  return value_bits_ + 2;
}

AggregateOutcome aggregate_to_root(const graph::Graph& g,
                                   const TreeState& tree, AggregateOp op,
                                   const std::vector<std::uint64_t>& primary,
                                   const std::vector<std::uint64_t>& secondary,
                                   std::uint32_t primary_bits,
                                   std::uint32_t secondary_bits,
                                   congest::NetworkConfig cfg) {
  require(tree.n() == g.n(), "aggregate_to_root: tree/graph size mismatch");
  require(primary.size() == g.n() && secondary.size() == g.n(),
          "aggregate_to_root: contribution size mismatch");
  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    return std::make_unique<ConvergecastProgram>(
        tree.parent[v], static_cast<std::uint32_t>(tree.children[v].size()),
        op, primary[v], secondary[v], primary_bits, secondary_bits);
  });
  AggregateOutcome out;
  out.stats = net.run_until_quiescent(tree.height + 2);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;
  const auto& rootp = net.program_as<ConvergecastProgram>(tree.root);
  if (!rootp.done()) {
    // A dropped or crash-lost report keeps the root waiting forever; its
    // partial aggregate is still returned, flagged as degraded.
    out.status = worst_of(out.status, PhaseStatus::kDegraded);
  }
  out.primary = rootp.primary();
  out.secondary = rootp.secondary();
  report_phase_status("aggregate", out.status);
  return out;
}

BroadcastOutcome broadcast_from_root(const graph::Graph& g,
                                     const TreeState& tree,
                                     std::uint64_t value,
                                     std::uint32_t value_bits,
                                     congest::NetworkConfig cfg) {
  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    return std::make_unique<TreeBroadcastProgram>(
        tree.parent[v], v == tree.root ? value : 0, value_bits);
  });
  BroadcastOutcome out;
  out.stats = net.run_until_quiescent(tree.height + 2);
  if (!out.stats.quiesced) out.status = PhaseStatus::kTimedOut;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (!net.program_as<TreeBroadcastProgram>(v).received()) {
      out.status = worst_of(out.status, PhaseStatus::kDegraded);
      break;
    }
  }
  report_phase_status("broadcast", out.status);
  return out;
}

EccOutcome compute_eccentricity(const graph::Graph& g, NodeId root,
                                congest::NetworkConfig cfg) {
  EccOutcome out;
  auto bfs = build_bfs_tree(g, root, cfg);
  out.tree = std::move(bfs.tree);
  out.stats = bfs.stats;
  out.status = bfs.status;

  std::vector<std::uint64_t> depths(g.n()), ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    depths[v] = out.tree.depth[v];
    ids[v] = v;
  }
  const std::uint32_t bits = qc::bit_width_for(g.n()) + 1;
  auto agg = aggregate_to_root(g, out.tree, AggregateOp::kMax, depths, ids,
                               bits, bits, cfg);
  out.stats += agg.stats;
  out.status = worst_of(out.status, agg.status);
  out.ecc = static_cast<std::uint32_t>(agg.primary);
  if (out.ecc != out.tree.height) {
    // On a fault-free network this is unreachable (the convergecast
    // maximum of tree depths IS the height); under faults a corrupted or
    // partial aggregate can disagree — surface it, don't abort.
    out.status = worst_of(out.status, PhaseStatus::kDegraded);
  }
  report_phase_status("eccentricity", out.status);
  return out;
}

}  // namespace qc::algos
