#include "algos/bfs_tree.hpp"

#include <algorithm>
#include <memory>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

namespace {
// Message layout for the BFS wave: (distance of sender, child-claim flag).
constexpr std::size_t kDistField = 0;
constexpr std::size_t kClaimField = 1;
}  // namespace

void BfsTreeProgram::on_start(NodeContext& ctx) {
  if (ctx.id() != root_) return;
  active_ = true;
  dist_ = 0;
  Message m;
  m.push(0, ctx.id_bits() + 1).push(0, 1);
  ctx.broadcast(m);
}

void BfsTreeProgram::on_round(NodeContext& ctx) {
  // Child claims may arrive in any later round (from nodes we activated).
  for (const auto& in : ctx.inbox()) {
    if (in.msg.field(kClaimField) == 1) {
      ++child_count_;
    }
  }
  if (!active_) {
    // First activation this round; the inbox is in port order, hence the
    // first activating message comes from the smallest-id neighbor —
    // the same parent the centralized BFS picks.
    for (const auto& in : ctx.inbox()) {
      active_ = true;
      dist_ = static_cast<std::uint32_t>(in.msg.field(kDistField)) + 1;
      parent_ = ctx.neighbor(in.port);
      break;
    }
    if (active_) {
      const std::uint32_t parent_port = ctx.port_to(parent_);
      for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
        Message m;
        m.push(dist_, ctx.id_bits() + 1).push(p == parent_port ? 1 : 0, 1);
        ctx.send(p, m);
      }
    }
  }
  ctx.vote_halt();
}

std::uint64_t BfsTreeProgram::memory_bits() const {
  // Working state of Figure 1: activation flag, distance, parent id and
  // the child counter — a constant number of O(log n)-bit registers.
  return 1 + 3ULL * 32;
}

// Mutable state only: root_ is a constructor parameter the restoring side
// already has (replicas are built by the same factory). Same principle in
// the other programs below.
void BfsTreeProgram::serialize_state(Message& out) const {
  out.push(active_ ? 1 : 0, 1)
      .push(dist_, 32)
      .push(parent_, 32)
      .push(child_count_, 32);
}

void BfsTreeProgram::restore_state(const Message& in) {
  require(in.num_fields() == 4, "BfsTreeProgram::restore_state: bad shape");
  active_ = in.field(0) != 0;
  dist_ = static_cast<std::uint32_t>(in.field(1));
  parent_ = static_cast<NodeId>(in.field(2));
  child_count_ = static_cast<std::uint32_t>(in.field(3));
}

BfsOutcome build_bfs_tree(const graph::Graph& g, NodeId root,
                          congest::NetworkConfig cfg,
                          std::uint32_t max_rounds) {
  Network net(g, cfg);
  return build_bfs_tree_on(net, root, max_rounds);
}

BfsOutcome build_bfs_tree_with_retry(const graph::Graph& g, NodeId root,
                                     congest::NetworkConfig cfg,
                                     RetryPolicy policy) {
  require(policy.max_attempts >= 1,
          "build_bfs_tree_with_retry: need at least one attempt");
  require(policy.budget_growth >= 1,
          "build_bfs_tree_with_retry: budget_growth must be >= 1");
  congest::RunStats acc;
  BfsOutcome out;
  std::uint32_t budget = g.n() + 2;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    auto attempt_cfg = cfg;
    attempt_cfg.fault = cfg.fault.for_attempt(attempt);
    out = build_bfs_tree(g, root, attempt_cfg, budget);
    acc += out.stats;
    out.attempts = attempt + 1;
    if (out.status == PhaseStatus::kQuiesced) break;
    budget *= policy.budget_growth;
  }
  out.stats = acc;
  return out;
}

ConvergecastProgram::ConvergecastProgram(NodeId parent,
                                         std::uint32_t num_children,
                                         AggregateOp op, std::uint64_t primary,
                                         std::uint64_t secondary,
                                         std::uint32_t primary_bits,
                                         std::uint32_t secondary_bits)
    : parent_(parent),
      op_(op),
      primary_(primary),
      secondary_(secondary),
      primary_bits_(primary_bits),
      secondary_bits_(secondary_bits),
      pending_children_(num_children) {}

void ConvergecastProgram::absorb(std::uint64_t p, std::uint64_t s) {
  switch (op_) {
    case AggregateOp::kMax:
      if (p > primary_ || (p == primary_ && s > secondary_)) {
        primary_ = p;
        secondary_ = s;
      }
      break;
    case AggregateOp::kMin:
      if (p < primary_ || (p == primary_ && s < secondary_)) {
        primary_ = p;
        secondary_ = s;
      }
      break;
    case AggregateOp::kSum:
      primary_ += p;
      break;
  }
}

void ConvergecastProgram::on_round(NodeContext& ctx) {
  for (const auto& in : ctx.inbox()) {
    absorb(in.msg.field(0), in.msg.field(1));
    check_internal(pending_children_ > 0,
                   "ConvergecastProgram: unexpected extra report");
    --pending_children_;
  }
  if (pending_children_ == 0 && !sent_ && !reported_root_) {
    if (parent_ == graph::kInvalidNode) {
      reported_root_ = true;  // root holds the aggregate
    } else {
      Message m;
      m.push(primary_, primary_bits_).push(secondary_, secondary_bits_);
      ctx.send_to(parent_, m);
      sent_ = true;
    }
  }
  ctx.vote_halt();
}

std::uint64_t ConvergecastProgram::memory_bits() const {
  return primary_bits_ + secondary_bits_ + 32 + 2;
}

void ConvergecastProgram::serialize_state(Message& out) const {
  out.push(primary_, 64)
      .push(secondary_, 64)
      .push(pending_children_, 32)
      .push(sent_ ? 1 : 0, 1)
      .push(reported_root_ ? 1 : 0, 1);
}

void ConvergecastProgram::restore_state(const Message& in) {
  require(in.num_fields() == 5,
          "ConvergecastProgram::restore_state: bad shape");
  primary_ = in.field(0);
  secondary_ = in.field(1);
  pending_children_ = static_cast<std::uint32_t>(in.field(2));
  sent_ = in.field(3) != 0;
  reported_root_ = in.field(4) != 0;
}

TreeBroadcastProgram::TreeBroadcastProgram(NodeId parent, std::uint64_t value,
                                           std::uint32_t value_bits)
    : parent_(parent),
      value_(value),
      value_bits_(value_bits),
      received_(parent == graph::kInvalidNode) {}

void TreeBroadcastProgram::forward(NodeContext& ctx) {
  // The node does not know which neighbors are its children; sending to
  // every non-parent neighbor costs one message per edge and the claim
  // "accept only from the parent" keeps the semantics of a tree broadcast.
  for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
    if (parent_ != graph::kInvalidNode && ctx.neighbor(p) == parent_) {
      continue;
    }
    ctx.send(p, Message().push(value_, value_bits_));
  }
}

void TreeBroadcastProgram::on_start(NodeContext& ctx) {
  if (parent_ == graph::kInvalidNode) forward(ctx);
}

void TreeBroadcastProgram::on_round(NodeContext& ctx) {
  if (!received_) {
    for (const auto& in : ctx.inbox()) {
      if (ctx.neighbor(in.port) != parent_) continue;
      value_ = in.msg.field(0);
      received_ = true;
      forward(ctx);
      break;
    }
  }
  ctx.vote_halt();
}

std::uint64_t TreeBroadcastProgram::memory_bits() const {
  return value_bits_ + 2;
}

void TreeBroadcastProgram::serialize_state(Message& out) const {
  out.push(received_ ? 1 : 0, 1).push(value_, 64);
}

void TreeBroadcastProgram::restore_state(const Message& in) {
  require(in.num_fields() == 2,
          "TreeBroadcastProgram::restore_state: bad shape");
  received_ = in.field(0) != 0;
  value_ = in.field(1);
}

AggregateOutcome aggregate_to_root(const graph::Graph& g,
                                   const TreeState& tree, AggregateOp op,
                                   const std::vector<std::uint64_t>& primary,
                                   const std::vector<std::uint64_t>& secondary,
                                   std::uint32_t primary_bits,
                                   std::uint32_t secondary_bits,
                                   congest::NetworkConfig cfg) {
  Network net(g, cfg);
  return aggregate_to_root_on(net, tree, op, primary, secondary, primary_bits,
                              secondary_bits);
}

BroadcastOutcome broadcast_from_root(const graph::Graph& g,
                                     const TreeState& tree,
                                     std::uint64_t value,
                                     std::uint32_t value_bits,
                                     congest::NetworkConfig cfg) {
  Network net(g, cfg);
  return broadcast_from_root_on(net, tree, value, value_bits);
}

EccOutcome compute_eccentricity(const graph::Graph& g, NodeId root,
                                congest::NetworkConfig cfg) {
  Network net(g, cfg);
  return compute_eccentricity_on(net, root);
}

}  // namespace qc::algos
