#include "algos/apsp_census.hpp"

#include <algorithm>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "algos/source_detection.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::algos {

using graph::NodeId;

CensusOutcome classical_apsp_census(const graph::Graph& g,
                                    congest::NetworkConfig cfg) {
  metrics::ScopedTimer span("algos.apsp_census");
  require(g.n() >= 1, "classical_apsp_census: empty graph");
  CensusOutcome out;
  if (g.n() == 1) {
    out.eccentricity = {0};
    out.center = out.periphery = 0;
    return out;
  }

  const auto election = elect_leader(g, cfg);
  out.stats += election.stats;
  auto lead = compute_eccentricity(g, election.leader, cfg);
  out.stats += lead.stats;

  // All n BFS waves at once: S = V.
  std::vector<bool> everyone(g.n(), true);
  auto det = detect_sources(g, everyone, cfg);
  out.stats += det.stats;

  auto eccs = batched_eccentricities(g, lead.tree, det.distances, cfg);
  out.stats += eccs.stats;
  check_internal(eccs.ecc.size() == g.n(),
                 "classical_apsp_census: missing eccentricities");

  out.eccentricity.assign(g.n(), 0);
  for (const auto& [v, e] : eccs.ecc) out.eccentricity[v] = e;
  out.radius = graph::kUnreachable;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (out.eccentricity[v] > out.diameter ||
        out.periphery == graph::kInvalidNode) {
      out.diameter = out.eccentricity[v];
      out.periphery = v;
    }
    if (out.eccentricity[v] < out.radius) {
      out.radius = out.eccentricity[v];
      out.center = v;
    }
  }
  span.add(out.stats.rounds, out.stats.messages, out.stats.bits);
  return out;
}

}  // namespace qc::algos
