#include "algos/leader_election.hpp"

#include <memory>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

void FloodMaxProgram::on_start(NodeContext& ctx) {
  max_seen_ = ctx.id();
  ctx.broadcast(Message().push(max_seen_, ctx.id_bits()));
}

void FloodMaxProgram::on_round(NodeContext& ctx) {
  NodeId best = max_seen_;
  for (const auto& in : ctx.inbox()) {
    best = std::max(best, static_cast<NodeId>(in.msg.field(0)));
  }
  if (best > max_seen_ || max_seen_ == graph::kInvalidNode) {
    max_seen_ = best;
    ctx.broadcast(Message().push(max_seen_, ctx.id_bits()));
  } else {
    ctx.vote_halt();
  }
}

std::uint64_t FloodMaxProgram::memory_bits() const {
  return qc::bit_width_for(max_seen_ == graph::kInvalidNode
                               ? 2
                               : static_cast<std::uint64_t>(max_seen_) + 1);
}

ElectionOutcome elect_leader(const graph::Graph& g,
                             congest::NetworkConfig cfg) {
  require(g.n() >= 1, "elect_leader: empty graph");
  require(g.is_connected(), "elect_leader: graph must be connected");
  Network net(g, cfg);
  net.init_programs(
      [](NodeId) { return std::make_unique<FloodMaxProgram>(); });
  // Flood-max quiesces within D+2 rounds; n+2 is a safe hard ceiling.
  ElectionOutcome out;
  out.stats = net.run_until_quiescent(g.n() + 2);
  check_internal(out.stats.quiesced, "elect_leader: flooding did not quiesce");
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.program_as<FloodMaxProgram>(v);
    check_internal(p.max_seen() == g.n() - 1,
                   "elect_leader: node missed the maximum id");
  }
  out.leader = g.n() - 1;
  return out;
}

}  // namespace qc::algos
