#include "algos/leader_election.hpp"

#include <memory>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

void FloodMaxProgram::on_start(NodeContext& ctx) {
  max_seen_ = ctx.id();
  ctx.broadcast(Message().push(max_seen_, ctx.id_bits()));
}

void FloodMaxProgram::on_round(NodeContext& ctx) {
  NodeId best = max_seen_;
  for (const auto& in : ctx.inbox()) {
    best = std::max(best, static_cast<NodeId>(in.msg.field(0)));
  }
  if (best > max_seen_ || max_seen_ == graph::kInvalidNode) {
    max_seen_ = best;
    ctx.broadcast(Message().push(max_seen_, ctx.id_bits()));
  } else {
    ctx.vote_halt();
  }
}

std::uint64_t FloodMaxProgram::memory_bits() const {
  return qc::bit_width_for(max_seen_ == graph::kInvalidNode
                               ? 2
                               : static_cast<std::uint64_t>(max_seen_) + 1);
}

void FloodMaxProgram::serialize_state(Message& out) const {
  out.push(max_seen_, 32);
}

void FloodMaxProgram::restore_state(const Message& in) {
  require(in.num_fields() == 1, "FloodMaxProgram::restore_state: bad shape");
  max_seen_ = static_cast<NodeId>(in.field(0));
}

ElectionOutcome elect_leader(const graph::Graph& g,
                             congest::NetworkConfig cfg) {
  Network net(g, cfg);
  return elect_leader_on(net);
}

}  // namespace qc::algos
