#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "algos/phase_status.hpp"
#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// Lenzen-Peleg style source detection [LP13]: given a set S of source
/// vertices, after O(|S| + D) rounds *every* node knows the exact distance
/// d(v, s) to *every* source s.
///
/// Protocol: each node maintains the set of (dist, source) pairs it
/// currently believes, and each round broadcasts the lexicographically
/// smallest pair it has not transmitted yet (re-transmitting a pair whose
/// distance improved). The lexicographic discipline pipelines the |S|
/// simultaneous BFS waves through each edge without congestion: the wave
/// for the i-th closest source is delayed at most i rounds.
///
/// This needs Theta(|S| log n) bits of state per node — the "polynomial
/// amount of classical memory" Section 4 of the paper explicitly notes the
/// preparation phase of Figure 3 requires (only the quantum phase is
/// polylog-memory).
class SourceDetectionProgram : public congest::NodeProgram {
 public:
  explicit SourceDetectionProgram(bool is_source) : is_source_(is_source) {}

  void on_start(congest::NodeContext& ctx) override;
  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;

  /// dist per source id, sorted by source id.
  const std::map<graph::NodeId, std::uint32_t>& distances() const {
    return dist_;
  }

  /// First hop (the depth-1 vertex) of the adopted shortest path from each
  /// source; the source itself maps to itself. Used by the girth census
  /// (the Itai-Rodeh branch labels of [PRT12]).
  const std::map<graph::NodeId, graph::NodeId>& first_hops() const {
    return hop_;
  }

 private:
  void learn(graph::NodeId src, std::uint32_t dist, graph::NodeId hop);

  bool is_source_;
  std::map<graph::NodeId, std::uint32_t> dist_;
  std::map<graph::NodeId, graph::NodeId> hop_;
  // Pairs not yet (re)broadcast, kept in lexicographic (dist, src) order.
  std::map<std::pair<std::uint32_t, graph::NodeId>, bool> unsent_;
};

struct SourceDetectionOutcome {
  /// distances[v] maps source id -> d(v, source), for every node v.
  std::vector<std::map<graph::NodeId, std::uint32_t>> distances;
  /// first_hops[v] maps source id -> the depth-1 vertex of v's adopted
  /// shortest path from that source (v itself if v is the source).
  std::vector<std::map<graph::NodeId, graph::NodeId>> first_hops;
  congest::RunStats stats;
  /// kTimedOut: no quiescence within the round cap; kDegraded: quiesced
  /// but some node is missing a source entry (a dropped wave under a
  /// congest::FaultPlan). The tables then hold what was learned; a missing
  /// (v, s) entry simply has no key in distances[v].
  PhaseStatus status = PhaseStatus::kQuiesced;
};

/// Runs source detection with the given source set (by mask).
SourceDetectionOutcome detect_sources(const graph::Graph& g,
                                      const std::vector<bool>& is_source,
                                      congest::NetworkConfig cfg = {});

/// Batched maximum convergecast: every node holds one value per source
/// (its distance to that source); the root learns, for each source s, the
/// maximum over all nodes — i.e. ecc(s) — in height + |S| + 1 rounds.
///
/// The streams are aligned by sorted source id with a deterministic
/// schedule: a depth-k node forwards the i-th source's running maximum at
/// local round (height - k) + i + 1, exactly one round after its children
/// forwarded theirs. One message per tree edge per round: no congestion.
class BatchedMaxConvergecastProgram : public congest::NodeProgram {
 public:
  BatchedMaxConvergecastProgram(graph::NodeId parent,
                                std::uint32_t num_children,
                                std::uint32_t depth, std::uint32_t height,
                                std::vector<std::pair<graph::NodeId, std::uint32_t>>
                                    values,  ///< (source id, own value) sorted
                                std::uint32_t n);

  void on_round(congest::NodeContext& ctx) override;
  std::uint64_t memory_bits() const override;

  /// At the root after completion: (source id, max value) per source.
  const std::vector<std::pair<graph::NodeId, std::uint32_t>>& maxima() const {
    return values_;
  }
  bool done() const { return next_to_send_ >= values_.size(); }

 private:
  graph::NodeId parent_;
  std::uint32_t num_children_, depth_, height_;
  std::vector<std::pair<graph::NodeId, std::uint32_t>> values_;
  std::uint32_t n_;
  std::size_t next_to_send_ = 0;
};

struct BatchedEccOutcome {
  /// (source id, eccentricity) for each source, sorted by source id.
  std::vector<std::pair<graph::NodeId, std::uint32_t>> ecc;
  congest::RunStats stats;
};

/// Computes ecc(s) for every source via detect_sources' output and a
/// batched convergecast over `tree`.
BatchedEccOutcome batched_eccentricities(
    const graph::Graph& g, const TreeState& tree,
    const std::vector<std::map<graph::NodeId, std::uint32_t>>& distances,
    congest::NetworkConfig cfg = {});

}  // namespace qc::algos
