#include "algos/girth.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "algos/leader_election.hpp"
#include "algos/source_detection.hpp"
#include "graph/algorithms.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::algos {

using congest::Message;
using congest::Network;
using congest::NodeContext;
using graph::NodeId;

namespace {

/// Exchange phase: in round i every node broadcasts its (distance, branch
/// label) pair for the i-th root (roots sorted by id; with S = V the i-th
/// root is simply node i). Each receiver combines the neighbor's pair with
/// its own to form cycle candidates. One message per edge per round, n
/// rounds.
class GirthExchangeProgram : public congest::NodeProgram {
 public:
  GirthExchangeProgram(std::vector<std::uint32_t> dist,
                       std::vector<NodeId> hop, std::uint32_t n)
      : dist_(std::move(dist)), hop_(std::move(hop)), n_(n) {}

  void on_round(NodeContext& ctx) override {
    const std::uint32_t id_bits = ctx.id_bits();
    const std::uint32_t round = ctx.round();
    // Combine the neighbors' round-(r) pairs, which describe root r-1.
    if (round >= 2 && round <= n_ + 1) {
      const NodeId s = round - 2;
      for (const auto& in : ctx.inbox()) {
        const auto d_w = static_cast<std::uint32_t>(in.msg.field(0));
        const auto hop_w = static_cast<NodeId>(in.msg.field(1));
        const NodeId w = ctx.neighbor(in.port);
        // Exclude root-incident edges (degenerate walks) and same-branch
        // pairs (possibly degenerate); everything else is a genuine cycle
        // upper bound.
        if (ctx.id() == s || w == s) continue;
        if (hop_[s] == hop_w) continue;
        best_ = std::min(best_, dist_[s] + d_w + 1);
      }
    }
    // Publish this round's pair (for root `round-1`, received next round).
    if (round <= n_) {
      const NodeId s = round - 1;
      ctx.broadcast(Message()
                        .push(dist_[s], id_bits + 1)
                        .push(hop_[s], id_bits));
    }
    if (round > n_ + 1) ctx.vote_halt();
  }

  std::uint64_t memory_bits() const override {
    // The distance/label tables are the polynomial-memory census data.
    return dist_.size() * 2ULL * 32 + 32;
  }

  std::uint32_t best() const { return best_; }

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> hop_;
  std::uint32_t n_;
  std::uint32_t best_ = graph::kUnreachable;
};

}  // namespace

GirthOutcome classical_girth_census(const graph::Graph& g,
                                    congest::NetworkConfig cfg) {
  metrics::ScopedTimer span("algos.girth_census");
  require(g.n() >= 1, "classical_girth_census: empty graph");
  GirthOutcome out;
  out.girth = graph::kUnreachable;
  if (g.n() < 3 || g.m() < 3) return out;  // no cycle possible

  const auto election = elect_leader(g, cfg);
  out.stats += election.stats;
  auto lead = compute_eccentricity(g, election.leader, cfg);
  out.stats += lead.stats;
  out.status = worst_of(out.status, lead.status);

  std::vector<bool> everyone(g.n(), true);
  auto det = detect_sources(g, everyone, cfg);
  out.stats += det.stats;
  out.status = worst_of(out.status, det.status);

  Network net(g, cfg);
  net.init_programs([&](NodeId v) {
    std::vector<std::uint32_t> dist(g.n());
    std::vector<NodeId> hop(g.n());
    for (NodeId s = 0; s < g.n(); ++s) {
      const auto it = det.distances[v].find(s);
      if (it == det.distances[v].end()) {
        // Degraded detection lost this wave; an "infinite" (n) but
        // well-formed distance keeps the exchange messages within their
        // declared widths and can never win the cycle minimum.
        dist[s] = g.n();
        hop[s] = v;
        continue;
      }
      dist[s] = it->second;
      hop[s] = det.first_hops[v].at(s);
    }
    return std::make_unique<GirthExchangeProgram>(std::move(dist),
                                                  std::move(hop), g.n());
  });
  auto exch_stats = net.run_until_quiescent(g.n() + 4);
  if (!exch_stats.quiesced) {
    // Under a fault plan the fixed exchange schedule can stall; report a
    // timed-out census (best-effort candidates follow) instead of aborting.
    out.status = worst_of(out.status, PhaseStatus::kTimedOut);
  }
  out.stats += exch_stats;

  // Min-convergecast of the local candidates; the sentinel for "no cycle
  // seen" must fit the message width.
  const std::uint32_t bits = qc::bit_width_for(g.n()) + 2;
  const std::uint64_t sentinel = (1ULL << bits) - 1;
  std::vector<std::uint64_t> primary(g.n()), zero(g.n(), 0);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto b = net.program_as<GirthExchangeProgram>(v).best();
    // Candidates above n are impossible for a real cycle — they come from
    // the "infinite" placeholder distances of a degraded detection phase.
    primary[v] = (b == graph::kUnreachable || b > g.n()) ? sentinel : b;
  }
  auto agg = aggregate_to_root(g, lead.tree, AggregateOp::kMin, primary,
                               zero, bits, 1, cfg);
  out.stats += agg.stats;
  out.status = worst_of(out.status, agg.status);
  out.girth = agg.primary == sentinel
                  ? graph::kUnreachable
                  : static_cast<std::uint32_t>(agg.primary);
  report_phase_status("girth_census", out.status);
  span.add(out.stats.rounds, out.stats.messages, out.stats.bits);
  return out;
}

}  // namespace qc::algos
