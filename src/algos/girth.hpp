#pragma once

#include <cstdint>

#include "algos/phase_status.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// Distributed girth computation (the other half of [PRT12], whose
/// pipelining techniques power the Figure 2 Evaluation procedure).
///
/// Method (Itai-Rodeh over all roots): after all-sources detection every
/// node v knows, for every root s, its distance d(s, v) and the *branch
/// label* (first hop) of its adopted shortest path. For an edge {v, w} and
/// root s with distinct branch labels, the closed walk s->v, {v,w}, w->s
/// traverses {v, w} exactly once, so d(s,v) + d(s,w) + 1 upper-bounds a
/// real cycle; for a root on a shortest cycle the critical edge attains
/// the girth exactly (distinct labels are forced, else a shorter cycle
/// would exist). Candidates incident to the root are excluded (their walk
/// is degenerate).
///
/// Round complexity: O(n + D) detection + n exchange rounds (each node
/// publishes its (distance, label) pair for the i-th root in round i) +
/// one min-convergecast — O(n) total, matching the classical diameter
/// census. Memory is polynomial (the distance tables), like every
/// all-sources baseline.
struct GirthOutcome {
  /// Girth, or graph::kUnreachable if the graph is a forest/tree.
  std::uint32_t girth = 0;
  congest::RunStats stats;
  /// worst_of the leader eccentricity phase, the exchange (kTimedOut when
  /// it fails to quiesce), and the final min-convergecast. Non-kQuiesced
  /// statuses are possible only under a congest::FaultPlan; `girth` is
  /// then a best-effort value.
  PhaseStatus status = PhaseStatus::kQuiesced;
};

GirthOutcome classical_girth_census(const graph::Graph& g,
                                    congest::NetworkConfig cfg = {});

}  // namespace qc::algos
