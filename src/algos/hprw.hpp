#pragma once

#include <cstdint>
#include <vector>

#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// Output of the preparation part of Figure 3 (Steps 1-3 of Algorithm 1 in
/// [HPRW14]): runs in O~(n/s + D) rounds and polynomial classical memory.
struct PreparationOutcome {
  bool aborted = false;            ///< |S| exceeded its with-high-probability cap
  std::vector<graph::NodeId> sample;  ///< the random set S
  std::uint32_t max_ecc_sample = 0;   ///< max_{s in S} ecc(s)
  graph::NodeId w = graph::kInvalidNode;  ///< argmax_v d(v, p(v))
  std::uint32_t ecc_w = 0;
  TreeState tree_w;                ///< BFS(w)
  std::vector<bool> r_mask;        ///< R: the s closest nodes to w
  std::uint32_t r_size = 0;
  congest::RunStats stats;
};

/// Figure 3, preparation phase, with parameter s:
///   1. every vertex joins S independently with probability ln(n)/s
///      (abort if |S| > n ln(n)^2 / s);
///      the eccentricity of every member of S is computed via [LP13]
///      source detection + batched convergecast in O(|S| + D) rounds
///      (this is the n/s term);
///   2. every vertex v learns d(v, S); the network finds
///      w = argmax_v d(v, p(v)) by a convergecast;
///   3. BFS(w) is built and the s closest nodes to w join R.
///
/// Deviation from [HPRW14]: the R-membership cutoff (s-th smallest
/// (distance, id) from w) is located by binary search — O(log n) rounds of
/// broadcast-count probes, O(D log n) total — instead of their pipelined
/// selection; same O~ budget, simpler protocol. Ties broken by node id, so
/// R is unique and ancestor-closed in BFS(w) (what the DFS-token of the
/// quantum phase requires).
PreparationOutcome hprw_preparation(const graph::Graph& g, std::uint32_t s,
                                    congest::NetworkConfig cfg = {});

/// Full classical 3/2-approximation of the diameter (the [LP13, HPRW14]
/// row of Table 1): preparation plus a classical second phase that
/// computes max_{v in R} ecc(v) by source detection from R in O(s + D)
/// rounds. Returns estimate = max(ecc(w), max ecc over S, max ecc over R),
/// which satisfies floor(2D/3) <= estimate <= D.
///
/// s == 0 selects the classical optimum s = ceil(sqrt(n)), giving
/// O~(sqrt(n) + D) rounds total.
struct ApproxOutcome {
  std::uint32_t estimate = 0;
  bool aborted = false;
  std::uint32_t s_used = 0;
  congest::RunStats prep_stats;
  congest::RunStats phase2_stats;
  congest::RunStats stats;
};

ApproxOutcome classical_approx_diameter(const graph::Graph& g,
                                        std::uint32_t s = 0,
                                        congest::NetworkConfig cfg = {});

}  // namespace qc::algos
