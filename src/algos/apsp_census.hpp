#pragma once

#include <cstdint>
#include <vector>

#include "algos/tree_state.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace qc::algos {

/// Output of the classical O(n)-round all-pairs census: every node's exact
/// eccentricity, hence diameter, radius and a center, all at the leader.
///
/// This is the [HW12]-style "optimal APSP and applications" baseline: the
/// [LP13] source-detection machinery with S = V floods all n BFS waves in
/// O(n + D) rounds (polynomial classical memory — each node ends up with
/// its full distance vector), and a batched max-convergecast of length
/// n + D delivers every eccentricity to the leader.
struct CensusOutcome {
  std::vector<std::uint32_t> eccentricity;  ///< per node
  std::uint32_t diameter = 0;
  std::uint32_t radius = 0;
  graph::NodeId center = graph::kInvalidNode;  ///< min ecc, min id on ties
  graph::NodeId periphery = graph::kInvalidNode;  ///< max ecc, min id on ties
  congest::RunStats stats;
};

CensusOutcome classical_apsp_census(const graph::Graph& g,
                                    congest::NetworkConfig cfg = {});

}  // namespace qc::algos
