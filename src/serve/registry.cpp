#include "serve/registry.hpp"

#include <chrono>

#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "util/metrics.hpp"

namespace qc::serve {

namespace {

bool ready(const std::shared_future<std::shared_ptr<ResidentGraph>>& fut) {
  return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

std::uint32_t ResidentGraph::girth() const {
  std::call_once(girth_once_, [this] { girth_ = graph::girth(graph()); });
  return girth_;
}

std::shared_ptr<ResidentGraph> GraphRegistry::load(const std::string& path) {
  std::promise<std::shared_ptr<ResidentGraph>> prom;
  Slot slot;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(path);
    if (it == slots_.end()) {
      slot = std::make_shared<Future>(prom.get_future().share());
      slots_.emplace(path, slot);
      ++loads_performed_;
      loader = true;
    } else {
      slot = it->second;
    }
  }
  if (loader) {
    try {
      metrics::ScopedTimer span("serve.registry.load");
      const auto start = std::chrono::steady_clock::now();
      std::string format;
      auto g = graph::load_graph_file(path, &format);
      const double load_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      prom.set_value(std::make_shared<ResidentGraph>(std::move(g),
                                                     std::move(format),
                                                     load_ms));
      metrics::count("serve.registry.loads");
    } catch (...) {
      // Forget the failed attempt *before* publishing the exception (so a
      // mapped slot that is ready always holds a value, never an error),
      // and erase only our own slot by identity — an unload+reload may
      // have replaced the map entry while this load was running.
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = slots_.find(path);
        if (it != slots_.end() && it->second == slot) slots_.erase(it);
      }
      prom.set_exception(std::current_exception());
      metrics::count("serve.registry.load_failures");
    }
  }
  return slot->get();  // rethrows the loader's exception to every waiter
}

std::shared_ptr<ResidentGraph> GraphRegistry::get(
    const std::string& path) const {
  Slot slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(path);
    if (it == slots_.end()) return nullptr;
    slot = it->second;
  }
  // A slot still loading is not yet "resident": report absent rather than
  // blocking a lookup behind someone else's file IO. Failed loads erase
  // their slot before publishing the exception, but a get() that captured
  // the slot just before the erase can still observe it ready with an
  // exception inside — treat that exactly like the erased slot it is
  // about to become, so get() never throws.
  if (!ready(*slot)) return nullptr;
  try {
    return slot->get();
  } catch (...) {
    return nullptr;
  }
}

bool GraphRegistry::unload(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(path) > 0;
}

std::vector<std::string> GraphRegistry::keys() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, slot] : slots_) {
    // Same race as get(): a ready slot can transiently hold a failed
    // load's exception; such a key is not resident.
    if (!ready(*slot)) continue;
    try {
      slot->get();
      out.push_back(key);
    } catch (...) {
    }
  }
  return out;
}

std::uint64_t GraphRegistry::loads_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_performed_;
}

}  // namespace qc::serve
