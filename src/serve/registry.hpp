#pragma once

// GraphRegistry — the daemon's resident-graph store.
//
// One entry per graph key (the path given to `load`): the Graph itself
// (mmap view for raw `.qcg` files — loading copies zero payload bytes) plus
// one shared EccEngine, so the compute-once eccentricity table is built by
// the first query that needs it and served forever after. Load-once
// semantics generalize the engine's std::call_once cache to the registry
// level: concurrent `load`s of the same key perform exactly one file load
// between them, and every caller gets the same ResidentGraph instance.
//
// Entries are handed out as shared_ptr, so `unload` only drops the
// registry's reference — queries already in flight keep their graph alive
// until they finish.

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/ecc_engine.hpp"
#include "graph/graph.hpp"

namespace qc::serve {

/// A loaded graph plus its per-graph compute-once caches.
class ResidentGraph {
 public:
  ResidentGraph(graph::Graph g, std::string format, double load_ms)
      : engine_(std::move(g)), format_(std::move(format)), load_ms_(load_ms) {}

  const graph::Graph& graph() const { return engine_.graph(); }
  const graph::EccEngine& engine() const { return engine_; }
  const std::string& format() const { return format_; }
  double load_ms() const { return load_ms_; }

  /// Exact girth, computed once per resident graph (O(m) BFS on first
  /// call, cached afterwards — same contract as the eccentricity table).
  std::uint32_t girth() const;

 private:
  graph::EccEngine engine_;  ///< holds the Graph by value (shared storage)
  std::string format_;
  double load_ms_ = 0.0;
  mutable std::once_flag girth_once_;
  mutable std::uint32_t girth_ = 0;
};

class GraphRegistry {
 public:
  /// Returns the resident graph for `path`, loading it exactly once: the
  /// first caller loads (outside the registry lock — a slow load never
  /// blocks lookups of other keys), concurrent callers for the same key
  /// block on the same load, later callers hit the cache. A failed load is
  /// forgotten, so a fixed file can be retried; the failure is rethrown to
  /// every caller waiting on that attempt.
  std::shared_ptr<ResidentGraph> load(const std::string& path);

  /// The resident graph for `path`, or nullptr when it is not loaded
  /// (including a load still in flight or one that failed). Never
  /// triggers a load, never throws.
  std::shared_ptr<ResidentGraph> get(const std::string& path) const;

  /// Drops `path` from the registry. Returns false when it was not
  /// resident. In-flight queries holding the shared_ptr are unaffected.
  bool unload(const std::string& path);

  /// Keys of all fully loaded graphs, sorted.
  std::vector<std::string> keys() const;

  /// Number of actual file loads performed (cache misses). A second
  /// `load` of a resident key does not increment this — the counter the
  /// load-once tests assert on.
  std::uint64_t loads_performed() const;

 private:
  using Future = std::shared_future<std::shared_ptr<ResidentGraph>>;
  /// Slots live behind shared_ptr so a failed loader can erase exactly its
  /// own attempt by identity (an unload+reload may have replaced the map
  /// entry while the load was running).
  using Slot = std::shared_ptr<Future>;

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::uint64_t loads_performed_ = 0;
};

}  // namespace qc::serve
