#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#define QC_HAVE_SOCKETS 1
#include <sys/socket.h>
#include <unistd.h>
// Platforms without MSG_NOSIGNAL (macOS) rely on Server::start()
// ignoring SIGPIPE instead; either way a dead peer surfaces as EPIPE.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif
#else
#define QC_HAVE_SOCKETS 0
#endif

namespace qc::serve {

namespace {

constexpr std::size_t kRequestFixedBytes = 1 + 1 + 2 + 8 + 4;
constexpr std::size_t kResponseFixedBytes = 1 + 1 + 2 + 8 + 8 + 4;

void append_le32(std::vector<std::uint8_t>& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
}

void append_le64(std::vector<std::uint8_t>& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return x;
}

void proto_require(bool cond, const char* msg) {
  if (!cond) throw ProtocolError(msg);
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kLoad: return "load";
    case Op::kUnload: return "unload";
    case Op::kGraphInfo: return "graph-info";
    case Op::kDiameter: return "diameter";
    case Op::kApprox: return "approx";
    case Op::kRadius: return "radius";
    case Op::kEcc: return "ecc";
    case Op::kGirth: return "girth";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kBadRequest: return "bad-request";
    case Status::kRejected: return "rejected";
    case Status::kTimeout: return "timeout";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  require(req.path.size() <= kMaxPathBytes,
          "serve: request path exceeds kMaxPathBytes");
  std::vector<std::uint8_t> out;
  out.reserve(kRequestFixedBytes + req.path.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(req.op));
  out.push_back(0);
  out.push_back(0);
  append_le64(out, req.arg);
  append_le32(out, static_cast<std::uint32_t>(req.path.size()));
  out.insert(out.end(), req.path.begin(), req.path.end());
  return out;
}

Request decode_request(std::span<const std::uint8_t> payload) {
  proto_require(payload.size() >= kRequestFixedBytes,
                "serve: request payload shorter than the fixed header");
  proto_require(payload[0] == kProtocolVersion,
                "serve: unsupported protocol version");
  proto_require(payload[1] <= kMaxOp, "serve: unknown request op");
  proto_require(payload[2] == 0 && payload[3] == 0,
                "serve: nonzero reserved request bytes");
  Request req;
  req.op = static_cast<Op>(payload[1]);
  req.arg = load_le64(payload.data() + 4);
  const std::uint32_t path_len = load_le32(payload.data() + 12);
  proto_require(path_len <= kMaxPathBytes,
                "serve: request path length exceeds the cap");
  proto_require(payload.size() == kRequestFixedBytes + path_len,
                "serve: request length disagrees with the path field");
  req.path.assign(reinterpret_cast<const char*>(payload.data()) +
                      kRequestFixedBytes,
                  path_len);
  return req;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  // The server composes messages itself; truncate rather than fail so an
  // oversized error string can never wedge the reply path.
  std::string_view msg(resp.message);
  if (msg.size() > kMaxMessageBytes) msg = msg.substr(0, kMaxMessageBytes);
  std::vector<std::uint8_t> out;
  out.reserve(kResponseFixedBytes + msg.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(resp.status));
  out.push_back(0);
  out.push_back(0);
  append_le64(out, resp.value);
  append_le64(out, resp.aux);
  append_le32(out, static_cast<std::uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  proto_require(payload.size() >= kResponseFixedBytes,
                "serve: response payload shorter than the fixed header");
  proto_require(payload[0] == kProtocolVersion,
                "serve: unsupported protocol version");
  proto_require(payload[1] <= kMaxStatus, "serve: unknown response status");
  proto_require(payload[2] == 0 && payload[3] == 0,
                "serve: nonzero reserved response bytes");
  Response resp;
  resp.status = static_cast<Status>(payload[1]);
  resp.value = load_le64(payload.data() + 4);
  resp.aux = load_le64(payload.data() + 12);
  const std::uint32_t msg_len = load_le32(payload.data() + 20);
  proto_require(msg_len <= kMaxMessageBytes,
                "serve: response message length exceeds the cap");
  proto_require(payload.size() == kResponseFixedBytes + msg_len,
                "serve: response length disagrees with the message field");
  resp.message.assign(reinterpret_cast<const char*>(payload.data()) +
                          kResponseFixedBytes,
                      msg_len);
  return resp;
}

#if QC_HAVE_SOCKETS

namespace {

/// Reads exactly `len` bytes. Returns the byte count read before EOF, so
/// the caller can tell a clean close (0) from a truncated frame (0 < got <
/// len). Throws on IO errors.
std::size_t read_exact(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd, buf + got, len - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError("serve: read failed: " +
                          std::string(std::strerror(errno)));
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_frame_bytes) {
  std::uint8_t len_bytes[4];
  const std::size_t got = read_exact(fd, len_bytes, sizeof(len_bytes));
  if (got == 0) return false;  // clean EOF at a frame boundary
  proto_require(got == sizeof(len_bytes),
                "serve: truncated frame (EOF inside the length prefix)");
  const std::uint32_t len = load_le32(len_bytes);
  proto_require(len > 0, "serve: zero-length frame");
  proto_require(len <= max_frame_bytes,
                "serve: frame length exceeds the cap");
  payload.resize(len);
  proto_require(read_exact(fd, payload.data(), len) == len,
                "serve: truncated frame (EOF inside the payload)");
  return true;
}

void write_frame(int fd, std::span<const std::uint8_t> payload,
                 std::uint32_t max_frame_bytes) {
  std::vector<std::uint8_t> scratch;
  write_frame(fd, payload, max_frame_bytes, scratch);
}

void write_frame(int fd, std::span<const std::uint8_t> payload,
                 std::uint32_t max_frame_bytes,
                 std::vector<std::uint8_t>& buf) {
  require(!payload.empty() && payload.size() <= max_frame_bytes,
          "serve: write_frame payload outside [1, max_frame_bytes]");
  buf.clear();
  buf.reserve(4 + payload.size());
  append_le32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a peer that closed before the reply must yield EPIPE,
    // not a process-killing SIGPIPE. send() only accepts sockets, so
    // plain stream fds (pipes in the unit tests) fall back to write().
    ssize_t w = ::send(fd, buf.data() + sent, buf.size() - sent,
                       MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) {
      w = ::write(fd, buf.data() + sent, buf.size() - sent);
    }
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError("serve: write failed: " +
                          std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(w);
  }
}

#else  // !QC_HAVE_SOCKETS: encoding still works; fd framing is unavailable.

bool read_frame(int, std::vector<std::uint8_t>&, std::uint32_t) {
  throw Error("serve: socket IO is not available on this platform");
}

void write_frame(int, std::span<const std::uint8_t>, std::uint32_t) {
  throw Error("serve: socket IO is not available on this platform");
}

void write_frame(int, std::span<const std::uint8_t>, std::uint32_t,
                 std::vector<std::uint8_t>&) {
  throw Error("serve: socket IO is not available on this platform");
}

#endif

}  // namespace qc::serve
