#pragma once

// Client side of the qcongestd protocol: one blocking connection, one
// request/response round trip per call(). Used by `qcongest --server=...`,
// bench_serve's load generator, and the serve-layer tests.

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace qc::serve {

class Client {
 public:
  /// Parses and connects an endpoint string: "unix:PATH" for a
  /// Unix-domain socket, "HOST:PORT" (host defaults to 127.0.0.1 when
  /// omitted, as in ":7421") for TCP. Throws qc::Error on failure.
  static Client connect(const std::string& endpoint);
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One round trip. Throws ProtocolError on a malformed reply or a
  /// connection drop; server-side failures come back as a Response with a
  /// non-kOk status, not as exceptions.
  Response call(const Request& req);

  /// Convenience wrapper: call() and require kOk, throwing qc::Error with
  /// the server's message otherwise.
  Response call_ok(const Request& req);

  /// Raw connection fd — for tests and tools that speak frames directly
  /// (e.g. deliberately malformed ones); -1 after a move.
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace qc::serve
