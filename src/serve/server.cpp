#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "graph/algorithms.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QC_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define QC_HAVE_SOCKETS 0
#endif

namespace qc::serve {

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for the request log (paths can contain
/// quotes/backslashes; control characters are dropped to \u form).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

/// Append-only JSONL request log; one flushed line per request so a
/// crashed daemon loses at most the line being written.
class Server::RequestLog {
 public:
  explicit RequestLog(const std::string& path) : out_(path, std::ios::app) {
    require(out_.good(), "serve: cannot open request log " + path);
  }

  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    out_ << line << "\n";
    out_.flush();
  }

 private:
  std::mutex mu_;
  std::ofstream out_;
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  require(opts_.max_pending >= 1, "serve: max_pending must be >= 1");
  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  if (!opts_.request_log.empty()) {
    log_ = std::make_unique<RequestLog>(opts_.request_log);
  }
}

Server::~Server() { stop(); }

std::string Server::endpoint() const {
  if (!opts_.unix_path.empty()) return "unix:" + opts_.unix_path;
  return "127.0.0.1:" + std::to_string(bound_port_);
}

#if QC_HAVE_SOCKETS

void Server::start() {
  require(!started_, "serve: start() called twice");
  // A client that disconnects before its reply is written must surface as
  // EPIPE from write_frame, never as a fatal SIGPIPE. write_frame already
  // passes MSG_NOSIGNAL where it exists; ignoring the signal here covers
  // platforms without it (macOS) and any other socket write in the
  // process serving requests.
  std::signal(SIGPIPE, SIG_IGN);
  if (!opts_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(listen_fd_ >= 0, "serve: cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(opts_.unix_path.size() < sizeof(addr.sun_path),
            "serve: unix socket path too long: " + opts_.unix_path);
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a crashed daemon would make bind fail;
    // remove it first (a live daemon would still hold the listen socket,
    // and its clients, not the file, are what matter).
    ::unlink(opts_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw Error("serve: cannot bind " + opts_.unix_path + ": " +
                  std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(listen_fd_ >= 0, "serve: cannot create tcp socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.tcp_port);
    // Loopback only: qcongestd is a local query service, never exposed on
    // external interfaces.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw Error("serve: cannot bind 127.0.0.1:" +
                  std::to_string(opts_.tcp_port) + ": " +
                  std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0,
            "serve: getsockname failed");
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: listen failed: " + reason);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    metrics::count("serve.connections");
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(fd);
      ++active_conns_;
    }
    // Detached: the thread deregisters itself when the connection ends
    // (joining would accumulate one joinable thread per past connection).
    // stop() still waits for every connection via active_conns_, so no
    // detached thread can outlive the Server.
    std::thread([this, fd] { handle_connection(fd); }).detach();
  }
}

void Server::handle_connection(int fd) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    Request req;
    bool decoded = false;
    try {
      if (!read_frame(fd, payload, opts_.max_frame_bytes)) break;  // EOF
      req = decode_request(payload);
      decoded = true;
    } catch (const ProtocolError& e) {
      // Malformed frame or payload: answer kBadRequest (best effort) and
      // drop the connection — after a framing error the stream position
      // is unreliable, so resynchronization is not possible.
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      metrics::count("serve.bad_requests");
      try {
        write_frame(fd, encode_response(
                            {Status::kBadRequest, 0, 0, e.what()}));
      } catch (const Error&) {
      }
      break;
    }
    if (!decoded) break;
    Response resp = dispatch(req);
    const bool was_shutdown =
        req.op == Op::kShutdown && resp.status == Status::kOk;
    try {
      write_frame(fd, encode_response(resp));
    } catch (const Error&) {
      break;  // peer went away mid-reply
    }
    if (was_shutdown) {
      request_stop();
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // Deregister-then-close under the lock: stop() must never shut down an
  // fd number the kernel has already recycled for a newer connection.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
    ::close(fd);
    --active_conns_;
    // Notify under the lock: stop()'s waiter may destroy this Server the
    // moment it sees active_conns_ == 0, so the cv must not be touched
    // after conn_mu_ is released.
    conn_cv_.notify_all();
  }
}

#else  // !QC_HAVE_SOCKETS

void Server::start() {
  throw Error("serve: sockets are not available on this platform");
}
void Server::accept_loop() {}
void Server::handle_connection(int) {}

#endif

Response Server::dispatch(const Request& req) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const double start_us = now_us();

  // Control ops do no graph work and are answered inline, outside the
  // admission queue and the deadline — a saturated daemon must still
  // answer ping and, above all, obey shutdown instead of rejecting it.
  if (req.op == Op::kPing || req.op == Op::kShutdown) {
    Response resp = execute(req);
    const double latency_us = now_us() - start_us;
    stats_.ok.fetch_add(1, std::memory_order_relaxed);
    metrics::count("serve.requests", 1, op_name(req.op));
    metrics::observe("serve.latency_us", latency_us);
    log_request(id, req, resp, latency_us, 0);
    return resp;
  }

  // Bounded admission: never queue more than max_pending requests. The
  // increment is optimistic; over-admitted requests back out immediately.
  if (pending_.fetch_add(1, std::memory_order_acq_rel) >=
      opts_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics::count("serve.requests", 1, "rejected");
    Response resp{Status::kRejected, 0, 0,
                  "admission queue full (max_pending=" +
                      std::to_string(opts_.max_pending) + ")"};
    log_request(id, req, resp, now_us() - start_us, 0);
    return resp;
  }

  // Hand the op to the worker pool and wait with a deadline. The shared
  // state outlives both sides; on timeout the reader abandons it and the
  // worker's late result is dropped on the floor.
  struct Pending {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    Response resp;
    std::uint64_t bfs_delta = 0;
  };
  auto state = std::make_shared<Pending>();
  pool_->submit([this, req, state] {
    Response r;
    std::uint64_t bfs_delta = 0;
    try {
      const auto resident = registry_.get(req.path);
      const std::uint64_t bfs_before =
          resident ? resident->engine().bfs_runs() : 0;
      r = execute(req);
      if (resident) bfs_delta = resident->engine().bfs_runs() - bfs_before;
    } catch (const std::exception& e) {
      r = Response{Status::kError, 0, 0, e.what()};
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->abandoned) return;
    state->resp = std::move(r);
    state->bfs_delta = bfs_delta;
    state->done = true;
    state->cv.notify_all();
  });

  Response resp;
  std::uint64_t bfs_delta = 0;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    const auto done = [&state] { return state->done; };
    if (opts_.timeout_ms == 0) {
      state->cv.wait(lock, done);
    } else if (!state->cv.wait_for(
                   lock, std::chrono::milliseconds(opts_.timeout_ms),
                   done)) {
      state->abandoned = true;
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      metrics::count("serve.requests", 1, "timeout");
      resp = Response{Status::kTimeout, 0, 0,
                      "deadline of " + std::to_string(opts_.timeout_ms) +
                          " ms exceeded"};
      log_request(id, req, resp, now_us() - start_us, 0);
      return resp;
    }
    resp = std::move(state->resp);
    bfs_delta = state->bfs_delta;
  }

  const double latency_us = now_us() - start_us;
  if (resp.status == Status::kOk) {
    stats_.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
  }
  metrics::count("serve.requests", 1, op_name(req.op));
  metrics::observe("serve.latency_us", latency_us);
  log_request(id, req, resp, latency_us, bfs_delta);
  return resp;
}

Response Server::execute(const Request& req) {
  metrics::ScopedTimer span(std::string("serve.") + op_name(req.op));
  try {
    switch (req.op) {
      case Op::kPing:
        return {Status::kOk, req.arg, 0, "pong"};

      case Op::kLoad: {
        const auto resident = registry_.load(req.path);
        return {Status::kOk, resident->graph().n(), resident->graph().m(),
                resident->format()};
      }

      case Op::kUnload:
        if (!registry_.unload(req.path)) {
          return {Status::kError, 0, 0,
                  "graph not resident: " + req.path};
        }
        return {Status::kOk, 0, 0, ""};

      case Op::kStats: {
        std::string json = "{\"connections\":" +
                           std::to_string(stats_.connections.load()) +
                           ",\"requests\":" +
                           std::to_string(stats_.requests.load()) +
                           ",\"ok\":" + std::to_string(stats_.ok.load()) +
                           ",\"errors\":" +
                           std::to_string(stats_.errors.load()) +
                           ",\"rejected\":" +
                           std::to_string(stats_.rejected.load()) +
                           ",\"timeouts\":" +
                           std::to_string(stats_.timeouts.load()) +
                           ",\"bad_requests\":" +
                           std::to_string(stats_.bad_requests.load()) +
                           ",\"resident\":[";
        const auto keys = registry_.keys();
        bool first = true;
        for (const auto& key : keys) {
          if (!first) json += ',';
          json += '"';
          json += json_escape(key);
          json += '"';
          first = false;
        }
        json += "]}";
        return {Status::kOk, keys.size(), registry_.loads_performed(),
                json};
      }

      case Op::kShutdown:
        return {Status::kOk, 0, 0, "shutting down"};

      default:
        break;  // graph-scoped ops handled below
    }

    // Every remaining op addresses a resident graph by key; `load` is the
    // only op that touches the filesystem.
    const auto resident = registry_.get(req.path);
    if (resident == nullptr) {
      return {Status::kError, 0, 0,
              "graph not resident (load it first): " + req.path};
    }
    const auto& g = resident->graph();
    const auto& engine = resident->engine();

    switch (req.op) {
      case Op::kGraphInfo:
        return {Status::kOk, g.n(), g.m(),
                "{\"format\":\"" + resident->format() + "\",\"storage\":\"" +
                    (g.is_view() ? "mapped" : "owned") +
                    "\",\"load_ms\":" + std::to_string(resident->load_ms()) +
                    ",\"bfs_runs\":" + std::to_string(engine.bfs_runs()) +
                    "}"};

      case Op::kDiameter:
        return {Status::kOk, engine.diameter(), 0, ""};

      case Op::kApprox: {
        // Double-sweep bounds without forcing the full eccentricity
        // table: BFS from `arg` (default 0), then from the farthest
        // vertex found. lb <= D <= 2*lb on connected graphs.
        const graph::NodeId root =
            req.arg < g.n() ? static_cast<graph::NodeId>(req.arg) : 0;
        const auto first = graph::bfs(g, root);
        graph::NodeId far = root;
        std::uint32_t far_d = 0;
        for (graph::NodeId v = 0; v < g.n(); ++v) {
          if (first.dist[v] != graph::kUnreachable &&
              first.dist[v] > far_d) {
            far_d = first.dist[v];
            far = v;
          }
        }
        const auto second = graph::bfs(g, far);
        const std::uint32_t lb = std::max(first.ecc, second.ecc);
        return {Status::kOk, lb, 2ull * lb, ""};
      }

      case Op::kRadius:
        return {Status::kOk, engine.radius(), engine.center(), ""};

      case Op::kEcc:
        if (req.arg >= g.n()) {
          return {Status::kError, 0, 0,
                  "ecc: vertex " + std::to_string(req.arg) +
                      " out of range (n=" + std::to_string(g.n()) + ")"};
        }
        return {Status::kOk,
                engine.eccentricity(static_cast<graph::NodeId>(req.arg)), 0,
                ""};

      case Op::kGirth:
        return {Status::kOk, resident->girth(), 0, ""};

      default:
        return {Status::kBadRequest, 0, 0, "unhandled op"};
    }
  } catch (const std::exception& e) {
    // Op-level failures (unreadable file, malformed .qcg, disconnected
    // graph preconditions) answer kError; they never take the daemon down.
    return {Status::kError, 0, 0, e.what()};
  }
}

void Server::log_request(std::uint64_t id, const Request& req,
                         const Response& resp, double latency_us,
                         std::uint64_t bfs_delta) {
  if (log_ == nullptr) return;
  // Schema: one object per line; `rounds` is the CONGEST-model cost
  // attributed to the request (0 for the centralized engine answers —
  // kept so the schema is forward-compatible with distributed backends).
  std::string line =
      "{\"request_id\":" + std::to_string(id) + ",\"op\":\"" +
      op_name(req.op) + "\",\"graph\":\"" + json_escape(req.path) +
      "\",\"status\":\"" + status_name(resp.status) +
      "\",\"value\":" + std::to_string(resp.value) +
      ",\"latency_us\":" + std::to_string(latency_us) +
      ",\"bfs_runs\":" + std::to_string(bfs_delta) + ",\"rounds\":0}";
  log_->write(line);
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::request_stop() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true);
#if QC_HAVE_SOCKETS
  // Closing the listener unblocks accept(); shutting down every live
  // connection unblocks its reader. Each connection thread then closes
  // and deregisters its own fd; waiting for active_conns_ == 0 is the
  // join, and guarantees no detached thread outlives this Server.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
#endif
  pool_->wait_idle();
  started_ = false;
  request_stop();  // release any wait()er during teardown
}

}  // namespace qc::serve
