#include "serve/client.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QC_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define QC_HAVE_SOCKETS 0
#endif

namespace qc::serve {

Client::~Client() {
#if QC_HAVE_SOCKETS
  if (fd_ >= 0) ::close(fd_);
#endif
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
#if QC_HAVE_SOCKETS
    if (fd_ >= 0) ::close(fd_);
#endif
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

#if QC_HAVE_SOCKETS

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "serve: cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "serve: unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("serve: cannot connect to unix:" + path + ": " + reason);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "serve: cannot create tcp socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("serve: invalid IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("serve: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + reason);
  }
  return Client(fd);
}

#else

Client Client::connect_unix(const std::string&) {
  throw Error("serve: sockets are not available on this platform");
}

Client Client::connect_tcp(const std::string&, std::uint16_t) {
  throw Error("serve: sockets are not available on this platform");
}

#endif

Client Client::connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5));
  }
  const auto colon = endpoint.rfind(':');
  require(colon != std::string::npos,
          "serve: endpoint must be unix:PATH or HOST:PORT, got '" +
              endpoint + "'");
  const std::string host =
      colon == 0 ? "127.0.0.1" : endpoint.substr(0, colon);
  const std::string port_str = endpoint.substr(colon + 1);
  require(!port_str.empty() &&
              port_str.find_first_not_of("0123456789") == std::string::npos,
          "serve: invalid port in endpoint '" + endpoint + "'");
  const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
  require(port >= 1 && port <= 65535,
          "serve: port out of range in endpoint '" + endpoint + "'");
  return connect_tcp(host, static_cast<std::uint16_t>(port));
}

Response Client::call(const Request& req) {
  require(fd_ >= 0, "serve: client is not connected");
  write_frame(fd_, encode_request(req));
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload)) {
    throw ProtocolError("serve: server closed the connection");
  }
  return decode_response(payload);
}

Response Client::call_ok(const Request& req) {
  Response resp = call(req);
  if (resp.status != Status::kOk) {
    throw Error(std::string("serve: ") + op_name(req.op) + " failed (" +
                status_name(resp.status) + "): " + resp.message);
  }
  return resp;
}

}  // namespace qc::serve
