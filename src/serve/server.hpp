#pragma once

// qcongestd server core: a long-running query service over resident graphs.
//
// Architecture (one box per layer the request crosses):
//
//   accept thread ── one blocking reader thread per connection
//        │                 │  read_frame / decode_request (validated)
//        │                 ▼
//        │          bounded admission: pending >= max_pending → kRejected
//        │                 │
//        │                 ▼
//        │          qc::ThreadPool workers execute the op against the
//        │          GraphRegistry (shared EccEngine per resident graph —
//        │          the ecc table is computed once and served forever)
//        │                 │
//        │                 ▼
//        │          reader waits with a deadline; kTimeout when the
//        │          deadline passes (the worker's late result is dropped)
//        │
//        └── per-request metrics: qc::metrics span/counters + an optional
//            JSONL request log (request id, op, graph, status, latency).
//
// The server binds either a Unix-domain socket path or loopback TCP
// (127.0.0.1; port 0 picks an ephemeral port, readable via port()).
// Lifecycle: construct → start() → [serve] → wait() returns once a client
// sends kShutdown or request_stop() is called → stop() joins everything.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/thread_pool.hpp"

namespace qc::serve {

struct ServerOptions {
  /// Unix-domain socket path; when empty the server listens on loopback
  /// TCP instead.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (ignored when unix_path is set); 0 binds an
  /// ephemeral port — read the actual one back via port().
  std::uint16_t tcp_port = 0;
  /// Compute workers; 0 means hardware_concurrency.
  std::uint32_t num_threads = 0;
  /// Admission bound: requests queued or executing; one more is rejected
  /// with kRejected instead of growing an unbounded queue.
  std::uint32_t max_pending = 64;
  /// Per-request deadline in ms measured from admission; 0 disables.
  /// A request that misses it answers kTimeout (the computation itself
  /// cannot be cancelled; its result is discarded).
  std::uint32_t timeout_ms = 0;
  /// JSONL request log path ("" disables): one line per request with
  /// request id, op, graph key, status, latency and engine work.
  std::string request_log;
  /// Frame cap for incoming requests (tests shrink it).
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// Monotonic server counters (also exported via the kStats op).
struct ServerStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> bad_requests{0};
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();  ///< stops and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept thread. Throws qc::Error when
  /// the endpoint cannot be bound.
  void start();

  /// Blocks until a kShutdown request arrives or request_stop() is called.
  void wait();

  /// Asks wait() to return; safe to call from any thread (not a signal
  /// handler — the daemon routes signals through a pipe first).
  void request_stop();

  /// Closes the listener and every connection, joins all threads, drains
  /// the worker pool. Idempotent.
  void stop();

  /// Endpoint actually bound: "unix:PATH" or "127.0.0.1:PORT".
  std::string endpoint() const;
  /// Bound TCP port (0 in Unix-socket mode).
  std::uint16_t port() const { return bound_port_; }

  const ServerStats& stats() const { return stats_; }
  GraphRegistry& registry() { return registry_; }

  /// Executes one request synchronously against the registry — the same
  /// switch the worker threads run, exposed so tests and the in-process
  /// bench can check bit-identity without a socket in the loop.
  Response execute(const Request& req);

 private:
  class RequestLog;

  void accept_loop();
  void handle_connection(int fd);
  Response dispatch(const Request& req);
  void log_request(std::uint64_t id, const Request& req,
                   const Response& resp, double latency_us,
                   std::uint64_t bfs_delta);

  ServerOptions opts_;
  GraphRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<RequestLog> log_;
  ServerStats stats_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  // Live connections only: each handle_connection thread is detached and
  // deregisters its own fd on exit (so a long-running daemon never
  // accumulates dead fds or joinable threads); stop() force-shutdowns the
  // survivors and waits for active_conns_ to drain to zero.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::vector<int> conn_fds_;
  std::size_t active_conns_ = 0;

  std::atomic<std::uint32_t> pending_{0};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace qc::serve
