#pragma once

// qcongestd wire protocol.
//
// A deliberately small length-prefixed binary protocol over a local stream
// socket (Unix-domain or loopback TCP), validated with the same adversarial
// rigor as the `.qcg` decoder: every length is capped and cross-checked,
// unknown op/status bytes are rejected, and a truncated frame is an error,
// never a partial read into undefined state.
//
// Framing (all integers little-endian):
//
//   frame    := u32 payload_len | payload            payload_len in
//                                                    [1, kMaxFrameBytes]
//   request  := u8 version | u8 op | u8 x2 reserved(0)
//             | u64 arg | u32 path_len | path bytes
//   response := u8 version | u8 status | u8 x2 reserved(0)
//             | u64 value | u64 aux | u32 msg_len | msg bytes
//
// `path` is the server-side graph key (a file path for `load`, the same
// key afterwards); `arg` carries the op-specific integer (the vertex for
// `ecc`, the BFS root of the double sweep for `approx`, 0 otherwise). `value`/`aux` carry
// the numeric answer (see op table in docs/serving.md); `msg` carries the
// error text or an info payload. Full spec: docs/serving.md.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace qc::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on one frame's payload. Requests carry a path and responses a
/// short message, so 1 MiB is generous; anything larger is a corrupt or
/// hostile peer and is rejected before any allocation of that size.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
/// Cap on the graph-key field of a request (PATH_MAX-ish).
inline constexpr std::uint32_t kMaxPathBytes = 4096;
/// Cap on the message field of a response.
inline constexpr std::uint32_t kMaxMessageBytes = 1u << 16;

enum class Op : std::uint8_t {
  kPing = 0,       ///< liveness probe; echoes arg in value
  kLoad = 1,       ///< load path into the registry (idempotent)
  kUnload = 2,     ///< drop a resident graph
  kGraphInfo = 3,  ///< n/m/format of a resident graph; no BFS work
  kDiameter = 4,   ///< exact diameter (EccEngine, compute-once)
  kApprox = 5,     ///< double-sweep bounds from root `arg`: lb <= D <= 2*lb
  kRadius = 6,     ///< exact radius + center
  kEcc = 7,        ///< eccentricity of vertex `arg`
  kGirth = 8,      ///< exact girth (compute-once per resident graph)
  kStats = 9,      ///< server counters + resident keys as a JSON message
  kShutdown = 10,  ///< ack, then ask the daemon to stop
};
inline constexpr std::uint8_t kMaxOp = static_cast<std::uint8_t>(Op::kShutdown);

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,       ///< op-level failure (message has the reason)
  kBadRequest = 2,  ///< malformed frame/payload; connection is closed
  kRejected = 3,    ///< admission queue full; retry later
  kTimeout = 4,     ///< deadline passed while queued/executing
};
inline constexpr std::uint8_t kMaxStatus =
    static_cast<std::uint8_t>(Status::kTimeout);

struct Request {
  Op op = Op::kPing;
  std::string path;       ///< graph key (empty for ping/stats/shutdown)
  std::uint64_t arg = 0;  ///< op-specific integer argument
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t value = 0;  ///< primary numeric answer
  std::uint64_t aux = 0;    ///< secondary (center vertex, m, upper bound...)
  std::string message;      ///< error text or info payload
};

/// Raised for every malformed payload or frame so callers can distinguish
/// peer protocol violations from local errors.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

const char* op_name(Op op);
const char* status_name(Status s);

/// Payload encoding (no frame header). encode_* never fails for values
/// within the documented caps; decode_* throws ProtocolError on anything
/// malformed: short/overlong buffers, unknown version/op/status bytes,
/// nonzero reserved bytes, or a length field disagreeing with the buffer.
std::vector<std::uint8_t> encode_request(const Request& req);
Request decode_request(std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_response(const Response& resp);
Response decode_response(std::span<const std::uint8_t> payload);

/// Blocking frame IO over a stream fd; both ends handle partial
/// reads/writes and EINTR.
///
/// read_frame returns false on a clean EOF at a frame boundary (the peer
/// closed); EOF inside a frame, a zero length, or a length above
/// `max_frame_bytes` throw ProtocolError.
///
/// Both ends take the cap as a parameter because the framing layer is
/// shared: qcongestd frames stay under kMaxFrameBytes, while the shard
/// backend (src/congest/shard) moves boundary-message batches under its
/// own, larger cap.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_frame_bytes = kMaxFrameBytes);
void write_frame(int fd, std::span<const std::uint8_t> payload,
                 std::uint32_t max_frame_bytes = kMaxFrameBytes);
/// As write_frame, but assembles the length-prefixed frame in `scratch`
/// (cleared and reused; capacity is kept across calls) instead of a fresh
/// buffer — the allocation-free path for callers that frame in a loop
/// (the shard backend's socket spill path, qcongestd responses).
void write_frame(int fd, std::span<const std::uint8_t> payload,
                 std::uint32_t max_frame_bytes,
                 std::vector<std::uint8_t>& scratch);

}  // namespace qc::serve
