#pragma once

// Internal single-pass integer tokenizer shared by the native edge-list
// reader and the SNAP-style importer. std::from_chars-based: no streams,
// no per-token allocation — the text import hot path does exactly one pass
// over each line.

#include <charconv>
#include <cstdint>

namespace qc::graph::detail {

inline const char* skip_ws(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

/// Parses one unsigned decimal token at `p`, advancing `p` past it.
/// Returns false (leaving `p` at the offending position) when the cursor
/// hits end-of-line or a non-digit.
inline bool parse_u64(const char*& p, const char* end, std::uint64_t& out) {
  p = skip_ws(p, end);
  if (p == end) return false;
  const auto [q, ec] = std::from_chars(p, end, out);
  if (ec != std::errc() || q == p) return false;
  p = q;
  return true;
}

/// True when only whitespace remains on the line.
inline bool only_ws_left(const char* p, const char* end) {
  return skip_ws(p, end) == end;
}

}  // namespace qc::graph::detail
