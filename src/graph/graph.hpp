#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qc::graph {

/// Node identifier; nodes of an n-node graph are 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the parent of a BFS root).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge; canonical form has first <= second.
using Edge = std::pair<NodeId, NodeId>;

/// Immutable undirected simple graph in compressed-sparse-row form.
///
/// This is the topology substrate everything else builds on: the CONGEST
/// simulator instantiates one network node per vertex and one bidirectional
/// channel per edge, and the reference (centralized) algorithms used to
/// validate distributed executions run directly on it.
///
/// Neighbor lists are sorted by node id, which fixes a deterministic port
/// ordering for the simulator and a deterministic child ordering for DFS
/// traversals.
class Graph {
 public:
  /// Builds a graph with `n` vertices from an edge list. Self-loops are
  /// rejected; duplicate edges are coalesced.
  static Graph from_edges(std::uint32_t n, std::span<const Edge> edges);

  /// Number of vertices.
  std::uint32_t n() const { return static_cast<std::uint32_t>(offsets_.size() - 1); }

  /// Number of (undirected) edges.
  std::uint64_t m() const { return neighbors_.size() / 2; }

  std::uint32_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// O(log deg) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges in canonical (u < v) order.
  std::vector<Edge> edges() const;

  bool is_connected() const;

  /// Human-readable one-line summary ("Graph(n=.., m=..)").
  std::string describe() const;

 private:
  Graph() = default;
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> neighbors_;
};

/// Incremental edge-list builder; the common way generators and gadget
/// constructions assemble a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t n = 0) : n_(n) {}

  /// Ensures at least `n` vertices exist.
  void reserve_nodes(std::uint32_t n);

  /// Adds a fresh vertex and returns its id.
  NodeId add_node();

  /// Adds an undirected edge; duplicates are fine (coalesced at build).
  void add_edge(NodeId u, NodeId v);

  /// Connects every pair within `nodes` (clique).
  void add_clique(std::span<const NodeId> nodes);

  /// Connects `center` to each node in `leaves`.
  void add_star(NodeId center, std::span<const NodeId> leaves);

  /// Adds `length` new vertices forming a path from u to v (so the u-v
  /// distance through the new path is length+1). Returns the new vertices
  /// in order from u's side to v's side. length==0 simply adds edge {u,v}.
  std::vector<NodeId> add_path_between(NodeId u, NodeId v,
                                       std::uint32_t length);

  std::uint32_t num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return edges_.size(); }

  Graph build() const;

 private:
  std::uint32_t n_;
  std::vector<Edge> edges_;
};

}  // namespace qc::graph
