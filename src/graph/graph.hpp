#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qc::graph {

/// Node identifier; nodes of an n-node graph are 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the parent of a BFS root).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge; canonical form has first <= second.
using Edge = std::pair<NodeId, NodeId>;

/// Immutable undirected simple graph in compressed-sparse-row form.
///
/// This is the topology substrate everything else builds on: the CONGEST
/// simulator instantiates one network node per vertex and one bidirectional
/// channel per edge, and the reference (centralized) algorithms used to
/// validate distributed executions run directly on it.
///
/// Neighbor lists are sorted by node id, which fixes a deterministic port
/// ordering for the simulator and a deterministic child ordering for DFS
/// traversals.
///
/// The CSR arrays are accessed through a *view*: two raw pointers plus a
/// shared keep-alive handle. The handle either owns heap vectors (the
/// from_edges / generator path) or pins external memory such as an mmap'ed
/// `.qcg` payload (from_csr_view), so a mapped million-node file, a
/// generator, and from_edges all produce the same immutable interface
/// without copying the adjacency. Copying a Graph is O(1): copies share
/// the underlying storage.
class Graph {
 public:
  /// Builds a graph with `n` vertices from an edge list. Self-loops are
  /// rejected; duplicate edges are coalesced.
  static Graph from_edges(std::uint32_t n, std::span<const Edge> edges);

  /// Move overload: canonicalizes, sorts and dedups the moved buffer in
  /// place, so builder-heavy generators and the file importers pay no
  /// extra copy of the edge list at build time.
  static Graph from_edges(std::uint32_t n, std::vector<Edge>&& edges);

  /// Adopts already-built CSR arrays. Validates the full CSR contract
  /// (offsets monotone and consistent, adjacency sorted, strictly
  /// increasing, in range, loop-free, symmetric) and throws
  /// InvalidArgumentError on any violation.
  static Graph from_csr(std::vector<std::uint32_t> offsets,
                        std::vector<NodeId> neighbors);

  /// Zero-copy view over externally owned CSR arrays (e.g. the payload of
  /// a mapped `.qcg` file). `arcs` is the caller-trusted length of the
  /// `neighbors` array; offsets[n] is validated *against* it rather than
  /// trusted, so an untrusted offsets array can never extend the neighbor
  /// walk past the caller's buffer. `keep_alive` is retained by the graph
  /// and every copy of it, pinning the backing memory. Runs the same
  /// validation as from_csr without copying or allocating per edge.
  static Graph from_csr_view(std::uint32_t n, const std::uint32_t* offsets,
                             const NodeId* neighbors, std::uint64_t arcs,
                             std::shared_ptr<const void> keep_alive);

  /// Number of vertices.
  std::uint32_t n() const { return n_; }

  /// Number of (undirected) edges.
  std::uint64_t m() const { return offsets_ == nullptr ? 0 : offsets_[n_] / 2; }

  std::uint32_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_ + offsets_[v], neighbors_ + offsets_[v + 1]};
  }

  /// The raw CSR offset array (n()+1 entries); offsets()[n()] == 2*m().
  std::span<const std::uint32_t> csr_offsets() const {
    return {offsets_, static_cast<std::size_t>(n_) + 1};
  }

  /// The raw concatenated adjacency array (2*m() entries).
  std::span<const NodeId> csr_neighbors() const {
    return {neighbors_, offsets_ == nullptr ? 0 : offsets_[n_]};
  }

  /// True when the CSR arrays are a borrowed view of external memory (a
  /// mapped file) rather than heap vectors owned by this graph.
  bool is_view() const { return view_; }

  /// O(log deg) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges in canonical (u < v) order.
  std::vector<Edge> edges() const;

  bool is_connected() const;

  /// Human-readable one-line summary ("Graph(n=.., m=..)").
  std::string describe() const;

 private:
  Graph() = default;

  /// Keeps the CSR arrays alive: an owned vector pair or a caller-supplied
  /// handle (mmap). Never inspected, only retained.
  std::shared_ptr<const void> storage_;
  const std::uint32_t* offsets_ = nullptr;
  const NodeId* neighbors_ = nullptr;
  std::uint32_t n_ = 0;
  bool view_ = false;
};

/// Incremental edge-list builder; the common way generators and gadget
/// constructions assemble a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t n = 0) : n_(n) {}

  /// Ensures at least `n` vertices exist.
  void reserve_nodes(std::uint32_t n);

  /// Reserves capacity for `m` add_edge calls, so bulk producers (the
  /// generators, the importer) append without reallocation.
  void reserve_edges(std::uint64_t m);

  /// Adds a fresh vertex and returns its id.
  NodeId add_node();

  /// Adds an undirected edge; duplicates are fine (coalesced at build).
  void add_edge(NodeId u, NodeId v);

  /// Connects every pair within `nodes` (clique).
  void add_clique(std::span<const NodeId> nodes);

  /// Connects `center` to each node in `leaves`.
  void add_star(NodeId center, std::span<const NodeId> leaves);

  /// Adds `length` new vertices forming a path from u to v (so the u-v
  /// distance through the new path is length+1). Returns the new vertices
  /// in order from u's side to v's side. length==0 simply adds edge {u,v}.
  std::vector<NodeId> add_path_between(NodeId u, NodeId v,
                                       std::uint32_t length);

  std::uint32_t num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return edges_.size(); }

  /// Lvalue build keeps the builder reusable (copies the edge buffer);
  /// `std::move(b).build()` hands the buffer straight to Graph::from_edges
  /// with no copy — the form every generator uses for its final build.
  Graph build() const&;
  Graph build() &&;

 private:
  std::uint32_t n_;
  std::vector<Edge> edges_;
};

}  // namespace qc::graph
