#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace qc::graph {

/// What the tolerant importer saw while reading a raw dataset; surfaced by
/// `qcongest graph-info` and the converter tools so silently-dropped input
/// is always visible.
struct ImportStats {
  std::uint64_t lines_total = 0;      ///< every line, including comments
  std::uint64_t comment_lines = 0;    ///< '#' or '%' leaders and blanks
  std::uint64_t edge_lines = 0;       ///< lines that contributed an edge
  std::uint64_t self_loops_dropped = 0;
  std::uint64_t duplicates_coalesced = 0;  ///< incl. reverse duplicates
  std::uint64_t min_raw_id = 0;
  std::uint64_t max_raw_id = 0;
  bool ids_compacted = false;  ///< raw ids were not already 0..n-1
};

struct ImportedGraph {
  Graph graph;
  /// Mapping new id -> original dataset id, ascending (compaction is by
  /// sorted original id, so the result is independent of edge order).
  std::vector<std::uint64_t> raw_ids;
  ImportStats stats;
};

/// SNAP-style edge-list importer for real datasets.
///
/// Deliberately tolerant where read_edge_list is strict, because raw
/// downloads are messy: '#'/'%' comment lines and blank lines anywhere;
/// space- or tab-separated; extra columns (weights, timestamps) ignored;
/// 0-based, 1-based, or arbitrary 64-bit ids (compacted to 0..n-1 in
/// sorted order); directed duplicates and self-loops dropped with counts.
/// A line whose first token is not an integer, or that carries only one
/// id, is still an error — tolerance is for real-world shape, not garbage.
ImportedGraph import_edge_list(std::istream& in);
ImportedGraph import_edge_list_file(const std::string& path);

}  // namespace qc::graph
