#pragma once

// Shared eccentricity/distance engine.
//
// The Theorem 1 reference path evaluates f(u) = max_{v in segment(u)} ecc(v)
// over Euler-walk windows that overlap heavily across the n branches. Doing
// that naively costs one BFS per window member per branch — Theta(n*d) BFS
// runs where n suffice. This engine factors the work into three reusable
// pieces:
//
//  1. a flat-array CSR frontier BFS kernel with caller-owned scratch
//     buffers (no per-call allocation, no std::deque),
//  2. a thread-safe compute-once eccentricity cache fanned across
//     qc::ThreadPool (exactly one BFS per vertex, ever),
//  3. a sparse-table (binary-lifting) range-maximum structure over the
//     Euler-walk positions of a DfsNumbering, answering
//     max_ecc_in_segment(u, steps) in O(1) per query after an
//     O(n*BFS + len*log(len)) build.
//
// The engine only accelerates the *centralized reference* computations; the
// distributed Figure 2 simulation (round accounting, message traffic, the
// kSimulate cross-check) is untouched and stays bit-identical.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace qc::graph {

/// Caller-owned scratch buffers for the flat BFS kernel. Reuse one instance
/// across calls (per thread) to amortize the allocations away.
struct BfsScratch {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
};

/// Flat frontier BFS over the CSR adjacency of `g`: fills `scratch.dist`
/// (kUnreachable where not reached) and returns ecc(root). Distance values
/// are identical to bfs(g, root).dist; no parent array is built.
std::uint32_t flat_bfs_distances(const Graph& g, NodeId root,
                                 BfsScratch& scratch);

/// Compute-once eccentricity cache over a fixed graph, plus O(1) range-max
/// queries over Euler-walk segments.
///
/// Thread-safe: the first accessor to need the eccentricities computes all
/// of them exactly once (fanned across a ThreadPool for large graphs);
/// concurrent readers block until the table is ready and then read without
/// locking. Every derived value (diameter, radius, segment maxima) is a
/// pure function of the table, so results are independent of thread count.
class EccEngine {
 public:
  /// `num_threads` = 0 means hardware_concurrency. Small graphs
  /// (n < kParallelCutoff) always compute serially — spawning workers
  /// would cost more than the BFS runs.
  explicit EccEngine(const Graph& g, std::uint32_t num_threads = 0);

  const Graph& graph() const { return *g_; }

  /// ecc(v); forces the (single) full computation on first use.
  std::uint32_t eccentricity(NodeId v) const;

  /// All eccentricities, indexed by vertex.
  const std::vector<std::uint32_t>& all() const;

  std::uint32_t diameter() const;
  std::uint32_t radius() const;
  /// A center vertex (minimum eccentricity, smallest id on ties).
  NodeId center() const;

  /// Number of BFS runs the engine has executed. At most n for the life of
  /// the engine — the counter the reference-path cost assertions check.
  std::uint64_t bfs_runs() const {
    return bfs_runs_.load(std::memory_order_relaxed);
  }

  /// O(1) max-eccentricity queries over segments of one Euler walk.
  ///
  /// Built from a DfsNumbering (of the full BFS tree or of an induced
  /// subtree — anything dfs_numbering produces); self-contained after
  /// construction (copies what it needs), so it may outlive the numbering
  /// but not the engine's eccentricity table.
  class SegmentMax {
   public:
    /// Empty structure; assign from EccEngine::segment_max before querying.
    SegmentMax() = default;

    /// max_{v in segment window of u} ecc(v): bit-identical to
    /// graph::max_ecc_in_segment(g, num, u, steps) on the same numbering.
    std::uint32_t max_ecc_in_segment(NodeId u, std::uint32_t steps) const;

   private:
    friend class EccEngine;
    std::uint32_t range_max(std::uint32_t lo, std::uint32_t hi) const;

    std::vector<std::uint32_t> tau_;  ///< first-visit time per node
    std::vector<bool> in_walk_;       ///< nodes the walk reaches
    std::uint32_t len_ = 0;           ///< closed-walk length (2(k-1))
    std::uint32_t ecc_u_single_ = 0;  ///< n == 1 fallback has no table
    const std::vector<std::uint32_t>* ecc_ = nullptr;  ///< engine's table
    std::vector<std::uint32_t> log2_;                ///< floor(log2(i))
    std::vector<std::vector<std::uint32_t>> table_;  ///< sparse table
  };

  /// Builds the range-max structure for `num` (forces the eccentricity
  /// table). O(len * log(len)) time and space.
  SegmentMax segment_max(const DfsNumbering& num) const;

 private:
  void ensure_all() const;

  const Graph* g_;
  std::uint32_t num_threads_;
  mutable std::once_flag computed_;
  mutable std::vector<std::uint32_t> ecc_;
  mutable std::atomic<std::uint64_t> bfs_runs_{0};
};

}  // namespace qc::graph
