#pragma once

// Shared eccentricity/distance engine.
//
// The Theorem 1 reference path evaluates f(u) = max_{v in segment(u)} ecc(v)
// over Euler-walk windows that overlap heavily across the n branches. Doing
// that naively costs one BFS per window member per branch — Theta(n*d) BFS
// runs where n suffice. This engine factors the work into three reusable
// pieces:
//
//  1. the BFS kernel layer of graph/bfs_kernels.hpp — the flat
//     single-source kernel plus the bit-parallel 64-sources-per-word
//     direction-optimizing multi-source kernel the full sweep runs on,
//  2. a thread-safe compute-once eccentricity cache (batches of 64
//     sources fanned across qc::ThreadPool — exactly one BFS per vertex,
//     ever, regardless of kernel or thread count),
//  3. a sparse-table (binary-lifting) range-maximum structure over the
//     Euler-walk positions of a DfsNumbering, answering
//     max_ecc_in_segment(u, steps) in O(1) per query after an
//     O(n*BFS + len*log(len)) build.
//
// Disconnected graphs: every eccentricity (and therefore diameter, radius,
// and every segment maximum) is kUnreachable — in a graph with two or more
// components no vertex reaches everything — matching the per-vertex
// kUnreachable convention of BfsResult::dist and apsp. The engine never
// reports a silent component-local value.
//
// The engine only accelerates the *centralized reference* computations; the
// distributed Figure 2 simulation (round accounting, message traffic, the
// kSimulate cross-check) is untouched and stays bit-identical.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/bfs_kernels.hpp"
#include "graph/graph.hpp"

namespace qc::graph {

/// Tuning knobs for EccEngine. Every setting changes cost only, never
/// results: eccentricity tables are bit-identical across kernels and
/// thread counts.
struct EccOptions {
  /// Workers for the one-time sweep; 0 means hardware_concurrency. Small
  /// graphs always compute serially — spawning workers would cost more
  /// than the BFS runs.
  std::uint32_t num_threads = 0;
  /// Sweep kernel; kAuto picks bit-parallel for large graphs.
  EccKernel kernel = EccKernel::kAuto;
};

/// Compute-once eccentricity cache over a fixed graph, plus O(1) range-max
/// queries over Euler-walk segments.
///
/// Thread-safe: the first accessor to need the eccentricities computes all
/// of them exactly once (64-source bit-parallel batches fanned across a
/// ThreadPool for large graphs); concurrent readers block until the table
/// is ready and then read without locking. Every derived value (diameter,
/// radius, segment maxima) is a pure function of the table, so results are
/// independent of thread count and kernel choice.
///
/// Lifetime: the engine holds the Graph *by value*. Graph copies are O(1)
/// and share the underlying CSR storage keep-alive, so the engine stays
/// valid after the caller's Graph object — including a view-backed
/// from_csr_view graph over a mapped `.qcg` file — goes out of scope.
class EccEngine {
 public:
  /// `num_threads` = 0 means hardware_concurrency (see EccOptions).
  explicit EccEngine(Graph g, std::uint32_t num_threads = 0)
      : EccEngine(std::move(g), EccOptions{num_threads, EccKernel::kAuto}) {}

  EccEngine(Graph g, const EccOptions& opts);

  const Graph& graph() const { return g_; }

  /// ecc(v); forces the (single) full computation on first use.
  /// kUnreachable when the graph is disconnected.
  std::uint32_t eccentricity(NodeId v) const;

  /// All eccentricities, indexed by vertex (all kUnreachable when the
  /// graph is disconnected).
  const std::vector<std::uint32_t>& all() const;

  /// kUnreachable when the graph is disconnected.
  std::uint32_t diameter() const;
  /// kUnreachable when the graph is disconnected.
  std::uint32_t radius() const;
  /// A center vertex (minimum eccentricity, smallest id on ties; vertex 0
  /// on a disconnected graph, where every eccentricity is kUnreachable).
  NodeId center() const;

  /// Number of BFS runs the engine has executed (each source of a
  /// bit-parallel batch counts as one). At most n for the life of the
  /// engine — the counter the reference-path cost assertions check.
  std::uint64_t bfs_runs() const {
    return bfs_runs_.load(std::memory_order_relaxed);
  }

  /// O(1) max-eccentricity queries over segments of one Euler walk.
  ///
  /// Built from a DfsNumbering (of the full BFS tree or of an induced
  /// subtree — anything dfs_numbering produces); self-contained after
  /// construction: it copies what it needs and shares ownership of the
  /// engine's eccentricity table, so it may outlive both the numbering
  /// and the engine itself.
  class SegmentMax {
   public:
    /// Empty structure; assign from EccEngine::segment_max before querying.
    SegmentMax() = default;

    /// max_{v in segment window of u} ecc(v): bit-identical to
    /// graph::max_ecc_in_segment(g, num, u, steps) on the same numbering.
    std::uint32_t max_ecc_in_segment(NodeId u, std::uint32_t steps) const;

   private:
    friend class EccEngine;
    std::uint32_t range_max(std::uint32_t lo, std::uint32_t hi) const;

    std::vector<std::uint32_t> tau_;  ///< first-visit time per node
    std::vector<bool> in_walk_;       ///< nodes the walk reaches
    std::uint32_t len_ = 0;           ///< closed-walk length (2(k-1))
    /// Shared ownership of the engine's table (n == 1 walks and
    /// out-of-table queries read it directly).
    std::shared_ptr<const std::vector<std::uint32_t>> ecc_;
    std::vector<std::uint32_t> log2_;                ///< floor(log2(i))
    std::vector<std::vector<std::uint32_t>> table_;  ///< sparse table
  };

  /// Builds the range-max structure for `num` (forces the eccentricity
  /// table). O(len * log(len)) time and space.
  SegmentMax segment_max(const DfsNumbering& num) const;

 private:
  void ensure_all() const;
  void sweep_flat(std::vector<std::uint32_t>& table) const;
  void sweep_bit_parallel(std::vector<std::uint32_t>& table) const;

  Graph g_;  ///< by value: shares the CSR storage keep-alive
  EccOptions opts_;
  mutable std::once_flag computed_;
  /// The table lives behind a shared_ptr so SegmentMax instances can
  /// outlive the engine; written exactly once inside ensure_all.
  mutable std::shared_ptr<std::vector<std::uint32_t>> ecc_;
  mutable std::atomic<std::uint64_t> bfs_runs_{0};
};

}  // namespace qc::graph
