#include "graph/algorithms.hpp"

#include <algorithm>

#include "graph/ecc_engine.hpp"
#include "util/error.hpp"

namespace qc::graph {

BfsResult bfs(const Graph& g, NodeId root) {
  require(root < g.n(), "bfs: root out of range");
  BfsResult r;
  r.root = root;
  BfsScratch scratch;
  flat_bfs_distances(g, root, scratch);
  // BfsResult::ecc is the max *finite* distance (dist carries the
  // per-vertex kUnreachable flags), unlike the kernel's return value.
  r.ecc = scratch.finite_ecc;
  r.dist = std::move(scratch.dist);
  r.parent.assign(g.n(), kInvalidNode);
  // Parent rule: the smallest-id neighbor in the previous BFS level. In the
  // distributed wave of Figure 1 every previous-level neighbor activates a
  // node in the same round and the node adopts the smallest id among them,
  // so this rule makes centralized and CONGEST executions build the exact
  // same tree (the DFS-numbering of Definition 1 depends on tree shape).
  for (NodeId v = 0; v < g.n(); ++v) {
    if (v == root || r.dist[v] == kUnreachable) continue;
    for (NodeId u : g.neighbors(v)) {  // sorted ascending
      if (r.dist[u] + 1 == r.dist[v]) {
        r.parent[v] = u;
        break;
      }
    }
  }
  return r;
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  BfsScratch scratch;
  return flat_bfs_distances(g, v, scratch);
}

std::uint32_t diameter(const Graph& g) {
  require(g.n() > 0, "diameter: empty graph");
  require(g.is_connected(), "diameter: graph must be connected");
  return EccEngine(g).diameter();
}

std::vector<std::uint32_t> all_eccentricities(const Graph& g) {
  require(g.n() > 0, "all_eccentricities: empty graph");
  require(g.is_connected(), "all_eccentricities: graph must be connected");
  return EccEngine(g).all();
}

std::uint32_t radius(const Graph& g) {
  require(g.n() > 0, "radius: empty graph");
  require(g.is_connected(), "radius: graph must be connected");
  return EccEngine(g).radius();
}

NodeId center(const Graph& g) {
  require(g.n() > 0, "center: empty graph");
  require(g.is_connected(), "center: graph must be connected");
  return EccEngine(g).center();
}

std::uint32_t girth(const Graph& g) {
  std::uint32_t best = kUnreachable;
  const auto all_edges = g.edges();
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
  for (const auto& removed : all_edges) {
    // BFS in G - e from one endpoint to the other.
    dist.assign(g.n(), kUnreachable);
    queue.assign(1, removed.first);
    dist[removed.first] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      if (u == removed.second) break;
      for (NodeId v : g.neighbors(u)) {
        const bool is_removed =
            (u == removed.first && v == removed.second) ||
            (u == removed.second && v == removed.first);
        if (is_removed || dist[v] != kUnreachable) continue;
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
    if (dist[removed.second] != kUnreachable) {
      best = std::min(best, dist[removed.second] + 1);
    }
  }
  return best;
}

std::vector<std::vector<std::uint32_t>> apsp(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> d;
  d.reserve(g.n());
  BfsScratch scratch;
  for (NodeId v = 0; v < g.n(); ++v) {
    flat_bfs_distances(g, v, scratch);
    d.push_back(std::move(scratch.dist));
  }
  return d;
}

std::uint32_t max_cross_distance(const Graph& g, std::span<const NodeId> us,
                                 std::span<const NodeId> vs) {
  std::uint32_t best = 0;
  BfsScratch scratch;
  for (NodeId u : us) {
    flat_bfs_distances(g, u, scratch);
    for (NodeId v : vs) {
      require(scratch.dist[v] != kUnreachable,
              "max_cross_distance: graph not connected across partition");
      best = std::max(best, scratch.dist[v]);
    }
  }
  return best;
}

BfsTree bfs_tree(const Graph& g, NodeId root) {
  const BfsResult r = bfs(g, root);
  BfsTree t;
  t.root = root;
  t.parent = r.parent;
  t.depth = r.dist;
  t.height = r.ecc;
  t.children.assign(g.n(), {});
  for (NodeId v = 0; v < g.n(); ++v) {
    require(r.dist[v] != kUnreachable, "bfs_tree: graph must be connected");
    if (v != root) t.children[r.parent[v]].push_back(v);
  }
  for (auto& c : t.children) std::sort(c.begin(), c.end());
  return t;
}

DfsNumbering dfs_numbering(const BfsTree& tree) {
  const std::uint32_t n = tree.n();
  require(n > 0, "dfs_numbering: empty tree");
  DfsNumbering num;
  num.tau.assign(n, 0);
  num.in_walk.assign(n, false);
  num.walk.clear();
  num.walk.reserve(2 * n);

  // Iterative Euler tour: visit children in increasing id order; each move
  // along a tree edge advances the clock by one.
  std::uint32_t clock = 0;
  num.walk.push_back(tree.root);
  // frame: (node, index of next child to visit)
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(tree.root, 0);
  num.tau[tree.root] = 0;
  num.in_walk[tree.root] = true;
  while (!stack.empty()) {
    auto& [u, next] = stack.back();
    if (next < tree.children[u].size()) {
      const NodeId c = tree.children[u][next++];
      ++clock;
      num.tau[c] = clock;
      num.in_walk[c] = true;
      num.walk.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        ++clock;
        num.walk.push_back(stack.back().first);
      }
    }
  }
  return num;
}

BfsTree induced_subtree(const BfsTree& tree, const std::vector<bool>& keep) {
  require(keep.size() == tree.n(), "induced_subtree: mask size mismatch");
  require(keep[tree.root], "induced_subtree: root must be kept");
  BfsTree out = tree;
  out.height = 0;
  for (NodeId v = 0; v < tree.n(); ++v) {
    if (!keep[v]) {
      out.children[v].clear();
      continue;
    }
    if (v != tree.root) {
      require(keep[tree.parent[v]],
              "induced_subtree: kept set must be ancestor-closed");
    }
    out.height = std::max(out.height, tree.depth[v]);
    auto& kids = out.children[v];
    kids.erase(std::remove_if(kids.begin(), kids.end(),
                              [&](NodeId c) { return !keep[c]; }),
               kids.end());
  }
  return out;
}

std::vector<NodeId> window_set(const DfsNumbering& num, NodeId u,
                               std::uint32_t width, std::uint32_t modulus) {
  const auto n = static_cast<std::uint32_t>(num.tau.size());
  require(u < n, "window_set: node out of range");
  require(modulus > 0, "window_set: modulus must be positive");
  require(num.in_walk[u], "window_set: u is not on the traversal");
  std::vector<NodeId> out;
  const std::uint32_t start = num.tau[u] % modulus;
  for (NodeId v = 0; v < n; ++v) {
    if (!num.in_walk[v]) continue;
    const std::uint32_t offset =
        (num.tau[v] % modulus + modulus - start) % modulus;
    if (offset <= width) out.push_back(v);
  }
  return out;
}

SegmentWindow segment_window(const DfsNumbering& num, NodeId u,
                             std::uint32_t steps) {
  const auto n = static_cast<std::uint32_t>(num.tau.size());
  require(u < n && num.in_walk[u], "segment_window: u not on the traversal");
  SegmentWindow out;
  out.tau_prime.assign(n, -1);
  const std::uint32_t len = num.walk_length();
  if (len == 0) {  // single-vertex tree
    out.members = {u};
    out.tau_prime[u] = 0;
    return out;
  }
  const std::uint32_t start = num.tau[u];
  const std::uint32_t moves = std::min(steps, len);
  for (std::uint32_t t = 0; t <= moves; ++t) {
    const NodeId v = num.walk[(start + t) % len];
    if (out.tau_prime[v] < 0) {
      out.tau_prime[v] = static_cast<std::int64_t>(t);
      out.members.push_back(v);
    }
  }
  std::sort(out.members.begin(), out.members.end());
  return out;
}

std::uint32_t max_ecc_in_segment(const Graph& g, const DfsNumbering& num,
                                 NodeId u, std::uint32_t steps) {
  std::uint32_t best = 0;
  for (NodeId v : segment_window(num, u, steps).members) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

}  // namespace qc::graph
