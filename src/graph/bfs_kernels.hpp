#pragma once

// Centralized BFS kernel layer.
//
// Everything that sweeps distances over the CSR substrate funnels through
// the kernels in this header:
//
//  1. flat_bfs_distances — the single-source flat frontier kernel
//     (PR 3), used wherever the full distance array is needed (bfs(),
//     apsp, double sweeps).
//  2. multi_source_eccentricities — a bit-parallel multi-source kernel
//     running up to 64 sources per machine word: per vertex a 64-bit
//     mask of the sources that have reached it, advanced one synchronous
//     level at a time with word-OR frontier merges (the GraphLab/Galois
//     `bitwise_or` gather idiom), with Beamer-style push/pull
//     direction-optimizing switching for the low-diameter regime where
//     nearly the whole graph is frontier. One adjacency pass serves 64
//     BFS runs, which is what makes full EccEngine sweeps at n >= 10^5
//     feasible.
//
// Disconnected-graph contract (shared by both kernels): the returned
// eccentricity is kUnreachable when the source's component does not cover
// the whole graph — a finite value is only ever a true eccentricity of
// the whole graph, never a silent component-local one. The distance array
// of the flat kernel still reports per-vertex kUnreachable, and its
// `finite_ecc` scratch field exposes the component-local maximum for the
// callers (double sweeps, BfsResult::ecc) that genuinely want it.
//
// Both kernels are deterministic level-synchronous BFS, so their outputs
// are bit-identical to each other and independent of batch partitioning,
// direction choices, and thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace qc::graph {

/// Caller-owned scratch buffers for the flat single-source BFS kernel.
/// Reuse one instance across calls (per thread) to amortize the
/// allocations away. After a call, `dist`, `finite_ecc` and `reached`
/// describe the last run.
struct BfsScratch {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
  /// Max finite distance of the last run (the component-local
  /// eccentricity); equals the return value on connected graphs.
  std::uint32_t finite_ecc = 0;
  /// Vertices the last run reached, including the root.
  std::uint32_t reached = 0;
};

/// Flat frontier BFS over the CSR adjacency of `g`: fills `scratch.dist`
/// (kUnreachable where not reached) and returns ecc(root), or kUnreachable
/// when the BFS does not reach every vertex (disconnected graph). Distance
/// values are identical to bfs(g, root).dist; no parent array is built.
std::uint32_t flat_bfs_distances(const Graph& g, NodeId root,
                                 BfsScratch& scratch);

/// Caller-owned scratch for the bit-parallel multi-source kernel: three
/// 64-bit-mask arrays (one word per vertex) plus the push-mode worklists.
/// ~24 bytes per vertex; reuse one instance per thread.
struct MultiBfsScratch {
  std::vector<std::uint64_t> visited;   ///< sources that reached v
  std::vector<std::uint64_t> frontier;  ///< sources reaching v this level
  std::vector<std::uint64_t> next;      ///< sources reaching v next level
  std::vector<NodeId> active;           ///< vertices with nonzero frontier
  std::vector<NodeId> next_active;
};

/// Direction policy for multi_source_eccentricities. Results are
/// bit-identical either way; only the traversal cost differs.
enum class MultiBfsDirection : std::uint8_t {
  kOptimized,  ///< per-level push/pull switch on frontier size (default)
  kPushOnly,   ///< always scatter from the frontier (parity baseline)
};

/// Per-run telemetry: how many levels ran, and how each was traversed.
struct MultiBfsStats {
  std::uint32_t levels = 0;
  std::uint32_t push_levels = 0;
  std::uint32_t pull_levels = 0;
};

/// One synchronous BFS wave from up to 64 sources at once.
///
/// `ecc_out` must have room for sources.size() entries; ecc_out[i]
/// receives ecc(sources[i]), or kUnreachable when sources[i]'s component
/// does not cover the graph — exactly the values flat_bfs_distances
/// returns for the same roots. Duplicate sources are fine (their bits
/// travel together). Throws InvalidArgumentError on an empty batch, more
/// than 64 sources, or an out-of-range source.
MultiBfsStats multi_source_eccentricities(
    const Graph& g, std::span<const NodeId> sources, std::uint32_t* ecc_out,
    MultiBfsScratch& scratch,
    MultiBfsDirection direction = MultiBfsDirection::kOptimized);

/// Kernel selector for EccEngine's full eccentricity sweep.
enum class EccKernel : std::uint8_t {
  kAuto,         ///< bit-parallel for large graphs, flat below the cutoff
  kFlat,         ///< one flat_bfs_distances run per vertex
  kBitParallel,  ///< 64-sources-per-word direction-optimizing batches
};

}  // namespace qc::graph
