#pragma once

// .qcg — the compact on-disk binary graph container.
//
// Layout (full byte-level spec in docs/formats.md): an 8-byte magic, a
// fixed 64-byte little-endian header, then one of two payload encodings of
// the same sorted CSR the in-memory Graph uses:
//
//   kRawCsr       raw little-endian offset + adjacency arrays, 8-byte
//                 aligned — read_qcg_file maps the file and hands Graph a
//                 zero-copy view (no per-edge work, no per-edge memory),
//   kDeltaVarint  per-vertex degree + delta-varint adjacency — ~3-5x
//                 smaller, decoded into owned CSR vectors on load (two
//                 allocations total, still no per-edge allocation).
//
// Every reader validates magic, version, header/payload length agreement,
// an FNV-1a payload checksum (optional to skip for mapped benches), and
// the full CSR contract (sorted, in-range, loop-free, symmetric) before
// returning a Graph, so a truncated or corrupted file fails loudly instead
// of producing a plausible wrong topology.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace qc::graph {

inline constexpr char kQcgMagic[8] = {'Q', 'C', 'G', 'R', 'A', 'P', 'H', '1'};
inline constexpr std::uint16_t kQcgVersion = 1;
inline constexpr std::size_t kQcgHeaderBytes = 64;

enum class QcgEncoding : std::uint8_t {
  kRawCsr = 0,       ///< raw LE CSR arrays; mmap zero-copy on load
  kDeltaVarint = 1,  ///< degree + delta-varint adjacency; compact
};

/// Header-level metadata of a .qcg file (what `qcongest graph-info`
/// prints without loading the payload).
struct QcgInfo {
  std::uint16_t version = 0;
  QcgEncoding encoding = QcgEncoding::kRawCsr;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;  ///< directed arc count = 2m
  std::uint64_t payload_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t checksum = 0;

  std::uint64_t m() const { return arcs / 2; }
  double bytes_per_edge() const {
    return m() == 0 ? 0.0
                    : static_cast<double>(file_bytes) /
                          static_cast<double>(m());
  }
};

/// Writes `g` to `path`. Deterministic: the same graph always produces the
/// same bytes for a given encoding.
void write_qcg_file(const std::string& path, const Graph& g,
                    QcgEncoding encoding = QcgEncoding::kDeltaVarint);

struct QcgReadOptions {
  /// Verify the FNV-1a payload checksum. Costs one sequential pass over
  /// the payload; skipping it keeps a mapped kRawCsr load O(n) (the CSR
  /// structural validation still runs — it is not optional).
  bool verify_checksum = true;
};

/// Loads a .qcg file. kRawCsr payloads on little-endian hosts come back as
/// a zero-copy mapped view (Graph::is_view() == true) pinned by the
/// mapping; kDeltaVarint payloads decode into owned CSR vectors.
Graph read_qcg_file(const std::string& path, QcgReadOptions opt = {});

/// Reads header metadata only (no payload access beyond the file size).
QcgInfo qcg_info_file(const std::string& path);

/// True when `path` exists and starts with the .qcg magic. Never throws —
/// this is the auto-detection probe the CLI loader uses on "@file" args.
bool is_qcg_file(const std::string& path);

namespace qcgdetail {

/// LEB128 unsigned varint append/read, exposed for tests and tools.
void varint_append(std::vector<std::uint8_t>& out, std::uint64_t x);

/// Reads one varint at `pos`, advancing it. Throws InvalidArgumentError on
/// truncation or an overlong (> 10 byte) encoding.
std::uint64_t varint_read(const std::uint8_t* data, std::size_t size,
                          std::size_t& pos);

/// FNV-1a 64-bit, the payload checksum.
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ull);

}  // namespace qcgdetail

}  // namespace qc::graph
