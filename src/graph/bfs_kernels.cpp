#include "graph/bfs_kernels.hpp"

#include <bit>

#include "util/error.hpp"

namespace qc::graph {

namespace {

// Beamer-style direction switch: pull when the frontier's out-degree sum
// crosses this fraction of all arcs, or when a quarter of the vertices are
// on the frontier. Pull scans every not-yet-saturated vertex but exits a
// neighbor scan as soon as the needed bits are found, so it wins exactly
// in the dense mid-BFS levels of low-diameter graphs.
constexpr std::uint64_t kPullAlpha = 14;
constexpr std::uint64_t kPullNodeFrac = 4;

}  // namespace

std::uint32_t flat_bfs_distances(const Graph& g, NodeId root,
                                 BfsScratch& scratch) {
  require(root < g.n(), "flat_bfs_distances: root out of range");
  scratch.dist.assign(g.n(), kUnreachable);
  scratch.frontier.clear();
  scratch.next.clear();
  scratch.frontier.reserve(g.n());
  scratch.next.reserve(g.n());
  scratch.dist[root] = 0;
  scratch.frontier.push_back(root);
  std::uint32_t level = 0;
  std::uint32_t ecc = 0;
  std::uint32_t reached = 1;
  while (!scratch.frontier.empty()) {
    ++level;
    for (const NodeId u : scratch.frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (scratch.dist[v] == kUnreachable) {
          scratch.dist[v] = level;
          scratch.next.push_back(v);
        }
      }
    }
    if (!scratch.next.empty()) {
      ecc = level;
      reached += static_cast<std::uint32_t>(scratch.next.size());
    }
    scratch.frontier.swap(scratch.next);
    scratch.next.clear();
  }
  scratch.finite_ecc = ecc;
  scratch.reached = reached;
  return reached == g.n() ? ecc : kUnreachable;
}

MultiBfsStats multi_source_eccentricities(const Graph& g,
                                          std::span<const NodeId> sources,
                                          std::uint32_t* ecc_out,
                                          MultiBfsScratch& scratch,
                                          MultiBfsDirection direction) {
  const std::uint32_t n = g.n();
  const std::size_t k = sources.size();
  require(n > 0, "multi_source_eccentricities: empty graph");
  require(k >= 1 && k <= 64,
          "multi_source_eccentricities: need 1..64 sources per batch");
  const std::uint64_t full =
      k == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
  const std::uint64_t arcs = g.csr_neighbors().size();

  scratch.visited.assign(n, 0);
  scratch.frontier.assign(n, 0);
  scratch.next.assign(n, 0);
  scratch.active.clear();
  scratch.next_active.clear();

  // Seed. Invariant from here on: frontier[v] != 0 iff v is in `active`,
  // which is what lets the level-retire step clear exactly the stale
  // entries before recycling the buffer.
  std::uint64_t active_deg = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId v = sources[i];
    require(v < n, "multi_source_eccentricities: source out of range");
    if (scratch.frontier[v] == 0) {
      scratch.active.push_back(v);
      active_deg += g.degree(v);
    }
    scratch.frontier[v] |= std::uint64_t{1} << i;
    scratch.visited[v] |= std::uint64_t{1} << i;
    ecc_out[i] = 0;
  }

  MultiBfsStats stats;
  std::uint32_t level = 0;
  while (!scratch.active.empty()) {
    ++level;
    ++stats.levels;
    const bool pull =
        direction == MultiBfsDirection::kOptimized &&
        (active_deg * kPullAlpha >= arcs ||
         scratch.active.size() * kPullNodeFrac >= n);
    if (pull) {
      ++stats.pull_levels;
      // Bottom-up: every vertex still missing bits gathers the word-OR of
      // its neighbors' frontier masks, stopping as soon as everything it
      // needs has been found.
      for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t need = full & ~scratch.visited[v];
        if (need == 0) continue;
        std::uint64_t gathered = 0;
        for (const NodeId u : g.neighbors(v)) {
          gathered |= scratch.frontier[u];
          if ((gathered & need) == need) break;
        }
        const std::uint64_t add = gathered & need;
        if (add != 0) {
          scratch.next[v] = add;
          scratch.next_active.push_back(v);
        }
      }
    } else {
      ++stats.push_levels;
      // Top-down: scatter each frontier vertex's mask to its neighbors.
      for (const NodeId v : scratch.active) {
        const std::uint64_t f = scratch.frontier[v];
        for (const NodeId u : g.neighbors(v)) {
          const std::uint64_t add = f & ~scratch.visited[u];
          if (add != 0) {
            if (scratch.next[u] == 0) scratch.next_active.push_back(u);
            scratch.next[u] |= add;
          }
        }
      }
    }

    // Retire the level: commit the new reaches, record which sources
    // advanced (their eccentricity is at least this level), and recycle
    // the frontier buffer for the next level.
    std::uint64_t level_mask = 0;
    active_deg = 0;
    for (const NodeId v : scratch.next_active) {
      const std::uint64_t newly = scratch.next[v];  // filtered vs visited
      scratch.visited[v] |= newly;
      level_mask |= newly;
      active_deg += g.degree(v);
    }
    for (std::uint64_t b = level_mask; b != 0; b &= b - 1) {
      ecc_out[std::countr_zero(b)] = level;
    }
    for (const NodeId v : scratch.active) scratch.frontier[v] = 0;
    scratch.frontier.swap(scratch.next);
    scratch.active.swap(scratch.next_active);
    scratch.next_active.clear();
  }

  // A source's component covers the graph iff its bit survives the AND of
  // every vertex's visited mask; everything else gets kUnreachable, same
  // as flat_bfs_distances.
  std::uint64_t covered = full;
  for (NodeId v = 0; v < n; ++v) covered &= scratch.visited[v];
  for (std::uint64_t b = full & ~covered; b != 0; b &= b - 1) {
    ecc_out[std::countr_zero(b)] = kUnreachable;
  }
  return stats;
}

}  // namespace qc::graph
