#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/error.hpp"

namespace qc::graph {

Graph make_path(std::uint32_t n) {
  require(n >= 1, "make_path: need n >= 1");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph make_cycle(std::uint32_t n) {
  require(n >= 3, "make_cycle: need n >= 3");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build();
}

Graph make_star(std::uint32_t n) {
  require(n >= 2, "make_star: need n >= 2");
  GraphBuilder b(n);
  for (std::uint32_t i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph make_complete(std::uint32_t n) {
  require(n >= 2, "make_complete: need n >= 2");
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::uint64_t>(n) * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return std::move(b).build();
}

Graph make_grid(std::uint32_t rows, std::uint32_t cols) {
  require(rows >= 1 && cols >= 1, "make_grid: need rows, cols >= 1");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph make_torus(std::uint32_t rows, std::uint32_t cols) {
  require(rows >= 3 && cols >= 3, "make_torus: need rows, cols >= 3");
  GraphBuilder b(rows * cols);
  b.reserve_edges(2 * static_cast<std::uint64_t>(rows) * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph make_balanced_tree(std::uint32_t n, std::uint32_t arity) {
  require(n >= 1, "make_balanced_tree: need n >= 1");
  require(arity >= 1, "make_balanced_tree: need arity >= 1");
  GraphBuilder b(n);
  for (std::uint32_t v = 1; v < n; ++v) {
    b.add_edge((v - 1) / arity, v);
  }
  return std::move(b).build();
}

Graph make_barbell(std::uint32_t k, std::uint32_t path_len) {
  require(k >= 2, "make_barbell: need clique size >= 2");
  GraphBuilder b;
  std::vector<NodeId> left(k), right(k);
  for (auto& v : left) v = b.add_node();
  for (auto& v : right) v = b.add_node();
  b.add_clique(left);
  b.add_clique(right);
  // Gateways are left[0] and right[0]; path_len edges between them means
  // path_len - 1 intermediate vertices.
  if (path_len == 0) {
    b.add_edge(left[0], right[0]);
  } else {
    b.add_path_between(left[0], right[0], path_len - 1);
  }
  return std::move(b).build();
}

Graph make_connected_er(std::uint32_t n, double p, Rng& rng) {
  require(n >= 1, "make_connected_er: need n >= 1");
  GraphBuilder b(n);
  // Uniform random labelled spanning tree is overkill; a random attachment
  // tree (each vertex links to a uniform earlier vertex after a random
  // relabelling) suffices to guarantee connectivity without biasing p.
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  for (std::uint32_t i = 1; i < n; ++i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    b.add_edge(perm[i], perm[j]);
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

Graph make_random_with_diameter(std::uint32_t n, std::uint32_t d, Rng& rng) {
  require(d >= 2, "make_random_with_diameter: need diameter >= 2");
  require(n >= d + 1, "make_random_with_diameter: need n >= d+1");
  GraphBuilder b(n);
  // Backbone path 0..d.
  for (std::uint32_t i = 0; i < d; ++i) b.add_edge(i, i + 1);
  // Extras attach to interior positions only (1..d-1): an extra at
  // position p has distance p+1 <= d to endpoint 0 and d-p+1 <= d to
  // endpoint d, and two extras are within (d-2)+2 = d of each other, so the
  // diameter remains exactly d (endpoints 0 and d realize it).
  std::vector<std::uint32_t> position(n, 0);
  std::vector<NodeId> at_position_prev(d + 1, kInvalidNode);
  for (std::uint32_t v = d + 1; v < n; ++v) {
    const auto p =
        static_cast<std::uint32_t>(rng.next_in(1, static_cast<std::int64_t>(d) - 1));
    position[v] = p;
    b.add_edge(v, p);
    // Occasional sibling edge between consecutive extras at one position;
    // same-position edges cannot shorten backbone distances.
    if (at_position_prev[p] != kInvalidNode && rng.next_bool(0.3)) {
      b.add_edge(v, at_position_prev[p]);
    }
    at_position_prev[p] = v;
  }
  return std::move(b).build();
}

Graph make_hypercube(std::uint32_t dims) {
  require(dims >= 1 && dims <= 20, "make_hypercube: dims must be in [1,20]");
  const std::uint32_t n = 1u << dims;
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::uint64_t>(n) * dims / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dims; ++bit) {
      const std::uint32_t w = v ^ (1u << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return std::move(b).build();
}

Graph make_random_regular(std::uint32_t n, std::uint32_t d, Rng& rng) {
  require(d >= 2, "make_random_regular: need d >= 2");
  require(n >= d + 1, "make_random_regular: need n >= d+1");
  GraphBuilder b(n);
  // Hamiltonian cycle guarantees connectivity and degree >= 2 ...
  for (std::uint32_t i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  // ... then a configuration-model pass adds the remaining d-2 stubs per
  // vertex; collisions are simply dropped (degrees d or slightly less).
  std::vector<NodeId> stubs;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t j = 2; j < d; ++j) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) b.add_edge(stubs[i], stubs[i + 1]);
  }
  return std::move(b).build();
}

Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m,
                                   Rng& rng) {
  require(m >= 1, "make_preferential_attachment: need m >= 1");
  require(n >= m + 1, "make_preferential_attachment: need n >= m+1");
  GraphBuilder b(n);
  b.reserve_edges(static_cast<std::uint64_t>(n) * m);
  // Degree-proportional sampling via the endpoint-list trick: every edge
  // contributes both endpoints, so a uniform pick is degree-weighted.
  std::vector<NodeId> endpoints;
  for (std::uint32_t v = 1; v <= m; ++v) {
    b.add_edge(v - 1, v);  // seed path so early picks are well-defined
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }
  for (std::uint32_t v = m + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    for (std::uint32_t e = 0; e < m; ++e) {
      const NodeId t = endpoints[rng.next_below(endpoints.size())];
      if (t != v &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    if (targets.empty()) targets.push_back(v - 1);
    for (NodeId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(b).build();
}

Graph make_two_clusters(std::uint32_t k, std::uint32_t bridges, Rng& rng) {
  require(k >= 4, "make_two_clusters: need cluster size >= 4");
  require(bridges >= 1, "make_two_clusters: need at least one bridge");
  auto left = make_random_regular(k, 4, rng);
  auto right = make_random_regular(k, 4, rng);
  GraphBuilder b(2 * k);
  for (const auto& [u, v] : left.edges()) b.add_edge(u, v);
  for (const auto& [u, v] : right.edges()) b.add_edge(k + u, k + v);
  for (std::uint32_t i = 0; i < bridges; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(k)),
               static_cast<NodeId>(k + rng.next_below(k)));
  }
  return std::move(b).build();
}

Graph make_caterpillar(std::uint32_t n, std::uint32_t spine) {
  require(spine >= 2, "make_caterpillar: need spine >= 2");
  require(n >= spine, "make_caterpillar: need n >= spine");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  for (std::uint32_t v = spine; v < n; ++v) {
    // Spread legs evenly along the interior of the spine.
    const std::uint32_t slot =
        spine <= 2 ? 0 : 1 + (v - spine) % (spine - 2);
    b.add_edge(v, slot);
  }
  return std::move(b).build();
}

}  // namespace qc::graph
