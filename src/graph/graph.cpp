#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace qc::graph {

namespace {

/// Heap backing for the owning flavor of Graph; Graph itself only holds a
/// type-erased shared_ptr to it plus raw pointers into the vectors.
struct OwnedCsr {
  std::vector<std::uint32_t> offsets;
  std::vector<NodeId> neighbors;
};

/// Full CSR contract check, shared by every adoption path (owned vectors
/// and zero-copy views over untrusted file payloads alike). O(n + m log Δ)
/// with no allocation — error messages are literals so the hot loop never
/// builds a string on success.
void validate_csr(std::uint32_t n, const std::uint32_t* off,
                  const NodeId* nbr, std::uint64_t arcs) {
  require(off != nullptr, "Graph CSR: offsets array is null");
  require(arcs == 0 || nbr != nullptr, "Graph CSR: neighbors array is null");
  require(off[0] == 0, "Graph CSR: offsets must start at 0");
  for (std::uint32_t v = 0; v < n; ++v) {
    require(off[v + 1] >= off[v], "Graph CSR: offsets must be nondecreasing");
  }
  require(off[n] == arcs, "Graph CSR: offsets[n] != neighbor count");
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t i = off[v]; i < off[v + 1]; ++i) {
      const NodeId w = nbr[i];
      require(w < n, "Graph CSR: neighbor id out of range");
      require(w != v, "Graph CSR: self-loops are not allowed");
      require(i == off[v] || nbr[i - 1] < w,
              "Graph CSR: adjacency must be sorted and duplicate-free");
    }
  }
  // Symmetry: every arc (v,w) needs its reverse (w,v). Binary search keeps
  // this O(m log Δ); checking only v<w halves the searches (the reverse
  // direction is implied by the arc-count equality checked above).
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t i = off[v]; i < off[v + 1]; ++i) {
      const NodeId w = nbr[i];
      if (v < w) {
        require(std::binary_search(nbr + off[w], nbr + off[w + 1], v),
                "Graph CSR: adjacency is not symmetric");
      }
    }
  }
}

}  // namespace

Graph Graph::from_edges(std::uint32_t n, std::span<const Edge> edges) {
  return from_edges(n, std::vector<Edge>(edges.begin(), edges.end()));
}

Graph Graph::from_edges(std::uint32_t n, std::vector<Edge>&& edges) {
  for (auto& [u, v] : edges) {
    require(u < n && v < n, "Graph::from_edges: endpoint out of range");
    require(u != v, "Graph::from_edges: self-loops are not allowed");
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  OwnedCsr csr;
  csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++csr.offsets[u + 1];
    ++csr.offsets[v + 1];
  }
  std::partial_sum(csr.offsets.begin(), csr.offsets.end(),
                   csr.offsets.begin());
  csr.neighbors.resize(csr.offsets[n]);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    csr.neighbors[cursor[u]++] = v;
    csr.neighbors[cursor[v]++] = u;
  }
  // Both passes append in (u,v)-sorted edge order, so each adjacency list
  // receives its smaller partners first and each side in increasing order:
  // the lists come out sorted without a per-vertex sort. Keep a cheap
  // linear cross-check so the invariant can never rot silently.
  for (std::uint32_t v = 0; v < n; ++v) {
    check_internal(std::is_sorted(csr.neighbors.begin() + csr.offsets[v],
                                  csr.neighbors.begin() + csr.offsets[v + 1]),
                   "Graph::from_edges: adjacency came out unsorted");
  }

  Graph g;
  auto holder = std::make_shared<OwnedCsr>(std::move(csr));
  g.offsets_ = holder->offsets.data();
  g.neighbors_ = holder->neighbors.data();
  g.n_ = n;
  g.storage_ = std::move(holder);
  return g;
}

Graph Graph::from_csr(std::vector<std::uint32_t> offsets,
                      std::vector<NodeId> neighbors) {
  require(!offsets.empty(), "Graph::from_csr: offsets must have n+1 entries");
  const auto n = static_cast<std::uint32_t>(offsets.size() - 1);
  validate_csr(n, offsets.data(), neighbors.data(), neighbors.size());

  Graph g;
  auto holder = std::make_shared<OwnedCsr>(
      OwnedCsr{std::move(offsets), std::move(neighbors)});
  g.offsets_ = holder->offsets.data();
  g.neighbors_ = holder->neighbors.data();
  g.n_ = n;
  g.storage_ = std::move(holder);
  return g;
}

Graph Graph::from_csr_view(std::uint32_t n, const std::uint32_t* offsets,
                           const NodeId* neighbors, std::uint64_t arcs,
                           std::shared_ptr<const void> keep_alive) {
  // `arcs` must come from the caller, never from offsets[n]: for a view
  // over an untrusted file payload, deriving it from the offsets array
  // would turn validate_csr's bounds check into a tautology and let a
  // crafted offsets[n] walk neighbors past the mapped region.
  validate_csr(n, offsets, neighbors, arcs);
  Graph g;
  g.offsets_ = offsets;
  g.neighbors_ = neighbors;
  g.n_ = n;
  g.view_ = true;
  g.storage_ = std::move(keep_alive);
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  require(u < n() && v < n(), "Graph::has_edge: node out of range");
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::is_connected() const {
  if (n() == 0) return true;
  std::vector<bool> seen(n(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint32_t count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n();
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << n() << ", m=" << m() << ")";
  return os.str();
}

void GraphBuilder::reserve_nodes(std::uint32_t n) { n_ = std::max(n_, n); }

void GraphBuilder::reserve_edges(std::uint64_t m) {
  edges_.reserve(static_cast<std::size_t>(m));
}

NodeId GraphBuilder::add_node() { return n_++; }

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  require(u != v, "GraphBuilder::add_edge: self-loops are not allowed");
  reserve_nodes(std::max(u, v) + 1);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_clique(std::span<const NodeId> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      add_edge(nodes[i], nodes[j]);
    }
  }
}

void GraphBuilder::add_star(NodeId center, std::span<const NodeId> leaves) {
  for (NodeId leaf : leaves) add_edge(center, leaf);
}

std::vector<NodeId> GraphBuilder::add_path_between(NodeId u, NodeId v,
                                                   std::uint32_t length) {
  std::vector<NodeId> inner;
  inner.reserve(length);
  NodeId prev = u;
  for (std::uint32_t i = 0; i < length; ++i) {
    const NodeId w = add_node();
    add_edge(prev, w);
    inner.push_back(w);
    prev = w;
  }
  add_edge(prev, v);
  return inner;
}

Graph GraphBuilder::build() const& { return Graph::from_edges(n_, edges_); }

Graph GraphBuilder::build() && {
  return Graph::from_edges(n_, std::move(edges_));
}

}  // namespace qc::graph
