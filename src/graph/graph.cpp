#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace qc::graph {

Graph Graph::from_edges(std::uint32_t n, std::span<const Edge> edges) {
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    require(u < n && v < n, "Graph::from_edges: endpoint out of range");
    require(u != v, "Graph::from_edges: self-loops are not allowed");
    canon.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  Graph g;
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : canon) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  g.neighbors_.resize(g.offsets_[n]);
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : canon) {
    g.neighbors_[cursor[u]++] = v;
    g.neighbors_[cursor[v]++] = u;
  }
  // Sorted input edge list plus two passes keeps each adjacency list sorted
  // for the u side but not necessarily the v side; sort to be safe.
  for (std::uint32_t v = 0; v < n; ++v) {
    std::sort(g.neighbors_.begin() + g.offsets_[v],
              g.neighbors_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  require(u < n() && v < n(), "Graph::has_edge: node out of range");
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::is_connected() const {
  if (n() == 0) return true;
  std::vector<bool> seen(n(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint32_t count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n();
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << n() << ", m=" << m() << ")";
  return os.str();
}

void GraphBuilder::reserve_nodes(std::uint32_t n) { n_ = std::max(n_, n); }

NodeId GraphBuilder::add_node() { return n_++; }

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  require(u != v, "GraphBuilder::add_edge: self-loops are not allowed");
  reserve_nodes(std::max(u, v) + 1);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_clique(std::span<const NodeId> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      add_edge(nodes[i], nodes[j]);
    }
  }
}

void GraphBuilder::add_star(NodeId center, std::span<const NodeId> leaves) {
  for (NodeId leaf : leaves) add_edge(center, leaf);
}

std::vector<NodeId> GraphBuilder::add_path_between(NodeId u, NodeId v,
                                                   std::uint32_t length) {
  std::vector<NodeId> inner;
  inner.reserve(length);
  NodeId prev = u;
  for (std::uint32_t i = 0; i < length; ++i) {
    const NodeId w = add_node();
    add_edge(prev, w);
    inner.push_back(w);
    prev = w;
  }
  add_edge(prev, v);
  return inner;
}

Graph GraphBuilder::build() const { return Graph::from_edges(n_, edges_); }

}  // namespace qc::graph
