#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qc::graph {

/// Deterministic topology families used by tests, examples and benchmarks.
/// All generators produce connected graphs.

/// Path v0 - v1 - ... - v_{n-1}; diameter n-1.
Graph make_path(std::uint32_t n);

/// Cycle on n >= 3 vertices; diameter floor(n/2).
Graph make_cycle(std::uint32_t n);

/// Star with center 0; diameter 2 (for n >= 3).
Graph make_star(std::uint32_t n);

/// Complete graph; diameter 1 (for n >= 2).
Graph make_complete(std::uint32_t n);

/// rows x cols grid; diameter rows+cols-2.
Graph make_grid(std::uint32_t rows, std::uint32_t cols);

/// rows x cols torus (wrap-around grid); requires rows, cols >= 3.
Graph make_torus(std::uint32_t rows, std::uint32_t cols);

/// Complete `arity`-ary tree with n vertices (root 0, level order).
Graph make_balanced_tree(std::uint32_t n, std::uint32_t arity);

/// Two k-cliques joined by a path of `path_len` edges between designated
/// gateway vertices; diameter path_len + 2 (for k >= 2). A classic
/// "hard for diameter" shape: most mass far from the long path.
Graph make_barbell(std::uint32_t k, std::uint32_t path_len);

/// Connected Erdos-Renyi-style graph: a uniform random spanning tree plus
/// each non-tree edge independently with probability p.
Graph make_connected_er(std::uint32_t n, double p, Rng& rng);

/// Random connected graph with *exactly* the requested diameter.
///
/// Construction: a backbone path v0..vD realizes the diameter; the
/// remaining n-D-1 vertices attach to uniformly random interior backbone
/// positions (each by a single edge, so no backbone shortcut can appear),
/// with occasional sibling edges between vertices on the same position for
/// local richness. Requires n >= D+1 and D >= 2.
///
/// This is the main workload family of the benchmark harness: it decouples
/// n from D, which is exactly the knob Table 1's bounds (O(n) vs O(sqrt(nD)))
/// are about.
Graph make_random_with_diameter(std::uint32_t n, std::uint32_t d, Rng& rng);

/// Caterpillar: a backbone path of `spine` vertices, with leg leaves spread
/// evenly until n vertices total. Diameter close to spine+1.
Graph make_caterpillar(std::uint32_t n, std::uint32_t spine);

/// Hypercube on 2^dims vertices; diameter = dims, degree = dims.
Graph make_hypercube(std::uint32_t dims);

/// Random d-regular-ish graph via the configuration model with retry
/// (self-loops/duplicates dropped and patched by a Hamiltonian cycle, so
/// degrees are d or d±1 and the graph is connected). Expander-like:
/// diameter O(log n / log d). Requires d >= 2 and n >= d+1.
Graph make_random_regular(std::uint32_t n, std::uint32_t d, Rng& rng);

/// Preferential-attachment tree-plus (Barabasi-Albert flavor): each new
/// vertex attaches `m` edges to existing vertices sampled by degree.
/// Connected, heavy-tailed degrees, small diameter. Requires m >= 1.
Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m,
                                   Rng& rng);

/// Two expander-ish clusters of size k joined by `bridges` random edges —
/// a "community" topology with small diameter but a sparse cut, the shape
/// that separates diameter from congestion.
Graph make_two_clusters(std::uint32_t k, std::uint32_t bridges, Rng& rng);

}  // namespace qc::graph
