#include "graph/ecc_engine.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace qc::graph {

namespace {

// Below this size the sweep is cheaper than spawning workers.
constexpr std::uint32_t kParallelCutoff = 256;

// kAuto kernel choice: bit-parallel once a sweep spans several 64-source
// batches; below that the flat kernel's simpler per-level loop wins.
constexpr std::uint32_t kBitParallelCutoff = 256;

constexpr std::uint32_t kBatch = 64;

}  // namespace

EccEngine::EccEngine(Graph g, const EccOptions& opts)
    : g_(std::move(g)), opts_(opts) {
  require(g_.n() > 0, "EccEngine: empty graph");
  if (opts_.num_threads == 0) {
    opts_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
}

void EccEngine::sweep_flat(std::vector<std::uint32_t>& table) const {
  const std::uint32_t n = g_.n();
  const auto workers = std::min<std::uint32_t>(opts_.num_threads, n);
  if (n < kParallelCutoff || workers <= 1) {
    BfsScratch scratch;
    for (NodeId v = 0; v < n; ++v) {
      table[v] = flat_bfs_distances(g_, v, scratch);
    }
    bfs_runs_.fetch_add(n, std::memory_order_relaxed);
  } else {
    ThreadPool pool(workers);
    std::atomic<NodeId> next{0};
    for (std::uint32_t w = 0; w < workers; ++w) {
      pool.submit([this, &next, &table, n] {
        BfsScratch scratch;
        for (;;) {
          const NodeId v = next.fetch_add(1);
          if (v >= n) return;
          table[v] = flat_bfs_distances(g_, v, scratch);
          bfs_runs_.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    pool.wait_idle();
  }
}

void EccEngine::sweep_bit_parallel(std::vector<std::uint32_t>& table) const {
  const std::uint32_t n = g_.n();
  const std::uint32_t batches = (n + kBatch - 1) / kBatch;
  // Batches write disjoint table ranges, so workers never race; the
  // atomic batch counter is the only shared mutable state.
  const auto run_batch = [this, &table, n](std::uint32_t b,
                                           MultiBfsScratch& scratch) {
    NodeId ids[kBatch];
    const NodeId first = b * kBatch;
    const std::uint32_t k = std::min(kBatch, n - first);
    for (std::uint32_t i = 0; i < k; ++i) ids[i] = first + i;
    multi_source_eccentricities(g_, std::span<const NodeId>(ids, k),
                                table.data() + first, scratch);
    bfs_runs_.fetch_add(k, std::memory_order_relaxed);
  };
  const auto workers = std::min<std::uint32_t>(opts_.num_threads, batches);
  if (n < kParallelCutoff || workers <= 1) {
    MultiBfsScratch scratch;
    for (std::uint32_t b = 0; b < batches; ++b) run_batch(b, scratch);
  } else {
    ThreadPool pool(workers);
    std::atomic<std::uint32_t> next{0};
    for (std::uint32_t w = 0; w < workers; ++w) {
      pool.submit([&next, &run_batch, batches] {
        MultiBfsScratch scratch;
        for (;;) {
          const std::uint32_t b = next.fetch_add(1);
          if (b >= batches) return;
          run_batch(b, scratch);
        }
      });
    }
    pool.wait_idle();
  }
}

void EccEngine::ensure_all() const {
  std::call_once(computed_, [this] {
    metrics::ScopedTimer span("graph.ecc_sweep");
    const std::uint32_t n = g_.n();
    auto table = std::make_shared<std::vector<std::uint32_t>>(n);
    EccKernel kernel = opts_.kernel;
    if (kernel == EccKernel::kAuto) {
      kernel = n >= kBitParallelCutoff ? EccKernel::kBitParallel
                                       : EccKernel::kFlat;
    }
    if (kernel == EccKernel::kBitParallel) {
      sweep_bit_parallel(*table);
    } else {
      sweep_flat(*table);
    }
    ecc_ = std::move(table);
    metrics::count("graph.reference_bfs_runs",
                   bfs_runs_.load(std::memory_order_relaxed));
  });
}

std::uint32_t EccEngine::eccentricity(NodeId v) const {
  require(v < g_.n(), "EccEngine::eccentricity: node out of range");
  ensure_all();
  return (*ecc_)[v];
}

const std::vector<std::uint32_t>& EccEngine::all() const {
  ensure_all();
  return *ecc_;
}

std::uint32_t EccEngine::diameter() const {
  const auto& e = all();
  return *std::max_element(e.begin(), e.end());
}

std::uint32_t EccEngine::radius() const {
  const auto& e = all();
  return *std::min_element(e.begin(), e.end());
}

NodeId EccEngine::center() const {
  const auto& e = all();
  return static_cast<NodeId>(std::min_element(e.begin(), e.end()) - e.begin());
}

EccEngine::SegmentMax EccEngine::segment_max(const DfsNumbering& num) const {
  ensure_all();
  SegmentMax sm;
  sm.tau_ = num.tau;
  sm.in_walk_ = num.in_walk;
  sm.ecc_ = ecc_;  // shared: sm may outlive this engine
  sm.len_ = num.walk_length();
  const std::uint32_t len = sm.len_;
  if (len == 0) return sm;  // single-vertex walk: queries read ecc_[u]

  // Sparse table over the per-position values ecc(walk[t]), t in
  // [0, len): position len duplicates position 0 (the walk is closed) and
  // the circular window arithmetic below never indexes it.
  sm.log2_.assign(len + 1, 0);
  for (std::uint32_t i = 2; i <= len; ++i) sm.log2_[i] = sm.log2_[i / 2] + 1;
  const std::uint32_t levels = sm.log2_[len] + 1;
  sm.table_.resize(levels);
  sm.table_[0].resize(len);
  for (std::uint32_t t = 0; t < len; ++t) {
    sm.table_[0][t] = (*ecc_)[num.walk[t]];
  }
  for (std::uint32_t k = 1; k < levels; ++k) {
    const std::uint32_t half = 1u << (k - 1);
    const std::uint32_t span = 1u << k;
    sm.table_[k].resize(len - span + 1);
    for (std::uint32_t t = 0; t + span <= len; ++t) {
      sm.table_[k][t] =
          std::max(sm.table_[k - 1][t], sm.table_[k - 1][t + half]);
    }
  }
  return sm;
}

std::uint32_t EccEngine::SegmentMax::range_max(std::uint32_t lo,
                                               std::uint32_t hi) const {
  const std::uint32_t k = log2_[hi - lo + 1];
  return std::max(table_[k][lo], table_[k][hi + 1 - (1u << k)]);
}

std::uint32_t EccEngine::SegmentMax::max_ecc_in_segment(
    NodeId u, std::uint32_t steps) const {
  require(u < tau_.size() && in_walk_[u],
          "SegmentMax: u is not on the traversal");
  if (len_ == 0) return (*ecc_)[u];
  const std::uint32_t start = tau_[u];
  const std::uint32_t moves = std::min(steps, len_);
  if (moves == len_) return range_max(0, len_ - 1);
  const std::uint32_t end = start + moves;  // inclusive final position
  if (end < len_) return range_max(start, end);
  // The window wraps: positions [start, len) then [0, end - len].
  return std::max(range_max(start, len_ - 1), range_max(0, end - len_));
}

}  // namespace qc::graph
