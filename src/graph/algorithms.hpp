#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace qc::graph {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Result of a breadth-first search from a root.
struct BfsResult {
  NodeId root = kInvalidNode;
  std::vector<std::uint32_t> dist;  ///< dist[v], kUnreachable if disconnected
  std::vector<NodeId> parent;       ///< BFS-tree parent, kInvalidNode at root
  std::uint32_t ecc = 0;            ///< max finite distance from root
};

/// BFS from `root`. Ties in parent choice go to the smallest-id neighbor,
/// matching the deterministic tie-break used by the distributed BFS of
/// Figure 1 (so centralized and CONGEST executions build the same tree).
BfsResult bfs(const Graph& g, NodeId root);

/// Eccentricity of `v`: max distance to any vertex, or kUnreachable when
/// some vertex is unreachable from `v` (disconnected graph). The
/// component-local maximum is available as BfsResult::ecc.
std::uint32_t eccentricity(const Graph& g, NodeId v);

/// Exact diameter by n BFS runs. Requires a connected graph.
std::uint32_t diameter(const Graph& g);

/// All eccentricities (indexed by vertex). Requires a connected graph.
std::vector<std::uint32_t> all_eccentricities(const Graph& g);

/// Exact radius (minimum eccentricity). Requires a connected graph.
std::uint32_t radius(const Graph& g);

/// A center vertex (minimum eccentricity, smallest id on ties).
NodeId center(const Graph& g);

/// Exact girth (length of a shortest cycle), or kUnreachable for forests.
/// Reference implementation by edge deletion: for every edge {u,v}, the
/// shortest cycle through it has length d_{G-e}(u,v) + 1. O(m) BFS runs.
std::uint32_t girth(const Graph& g);

/// All-pairs shortest-path distances (n x n), kUnreachable where applicable.
std::vector<std::vector<std::uint32_t>> apsp(const Graph& g);

/// Largest distance between a vertex in `us` and a vertex in `vs`; this is
/// the Δ(G) of Section 5 when `us`/`vs` are the two sides of a bipartition.
std::uint32_t max_cross_distance(const Graph& g, std::span<const NodeId> us,
                                 std::span<const NodeId> vs);

/// A rooted BFS tree with explicit child lists (children sorted by id).
struct BfsTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;                  ///< kInvalidNode at root
  std::vector<std::uint32_t> depth;            ///< = distance to root
  std::vector<std::vector<NodeId>> children;   ///< sorted by id
  std::uint32_t height = 0;                    ///< = ecc(root)

  std::uint32_t n() const { return static_cast<std::uint32_t>(parent.size()); }
};

/// Builds the BFS tree from `root` (same tie-break as bfs()).
BfsTree bfs_tree(const Graph& g, NodeId root);

/// DFS-numbering of a BFS tree, Definition 1 of the paper.
///
/// A depth-first traversal of the tree is a closed walk from the root using
/// tree edges (an Euler tour with 2(n-1) moves). tau[v] is the time step at
/// which the walk first reaches v; tau[root] = 0. `walk[t]` is the vertex
/// occupied after t moves, with walk.size() == 2(n-1)+1 and
/// walk.front() == walk.back() == root.
///
/// Children are visited in increasing id order so that the centralized
/// numbering matches the distributed DFS-token traversal exactly.
struct DfsNumbering {
  std::vector<std::uint32_t> tau;
  std::vector<NodeId> walk;
  std::vector<bool> in_walk;  ///< vertices the traversal actually reaches

  /// Length of the full closed walk (2(k-1) for a k-vertex (sub)tree).
  std::uint32_t walk_length() const {
    return static_cast<std::uint32_t>(walk.size()) - 1;
  }
};

DfsNumbering dfs_numbering(const BfsTree& tree);

/// Restriction of `tree` to the vertices with keep[v] == true. The kept set
/// must contain the root and be ancestor-closed (if v is kept, so is its
/// parent); this is exactly the shape of the set R of Figure 3, the s
/// closest vertices to w in BFS(w). Dropped vertices get empty child lists
/// and are never reached by dfs_numbering of the returned tree.
BfsTree induced_subtree(const BfsTree& tree, const std::vector<bool>& keep);

/// The set S(u) of Definition 2: all v whose tau lies in the cyclic window
/// [tau(u), tau(u)+width] taken modulo `modulus` (the paper uses width = 2d
/// and modulus = 2n). Returned sorted by id.
std::vector<NodeId> window_set(const DfsNumbering& num, NodeId u,
                               std::uint32_t width, std::uint32_t modulus);

/// The set S actually computed by Figure 2 Step 1: the nodes visited by a
/// `steps`-move segment of the (circular) Euler tour starting at u's first
/// visit, with tau'(v) = the segment position of v's first visit.
///
/// This is a *superset* of Definition 2's S(u): a bottom-up move can revisit
/// a node whose global tau lies before tau(u) (e.g. u's ancestors), and the
/// wrap-around re-enters the tour from the leader. Lemma 2's claim
/// "S = S(u0)" implicitly ignores those revisits; the algorithm is correct
/// either way (every member's eccentricity is still a true eccentricity and
/// the coverage bound of Lemma 1 only improves), and the scheduling bound
/// d(v,w) <= tau'(w) - tau'(v) holds for *any* walk. We therefore use the
/// segment semantics as the ground truth that the distributed Evaluation
/// procedure must reproduce exactly.
struct SegmentWindow {
  std::vector<NodeId> members;           ///< sorted by id
  std::vector<std::int64_t> tau_prime;   ///< per node; -1 if not visited
};

SegmentWindow segment_window(const DfsNumbering& num, NodeId u,
                             std::uint32_t steps);

/// max_{v in S} ecc(v) for the Figure 2 segment window: the objective f(u)
/// of Equation (2) as the distributed procedure actually evaluates it.
///
/// Naive reference implementation (one BFS per window member, Theta(d) BFS
/// per call) kept as the ground truth the fast path is tested against; hot
/// callers (the branch oracle, the bench harness) use
/// EccEngine::SegmentMax, which answers the same query in O(1) after a
/// one-time O(n*BFS + len*log(len)) build (see graph/ecc_engine.hpp).
std::uint32_t max_ecc_in_segment(const Graph& g, const DfsNumbering& num,
                                 NodeId u, std::uint32_t steps);

}  // namespace qc::graph
