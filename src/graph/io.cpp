#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/import.hpp"
#include "graph/qcg.hpp"
#include "graph/text_parse.hpp"
#include "util/error.hpp"

namespace qc::graph {

namespace {

/// Error strings carry the line number, but they must only be built on the
/// failure path — a `require(cond, "..." + to_string(lineno))` call site
/// would allocate the message per line, which is exactly the O(m)
/// allocation behavior this parser exists to avoid.
[[noreturn]] void fail_at_line(const char* what, std::size_t lineno) {
  throw InvalidArgumentError("read_edge_list: " + std::string(what) +
                             " on line " + std::to_string(lineno));
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  bool have_n = false;
  std::uint32_t n = 0;
  std::vector<Edge> edges;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const char* p = line.data();
    const char* end = p + line.size();
    p = detail::skip_ws(p, end);
    if (p == end || *p == '#') continue;
    if (!have_n) {
      std::uint64_t count = 0;
      if (!detail::parse_u64(p, end, count) || count > 0xFFFFFFFFull) {
        fail_at_line("expected vertex count", lineno);
      }
      n = static_cast<std::uint32_t>(count);
      have_n = true;
      // Capacity up front: sparse graphs dominate, so a 4n-edge guess
      // (capped so a huge header cannot balloon memory) removes nearly
      // all growth reallocations on the import hot path.
      edges.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(4 * static_cast<std::uint64_t>(n) + 16,
                                  1ull << 24)));
      continue;
    }
    std::uint64_t u = 0, v = 0;
    if (!detail::parse_u64(p, end, u) || !detail::parse_u64(p, end, v)) {
      fail_at_line("expected 'u v'", lineno);
    }
    if (u >= n || v >= n) fail_at_line("vertex id out of range", lineno);
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  require(have_n, "read_edge_list: empty input");
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g,
                     const std::string& comment) {
  if (!comment.empty()) out << "# " << comment << "\n";
  out << "# " << g.describe() << "\n" << g.n() << "\n";
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << "\n";
}

void write_edge_list_file(const std::string& path, const Graph& g,
                          const std::string& comment) {
  std::ofstream out(path);
  require(out.good(), "write_edge_list_file: cannot open " + path);
  write_edge_list(out, g, comment);
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

std::uint64_t arg_int(const std::vector<std::string>& parts, std::size_t i,
                      const std::string& spec) {
  require(i < parts.size(), "make_from_spec: missing argument in '" + spec +
                                "'\n" + spec_help());
  return std::strtoull(parts[i].c_str(), nullptr, 10);
}

double arg_double(const std::vector<std::string>& parts, std::size_t i,
                  const std::string& spec) {
  require(i < parts.size(), "make_from_spec: missing argument in '" + spec +
                                "'\n" + spec_help());
  return std::strtod(parts[i].c_str(), nullptr);
}

std::uint64_t opt_seed(const std::vector<std::string>& parts, std::size_t i) {
  return i < parts.size() ? std::strtoull(parts[i].c_str(), nullptr, 10)
                          : 12345;
}

}  // namespace

Graph make_from_spec(const std::string& spec) {
  const auto p = split(spec, ':');
  const std::string& fam = p[0];
  auto u32 = [&](std::size_t i) {
    return static_cast<std::uint32_t>(arg_int(p, i, spec));
  };
  if (fam == "path") return make_path(u32(1));
  if (fam == "cycle") return make_cycle(u32(1));
  if (fam == "star") return make_star(u32(1));
  if (fam == "complete") return make_complete(u32(1));
  if (fam == "grid") return make_grid(u32(1), u32(2));
  if (fam == "torus") return make_torus(u32(1), u32(2));
  if (fam == "tree") return make_balanced_tree(u32(1), u32(2));
  if (fam == "hypercube") return make_hypercube(u32(1));
  if (fam == "barbell") return make_barbell(u32(1), u32(2));
  if (fam == "caterpillar") return make_caterpillar(u32(1), u32(2));
  if (fam == "er") {
    Rng rng(opt_seed(p, 3));
    return make_connected_er(u32(1), arg_double(p, 2, spec), rng);
  }
  if (fam == "regular") {
    Rng rng(opt_seed(p, 3));
    return make_random_regular(u32(1), u32(2), rng);
  }
  if (fam == "pa") {
    Rng rng(opt_seed(p, 3));
    return make_preferential_attachment(u32(1), u32(2), rng);
  }
  if (fam == "clusters") {
    Rng rng(opt_seed(p, 3));
    return make_two_clusters(u32(1), u32(2), rng);
  }
  if (fam == "diam") {
    Rng rng(opt_seed(p, 3));
    return make_random_with_diameter(u32(1), u32(2), rng);
  }
  throw InvalidArgumentError("make_from_spec: unknown family '" + fam +
                             "'\n" + spec_help());
}

Graph load_graph_file(const std::string& path, std::string* format_out) {
  if (is_qcg_file(path)) {
    if (format_out != nullptr) *format_out = "qcg";
    return read_qcg_file(path);
  }
  // Text flavors: peek at the first data line. A native file leads with a
  // lone vertex-count token; a SNAP-style raw edge list starts straight in
  // with "u v" pairs.
  std::ifstream probe(path);
  require(probe.good(), "load_graph_file: cannot open " + path);
  std::string line;
  bool snap = false;
  while (std::getline(probe, line)) {
    const char* p = line.data();
    const char* end = p + line.size();
    p = detail::skip_ws(p, end);
    if (p == end || *p == '#' || *p == '%') continue;
    std::uint64_t first = 0;
    require(detail::parse_u64(p, end, first),
            "load_graph_file: unrecognized graph format in " + path);
    std::uint64_t second = 0;
    snap = detail::parse_u64(p, end, second);
    break;
  }
  probe.close();
  if (snap) {
    if (format_out != nullptr) *format_out = "snap";
    return import_edge_list_file(path).graph;
  }
  if (format_out != nullptr) *format_out = "edge-list";
  return read_edge_list_file(path);
}

std::string spec_help() {
  return "generator specs (family:args[:seed]):\n"
         "  path:N cycle:N star:N complete:N hypercube:DIMS\n"
         "  grid:R:C torus:R:C tree:N:ARITY barbell:K:LEN\n"
         "  caterpillar:N:SPINE er:N:P[:seed] regular:N:D[:seed]\n"
         "  pa:N:M[:seed] clusters:K:BRIDGES[:seed] diam:N:D[:seed]";
}

}  // namespace qc::graph
