#include "graph/import.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <utility>

#include "graph/text_parse.hpp"
#include "util/error.hpp"

namespace qc::graph {

namespace {

[[noreturn]] void fail_at_line(const char* what, std::size_t lineno) {
  throw InvalidArgumentError("import_edge_list: " + std::string(what) +
                             " on line " + std::to_string(lineno));
}

}  // namespace

ImportedGraph import_edge_list(std::istream& in) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  raw.reserve(1 << 16);
  ImportStats stats;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++stats.lines_total;
    const char* p = line.data();
    const char* end = p + line.size();
    p = detail::skip_ws(p, end);
    if (p == end || *p == '#' || *p == '%') {
      ++stats.comment_lines;
      continue;
    }
    std::uint64_t u = 0, v = 0;
    if (!detail::parse_u64(p, end, u)) {
      fail_at_line("expected an integer vertex id", lineno);
    }
    if (!detail::parse_u64(p, end, v)) {
      fail_at_line("expected a second vertex id", lineno);
    }
    // Anything after the two endpoints (weights, timestamps) is ignored.
    if (u == v) {
      ++stats.self_loops_dropped;
      continue;
    }
    ++stats.edge_lines;
    raw.emplace_back(u, v);
  }
  require(!raw.empty(), "import_edge_list: no edges in input");

  // Compact ids by sorted original value: deterministic regardless of the
  // order edges appear in the file.
  std::vector<std::uint64_t> ids;
  ids.reserve(raw.size() * 2);
  for (const auto& [u, v] : raw) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  require(ids.size() <= 0xFFFFFFFFull,
          "import_edge_list: more than 2^32-1 distinct vertex ids");
  stats.min_raw_id = ids.front();
  stats.max_raw_id = ids.back();
  stats.ids_compacted =
      ids.front() != 0 || ids.back() != ids.size() - 1;

  const auto compact = [&ids](std::uint64_t raw_id) {
    return static_cast<NodeId>(
        std::lower_bound(ids.begin(), ids.end(), raw_id) - ids.begin());
  };
  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [u, v] : raw) {
    edges.push_back({compact(u), compact(v)});
  }
  raw.clear();
  raw.shrink_to_fit();

  const std::uint64_t before = edges.size();
  Graph g = Graph::from_edges(static_cast<std::uint32_t>(ids.size()),
                              std::move(edges));
  stats.duplicates_coalesced = before - g.m();
  return ImportedGraph{std::move(g), std::move(ids), stats};
}

ImportedGraph import_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "import_edge_list_file: cannot open " + path);
  return import_edge_list(in);
}

}  // namespace qc::graph
