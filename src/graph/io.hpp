#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qc::graph {

/// Plain-text edge-list format:
///   # comment lines start with '#'
///   <n>              — first non-comment line: number of vertices
///   <u> <v>          — one undirected edge per line, 0-based ids
///
/// Deliberately minimal and diff-friendly; round-trips through
/// write_edge_list / read_edge_list.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const Graph& g,
                     const std::string& comment = "");
void write_edge_list_file(const std::string& path, const Graph& g,
                          const std::string& comment = "");

/// Loads a graph file of any supported flavor, auto-detected by content
/// (never by extension):
///   - `.qcg` binary container, recognized by its magic bytes,
///   - native edge list (leading vertex-count line, as written by
///     write_edge_list),
///   - SNAP-style raw edge list (two ids on the first data line; imported
///     with id compaction — see graph/import.hpp).
/// `format_out`, when non-null, receives "qcg", "edge-list", or "snap".
Graph load_graph_file(const std::string& path,
                      std::string* format_out = nullptr);

/// Parses a generator spec of the form "family:arg1:arg2[:seed]" and
/// builds the graph. Supported families (see generators.hpp):
///   path:N            cycle:N           star:N         complete:N
///   grid:R:C          torus:R:C         tree:N:ARITY   hypercube:DIMS
///   barbell:K:LEN     caterpillar:N:SPINE
///   er:N:P[:seed]     regular:N:D[:seed]
///   pa:N:M[:seed]     clusters:K:BRIDGES[:seed]
///   diam:N:D[:seed]
/// Throws InvalidArgumentError with a helpful message on bad specs.
Graph make_from_spec(const std::string& spec);

/// Human-readable list of supported spec families (for CLI help).
std::string spec_help();

}  // namespace qc::graph
