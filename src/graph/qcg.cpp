#include "graph/qcg.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <memory>

#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace qc::graph {

namespace qcgdetail {

void varint_append(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

std::uint64_t varint_read(const std::uint8_t* data, std::size_t size,
                          std::size_t& pos) {
  std::uint64_t x = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    require(pos < size, ".qcg: truncated varint");
    const std::uint8_t byte = data[pos++];
    x |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject overlong encodings so every value has exactly one byte
      // representation (needed for deterministic, bit-identical files).
      require(byte != 0 || shift == 0, ".qcg: overlong varint");
      // At shift 63 only bit 0 of the final byte fits in 64 bits; higher
      // payload bits would be silently truncated, so they are an error
      // rather than a second spelling of the same value.
      require(shift < 63 || byte <= 1, ".qcg: varint exceeds 64 bits");
      return x;
    }
  }
  throw InvalidArgumentError(".qcg: varint exceeds 64 bits");
}

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace qcgdetail

namespace {

using qcgdetail::fnv1a;
using qcgdetail::varint_append;
using qcgdetail::varint_read;

constexpr bool kHostLittle = std::endian::native == std::endian::little;

constexpr std::uint64_t pad8(std::uint64_t x) { return (x + 7) & ~7ull; }

void store_le16(std::uint8_t* p, std::uint16_t x) {
  p[0] = static_cast<std::uint8_t>(x);
  p[1] = static_cast<std::uint8_t>(x >> 8);
}

void store_le64(std::uint8_t* p, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(x >> (8 * i));
}

std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return x;
}

struct Header {
  QcgInfo info;
  std::uint64_t offsets_bytes = 0;
  std::uint64_t neighbors_bytes = 0;
};

/// Parses and fully validates the fixed header against the file size, so
/// truncation and header/payload length disagreement fail here with a
/// specific message rather than as a wild read later.
Header parse_header(const std::uint8_t* base, std::uint64_t file_bytes,
                    const std::string& path) {
  require(file_bytes >= kQcgHeaderBytes,
          ".qcg: file shorter than the 64-byte header: " + path);
  require(std::memcmp(base, kQcgMagic, sizeof(kQcgMagic)) == 0,
          ".qcg: bad magic (not a .qcg file): " + path);
  Header h;
  h.info.version = load_le16(base + 8);
  require(h.info.version == kQcgVersion,
          ".qcg: unsupported version in " + path);
  const std::uint8_t enc = base[10];
  require(enc <= static_cast<std::uint8_t>(QcgEncoding::kDeltaVarint),
          ".qcg: unknown encoding in " + path);
  h.info.encoding = static_cast<QcgEncoding>(enc);
  require(base[11] == 0 && load_le32(base + 12) == 0 &&
              load_le64(base + 56) == 0,
          ".qcg: reserved header bytes must be zero in " + path);
  h.info.n = load_le64(base + 16);
  h.info.arcs = load_le64(base + 24);
  h.offsets_bytes = load_le64(base + 32);
  h.neighbors_bytes = load_le64(base + 40);
  h.info.checksum = load_le64(base + 48);
  h.info.file_bytes = file_bytes;
  h.info.payload_bytes = file_bytes - kQcgHeaderBytes;

  require(h.info.n < 0x100000000ull,
          ".qcg: vertex count exceeds 32-bit node ids in " + path);
  require(h.info.arcs <= 0xFFFFFFFFull,
          ".qcg: arc count exceeds 32-bit offsets in " + path);
  require(h.info.arcs % 2 == 0,
          ".qcg: odd arc count (undirected graphs store 2m arcs) in " + path);

  if (h.info.encoding == QcgEncoding::kRawCsr) {
    const std::uint64_t want_offsets = (h.info.n + 1) * 4;
    require(h.offsets_bytes == want_offsets,
            ".qcg: offsets section length disagrees with n in " + path);
    require(h.neighbors_bytes == h.info.arcs * 4,
            ".qcg: neighbors section length disagrees with arc count in " +
                path);
    require(h.info.payload_bytes ==
                pad8(h.offsets_bytes) + h.neighbors_bytes,
            ".qcg: header/payload length mismatch in " + path);
  } else {
    require(h.offsets_bytes == 0,
            ".qcg: varint encoding must have no offsets section in " + path);
    require(h.info.payload_bytes == h.neighbors_bytes,
            ".qcg: header/payload length mismatch in " + path);
  }
  return h;
}

void write_header(std::ofstream& out, const Graph& g, QcgEncoding encoding,
                  std::uint64_t offsets_bytes, std::uint64_t neighbors_bytes,
                  std::uint64_t checksum) {
  std::uint8_t h[kQcgHeaderBytes] = {};
  std::memcpy(h, kQcgMagic, sizeof(kQcgMagic));
  store_le16(h + 8, kQcgVersion);
  h[10] = static_cast<std::uint8_t>(encoding);
  store_le64(h + 16, g.n());
  store_le64(h + 24, 2 * g.m());
  store_le64(h + 32, offsets_bytes);
  store_le64(h + 40, neighbors_bytes);
  store_le64(h + 48, checksum);
  out.write(reinterpret_cast<const char*>(h), sizeof(h));
}

/// Serializes a u32 array as little-endian bytes. On little-endian hosts
/// the in-memory representation is already the wire format, so the caller
/// streams the array directly and this is only the big-endian slow path.
std::vector<std::uint8_t> to_le_bytes(std::span<const std::uint32_t> xs) {
  std::vector<std::uint8_t> out(xs.size() * 4);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[4 * i] = static_cast<std::uint8_t>(xs[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(xs[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(xs[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(xs[i] >> 24);
  }
  return out;
}

void write_raw(std::ofstream& out, const Graph& g) {
  const auto offsets = g.csr_offsets();
  const auto neighbors = g.csr_neighbors();
  const std::uint64_t offsets_bytes = offsets.size_bytes();
  const std::uint64_t neighbors_bytes = neighbors.size_bytes();
  const std::uint64_t padding = pad8(offsets_bytes) - offsets_bytes;
  const std::uint8_t zeros[8] = {};

  const std::uint8_t* off_bytes;
  const std::uint8_t* nbr_bytes;
  std::vector<std::uint8_t> off_swapped, nbr_swapped;
  if constexpr (kHostLittle) {
    off_bytes = reinterpret_cast<const std::uint8_t*>(offsets.data());
    nbr_bytes = reinterpret_cast<const std::uint8_t*>(neighbors.data());
  } else {
    off_swapped = to_le_bytes(offsets);
    nbr_swapped = to_le_bytes(neighbors);
    off_bytes = off_swapped.data();
    nbr_bytes = nbr_swapped.data();
  }

  std::uint64_t checksum = fnv1a(off_bytes, offsets_bytes);
  checksum = fnv1a(zeros, padding, checksum);
  checksum = fnv1a(nbr_bytes, neighbors_bytes, checksum);

  write_header(out, g, QcgEncoding::kRawCsr, offsets_bytes, neighbors_bytes,
               checksum);
  out.write(reinterpret_cast<const char*>(off_bytes),
            static_cast<std::streamsize>(offsets_bytes));
  out.write(reinterpret_cast<const char*>(zeros),
            static_cast<std::streamsize>(padding));
  out.write(reinterpret_cast<const char*>(nbr_bytes),
            static_cast<std::streamsize>(neighbors_bytes));
}

void write_varint(std::ofstream& out, const Graph& g) {
  std::vector<std::uint8_t> buf;
  buf.reserve(static_cast<std::size_t>(2 * g.m()) + g.n() + 16);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    varint_append(buf, nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      // First neighbor absolute, then strictly positive gaps: sorted
      // adjacency makes every delta small, which is where the compression
      // comes from.
      varint_append(buf, i == 0 ? nb[i] : nb[i] - nb[i - 1]);
    }
  }
  write_header(out, g, QcgEncoding::kDeltaVarint, 0, buf.size(),
               fnv1a(buf.data(), buf.size()));
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

Graph decode_raw_owned(const Header& h, const std::uint8_t* payload) {
  // Big-endian host (or any future non-mappable source): decode the LE
  // arrays into owned vectors.
  const auto n = static_cast<std::uint32_t>(h.info.n);
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(n) + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    offsets[i] = load_le32(payload + 4 * i);
  }
  const std::uint8_t* nbr = payload + pad8(h.offsets_bytes);
  std::vector<NodeId> neighbors(static_cast<std::size_t>(h.info.arcs));
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    neighbors[i] = load_le32(nbr + 4 * i);
  }
  return Graph::from_csr(std::move(offsets), std::move(neighbors));
}

Graph decode_varint(const Header& h, const std::uint8_t* payload) {
  const auto n = static_cast<std::uint32_t>(h.info.n);
  const auto arcs = static_cast<std::size_t>(h.info.arcs);
  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> neighbors(arcs);
  std::size_t pos = 0;
  std::size_t k = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t deg = varint_read(payload, h.neighbors_bytes, pos);
    require(deg <= arcs - k, ".qcg: degree sum exceeds the arc count");
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < deg; ++i) {
      const std::uint64_t delta = varint_read(payload, h.neighbors_bytes, pos);
      require(i == 0 || delta >= 1,
              ".qcg: adjacency deltas must be strictly positive");
      prev = i == 0 ? delta : prev + delta;
      require(prev < h.info.n, ".qcg: neighbor id out of range");
      neighbors[k++] = static_cast<NodeId>(prev);
    }
    offsets[v + 1] = static_cast<std::uint32_t>(k);
  }
  require(k == arcs, ".qcg: degree sum disagrees with the arc count");
  require(pos == h.neighbors_bytes,
          ".qcg: trailing bytes after the adjacency stream");
  return Graph::from_csr(std::move(offsets), std::move(neighbors));
}

}  // namespace

void write_qcg_file(const std::string& path, const Graph& g,
                    QcgEncoding encoding) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "write_qcg_file: cannot open " + path);
  if (encoding == QcgEncoding::kRawCsr) {
    write_raw(out, g);
  } else {
    write_varint(out, g);
  }
  out.flush();
  require(out.good(), "write_qcg_file: write failed for " + path);
}

Graph read_qcg_file(const std::string& path, QcgReadOptions opt) {
  auto mf = std::make_shared<MappedFile>(MappedFile::open(path));
  const auto* base = reinterpret_cast<const std::uint8_t*>(mf->data());
  const Header h = parse_header(base, mf->size(), path);
  const std::uint8_t* payload = base + kQcgHeaderBytes;

  if (opt.verify_checksum) {
    require(fnv1a(payload, h.info.payload_bytes) == h.info.checksum,
            ".qcg: payload checksum mismatch (corrupted file?) in " + path);
  }

  if (h.info.encoding == QcgEncoding::kDeltaVarint) {
    return decode_varint(h, payload);
  }
  if constexpr (kHostLittle) {
    // Zero-copy: the CSR arrays are the mapped bytes themselves; the
    // shared MappedFile handle pins the mapping for the graph's lifetime.
    // mmap returns page-aligned memory and both sections sit at 8-byte
    // offsets, so the u32 reinterpretation is aligned.
    const auto* offsets = reinterpret_cast<const std::uint32_t*>(payload);
    // Cross-check the mapped final offset against the header arc count
    // before any neighbor access: the neighbors section is sized from the
    // header, so an inflated offsets[n] would otherwise send the CSR
    // validation walking past the end of the mapping (the checksum is no
    // defense — whoever crafts the file also controls the checksum).
    require(offsets[h.info.n] == h.info.arcs,
            ".qcg: offsets[n] disagrees with the header arc count in " +
                path);
    const auto* neighbors = reinterpret_cast<const std::uint32_t*>(
        payload + pad8(h.offsets_bytes));
    return Graph::from_csr_view(static_cast<std::uint32_t>(h.info.n),
                                offsets, neighbors, h.info.arcs,
                                std::move(mf));
  } else {
    return decode_raw_owned(h, payload);
  }
}

QcgInfo qcg_info_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "qcg_info_file: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint8_t header[kQcgHeaderBytes] = {};
  in.read(reinterpret_cast<char*>(header),
          static_cast<std::streamsize>(
              std::min<std::uint64_t>(file_bytes, kQcgHeaderBytes)));
  return parse_header(header, file_bytes, path).info;
}

bool is_qcg_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[sizeof(kQcgMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kQcgMagic, sizeof(magic)) == 0;
}

}  // namespace qc::graph
