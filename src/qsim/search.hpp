#pragma once

#include <cstdint>
#include <functional>

#include "qsim/amplitude_vector.hpp"
#include "util/rng.hpp"

namespace qc::qsim {

/// Resource counters shared by the search/optimization routines. The
/// distributed layer (core::DistributedQuantumOptimizer) converts these to
/// CONGEST rounds:
///   rounds = T0 + setup_invocations * T_setup
///               + grover_iterations * 2 * (T_setup + T_eval)
///               + candidate_evaluations * T_eval
/// (each Grover iterate applies the checking/evaluation unitary and its
/// inverse plus Setup^-1 / Setup for the reflection; each measurement
/// candidate is verified with one more classical evaluation pass).
struct SearchCosts {
  std::uint64_t setup_invocations = 0;    ///< fresh Setup preparations
  std::uint64_t grover_iterations = 0;    ///< total amplification iterates
  std::uint64_t candidate_evaluations = 0;///< classical checks of samples

  SearchCosts& operator+=(const SearchCosts& o) {
    setup_invocations += o.setup_invocations;
    grover_iterations += o.grover_iterations;
    candidate_evaluations += o.candidate_evaluations;
    return *this;
  }
};

/// Result of amplitude-amplification search (Theorem 6).
struct SearchResult {
  bool found = false;
  std::size_t item = 0;  ///< a marked item when found
  SearchCosts costs;
};

/// Amplitude amplification with the BBHT schedule for unknown |M|
/// (Brassard-Hoyer-Tapp, Theorem 6): decides whether the marked set is
/// empty under the promise P_M = 0 or P_M >= epsilon, with failure
/// probability <= delta, using O(sqrt(1/epsilon) * log(1/delta)) Setup and
/// Checking (phase-oracle) applications.
///
/// `setup_state` is the state Setup prepares; `marked` is the checking
/// predicate. Randomness (iteration counts j and measurement outcomes) is
/// drawn from `rng`, so runs are reproducible.
SearchResult amplitude_amplification_search(const AmplitudeVector& setup_state,
                                            const BasisPredicate& marked,
                                            double epsilon, double delta,
                                            Rng& rng);

/// Result of quantum maximum finding (Corollary 1).
struct MaximizationResult {
  std::size_t argmax = 0;
  std::int64_t value = 0;
  bool budget_exhausted = false;  ///< the Corollary 1 worst-case abort fired
  SearchCosts costs;
};

/// Quantum maximization (Corollary 1 / Durr-Hoyer threshold search): finds
/// argmax f over the support of `setup_state` with probability >= 1-delta,
/// provided the maximum's probability mass under the setup state is at
/// least epsilon (P_opt >= epsilon). Uses O(sqrt(log(1/delta)/epsilon))
/// Setup and Evaluation applications.
///
/// `f` is the function to maximize; it is invoked on basis values (and may
/// be memoized by the caller — the same branch always evaluates to the
/// same value, exactly like the deterministic Evaluation unitary).
MaximizationResult quantum_maximize(const AmplitudeVector& setup_state,
                                    const std::function<std::int64_t(std::size_t)>& f,
                                    double epsilon, double delta, Rng& rng);

/// Result of quantum counting.
struct CountEstimate {
  double fraction = 0;   ///< estimated P_M = |M|/N under the setup state
  SearchCosts costs;
};

/// Quantum counting in the spirit of [BHT98] (the paper Theorem 6 cites):
/// estimates the marked probability P_M of the setup state from sampled
/// Grover experiments. For each depth j in 0..max_depth, `shots` runs of
/// (Setup, j amplification iterates, measure, check) yield success
/// frequencies ~ sin^2((2j+1)*theta) with sin^2(theta) = P_M; a
/// maximum-likelihood fit over theta recovers P_M.
///
/// Statistically honest: only measurement outcomes are used, never the
/// simulator's internal amplitudes. Oracle cost is shots * sum(j).
CountEstimate estimate_marked_fraction(const AmplitudeVector& setup_state,
                                       const BasisPredicate& marked,
                                       std::uint32_t shots,
                                       std::uint32_t max_depth, Rng& rng);

}  // namespace qc::qsim
