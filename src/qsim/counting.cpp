#include "qsim/counting.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "util/error.hpp"

namespace qc::qsim {

PhaseCountEstimate quantum_count_phase_estimation(
    const AmplitudeVector& setup_state, const BasisPredicate& marked,
    std::uint32_t precision_qubits, Rng& rng) {
  require(precision_qubits >= 1 && precision_qubits <= 14,
          "quantum_count_phase_estimation: precision must be in [1, 14]");
  const std::size_t T = 1ULL << precision_qubits;
  const std::size_t dim = setup_state.dim();

  // Joint state |c>|x> after the Hadamards and the controlled powers:
  // (1/sqrt(T)) sum_c |c> (x) G^c |psi0>. Blocks are simulated exactly by
  // walking G once per c.
  std::vector<AmplitudeVector> blocks;
  blocks.reserve(T);
  AmplitudeVector walker = setup_state;
  blocks.push_back(walker);  // c = 0
  PhaseCountEstimate est;
  for (std::size_t c = 1; c < T; ++c) {
    walker.grover_iterate(marked, setup_state);
    ++est.oracle_calls;
    blocks.push_back(walker);
  }

  // Inverse QFT on the counting register, computing only the register's
  // outcome distribution: Pr[k] = (1/T^2) sum_x | sum_c w^{-kc} a_c(x) |^2.
  std::vector<double> prob(T, 0.0);
  const double two_pi = 2.0 * M_PI;
  // Precompute the twiddle factors w^{-kc} row by row.
  for (std::size_t k = 0; k < T; ++k) {
    double pk = 0;
    for (std::size_t x = 0; x < dim; ++x) {
      std::complex<double> acc{0, 0};
      for (std::size_t c = 0; c < T; ++c) {
        const auto a = blocks[c].amp(x);
        if (a == std::complex<double>(0, 0)) continue;
        const double ang = -two_pi * static_cast<double>(k) *
                           static_cast<double>(c) / static_cast<double>(T);
        acc += a * std::complex<double>(std::cos(ang), std::sin(ang));
      }
      pk += std::norm(acc);
    }
    prob[k] = pk / static_cast<double>(T * T);
  }

  // Measure the counting register.
  double u = rng.next_double();
  std::size_t outcome = T - 1;
  for (std::size_t k = 0; k < T; ++k) {
    u -= prob[k];
    if (u <= 0) {
      outcome = k;
      break;
    }
  }

  // The Grover eigenphases are +-2theta; a measured phase phi estimates
  // 2theta/(2pi) or 1 - that, and sin^2(pi*phi) is invariant under the
  // reflection, giving P_M directly.
  est.raw_phase = static_cast<double>(outcome) / static_cast<double>(T);
  est.fraction = std::pow(std::sin(M_PI * est.raw_phase), 2);
  return est;
}

}  // namespace qc::qsim
