#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace qc::qsim {

/// Predicate over basis indices (the "marked set" M of Section 2.3).
using BasisPredicate = std::function<bool(std::size_t)>;

/// Exact amplitude-level simulation of the internal register.
///
/// The distributed algorithms of Sections 3-4 keep the *global* network
/// state in the invariant form  sum_x alpha_x |x>_I (x) |data(x)> |init>:
/// everything outside the leader's internal register I is a classical
/// function of the basis value x. Amplitude amplification therefore acts on
/// the coefficient vector (alpha_x) exactly as on the full state, and
/// tracking that vector is a *lossless* simulation of the quantum
/// evolution — not an approximation (see DESIGN.md §4.1).
///
/// The gate-level qsim::StateVector validates these operators on small
/// power-of-two dimensions.
class AmplitudeVector {
 public:
  /// Uniform superposition over [0, dim) — the Setup state of Section 3.1.
  static AmplitudeVector uniform(std::size_t dim);

  /// Uniform superposition over `support` within a dim-sized basis — the
  /// Setup state of the Figure 3 quantum phase (uniform over R).
  static AmplitudeVector over_support(std::size_t dim,
                                      const std::vector<std::size_t>& support);

  std::size_t dim() const { return amps_.size(); }
  std::complex<double> amp(std::size_t i) const { return amps_[i]; }

  /// Sum of |alpha_x|^2 over x with pred(x) — the P_M of Section 2.3.
  double probability(const BasisPredicate& pred) const;

  /// Total squared norm (should stay 1 up to rounding; tested).
  double norm_sq() const;

  /// Oracle: alpha_x -> -alpha_x for marked x. This is what the
  /// Evaluation/Checking unitary pair (compute f, phase, uncompute f)
  /// does to the internal register.
  void phase_flip(const BasisPredicate& pred);

  /// Reflection 2|psi0><psi0| - I about a reference state — the
  /// Setup^-1 (reflect about |0>) Setup sandwich of amplitude
  /// amplification.
  void reflect_about(const AmplitudeVector& psi0);

  /// One Grover/amplitude-amplification iterate: phase_flip then
  /// reflect_about(psi0).
  void grover_iterate(const BasisPredicate& pred,
                      const AmplitudeVector& psi0);

  /// Samples a basis state from |alpha|^2 (a measurement of register I;
  /// the state is not collapsed because every use in the framework
  /// discards the register and re-runs Setup afterwards).
  std::size_t sample(Rng& rng) const;

  /// Deterministic core of sample(): the basis state measured when the
  /// uniform draw is `u01` in [0, 1). Zero-amplitude states are never
  /// returned — even at the u01 = 0 boundary — so the result always lies
  /// in the populated support, where the branch oracle is defined (f of
  /// Figure 3 is only defined on R). Exposed for boundary tests.
  std::size_t sample_at(double u01) const;

 private:
  explicit AmplitudeVector(std::vector<std::complex<double>> amps)
      : amps_(std::move(amps)) {}
  std::vector<std::complex<double>> amps_;
};

}  // namespace qc::qsim
