#include "qsim/statevector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qc::qsim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

StateVector::StateVector(std::uint32_t num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 24,
          "StateVector: supports 1..24 qubits");
  amps_.assign(1ULL << num_qubits, {0, 0});
  amps_[0] = {1, 0};
}

double StateVector::probability(std::uint64_t basis) const {
  require(basis < dim(), "StateVector::probability: basis out of range");
  return std::norm(amps_[basis]);
}

double StateVector::norm_sq() const {
  double p = 0;
  for (const auto& a : amps_) p += std::norm(a);
  return p;
}

void StateVector::h(std::uint32_t q) {
  require(q < num_qubits_, "StateVector::h: qubit out of range");
  const std::uint64_t bit = 1ULL << q;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (i & bit) continue;
    const auto a0 = amps_[i];
    const auto a1 = amps_[i | bit];
    amps_[i] = (a0 + a1) * kInvSqrt2;
    amps_[i | bit] = (a0 - a1) * kInvSqrt2;
  }
}

void StateVector::x(std::uint32_t q) {
  require(q < num_qubits_, "StateVector::x: qubit out of range");
  const std::uint64_t bit = 1ULL << q;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (!(i & bit)) std::swap(amps_[i], amps_[i | bit]);
  }
}

void StateVector::z(std::uint32_t q) {
  require(q < num_qubits_, "StateVector::z: qubit out of range");
  const std::uint64_t bit = 1ULL << q;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (i & bit) amps_[i] = -amps_[i];
  }
}

void StateVector::phase(std::uint32_t q, double theta) {
  require(q < num_qubits_, "StateVector::phase: qubit out of range");
  const std::complex<double> ph{std::cos(theta), std::sin(theta)};
  const std::uint64_t bit = 1ULL << q;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (i & bit) amps_[i] *= ph;
  }
}

void StateVector::cnot(std::uint32_t control, std::uint32_t target) {
  require(control < num_qubits_ && target < num_qubits_ && control != target,
          "StateVector::cnot: bad qubits");
  const std::uint64_t cbit = 1ULL << control;
  const std::uint64_t tbit = 1ULL << target;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if ((i & cbit) && !(i & tbit)) std::swap(amps_[i], amps_[i | tbit]);
  }
}

void StateVector::cz(std::uint32_t control, std::uint32_t target) {
  require(control < num_qubits_ && target < num_qubits_ && control != target,
          "StateVector::cz: bad qubits");
  const std::uint64_t mask = (1ULL << control) | (1ULL << target);
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if ((i & mask) == mask) amps_[i] = -amps_[i];
  }
}

void StateVector::mcz_all() {
  amps_.back() = -amps_.back();
}

void StateVector::oracle(const std::function<bool(std::uint64_t)>& pred) {
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (pred(i)) amps_[i] = -amps_[i];
  }
}

void StateVector::h_all() {
  for (std::uint32_t q = 0; q < num_qubits_; ++q) h(q);
}

void StateVector::grover_diffusion() {
  h_all();
  for (std::uint32_t q = 0; q < num_qubits_; ++q) x(q);
  mcz_all();
  for (std::uint32_t q = 0; q < num_qubits_; ++q) x(q);
  h_all();
  // H X MCZ X H = -(2|s><s| - I); absorb the global -1 so this matches the
  // algebraic reflection exactly.
  for (auto& a : amps_) a = -a;
}

void StateVector::cnot_copy(const std::vector<std::uint32_t>& src,
                            const std::vector<std::uint32_t>& dst) {
  require(src.size() == dst.size(), "cnot_copy: register size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    cnot(src[i], dst[i]);
  }
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double u = rng.next_double() * norm_sq();
  for (std::uint64_t i = 0; i < dim(); ++i) {
    u -= std::norm(amps_[i]);
    if (u <= 0) return i;
  }
  return dim() - 1;
}

std::uint32_t StateVector::measure_qubit(std::uint32_t q, Rng& rng) {
  require(q < num_qubits_, "StateVector::measure_qubit: qubit out of range");
  const std::uint64_t bit = 1ULL << q;
  double p1 = 0;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    if (i & bit) p1 += std::norm(amps_[i]);
  }
  const std::uint32_t outcome = rng.next_double() < p1 ? 1 : 0;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  check_internal(keep_prob > 1e-15,
                 "StateVector::measure_qubit: measured a zero-probability "
                 "branch");
  const double scale = 1.0 / std::sqrt(keep_prob);
  for (std::uint64_t i = 0; i < dim(); ++i) {
    const bool matches = ((i & bit) != 0) == (outcome == 1);
    amps_[i] = matches ? amps_[i] * scale : std::complex<double>{0, 0};
  }
  return outcome;
}

std::uint64_t StateVector::measure_all(Rng& rng) {
  const std::uint64_t outcome = sample(rng);
  for (std::uint64_t i = 0; i < dim(); ++i) {
    amps_[i] = i == outcome ? std::complex<double>{1, 0}
                            : std::complex<double>{0, 0};
  }
  return outcome;
}

double StateVector::fidelity(const StateVector& other) const {
  require(other.dim() == dim(), "StateVector::fidelity: dimension mismatch");
  std::complex<double> overlap{0, 0};
  for (std::uint64_t i = 0; i < dim(); ++i) {
    overlap += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::norm(overlap);
}

}  // namespace qc::qsim
