#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace qc::qsim {

/// Small dense state-vector simulator (up to ~24 qubits).
///
/// Used as an independent gate-level implementation of the quantum-search
/// building blocks: tests check that Grover iterations composed from
/// H / X / multi-controlled-Z gates act on the full 2^k-dimensional state
/// exactly as AmplitudeVector's algebraic operators do. It also implements
/// the CNOT-copy operation of Section 2 (the broadcast primitive of
/// Proposition 2) so its "classical copy" semantics can be verified.
class StateVector {
 public:
  /// |0...0> on `num_qubits` qubits.
  explicit StateVector(std::uint32_t num_qubits);

  std::uint32_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }
  std::complex<double> amp(std::uint64_t basis) const { return amps_[basis]; }
  double probability(std::uint64_t basis) const;
  double norm_sq() const;

  // -- single-qubit gates (qubit 0 is the least significant bit) --
  void h(std::uint32_t q);
  void x(std::uint32_t q);
  void z(std::uint32_t q);
  void phase(std::uint32_t q, double theta);

  // -- two-qubit gates --
  void cnot(std::uint32_t control, std::uint32_t target);
  void cz(std::uint32_t control, std::uint32_t target);

  /// Multi-controlled Z over *all* qubits: flips the phase of |1...1>.
  void mcz_all();

  /// Phase oracle |x> -> (-1)^{pred(x)} |x>. In the real machine this is
  /// Evaluation, a phase kick on the result ancilla, and Evaluation^-1.
  void oracle(const std::function<bool(std::uint64_t)>& pred);

  /// Hadamard on every qubit.
  void h_all();

  /// The Grover diffusion operator built from gates:
  /// H^n X^n (MCZ) X^n H^n = 2|s><s| - I up to global phase.
  void grover_diffusion();

  /// CNOT copy of Section 2: for two disjoint m-qubit registers
  /// src[i] -> dst[i], maps |u>|v> to |u>|u xor v>.
  void cnot_copy(const std::vector<std::uint32_t>& src,
                 const std::vector<std::uint32_t>& dst);

  /// Samples a basis state from the |amplitude|^2 distribution.
  std::uint64_t sample(Rng& rng) const;

  /// Projectively measures qubit q: returns the outcome bit and collapses
  /// (and renormalizes) the state.
  std::uint32_t measure_qubit(std::uint32_t q, Rng& rng);

  /// Measures every qubit (collapses to one basis state).
  std::uint64_t measure_all(Rng& rng);

  /// |<this|other>|^2 — used by tests to compare preparation routes.
  double fidelity(const StateVector& other) const;

 private:
  std::uint32_t num_qubits_;
  std::vector<std::complex<double>> amps_;
};

}  // namespace qc::qsim
