#include "qsim/search.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace qc::qsim {

namespace {

/// Emit the aggregated costs of one top-level search primitive as labeled
/// counters. No-op (one relaxed load) when metrics are disabled.
void record_costs(const char* primitive, const SearchCosts& costs) {
  if (!metrics::enabled()) return;
  metrics::count("qsim.grover_iterations", costs.grover_iterations, primitive);
  metrics::count("qsim.setup_invocations", costs.setup_invocations, primitive);
  metrics::count("qsim.candidate_evaluations", costs.candidate_evaluations,
                 primitive);
}

/// One BBHT phase: randomized iteration counts with the classic m <- 6m/5
/// growth, capped at sqrt(1/epsilon). Returns when a marked item is
/// sampled or when the phase's iteration budget is spent.
SearchResult bbht_phase(const AmplitudeVector& setup_state,
                        const BasisPredicate& marked, double epsilon,
                        Rng& rng) {
  SearchResult res;
  const double m_cap = std::max(1.0, std::sqrt(1.0 / epsilon));
  // A phase succeeds with constant probability when P_M >= epsilon and
  // spends O(sqrt(1/epsilon)) iterations; the caller repeats phases to
  // drive the failure probability below delta.
  const auto budget =
      static_cast<std::uint64_t>(std::ceil(3.0 * m_cap)) + 3;
  double m = 1.0;
  while (res.costs.grover_iterations < budget) {
    const auto j = static_cast<std::uint64_t>(
        rng.next_below(static_cast<std::uint64_t>(std::floor(m)) + 1));
    AmplitudeVector state = setup_state;  // a fresh Setup
    ++res.costs.setup_invocations;
    for (std::uint64_t it = 0; it < j; ++it) {
      state.grover_iterate(marked, setup_state);
    }
    res.costs.grover_iterations += j;
    const std::size_t sampled = state.sample(rng);
    ++res.costs.candidate_evaluations;  // classical check of the sample
    if (marked(sampled)) {
      res.found = true;
      res.item = sampled;
      return res;
    }
    m = std::min(m * 6.0 / 5.0, m_cap);
  }
  return res;
}

}  // namespace

SearchResult amplitude_amplification_search(const AmplitudeVector& setup_state,
                                            const BasisPredicate& marked,
                                            double epsilon, double delta,
                                            Rng& rng) {
  require(epsilon > 0 && epsilon <= 1,
          "amplitude_amplification_search: epsilon must be in (0, 1]");
  require(delta > 0 && delta < 1,
          "amplitude_amplification_search: delta must be in (0, 1)");
  SearchResult total;
  const auto phases = static_cast<std::uint32_t>(
      std::ceil(std::log2(1.0 / delta))) + 1;
  for (std::uint32_t p = 0; p < phases; ++p) {
    SearchResult res = bbht_phase(setup_state, marked, epsilon, rng);
    total.costs += res.costs;
    if (res.found) {
      total.found = true;
      total.item = res.item;
      record_costs("search", total.costs);
      return total;
    }
  }
  record_costs("search", total.costs);
  return total;  // declared empty
}

MaximizationResult quantum_maximize(
    const AmplitudeVector& setup_state,
    const std::function<std::int64_t(std::size_t)>& f, double epsilon,
    double delta, Rng& rng) {
  require(epsilon > 0 && epsilon <= 1,
          "quantum_maximize: epsilon must be in (0, 1]");
  require(delta > 0 && delta < 1, "quantum_maximize: delta must be in (0, 1)");

  MaximizationResult res;

  // Line (1) of Corollary 1: start from a sample of the setup state (one
  // Setup, one classical evaluation to learn f(a)).
  std::size_t a = setup_state.sample(rng);
  ++res.costs.setup_invocations;
  std::int64_t fa = f(a);
  ++res.costs.candidate_evaluations;

  // Worst-case abort (the final paragraph of the Corollary 1 proof):
  // cap the total work at a constant multiple of the expected
  // sqrt(log(1/delta)/epsilon) iteration count.
  const double log_term = std::log2(1.0 / delta) + 1.0;
  const auto iteration_budget = static_cast<std::uint64_t>(
      std::ceil(24.0 * std::sqrt(1.0 / epsilon) * log_term)) + 24;

  double eps_prime = 0.5;
  for (;;) {
    if (res.costs.grover_iterations >= iteration_budget) {
      res.budget_exhausted = true;
      break;
    }
    const auto marked = [&](std::size_t x) { return f(x) > fa; };
    // A missed improvement at a shallow level gets retried at the next
    // (deeper) level, so intermediate searches only need constant
    // confidence; the full delta budget is spent at the final level
    // eps' <= eps, whose "empty" verdict terminates the algorithm.
    const double delta_level = eps_prime > epsilon ? 1.0 / 3.0 : delta;
    SearchResult srch = amplitude_amplification_search(
        setup_state, marked, eps_prime, delta_level, rng);
    res.costs += srch.costs;
    if (srch.found) {
      a = srch.item;           // line (3): raise the threshold
      fa = f(a);
      ++res.costs.candidate_evaluations;
    } else if (eps_prime > epsilon) {
      eps_prime /= 2;          // line (4): search deeper
    } else {
      break;                   // line (5): no improvement at full depth
    }
  }
  res.argmax = a;
  res.value = fa;
  record_costs("maximize", res.costs);
  return res;
}

CountEstimate estimate_marked_fraction(const AmplitudeVector& setup_state,
                                       const BasisPredicate& marked,
                                       std::uint32_t shots,
                                       std::uint32_t max_depth, Rng& rng) {
  require(shots >= 1, "estimate_marked_fraction: need at least one shot");
  CountEstimate est;

  // Gather success counts per amplification depth.
  std::vector<std::uint32_t> successes(max_depth + 1, 0);
  for (std::uint32_t j = 0; j <= max_depth; ++j) {
    for (std::uint32_t s = 0; s < shots; ++s) {
      AmplitudeVector state = setup_state;
      ++est.costs.setup_invocations;
      for (std::uint32_t it = 0; it < j; ++it) {
        state.grover_iterate(marked, setup_state);
      }
      est.costs.grover_iterations += j;
      const std::size_t sampled = state.sample(rng);
      ++est.costs.candidate_evaluations;
      if (marked(sampled)) ++successes[j];
    }
  }

  // Maximum-likelihood fit of theta: Pr[success at depth j] =
  // sin^2((2j+1) theta). Grid search is plenty at this precision.
  const int grid = 4000;
  double best_theta = 0, best_ll = -1e300;
  for (int i = 1; i <= grid; ++i) {
    const double theta = (M_PI / 2) * i / (grid + 1.0);
    double ll = 0;
    for (std::uint32_t j = 0; j <= max_depth; ++j) {
      double p = std::pow(std::sin((2.0 * j + 1.0) * theta), 2);
      p = std::min(1.0 - 1e-9, std::max(1e-9, p));
      ll += successes[j] * std::log(p) +
            (shots - successes[j]) * std::log(1 - p);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best_theta = theta;
    }
  }
  est.fraction = std::pow(std::sin(best_theta), 2);
  record_costs("estimate", est.costs);
  return est;
}

}  // namespace qc::qsim
