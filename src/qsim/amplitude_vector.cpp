#include "qsim/amplitude_vector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qc::qsim {

AmplitudeVector AmplitudeVector::uniform(std::size_t dim) {
  require(dim >= 1, "AmplitudeVector::uniform: dim must be positive");
  const double a = 1.0 / std::sqrt(static_cast<double>(dim));
  return AmplitudeVector(
      std::vector<std::complex<double>>(dim, std::complex<double>(a, 0)));
}

AmplitudeVector AmplitudeVector::over_support(
    std::size_t dim, const std::vector<std::size_t>& support) {
  require(dim >= 1, "AmplitudeVector::over_support: dim must be positive");
  require(!support.empty(), "AmplitudeVector::over_support: empty support");
  std::vector<std::complex<double>> amps(dim, {0, 0});
  const double a = 1.0 / std::sqrt(static_cast<double>(support.size()));
  for (std::size_t i : support) {
    require(i < dim, "AmplitudeVector::over_support: index out of range");
    require(amps[i] == std::complex<double>(0, 0),
            "AmplitudeVector::over_support: duplicate support index");
    amps[i] = {a, 0};
  }
  return AmplitudeVector(std::move(amps));
}

double AmplitudeVector::probability(const BasisPredicate& pred) const {
  double p = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    // Exactly-zero branches are never populated (support states stay on
    // their support under Grover iterates), so the predicate need not be
    // defined there — e.g. f of Figure 3 is only defined on R.
    if (amps_[i] == std::complex<double>(0, 0)) continue;
    if (pred(i)) p += std::norm(amps_[i]);
  }
  return p;
}

double AmplitudeVector::norm_sq() const {
  double p = 0;
  for (const auto& a : amps_) p += std::norm(a);
  return p;
}

void AmplitudeVector::phase_flip(const BasisPredicate& pred) {
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    // Flipping a zero amplitude is a no-op; skipping keeps the marked
    // predicate restricted to the populated domain (see probability()).
    if (amps_[i] == std::complex<double>(0, 0)) continue;
    if (pred(i)) amps_[i] = -amps_[i];
  }
}

void AmplitudeVector::reflect_about(const AmplitudeVector& psi0) {
  require(psi0.dim() == dim(), "reflect_about: dimension mismatch");
  // 2 |psi0><psi0| - I applied to |this>: overlap = <psi0|this>.
  std::complex<double> overlap{0, 0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    overlap += std::conj(psi0.amps_[i]) * amps_[i];
  }
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    amps_[i] = 2.0 * overlap * psi0.amps_[i] - amps_[i];
  }
}

void AmplitudeVector::grover_iterate(const BasisPredicate& pred,
                                     const AmplitudeVector& psi0) {
  phase_flip(pred);
  reflect_about(psi0);
  // The amplitude-amplification operator is -S_psi0 S_M; the global minus
  // sign is physically irrelevant and omitted.
}

std::size_t AmplitudeVector::sample(Rng& rng) const {
  return sample_at(rng.next_double());
}

std::size_t AmplitudeVector::sample_at(double u01) const {
  double u = u01 * norm_sq();
  // Skip zero-mass entries so a boundary draw (u01 == 0.0, or a cumulative
  // sum landing exactly on a support state's edge) can never select a
  // basis state outside the populated support — the branch oracle may be
  // undefined there. The first positive-mass entry absorbs u01 = 0.
  std::size_t last_populated = amps_.size() - 1;  // numerical-tail fallback
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    if (p <= 0) continue;
    last_populated = i;
    u -= p;
    if (u <= 0) return i;
  }
  return last_populated;
}

}  // namespace qc::qsim
