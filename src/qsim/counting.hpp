#pragma once

#include <cstdint>
#include <functional>

#include "qsim/amplitude_vector.hpp"
#include "qsim/search.hpp"
#include "util/rng.hpp"

namespace qc::qsim {

/// Quantum counting by phase estimation on the Grover operator — the
/// [BHT98] algorithm behind Theorem 6, implemented literally.
///
/// The Grover iterate G rotates the 2D span of the marked/unmarked
/// components by 2θ with sin²θ = P_M, so its eigenphases are ±2θ. Phase
/// estimation with a t-qubit counting register applies controlled-G^{2^j}
/// for each counting qubit j, inverse-QFTs the register and measures,
/// yielding an estimate of 2θ/2π to t-bit precision — hence |M| ≈ N·sin²θ
/// with additive error O(√(|M|·N)/2^t + N/4^t).
///
/// The simulation is block-wise exact: for each counting-register basis
/// value c the search register evolves under G^c, and the inverse QFT and
/// measurement act on the exact joint amplitudes. Only the final
/// measurement uses randomness.
struct PhaseCountEstimate {
  double fraction = 0;       ///< estimated P_M
  double raw_phase = 0;      ///< measured phase in [0, 1)
  std::uint64_t oracle_calls = 0;  ///< total (controlled) G applications
};

/// Runs quantum counting with a `precision_qubits`-bit counting register.
/// `setup_state` must be a uniform-style state (the algorithm only assumes
/// G is built from phase_flip(marked) and reflect_about(setup_state)).
PhaseCountEstimate quantum_count_phase_estimation(
    const AmplitudeVector& setup_state, const BasisPredicate& marked,
    std::uint32_t precision_qubits, Rng& rng);

}  // namespace qc::qsim
