# CMake package entry point for qcongest.
#
#   find_package(qcongest REQUIRED)
#   target_link_libraries(app PRIVATE qcongest::qc_core)
#
# Targets: qcongest::qc_{util,graph,congest,algos,qsim,core,commcc}.
include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/qcongestTargets.cmake")
