// Extensions beyond the paper's headline results, exercising the
// generality of the Section 2.4 framework:
//  * radius/center: classical O(n)-round APSP census vs quantum minimum
//    finding at O~(sqrt(n) D);
//  * threshold decision (the Theorem 2 problem shape): amplitude
//    amplification without the maximization ladder;
//  * quantum counting [BHT98]: estimating how many vertices are peripheral;
//  * robustness: the Theorem 1 algorithm across topology families;
//  * fault sweep: BFS-with-retry degradation under message drops (the
//    deterministic fault-injection layer — a model extension).

#include "algos/apsp_census.hpp"
#include "algos/bfs_tree.hpp"
#include "bench/harness.hpp"
#include "core/quantum_decision.hpp"
#include "core/quantum_diameter.hpp"
#include "core/quantum_radius.hpp"
#include "graph/algorithms.hpp"
#include "qsim/counting.hpp"
#include "qsim/search.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Extensions: radius, decision, counting, robustness",
         "the distributed quantum optimization framework beyond diameter "
         "maximization");

  // ---- Radius: classical census vs quantum minimum finding.
  {
    Table t({"n", "D", "radius", "census rounds (classical)",
             "quantum radius rounds", "center ecc ok"});
    for (auto [n, d] : opt.quick
                           ? std::vector<std::pair<std::uint32_t,
                                                   std::uint32_t>>{{48, 8}}
                           : std::vector<std::pair<std::uint32_t,
                                                   std::uint32_t>>{
                                 {48, 8}, {96, 8}, {192, 12}, {256, 6}}) {
      auto g = workload(n, d, opt.seed + n);
      auto census = algos::classical_apsp_census(g);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      auto qr = core::quantum_radius(g, cfg);
      check_internal(qr.radius == census.radius, "radius mismatch");
      const bool center_ok =
          graph::eccentricity(g, qr.center) == qr.radius;
      t.add_row({fmt(n), fmt(d), fmt(qr.radius), fmt(census.stats.rounds),
                 fmt(qr.total_rounds), center_ok ? "yes" : "NO"});
    }
    std::cout << "Radius and center:\n";
    t.print(std::cout);
    std::cout << "  (no window trick exists for minima, so quantum radius "
                 "stays at the Section 3.1 cost O~(sqrt(n) D))\n\n";
  }

  // ---- Threshold decision vs full maximization.
  {
    const std::uint32_t n = opt.quick ? 96 : 192;
    const std::uint32_t d = 10;
    auto g = workload(n, d, opt.seed + 1);
    core::QuantumConfig cfg;
    cfg.oracle = core::OracleMode::kDirect;
    Table t({"threshold", "exceeds?", "decision rounds",
             "(full maximization rounds)"});
    auto exact = core::quantum_diameter_exact(g, cfg);
    for (std::uint32_t thr : {d - 2, d - 1, d, d + 1}) {
      auto rep = core::quantum_diameter_decide(g, thr, cfg);
      check_internal(rep.diameter_exceeds == (thr < d),
                     "decision wrong in bench");
      t.add_row({fmt(thr), rep.diameter_exceeds ? "yes" : "no",
                 fmt(rep.total_rounds), fmt(exact.total_rounds)});
    }
    std::cout << "Diameter threshold decision (true D = " << d << "):\n";
    t.print(std::cout);
    std::cout << "  deciding is cheaper than computing: one Theorem 6 "
                 "search instead of the Durr-Hoyer ladder.\n\n";
  }

  // ---- Quantum counting: fraction of peripheral vertices.
  {
    const std::uint32_t n = opt.quick ? 128 : 256;
    const std::uint32_t d = 12;
    auto g = workload(n, d, opt.seed + 2);
    auto ecc = graph::all_eccentricities(g);
    std::size_t peripheral = 0;
    for (auto e : ecc) peripheral += (e == d) ? 1 : 0;
    auto setup = qsim::AmplitudeVector::uniform(n);
    Rng rng(opt.seed);
    auto pred = [&](std::size_t v) { return ecc[v] == d; };
    auto est = qsim::estimate_marked_fraction(setup, pred, 30, 10, rng);
    auto pe = qsim::quantum_count_phase_estimation(setup, pred, 7, rng);
    std::cout << "Quantum counting of peripheral vertices (ecc = D):\n"
              << "  true fraction " << fmt(peripheral / double(n), 4)
              << "; sampling/ML estimate " << fmt(est.fraction, 4) << " ("
              << est.costs.grover_iterations
              << " Grover iterations); phase-estimation ([BHT98]) estimate "
              << fmt(pe.fraction, 4) << " (" << pe.oracle_calls
              << " controlled-G applications)\n\n";
  }

  // ---- Robustness: Theorem 1 across topology families.
  {
    Rng rng(opt.seed);
    struct Case {
      std::string name;
      graph::Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"hypercube(7)", graph::make_hypercube(7)});
    cases.push_back({"torus(10x10)", graph::make_torus(10, 10)});
    cases.push_back(
        {"random-regular(128,4)", graph::make_random_regular(128, 4, rng)});
    cases.push_back({"pref-attach(128,2)",
                     graph::make_preferential_attachment(128, 2, rng)});
    cases.push_back({"two-clusters(64,2)",
                     graph::make_two_clusters(64, 2, rng)});
    cases.push_back({"caterpillar(128,24)",
                     graph::make_caterpillar(128, 24)});
    Table t({"topology", "n", "true D", "quantum D", "rounds",
             "rounds/sqrt(nD)"});
    for (auto& c : cases) {
      const auto true_d = graph::diameter(c.g);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      cfg.seed = opt.seed;
      auto rep = core::quantum_diameter_exact(c.g, cfg);
      check_internal(rep.diameter == true_d, "wrong diameter on " + c.name);
      t.add_row({c.name, fmt(c.g.n()), fmt(true_d), fmt(rep.diameter),
                 fmt(rep.total_rounds),
                 fmt(rep.total_rounds /
                         std::sqrt(double(c.g.n()) * std::max(1u, true_d)),
                     0)});
    }
    std::cout << "Theorem 1 across topology families (exactness + scaling):\n";
    t.print(std::cout);
  }

  // ---- Fault sweep: graceful degradation of BFS under message drops.
  {
    const std::uint32_t n = opt.quick ? 64 : 128;
    auto g = workload(n, 8, opt.seed + 3);
    Table t({"drop %", "status", "attempts", "rounds", "dropped msgs"});
    for (double drop : {0.0, 0.01, 0.02, 0.05, 0.10}) {
      congest::NetworkConfig net;
      net.fault.drop_probability = drop;
      net.fault.seed = opt.seed;
      auto out = algos::build_bfs_tree_with_retry(g, 0, net);
      t.add_row({fmt(100.0 * drop, 0), algos::to_string(out.status),
                 fmt(out.attempts), fmt(out.stats.rounds),
                 fmt(out.stats.messages_dropped)});
    }
    std::cout << "\nBFS under a deterministic fault plan (retry budget x2 "
                 "per attempt):\n";
    t.print(std::cout);
    std::cout << "  faults are a model extension beyond the paper; the "
                 "status column shows the graceful-degradation contract "
                 "instead of hard aborts.\n";
  }
  return 0;
}
