// Ablation: Section 3.1 (f = ecc, P_opt >= 1/n, O(sqrt(n)*D) rounds)
// versus Section 3.2 / Theorem 1 (windowed f, P_opt >= d/2n, O(sqrt(nD))
// rounds). The windowing is the paper's key algorithmic idea; its payoff
// grows as sqrt(D).

#include "bench/harness.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Ablation / Section 3.1 vs Section 3.2 (Theorem 1)",
         "same framework, different objective: windowing raises P_opt from "
         "1/n to d/2n and should save ~sqrt(D/2) in rounds");

  const std::uint32_t n = opt.quick ? 128 : 256;
  Table t({"n", "D", "simple rounds (3.1)", "final rounds (3.2)",
           "speedup", "sqrt(D/2)", "simple iters", "final iters"});
  std::vector<double> xs, ratio;
  for (std::uint32_t d : opt.quick ? std::vector<std::uint32_t>{8, 32}
                                   : std::vector<std::uint32_t>{4, 8, 16, 32,
                                                                64}) {
    double rs = 0, rf = 0, is = 0, ifin = 0;
    rs = median_over_seeds(opt.trials, opt.seed + d, [&](auto s) {
      auto g = workload(n, d, s);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      cfg.seed = s;
      auto rep = core::quantum_diameter_simple(g, cfg);
      check_internal(rep.diameter == d, "simple algorithm wrong");
      is = static_cast<double>(rep.costs.grover_iterations);
      return static_cast<double>(rep.total_rounds);
    });
    rf = median_over_seeds(opt.trials, opt.seed + d, [&](auto s) {
      auto g = workload(n, d, s);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      cfg.seed = s;
      auto rep = core::quantum_diameter_exact(g, cfg);
      check_internal(rep.diameter == d, "final algorithm wrong");
      ifin = static_cast<double>(rep.costs.grover_iterations);
      return static_cast<double>(rep.total_rounds);
    });
    xs.push_back(d);
    ratio.push_back(rs / rf);
    t.add_row({fmt(n), fmt(d), fmt(rs, 0), fmt(rf, 0), fmt(rs / rf, 2),
               fmt(std::sqrt(d / 2.0), 2), fmt(is, 0), fmt(ifin, 0)});
  }
  t.print(std::cout);
  print_fit("  speedup ~ D^e", xs, ratio, 0.5);
  std::cout << "  (the windowed Evaluation costs a constant factor more per "
               "call but needs ~sqrt(d/2)x fewer iterations)\n";
  return 0;
}
