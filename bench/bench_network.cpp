// The CONGEST delivery hot path after the zero-allocation rework (SBO
// messages, precomputed reverse ports, move-based delivery, incremental
// quiescence) vs the seed implementation, on the flooding workload: every
// node broadcasts a two-field message every round, so every directed edge
// carries one delivery per round — the densest traffic the model allows.
//
// The pre-change baseline is measured *by this same binary*: the `legacy`
// namespace below is a faithful port of the seed delivery path
// (vector-backed messages, per-edge port_to binary search, always-deep-copy
// delivery, vector<bool> port flags, unconditional per-round virtual
// memory_bits sweep), driven by the identical workload and validated
// against the new engines by message count, bit count and an inbox
// checksum. `--check` turns the parity comparisons and the zero-allocation
// assertion into hard failures (CI runs it under ASan/TSan); `--out=FILE`
// emits the JSON summary that seeds BENCH_net.json at the repo root.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "congest/network.hpp"
#include "congest/observer.hpp"
#include "util/alloc_probe.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

QC_INSTALL_ALLOC_PROBE();

using namespace qc;
using namespace qc::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Order-sensitive per-node hash of delivered (port, fields); summing the
/// per-node hashes gives a workload checksum that every engine and the
/// legacy baseline must reproduce exactly on fault-free runs.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Flooding program for the new engines: broadcast (id, round) each round,
/// hash everything heard. memory_bits() stays 0, so the engine's audit
/// sweep disarms after round 1 — exactly the non-reporting common case the
/// skip optimization targets.
class Flood final : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override { blast(ctx); }

  void on_round(congest::NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      sum_ = mix(mix(mix(sum_, in.port), in.msg.field(0)), in.msg.field(1));
    }
    blast(ctx);
  }

  std::uint64_t sum() const { return sum_; }

 private:
  static void blast(congest::NodeContext& ctx) {
    congest::Message m;
    m.push(ctx.id(), ctx.id_bits());
    m.push(ctx.round() & 0xFFFFu, 16);
    ctx.broadcast(m);
  }

  std::uint64_t sum_ = 0;
};

struct Result {
  double ms = 0.0;               ///< best (min) timed repetition
  std::uint64_t messages = 0;    ///< deliveries in that repetition
  std::uint64_t total_messages = 0;  ///< deliveries across all repetitions
  std::uint64_t total_bits = 0;
  std::uint64_t checksum = 0;
  std::uint64_t allocs = 0;  ///< heap allocations across all timed phases

  double msgs_per_sec() const {
    return static_cast<double>(messages) / std::max(ms, 1e-9) * 1e3;
  }
  double ns_per_delivery() const {
    return ms * 1e6 / static_cast<double>(std::max<std::uint64_t>(messages, 1));
  }
  double allocs_per_delivery() const {
    return static_cast<double>(allocs) /
           static_cast<double>(std::max<std::uint64_t>(total_messages, 1));
  }
};

}  // namespace

// A faithful port of the seed's delivery path, kept private to this binary
// as the pre-change baseline. Costs reproduced on purpose: heap-backed
// messages (every delivery deep-copies two vectors), port_to binary search
// per edge per round, vector<bool> port flags, and the unconditional
// per-round virtual memory_bits() sweep.
namespace legacy {

class Message {
 public:
  Message& push(std::uint64_t value, std::uint32_t bits) {
    values_.push_back(value);
    widths_.push_back(bits);
    return *this;
  }
  std::uint64_t field(std::size_t i) const { return values_[i]; }
  std::uint32_t size_bits() const {  // a scan, as in the seed
    std::uint32_t s = 0;
    for (const std::uint32_t w : widths_) s += w;
    return s;
  }

 private:
  std::vector<std::uint64_t> values_;
  std::vector<std::uint32_t> widths_;
};

struct Incoming {
  std::uint32_t port;
  Message msg;
};

struct Node {
  std::vector<graph::NodeId> neighbors;
  std::vector<Message> outbox;
  std::vector<bool> port_used;
  std::vector<Incoming> inbox;
};

/// Stand-in for the seed's per-node NodeProgram virtual dispatch: the sweep
/// below pays one virtual call per node per round whether or not the
/// program reports anything, exactly as the seed did.
struct Auditor {
  virtual ~Auditor() = default;
  virtual std::uint64_t memory_bits() const { return 0; }
};

struct Tally {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

class Sim {
 public:
  explicit Sim(const graph::Graph& g)
      : n_(g.n()), id_bits_(qc::bit_width_for(g.n())) {
    nodes_.resize(n_);
    sums_.assign(n_, 0);
    auditors_.reserve(n_);
    for (graph::NodeId v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      nodes_[v].neighbors.assign(nb.begin(), nb.end());
      nodes_[v].outbox.resize(nb.size());
      nodes_[v].port_used.assign(nb.size(), false);
      auditors_.push_back(std::make_unique<Auditor>());
    }
    for (graph::NodeId v = 0; v < n_; ++v) blast(v);  // on_start
  }

  void run_rounds(std::uint32_t rounds, Tally& t) {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      ++round_;
      for (graph::NodeId w = 0; w < n_; ++w) {  // delivery
        auto& node = nodes_[w];
        node.inbox.clear();
        const auto deg = static_cast<std::uint32_t>(node.neighbors.size());
        for (std::uint32_t p = 0; p < deg; ++p) {
          auto& sender = nodes_[node.neighbors[p]];
          // The seed resolved the sender's outbox slot with port_to's
          // binary search on every edge every round.
          const auto it = std::lower_bound(sender.neighbors.begin(),
                                           sender.neighbors.end(), w);
          const auto q =
              static_cast<std::uint32_t>(it - sender.neighbors.begin());
          if (!sender.port_used[q]) continue;
          node.inbox.push_back(Incoming{p, sender.outbox[q]});  // deep copy
          ++t.messages;
          t.bits += node.inbox.back().msg.size_bits();
        }
      }
      for (graph::NodeId v = 0; v < n_; ++v) {  // compute
        auto& node = nodes_[v];
        std::fill(node.port_used.begin(), node.port_used.end(), false);
        for (const auto& in : node.inbox) {
          sums_[v] = mix(mix(mix(sums_[v], in.port), in.msg.field(0)),
                         in.msg.field(1));
        }
        blast(v);
      }
      std::uint64_t mx = 0;  // unconditional virtual memory sweep
      for (const auto& a : auditors_) mx = std::max(mx, a->memory_bits());
      max_memory_bits_ = std::max(max_memory_bits_, mx);
    }
  }

  std::uint64_t checksum() const {
    std::uint64_t s = 0;
    for (const std::uint64_t h : sums_) s += h;
    return s;
  }

 private:
  void blast(graph::NodeId v) {
    auto& node = nodes_[v];
    Message m;
    m.push(v, id_bits_);
    m.push(round_ & 0xFFFFu, 16);
    const auto deg = static_cast<std::uint32_t>(node.neighbors.size());
    for (std::uint32_t p = 0; p < deg; ++p) {
      node.outbox[p] = m;
      node.port_used[p] = true;
    }
  }

  std::uint32_t n_;
  std::uint32_t id_bits_;
  std::uint32_t round_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> sums_;
  std::vector<std::unique_ptr<Auditor>> auditors_;
  std::uint64_t max_memory_bits_ = 0;
};

}  // namespace legacy

namespace {

// Wall-clock noise is the enemy of a committed speedup number: each config
// runs `reps` timed phases over one warmed-up network and reports the best
// (minimum-time) phase, while the parity fields accumulate over the whole
// run so the correctness gates still cover every executed round.
Result run_legacy(const graph::Graph& g, std::uint32_t warm,
                  std::uint32_t rounds, std::uint32_t reps) {
  legacy::Sim sim(g);
  legacy::Tally discard;
  sim.run_rounds(warm, discard);
  Result r;
  const std::uint64_t a0 = qc::alloc_probe_count().load();
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    legacy::Tally t;
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_rounds(rounds, t);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < r.ms) {
      r.ms = ms;
      r.messages = t.messages;
    }
    r.total_messages += t.messages;
    r.total_bits += t.bits;
  }
  r.allocs = qc::alloc_probe_count().load() - a0;
  r.checksum = sim.checksum();
  return r;
}

Result run_new(const graph::Graph& g, congest::Engine engine,
               bool with_observer, bool with_fault, std::uint64_t seed,
               std::uint32_t warm, std::uint32_t rounds, std::uint32_t reps) {
  congest::NetworkConfig cfg;
  cfg.engine = engine;
  cfg.seed = seed;
  auto observed = std::make_shared<std::uint64_t>(0);
  if (with_observer) {
    cfg.observer = std::make_shared<congest::CallbackObserver>(
        [observed](graph::NodeId, graph::NodeId, const congest::Message&,
                   std::uint32_t) { ++*observed; });
  }
  if (with_fault) {
    cfg.fault.drop_probability = 0.01;
    cfg.fault.corrupt_probability = 0.005;
    cfg.fault.seed = 99;
  }
  congest::Network net(g, cfg);
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<Flood>(); });
  net.run_rounds(warm);
  Result r;
  const std::uint64_t a0 = qc::alloc_probe_count().load();
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const congest::RunStats st = net.run_rounds(rounds);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < r.ms) {
      r.ms = ms;
      r.messages = st.messages;
    }
    r.total_messages += st.messages;
    r.total_bits += st.bits;
  }
  r.allocs = qc::alloc_probe_count().load() - a0;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    r.checksum += net.program_as<Flood>(v).sum();
  }
  if (with_observer) {
    check_internal(*observed == net.stats().messages,
                   "observer saw a different delivery count than the stats");
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt =
      BenchOptions::parse(argc, argv, {"out", "n", "d", "rounds", "check"});
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint32_t>(cli.get_int("n", opt.quick ? 192 : 512));
  const auto d =
      static_cast<std::uint32_t>(cli.get_int("d", opt.quick ? 12 : 32));
  const auto rounds = static_cast<std::uint32_t>(
      cli.get_int("rounds", opt.quick ? 60 : 240));
  const bool check = cli.get_bool("check", false);
  const std::string out = cli.get_string("out", "");
  const std::uint32_t warm = 8;
  const std::uint32_t reps = opt.quick ? 3 : 5;

  banner("CONGEST delivery hot path vs seed implementation",
         "flooding workload: one delivery per directed edge per round; "
         "legacy = vector messages + port_to search + copy delivery");

  const auto g = workload(n, d, opt.seed);

  struct NamedResult {
    const char* name;
    Result r;
  };
  std::vector<NamedResult> results;
  results.push_back({"legacy_seq", run_legacy(g, warm, rounds, reps)});
  results.push_back(
      {"seq", run_new(g, congest::Engine::kSequential, false, false, opt.seed,
                      warm, rounds, reps)});
  results.push_back(
      {"seq_observer", run_new(g, congest::Engine::kSequential, true, false,
                               opt.seed, warm, rounds, reps)});
  results.push_back(
      {"seq_fault", run_new(g, congest::Engine::kSequential, false, true,
                            opt.seed, warm, rounds, reps)});
  results.push_back(
      {"par", run_new(g, congest::Engine::kParallel, false, false, opt.seed,
                      warm, rounds, reps)});
  results.push_back(
      {"par_fault", run_new(g, congest::Engine::kParallel, false, true,
                            opt.seed, warm, rounds, reps)});

  Table t({"config", "ms", "messages", "msgs/sec", "ns/delivery",
           "allocs/delivery"});
  for (const auto& [name, r] : results) {
    t.add_row({name, fmt(r.ms, 1), fmt(r.messages), fmt(r.msgs_per_sec(), 0),
               fmt(r.ns_per_delivery(), 1), fmt(r.allocs_per_delivery(), 4)});
  }
  t.print(std::cout);

  const Result& legacy_r = results[0].r;
  const Result& seq = results[1].r;
  const Result& seq_fault = results[3].r;
  const Result& par = results[4].r;
  const Result& par_fault = results[5].r;
  const double speedup = seq.msgs_per_sec() / legacy_r.msgs_per_sec();
  std::cout << "\nsequential speedup vs legacy: " << fmt(speedup, 2)
            << "x  (" << fmt(legacy_r.ns_per_delivery(), 1) << " -> "
            << fmt(seq.ns_per_delivery(), 1) << " ns/delivery)\n";

  // Correctness gates. Message/bit/checksum parity across the legacy
  // baseline and every fault-free config is checked on every run; --check
  // additionally pins the zero-allocation steady state (CI runs this mode
  // under ASan and TSan).
  check_internal(seq.total_messages == legacy_r.total_messages &&
                     seq.total_bits == legacy_r.total_bits &&
                     seq.checksum == legacy_r.checksum,
                 "new sequential engine disagrees with the legacy baseline");
  check_internal(par.total_messages == seq.total_messages &&
                     par.total_bits == seq.total_bits &&
                     par.checksum == seq.checksum,
                 "parallel engine disagrees with the sequential engine");
  check_internal(par_fault.total_messages == seq_fault.total_messages &&
                     par_fault.checksum == seq_fault.checksum,
                 "engines disagree under an active fault plan");
  check_internal(seq_fault.total_messages < seq.total_messages,
                 "fault plan dropped no messages");
  if (check) {
    check_internal(seq.allocs == 0,
                   "sequential no-fault delivery allocated at steady state");
    std::cout << "check mode: parity + zero-allocation assertions passed\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"network_delivery\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"edges\": " << g.m() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"warmup_rounds\": " << warm << ",\n"
       << "  \"bandwidth_bits\": " << congest_bandwidth_bits(n) << ",\n"
       << "  \"configs\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [name, r] = results[i];
    json << "    \"" << name << "\": {\"ms\": " << fmt(r.ms, 3)
         << ", \"messages\": " << r.messages
         << ", \"msgs_per_sec\": " << fmt(r.msgs_per_sec(), 0)
         << ", \"ns_per_delivery\": " << fmt(r.ns_per_delivery(), 1)
         << ", \"allocs_per_delivery\": " << fmt(r.allocs_per_delivery(), 4)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"speedup_seq_vs_legacy\": " << fmt(speedup, 2) << ",\n"
       << "  \"seq_steady_state_allocs\": " << seq.allocs << ",\n"
       << "  \"results_equal\": true\n"
       << "}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_network: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
