// Figure 3: the two-phase structure of the quantum 3/2-approximation.
// Preparation costs O~(n/s + D) rounds (falling in s), the quantum
// optimization costs O~(sqrt(s*D) + D) (rising in s); the total is
// minimized near s = Theta(n^{2/3} / D^{1/3}), giving O~(cbrt(nD) + D).

#include "bench/harness.hpp"
#include "core/quantum_approx.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 3 / phase structure of the quantum 3/2-approximation",
         "preparation rounds fall with s, quantum rounds grow ~sqrt(s); "
         "the paper's s* = n^{2/3} D^{-1/3} sits near the measured optimum");

  const std::uint32_t n = opt.quick ? 192 : 384;
  const std::uint32_t d = 8;
  auto g = workload(n, d, opt.seed);

  std::vector<std::uint32_t> svals = {2, 4, 8, 16, 32, 64, 128};
  if (opt.quick) svals = {4, 16, 64};

  Table t({"s", "prep rounds", "quantum rounds", "total", "estimate",
           "grover iters"});
  std::vector<double> xs, yq;
  double best_total = 1e18;
  std::uint32_t best_s = 0;
  for (auto s : svals) {
    core::QuantumConfig cfg;
    cfg.oracle = core::OracleMode::kDirect;
    cfg.seed = opt.seed + s;
    auto rep = core::quantum_diameter_approx(g, cfg, s);
    check_internal(!rep.aborted, "approx aborted in bench");
    check_internal(rep.estimate <= d && 3 * rep.estimate >= 2 * d,
                   "approx guarantee violated in bench");
    t.add_row({fmt(s), fmt(rep.prep_rounds), fmt(rep.quantum_rounds),
               fmt(rep.total_rounds), fmt(rep.estimate),
               fmt(rep.costs.grover_iterations)});
    if (s >= 4) {  // fit the rising branch
      xs.push_back(s);
      yq.push_back(static_cast<double>(std::max<std::uint64_t>(
          1, rep.quantum_rounds)));
    }
    if (rep.total_rounds < best_total) {
      best_total = static_cast<double>(rep.total_rounds);
      best_s = s;
    }
  }
  t.print(std::cout);
  print_fit("  quantum-phase rounds ~ s^e", xs, yq, 0.5);
  const double s_star =
      std::pow(static_cast<double>(n), 2.0 / 3.0) /
      std::cbrt(static_cast<double>(d));
  std::cout << "  measured optimum s = " << best_s
            << "; paper's s* = n^{2/3}/D^{1/3} = " << fmt(s_star, 0)
            << "\n  (the paper's s* balances the two phases assuming equal "
               "constants; at simulable n the quantum phase's\n   Grover "
               "constants dominate, pushing the measured optimum toward "
               "small s — the *shapes* of both branches match)\n";

  // Auto-selected s (the Theorem 4 default).
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  auto rep = core::quantum_diameter_approx(g, cfg);
  std::cout << "  auto-selected s = " << rep.s_used << " -> total "
            << rep.total_rounds << " rounds, estimate " << rep.estimate
            << " (exact D = " << d << ")\n";
  return 0;
}
