// Table 1, rows "Exact computation": classical O(n) [HW12, PRT12] versus
// quantum O(sqrt(n*D)) (Theorem 1).
//
// Regenerates the headline separation: round complexity vs n at small fixed
// D (classical linear, quantum ~sqrt(n)), round complexity vs D at fixed n,
// and the classical/quantum crossover.

#include "algos/diameter_classical.hpp"
#include "bench/harness.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

double classical_rounds(std::uint32_t n, std::uint32_t d, std::uint64_t seed,
                        std::uint32_t* out_diam = nullptr) {
  auto g = workload(n, d, seed);
  auto rep = algos::classical_exact_diameter(g);
  check_internal(rep.diameter == d, "classical result wrong in bench");
  if (out_diam != nullptr) *out_diam = rep.diameter;
  return static_cast<double>(rep.stats.rounds);
}

double quantum_rounds(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  auto g = workload(n, d, seed);
  core::QuantumConfig cfg;
  cfg.oracle = core::OracleMode::kDirect;
  cfg.seed = seed * 31 + 7;
  auto rep = core::quantum_diameter_exact(g, cfg);
  check_internal(rep.diameter == d, "quantum result wrong in bench");
  return static_cast<double>(rep.total_rounds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Table 1 / exact computation",
         "classical O(n) [HW12,PRT12] vs quantum O~(sqrt(nD)) (Theorem 1); "
         "exact diameters verified on every instance");

  // ---- Sweep 1: n grows, D = 8 fixed (the small-diameter regime where
  // the quantum separation is strongest).
  {
    const std::uint32_t d = 8;
    std::vector<std::uint32_t> ns =
        opt.quick ? std::vector<std::uint32_t>{32, 64, 128}
                  : std::vector<std::uint32_t>{32, 64, 128, 256, 384, 512};
    Table t({"n", "D", "classical rounds", "quantum rounds", "ratio"});
    std::vector<double> xs, yc, yq;
    for (auto n : ns) {
      const double c = median_over_seeds(opt.trials, opt.seed + n, [&](auto s) {
        return classical_rounds(n, d, s);
      });
      const double q = median_over_seeds(opt.trials, opt.seed + n, [&](auto s) {
        return quantum_rounds(n, d, s);
      });
      xs.push_back(n);
      yc.push_back(c);
      yq.push_back(q);
      t.add_row({fmt(n), fmt(d), fmt(c, 0), fmt(q, 0), fmt(c / q, 2)});
    }
    std::cout << "Round complexity vs n (D = " << d << "):\n";
    t.print(std::cout);
    print_fit("  classical rounds ~ n^e", xs, yc, 1.0);
    print_fit("  quantum rounds   ~ n^e", xs, yq, 0.5);
    std::cout << "\n";
  }

  // ---- Sweep 2: D grows, n = 256 fixed.
  {
    const std::uint32_t n = opt.quick ? 128 : 256;
    std::vector<std::uint32_t> ds =
        opt.quick ? std::vector<std::uint32_t>{4, 16}
                  : std::vector<std::uint32_t>{4, 8, 16, 32, 64};
    Table t({"n", "D", "classical rounds", "quantum rounds"});
    std::vector<double> xs, yq;
    for (auto d : ds) {
      const double c = median_over_seeds(opt.trials, opt.seed + d, [&](auto s) {
        return classical_rounds(n, d, s);
      });
      const double q = median_over_seeds(opt.trials, opt.seed + d, [&](auto s) {
        return quantum_rounds(n, d, s);
      });
      xs.push_back(d);
      yq.push_back(q);
      t.add_row({fmt(n), fmt(d), fmt(c, 0), fmt(q, 0)});
    }
    std::cout << "Round complexity vs D (n = " << n << "):\n";
    t.print(std::cout);
    print_fit("  quantum rounds ~ D^e", xs, yq, 0.5);
    std::cout << "  (classical rounds are ~constant in D at fixed n)\n\n";
  }

  // ---- Normalized view and extrapolated crossover. The separation is
  // asymptotic: Grover-style constants (the ~9d-round Figure 2 unitary is
  // applied 4x per iteration, with BBHT/Durr-Hoyer repetition factors) are
  // much larger than the classical pipeline's, so "who wins" at simulable
  // n is decided by constants. The reproducible claims are (a) the
  // normalized costs are flat — each algorithm matches its predicted
  // growth law — and (b) the fitted curves cross at a finite n*.
  {
    const std::uint32_t d = 8;
    std::vector<std::uint32_t> ns =
        opt.quick ? std::vector<std::uint32_t>{64, 128, 256}
                  : std::vector<std::uint32_t>{64, 128, 256, 512, 1024};
    Table t({"n", "D", "classical/n", "quantum/sqrt(nD)"});
    std::vector<double> xs, yc, yq;
    for (auto n : ns) {
      const double c = median_over_seeds(opt.trials, opt.seed + 2 * n,
                                         [&](auto s) {
                                           return classical_rounds(n, d, s);
                                         });
      const double q = median_over_seeds(opt.trials, opt.seed + 2 * n,
                                         [&](auto s) {
                                           return quantum_rounds(n, d, s);
                                         });
      xs.push_back(n);
      yc.push_back(c);
      yq.push_back(q);
      t.add_row({fmt(n), fmt(d), fmt(c / n, 2),
                 fmt(q / std::sqrt(static_cast<double>(n) * d), 1)});
    }
    std::cout << "Normalized costs (flat columns = matching growth law):\n";
    t.print(std::cout);
    const auto fc = fit_power_law(xs, yc);
    const auto fq = fit_power_law(xs, yq);
    // Crossover of C_c * n^{e_c} and C_q * n^{e_q}.
    const double log_nstar =
        (fq.intercept - fc.intercept) / (fc.slope - fq.slope);
    std::cout << "  fitted: classical ~ " << fmt(std::exp(fc.intercept), 2)
              << " * n^" << fmt(fc.slope, 2) << ", quantum ~ "
              << fmt(std::exp(fq.intercept), 2) << " * n^"
              << fmt(fq.slope, 2) << "\n"
              << "  extrapolated crossover (D = " << d
              << "): quantum wins for n > ~" << fmt(std::exp(log_nstar), 0)
              << "\n"
              << "  (the paper's separation is asymptotic; at D = Theta(n) "
                 "sqrt(nD) = Theta(n) and no crossover exists)\n";
  }
  return 0;
}
