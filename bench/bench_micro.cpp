// Infrastructure microbenchmarks (google-benchmark): CONGEST simulator
// round throughput (sequential vs parallel engine), state-vector gates,
// amplitude-vector Grover iterates, and the graph substrate.

#include <benchmark/benchmark.h>

#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "algos/evaluation.hpp"
#include "congest/network.hpp"
#include "core/branch_evaluator.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "qsim/amplitude_vector.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace {

using namespace qc;

/// A chatty program: every node broadcasts a counter each round.
class ChatterProgram : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override {
    ctx.broadcast(congest::Message().push(0, 16));
  }
  void on_round(congest::NodeContext& ctx) override {
    count_ = (count_ + 1) & 0xffff;
    ctx.broadcast(congest::Message().push(count_, 16));
  }

 private:
  std::uint64_t count_ = 0;
};

void BM_NetworkRoundsSequential(benchmark::State& state) {
  Rng rng(1);
  auto g = graph::make_connected_er(static_cast<std::uint32_t>(state.range(0)),
                                    0.02, rng);
  congest::NetworkConfig cfg;
  cfg.bandwidth_bits = 64;
  congest::Network net(g, cfg);
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<ChatterProgram>(); });
  for (auto _ : state) {
    net.run_rounds(10);
  }
  state.SetItemsProcessed(state.iterations() * 10 * g.m() * 2);
}
BENCHMARK(BM_NetworkRoundsSequential)->Arg(128)->Arg(512)->Arg(2048);

void BM_NetworkRoundsParallel(benchmark::State& state) {
  Rng rng(1);
  auto g = graph::make_connected_er(static_cast<std::uint32_t>(state.range(0)),
                                    0.02, rng);
  congest::NetworkConfig cfg;
  cfg.bandwidth_bits = 64;
  cfg.engine = congest::Engine::kParallel;
  cfg.num_threads = 4;
  congest::Network net(g, cfg);
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<ChatterProgram>(); });
  for (auto _ : state) {
    net.run_rounds(10);
  }
  state.SetItemsProcessed(state.iterations() * 10 * g.m() * 2);
}
BENCHMARK(BM_NetworkRoundsParallel)->Arg(512)->Arg(2048);

void BM_BfsTreeConstruction(benchmark::State& state) {
  Rng rng(2);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 16, rng);
  for (auto _ : state) {
    auto out = algos::build_bfs_tree(g, 0);
    benchmark::DoNotOptimize(out.tree.height);
  }
}
BENCHMARK(BM_BfsTreeConstruction)->Arg(256)->Arg(1024);

void BM_EvaluationProcedure(benchmark::State& state) {
  Rng rng(3);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 16, rng);
  auto tree = algos::build_bfs_tree(g, 0).tree;
  for (auto _ : state) {
    auto out = algos::evaluate_window_ecc(g, tree, 1, 2 * tree.height);
    benchmark::DoNotOptimize(out.max_ecc);
  }
}
BENCHMARK(BM_EvaluationProcedure)->Arg(128)->Arg(512);

void BM_GroverIterateAmplitude(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto psi0 = qsim::AmplitudeVector::uniform(dim);
  auto v = psi0;
  auto pred = [](std::size_t i) { return i == 3; };
  for (auto _ : state) {
    v.grover_iterate(pred, psi0);
    benchmark::DoNotOptimize(v.amp(3));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_GroverIterateAmplitude)->Arg(1 << 10)->Arg(1 << 16);

void BM_StateVectorGroverIterate(benchmark::State& state) {
  const auto nq = static_cast<std::uint32_t>(state.range(0));
  qsim::StateVector sv(nq);
  sv.h_all();
  auto pred = [](std::uint64_t i) { return i == 3; };
  for (auto _ : state) {
    sv.oracle(pred);
    sv.grover_diffusion();
    benchmark::DoNotOptimize(sv.amp(3));
  }
  state.SetItemsProcessed(state.iterations() * (1ULL << nq));
}
BENCHMARK(BM_StateVectorGroverIterate)->Arg(10)->Arg(16);

void BM_CentralizedBfs(benchmark::State& state) {
  Rng rng(4);
  auto g = graph::make_connected_er(
      static_cast<std::uint32_t>(state.range(0)), 0.01, rng);
  for (auto _ : state) {
    auto r = graph::bfs(g, 0);
    benchmark::DoNotOptimize(r.ecc);
  }
  state.SetItemsProcessed(state.iterations() * g.m());
}
BENCHMARK(BM_CentralizedBfs)->Arg(1024)->Arg(8192);

// Branch-evaluation throughput: a BranchEvaluator fanning independent
// Figure 2 window simulations across a worker pool. Arg = worker count;
// the branches_per_sec counter is the headline number (compare 1 vs N).
void BM_BranchEvalThroughput(benchmark::State& state) {
  Rng rng(6);
  auto g = graph::make_random_with_diameter(256, 8, rng);
  auto tree = algos::build_bfs_tree(g, 0).tree;
  const std::uint32_t steps = 2 * tree.height;
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::size_t> support(g.n());
  std::iota(support.begin(), support.end(), std::size_t{0});
  for (auto _ : state) {
    core::BranchEvaluator<std::int64_t> branches(
        [&](std::size_t u0) {
          return static_cast<std::int64_t>(
              algos::evaluate_window_ecc(
                  g, tree, static_cast<graph::NodeId>(u0), steps)
                  .max_ecc);
        },
        threads);
    branches.prefetch(support);
    benchmark::DoNotOptimize(branches.distinct_evaluations());
  }
  const auto total =
      static_cast<double>(state.iterations()) * static_cast<double>(g.n());
  state.counters["branches_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * g.n());
}
BENCHMARK(BM_BranchEvalThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end: quantum_diameter_exact with the branch fan-out at 1 vs 8
// workers. Results are thread-count invariant; only wall clock moves.
void BM_QuantumDiameterExactBranchThreads(benchmark::State& state) {
  Rng rng(7);
  auto g = graph::make_random_with_diameter(256, 8, rng);
  core::QuantumConfig cfg;
  cfg.branch_threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto rep = core::quantum_diameter_exact(g, cfg);
    if (rep.diameter != 8) state.SkipWithError("wrong diameter");
    benchmark::DoNotOptimize(rep.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * g.n());
}
BENCHMARK(BM_QuantumDiameterExactBranchThreads)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DfsNumbering(benchmark::State& state) {
  Rng rng(5);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 32, rng);
  auto tree = graph::bfs_tree(g, 0);
  for (auto _ : state) {
    auto num = graph::dfs_numbering(tree);
    benchmark::DoNotOptimize(num.walk.size());
  }
}
BENCHMARK(BM_DfsNumbering)->Arg(1024)->Arg(8192);

}  // namespace

// The repo-wide bench convention (see harness.hpp) smoke-runs every binary
// with `--quick`, which google-benchmark would reject as an unknown flag —
// map it to a minimal-time run and pass everything else through (e.g.
// --benchmark_format=json for machine-readable output).
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  bool quick = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (quick) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
