// Infrastructure microbenchmarks (google-benchmark): CONGEST simulator
// round throughput (sequential vs parallel engine), state-vector gates,
// amplitude-vector Grover iterates, and the graph substrate.

#include <benchmark/benchmark.h>

#include "algos/bfs_tree.hpp"
#include "algos/evaluation.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "qsim/amplitude_vector.hpp"
#include "qsim/statevector.hpp"
#include "util/rng.hpp"

namespace {

using namespace qc;

/// A chatty program: every node broadcasts a counter each round.
class ChatterProgram : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override {
    ctx.broadcast(congest::Message().push(0, 16));
  }
  void on_round(congest::NodeContext& ctx) override {
    count_ = (count_ + 1) & 0xffff;
    ctx.broadcast(congest::Message().push(count_, 16));
  }

 private:
  std::uint64_t count_ = 0;
};

void BM_NetworkRoundsSequential(benchmark::State& state) {
  Rng rng(1);
  auto g = graph::make_connected_er(static_cast<std::uint32_t>(state.range(0)),
                                    0.02, rng);
  congest::NetworkConfig cfg;
  cfg.bandwidth_bits = 64;
  congest::Network net(g, cfg);
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<ChatterProgram>(); });
  for (auto _ : state) {
    net.run_rounds(10);
  }
  state.SetItemsProcessed(state.iterations() * 10 * g.m() * 2);
}
BENCHMARK(BM_NetworkRoundsSequential)->Arg(128)->Arg(512)->Arg(2048);

void BM_NetworkRoundsParallel(benchmark::State& state) {
  Rng rng(1);
  auto g = graph::make_connected_er(static_cast<std::uint32_t>(state.range(0)),
                                    0.02, rng);
  congest::NetworkConfig cfg;
  cfg.bandwidth_bits = 64;
  cfg.engine = congest::Engine::kParallel;
  cfg.num_threads = 4;
  congest::Network net(g, cfg);
  net.init_programs(
      [](graph::NodeId) { return std::make_unique<ChatterProgram>(); });
  for (auto _ : state) {
    net.run_rounds(10);
  }
  state.SetItemsProcessed(state.iterations() * 10 * g.m() * 2);
}
BENCHMARK(BM_NetworkRoundsParallel)->Arg(512)->Arg(2048);

void BM_BfsTreeConstruction(benchmark::State& state) {
  Rng rng(2);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 16, rng);
  for (auto _ : state) {
    auto out = algos::build_bfs_tree(g, 0);
    benchmark::DoNotOptimize(out.tree.height);
  }
}
BENCHMARK(BM_BfsTreeConstruction)->Arg(256)->Arg(1024);

void BM_EvaluationProcedure(benchmark::State& state) {
  Rng rng(3);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 16, rng);
  auto tree = algos::build_bfs_tree(g, 0).tree;
  for (auto _ : state) {
    auto out = algos::evaluate_window_ecc(g, tree, 1, 2 * tree.height);
    benchmark::DoNotOptimize(out.max_ecc);
  }
}
BENCHMARK(BM_EvaluationProcedure)->Arg(128)->Arg(512);

void BM_GroverIterateAmplitude(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto psi0 = qsim::AmplitudeVector::uniform(dim);
  auto v = psi0;
  auto pred = [](std::size_t i) { return i == 3; };
  for (auto _ : state) {
    v.grover_iterate(pred, psi0);
    benchmark::DoNotOptimize(v.amp(3));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_GroverIterateAmplitude)->Arg(1 << 10)->Arg(1 << 16);

void BM_StateVectorGroverIterate(benchmark::State& state) {
  const auto nq = static_cast<std::uint32_t>(state.range(0));
  qsim::StateVector sv(nq);
  sv.h_all();
  auto pred = [](std::uint64_t i) { return i == 3; };
  for (auto _ : state) {
    sv.oracle(pred);
    sv.grover_diffusion();
    benchmark::DoNotOptimize(sv.amp(3));
  }
  state.SetItemsProcessed(state.iterations() * (1ULL << nq));
}
BENCHMARK(BM_StateVectorGroverIterate)->Arg(10)->Arg(16);

void BM_CentralizedBfs(benchmark::State& state) {
  Rng rng(4);
  auto g = graph::make_connected_er(
      static_cast<std::uint32_t>(state.range(0)), 0.01, rng);
  for (auto _ : state) {
    auto r = graph::bfs(g, 0);
    benchmark::DoNotOptimize(r.ecc);
  }
  state.SetItemsProcessed(state.iterations() * g.m());
}
BENCHMARK(BM_CentralizedBfs)->Arg(1024)->Arg(8192);

void BM_DfsNumbering(benchmark::State& state) {
  Rng rng(5);
  auto g = graph::make_random_with_diameter(
      static_cast<std::uint32_t>(state.range(0)), 32, rng);
  auto tree = graph::bfs_tree(g, 0);
  for (auto _ : state) {
    auto num = graph::dfs_numbering(tree);
    benchmark::DoNotOptimize(num.walk.size());
  }
}
BENCHMARK(BM_DfsNumbering)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
