// Figure 5-7 / Theorem 11: the block simulation over the path network G_d.
// A concrete DISJ protocol runs over G_d in r = Theta(d + k/bw) rounds with
// s = Theta(bw) bits per intermediate node; the Theorem 11 transformation
// compresses it to O(r/d) two-party messages of O(r(bw+s)) total qubits.

#include <cmath>

#include "bench/harness.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/two_party.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;
using namespace qc::commcc;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 5 / Theorem 11 block simulation over G_d",
         "r-round, s-memory algorithms over the d-path become O(r/d)-message "
         "two-party protocols of O(r(bw+s)) qubits");

  Rng rng(opt.seed);

  // ---- Sweep d at fixed k: message count O(r/d) collapses as the path
  // stretches; qubit volume stays ~r(bw+s).
  {
    const std::uint32_t k = opt.quick ? 64 : 256;
    Table t({"d", "k", "rounds r", "s (interm. mem)", "2-party msgs",
             "~r/d", "2-party qubits", "DISJ ok"});
    for (std::uint32_t d : {2u, 4u, 8u, 16u, 32u, 64u}) {
      bool ok = true;
      std::uint32_t rounds = 0;
      std::uint64_t msgs = 0, qubits = 0, smem = 0;
      for (bool inter : {false, true}) {
        auto [x, y] = random_disj_instance(k, inter, rng);
        auto out = run_path_disjointness(x, y, d);
        ok = ok && (out.is_disjoint == !inter);
        rounds = std::max(rounds, out.rounds);
        msgs = out.theorem11.messages;
        qubits = out.theorem11.qubits;
        smem = out.max_intermediate_memory_bits;
      }
      check_internal(ok, "path DISJ protocol wrong");
      t.add_row({fmt(d), fmt(k), fmt(rounds), fmt(smem), fmt(msgs),
                 fmt((rounds + d - 1) / d), fmt(qubits), ok ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "  messages track ceil(r/d)+1 exactly; this is what turns "
                 "path length into a round lower bound.\n\n";
  }

  // ---- The Theorem 3 mechanism: combining the block simulation with
  // BGK+15. An r-round algorithm with s memory gives an (r/d)-message
  // protocol; BGK+15 forces r(bw+s) >= k/(r/d), i.e. r >= sqrt(kd/(bw+s)).
  {
    const std::uint32_t bw = 16;
    Table t({"k", "d", "s", "implied floor sqrt(kd/(bw+s))"});
    for (auto [k, d, s] :
         {std::tuple{1024u, 16u, 16u}, std::tuple{1024u, 64u, 16u},
          std::tuple{4096u, 64u, 16u}, std::tuple{4096u, 64u, 256u}}) {
      const double floor = std::sqrt(static_cast<double>(k) * d / (bw + s));
      t.add_row({fmt(k), fmt(d), fmt(s), fmt(floor, 1)});
    }
    t.print(std::cout);
    std::cout << "  larger memory s weakens the floor — exactly the "
                 "small-memory caveat of Theorem 3.\n";
  }
  return 0;
}
