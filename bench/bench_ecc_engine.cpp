// The shared eccentricity engine (graph/ecc_engine.hpp) vs the naive
// reference path: evaluating f(u) = max_{v in segment(u)} ecc(v) for every
// branch u of the Theorem 1 window oracle. The naive path pays one BFS per
// window member per branch (Theta(n*d) BFS); the engine pays exactly one
// BFS per vertex plus an O(len log len) sparse-table build, then answers
// each branch in O(1).
//
// Emits a machine-readable JSON summary (stdout and, with --out=FILE, to
// disk) that seeds the BENCH_ecc.json baseline checked in at the repo root
// and uploaded as a CI artifact.

#include <chrono>
#include <fstream>
#include <sstream>

#include "bench/harness.hpp"
#include "graph/algorithms.hpp"
#include "graph/ecc_engine.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv, {"out", "n", "d"});
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint32_t>(cli.get_int("n", opt.quick ? 192 : 512));
  const auto d =
      static_cast<std::uint32_t>(cli.get_int("d", opt.quick ? 12 : 32));
  const std::string out = cli.get_string("out", "");

  banner("Shared eccentricity engine vs naive branch evaluation",
         "same f(u) on every branch; BFS count drops from Theta(n*d) to n");

  auto g = workload(n, d, opt.seed);
  const auto tree = graph::bfs_tree(g, 0);
  const auto num = graph::dfs_numbering(tree);
  const std::uint32_t steps = 2 * tree.height;

  // Naive reference: one segment scan (Theta(d) BFS) per branch. Count the
  // BFS runs it performs via the window sizes, which is exactly one BFS
  // per member per branch.
  std::uint64_t naive_bfs = 0;
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    naive_bfs += graph::segment_window(num, u, steps).members.size();
  }

  std::vector<std::uint32_t> naive(g.n());
  const auto t_naive = std::chrono::steady_clock::now();
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    naive[u] = graph::max_ecc_in_segment(g, num, u, steps);
  }
  const double naive_ms = ms_since(t_naive);

  // Engine path: build (n BFS + sparse table) + n O(1) queries, timed
  // together — this is what one quantum front-end run pays.
  const auto t_engine = std::chrono::steady_clock::now();
  graph::EccEngine engine(g);
  const auto seg = engine.segment_max(num);
  std::vector<std::uint32_t> fast(g.n());
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    fast[u] = seg.max_ecc_in_segment(u, steps);
  }
  const double engine_ms = ms_since(t_engine);

  check_internal(naive == fast, "engine disagrees with naive reference");

  const double speedup = naive_ms / std::max(engine_ms, 1e-6);
  Table t({"n", "d", "steps", "branches", "naive BFS", "engine BFS",
           "naive ms", "engine ms", "speedup"});
  t.add_row({fmt(n), fmt(d), fmt(steps), fmt(g.n()), fmt(naive_bfs),
             fmt(engine.bfs_runs()), fmt(naive_ms, 1), fmt(engine_ms, 1),
             fmt(speedup, 1)});
  t.print(std::cout);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ecc_engine\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"branches\": " << g.n() << ",\n"
       << "  \"naive_bfs_runs\": " << naive_bfs << ",\n"
       << "  \"engine_bfs_runs\": " << engine.bfs_runs() << ",\n"
       << "  \"naive_ms\": " << fmt(naive_ms, 3) << ",\n"
       << "  \"engine_ms\": " << fmt(engine_ms, 3) << ",\n"
       << "  \"speedup\": " << fmt(speedup, 2) << ",\n"
       << "  \"results_equal\": true\n"
       << "}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_ecc_engine: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
