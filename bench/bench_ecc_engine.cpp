// The shared eccentricity engine (graph/ecc_engine.hpp) vs the naive
// reference path, plus the BFS kernel shoot-out (graph/bfs_kernels.hpp):
//
//  1. engine-vs-naive: evaluating f(u) = max_{v in segment(u)} ecc(v) for
//     every branch u of the Theorem 1 window oracle. The naive path pays
//     one BFS per window member per branch (Theta(n*d) BFS); the engine
//     pays exactly one BFS per vertex plus an O(len log len) sparse-table
//     build, then answers each branch in O(1).
//  2. kernel shoot-out: the same eccentricity sweep through the flat
//     single-source kernel (the PR 6 baseline), the bit-parallel
//     64-sources-per-word kernel push-only, and the direction-optimizing
//     variant — equal source sets, single thread, results checked
//     bit-identical. With --dataset=FILE.qcg the shoot-out runs on a
//     checked-in large graph instead of the synthetic workload
//     (--sources=K samples K roots; --sources=0 sweeps all n, which is
//     exactly the full EccEngine sweep the acceptance numbers quote).
//
// Emits a machine-readable JSON summary (stdout and, with --out=FILE, to
// disk) that seeds the BENCH_ecc.json baseline checked in at the repo root
// and uploaded as a CI artifact.

#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/harness.hpp"
#include "graph/algorithms.hpp"
#include "graph/bfs_kernels.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

struct KernelRow {
  std::string graph_name;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t sources = 0;
  double flat_ms = 0;
  double push_ms = 0;
  double diropt_ms = 0;
  std::uint32_t diropt_pull_levels = 0;
  bool equal = false;
};

// Deterministically spread K roots across the id space (K = n hits every
// vertex exactly once, in order — the full-sweep case).
std::vector<graph::NodeId> pick_sources(std::uint32_t n, std::uint32_t k) {
  std::vector<graph::NodeId> out;
  out.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    out.push_back(static_cast<graph::NodeId>(
        (static_cast<std::uint64_t>(i) * n) / k));
  }
  return out;
}

KernelRow kernel_shootout(const graph::Graph& g, const std::string& name,
                          std::uint32_t sources) {
  KernelRow row;
  row.graph_name = name;
  row.n = g.n();
  row.m = g.m();
  const std::uint32_t k =
      (sources == 0 || sources > g.n()) ? g.n() : sources;
  row.sources = k;
  const auto roots = pick_sources(g.n(), k);

  std::vector<std::uint32_t> flat(k), push(k), diropt(k);

  graph::BfsScratch scratch;
  const auto t_flat = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < k; ++i) {
    flat[i] = graph::flat_bfs_distances(g, roots[i], scratch);
  }
  row.flat_ms = ms_since(t_flat);

  graph::MultiBfsScratch mscratch;
  const auto run_batches = [&](std::vector<std::uint32_t>& out,
                               graph::MultiBfsDirection dir) {
    std::uint32_t pulls = 0;
    for (std::uint32_t first = 0; first < k; first += 64) {
      const std::uint32_t batch = std::min(64u, k - first);
      const auto stats = graph::multi_source_eccentricities(
          g, std::span<const graph::NodeId>(roots.data() + first, batch),
          out.data() + first, mscratch, dir);
      pulls += stats.pull_levels;
    }
    return pulls;
  };

  const auto t_push = std::chrono::steady_clock::now();
  run_batches(push, graph::MultiBfsDirection::kPushOnly);
  row.push_ms = ms_since(t_push);

  const auto t_diropt = std::chrono::steady_clock::now();
  row.diropt_pull_levels =
      run_batches(diropt, graph::MultiBfsDirection::kOptimized);
  row.diropt_ms = ms_since(t_diropt);

  row.equal = flat == push && flat == diropt;
  check_internal(row.equal,
                 "bench_ecc_engine: kernels disagree on eccentricities");
  return row;
}

void print_kernel_row(Table& t, const KernelRow& r) {
  const double base = std::max(r.flat_ms, 1e-6);
  t.add_row({r.graph_name, fmt(r.n), fmt(r.m), fmt(r.sources),
             fmt(r.flat_ms, 1), fmt(r.push_ms, 1), fmt(r.diropt_ms, 1),
             fmt(base / std::max(r.push_ms, 1e-6), 1),
             fmt(base / std::max(r.diropt_ms, 1e-6), 1)});
}

void emit_kernel_row(std::ostringstream& json, const KernelRow& r,
                     bool last) {
  const double base = std::max(r.flat_ms, 1e-6);
  json << "    {\"graph\": \"" << r.graph_name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"sources\": " << r.sources << ",\n"
       << "     \"flat_ms\": " << fmt(r.flat_ms, 3)
       << ", \"push_ms\": " << fmt(r.push_ms, 3)
       << ", \"diropt_ms\": " << fmt(r.diropt_ms, 3) << ",\n"
       << "     \"speedup_push\": "
       << fmt(base / std::max(r.push_ms, 1e-6), 2)
       << ", \"speedup_diropt\": "
       << fmt(base / std::max(r.diropt_ms, 1e-6), 2)
       << ", \"pull_levels\": " << r.diropt_pull_levels
       << ", \"results_equal\": " << (r.equal ? "true" : "false") << "}"
       << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(
      argc, argv, {"out", "n", "d", "dataset", "sources"});
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint32_t>(cli.get_int("n", opt.quick ? 192 : 512));
  const auto d =
      static_cast<std::uint32_t>(cli.get_int("d", opt.quick ? 12 : 32));
  const std::string out = cli.get_string("out", "");
  const std::string dataset = cli.get_string("dataset", "");
  const auto sources = static_cast<std::uint32_t>(
      cli.get_int("sources", opt.quick ? 1024 : 0));

  banner("Shared eccentricity engine vs naive branch evaluation",
         "same f(u) on every branch; BFS count drops from Theta(n*d) to n;\n"
         "then the sweep kernels: flat vs bit-parallel (64 sources/word) "
         "vs direction-optimizing");

  auto g = workload(n, d, opt.seed);
  const auto tree = graph::bfs_tree(g, 0);
  const auto num = graph::dfs_numbering(tree);
  const std::uint32_t steps = 2 * tree.height;

  // Naive reference: one segment scan (Theta(d) BFS) per branch. Count the
  // BFS runs it performs via the window sizes, which is exactly one BFS
  // per member per branch.
  std::uint64_t naive_bfs = 0;
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    naive_bfs += graph::segment_window(num, u, steps).members.size();
  }

  std::vector<std::uint32_t> naive(g.n());
  const auto t_naive = std::chrono::steady_clock::now();
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    naive[u] = graph::max_ecc_in_segment(g, num, u, steps);
  }
  const double naive_ms = ms_since(t_naive);

  // Engine path: build (n BFS + sparse table) + n O(1) queries, timed
  // together — this is what one quantum front-end run pays.
  const auto t_engine = std::chrono::steady_clock::now();
  graph::EccEngine engine(g);
  const auto seg = engine.segment_max(num);
  std::vector<std::uint32_t> fast(g.n());
  for (graph::NodeId u = 0; u < g.n(); ++u) {
    fast[u] = seg.max_ecc_in_segment(u, steps);
  }
  const double engine_ms = ms_since(t_engine);

  check_internal(naive == fast, "engine disagrees with naive reference");

  // Kernel choice never changes the table: pin flat vs bit-parallel
  // bit-identity (and SegmentMax bit-identity on top) right here in the
  // bench, on the same workload the timings quote.
  {
    graph::EccEngine flat_engine(g, {1, graph::EccKernel::kFlat});
    graph::EccEngine bp_engine(g, {1, graph::EccKernel::kBitParallel});
    check_internal(flat_engine.all() == bp_engine.all(),
                   "bench_ecc_engine: kernel tables differ");
    const auto seg_bp = bp_engine.segment_max(num);
    for (graph::NodeId u = 0; u < g.n(); ++u) {
      check_internal(seg_bp.max_ecc_in_segment(u, steps) == fast[u],
                     "bench_ecc_engine: SegmentMax differs across kernels");
    }
  }

  const double speedup = naive_ms / std::max(engine_ms, 1e-6);
  Table t({"n", "d", "steps", "branches", "naive BFS", "engine BFS",
           "naive ms", "engine ms", "speedup"});
  t.add_row({fmt(n), fmt(d), fmt(steps), fmt(g.n()), fmt(naive_bfs),
             fmt(engine.bfs_runs()), fmt(naive_ms, 1), fmt(engine_ms, 1),
             fmt(speedup, 1)});
  t.print(std::cout);

  // Kernel shoot-out: synthetic workload always; the dataset too when
  // --dataset is given.
  std::vector<KernelRow> kernel_rows;
  kernel_rows.push_back(
      kernel_shootout(g, "rwd:" + std::to_string(n), sources));
  if (!dataset.empty()) {
    const auto loaded = graph::load_graph_file(dataset);
    auto base = dataset.substr(dataset.find_last_of('/') + 1);
    kernel_rows.push_back(kernel_shootout(loaded, base, sources));
  }

  std::cout << "\n";
  Table kt({"graph", "n", "m", "sources", "flat ms", "push ms", "diropt ms",
            "push x", "diropt x"});
  for (const auto& r : kernel_rows) print_kernel_row(kt, r);
  kt.print(std::cout);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ecc_engine\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"branches\": " << g.n() << ",\n"
       << "  \"naive_bfs_runs\": " << naive_bfs << ",\n"
       << "  \"engine_bfs_runs\": " << engine.bfs_runs() << ",\n"
       << "  \"naive_ms\": " << fmt(naive_ms, 3) << ",\n"
       << "  \"engine_ms\": " << fmt(engine_ms, 3) << ",\n"
       << "  \"speedup\": " << fmt(speedup, 2) << ",\n"
       << "  \"results_equal\": true,\n"
       << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    emit_kernel_row(json, kernel_rows[i], i + 1 == kernel_rows.size());
  }
  json << "  ]\n}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_ecc_engine: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
