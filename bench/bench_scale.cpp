// Million-node substrate harness: exercises the whole storage stack —
// text parsing, .qcg varint decode, raw mmap zero-copy views — and the
// algorithm layers on top of it (flat BFS kernel, double-sweep bound, the
// O(D)-round distributed eccentricity, and the full EccEngine on the
// bit-parallel multi-source kernel) at 10^4..10^6 nodes, using the
// checked-in datasets under data/.
//
// Modes:
//   --quick    CI smoke: the two committed datasets, loads + BFS + double
//              sweep only (plus CONGEST ecc on the 10k graph)
//   (default)  + the distributed O(D) eccentricity on the 100k graph
//   --full     + full EccEngine diameter/radius on the 100k graph and a
//              generated-and-cached 10^6-node graph, including the
//              exhaustive n-BFS engine sweep (bit-parallel kernel)
//
// Every config a mode skips leaves an explicit entry in the row's
// "skipped" JSON array, so BENCH_*.json trajectories distinguish "not
// run in this mode" from "missing".
//
// Emits a JSON summary (stdout and --out=FILE); full-mode rows seed the
// "scale" sections committed in BENCH_ecc.json / BENCH_net.json.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/bfs_tree.hpp"
#include "bench/harness.hpp"
#include "graph/algorithms.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

namespace fs = std::filesystem;

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

struct CongestRow {
  std::uint32_t ecc = 0;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};

struct EngineRow {
  std::uint32_t diameter = 0;
  std::uint32_t radius = 0;
  std::uint64_t bfs_runs = 0;
  std::string kernel;
  std::uint32_t threads = 0;
  double ms = 0;
};

struct ScaleRow {
  std::string dataset;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  std::optional<double> text_load_ms;
  std::optional<double> varint_load_ms;
  std::optional<double> raw_load_ms;
  bool mapped = false;
  std::uint32_t bfs_sources = 0;
  double bfs_avg_ms = 0;
  std::uint32_t dsweep_lb = 0;
  std::optional<CongestRow> congest;
  std::optional<EngineRow> engine;
  std::optional<std::uint32_t> sampled_lb;  ///< max ecc over sampled roots
  std::vector<std::string> skipped;  ///< configs this mode did not run
};

struct TimedLoad {
  graph::Graph g;
  double ms = 0;
};

TimedLoad time_load(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  auto g = graph::load_graph_file(path);
  const double ms = ms_since(t0);
  return {std::move(g), ms};
}

// Records a skipped config both in the JSON row and on stdout.
void skip(ScaleRow& row, const std::string& what, const std::string& why) {
  row.skipped.push_back(what + " (" + why + ")");
  std::cout << "skipped (" << why << "): " << what << " [" << row.dataset
            << "]\n";
}

// k-source flat BFS: average per-source time, plus the double-sweep lower
// bound (BFS from 0, then from the farthest *reachable* vertex found).
void measure_bfs(const graph::Graph& g, std::uint32_t sources,
                 ScaleRow& row) {
  graph::BfsScratch scratch;
  const auto t0 = std::chrono::steady_clock::now();
  // Spread the roots deterministically across the id space.
  for (std::uint32_t i = 0; i < sources; ++i) {
    const auto root = static_cast<graph::NodeId>(
        (static_cast<std::uint64_t>(i) * g.n()) / sources);
    graph::flat_bfs_distances(g, root, scratch);
  }
  row.bfs_sources = sources;
  row.bfs_avg_ms = ms_since(t0) / sources;

  graph::flat_bfs_distances(g, 0, scratch);
  graph::NodeId far = 0;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    if (scratch.dist[v] != graph::kUnreachable &&
        scratch.dist[v] > scratch.dist[far]) {
      far = v;
    }
  }
  graph::flat_bfs_distances(g, far, scratch);
  row.dsweep_lb = scratch.finite_ecc;
}

CongestRow congest_ecc(const graph::Graph& g) {
  const auto out = algos::compute_eccentricity(g, 0);
  check_internal(out.status == algos::PhaseStatus::kQuiesced,
                 "bench_scale: fault-free eccentricity did not quiesce");
  return {out.ecc, out.stats.rounds, out.stats.messages};
}

EngineRow engine_sweep(const graph::Graph& g) {
  const auto t0 = std::chrono::steady_clock::now();
  graph::EccEngine engine(g);  // kAuto: bit-parallel at these sizes
  EngineRow e;
  e.diameter = engine.diameter();
  e.radius = engine.radius();
  e.bfs_runs = engine.bfs_runs();
  e.kernel = g.n() >= 256 ? "bit_parallel" : "flat";
  e.threads = std::max(1u, std::thread::hardware_concurrency());
  e.ms = ms_since(t0);
  return e;
}

std::string opt_num(const std::optional<double>& v) {
  return v ? fmt(*v, 2) : std::string("null");
}

void emit_row(std::ostringstream& json, const ScaleRow& r, bool last) {
  json << "    {\"dataset\": \"" << r.dataset << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ",\n"
       << "     \"text_load_ms\": " << opt_num(r.text_load_ms)
       << ", \"varint_load_ms\": " << opt_num(r.varint_load_ms)
       << ", \"raw_load_ms\": " << opt_num(r.raw_load_ms)
       << ", \"mapped\": " << (r.mapped ? "true" : "false") << ",\n"
       << "     \"bfs_sources\": " << r.bfs_sources
       << ", \"bfs_avg_ms\": " << fmt(r.bfs_avg_ms, 3)
       << ", \"dsweep_lb\": " << r.dsweep_lb << ",\n"
       << "     \"congest\": ";
  if (r.congest) {
    json << "{\"ecc_root0\": " << r.congest->ecc
         << ", \"rounds\": " << r.congest->rounds
         << ", \"messages\": " << r.congest->messages << "}";
  } else {
    json << "null";
  }
  json << ",\n     \"ecc_engine\": ";
  if (r.engine) {
    json << "{\"diameter\": " << r.engine->diameter
         << ", \"radius\": " << r.engine->radius
         << ", \"bfs_runs\": " << r.engine->bfs_runs << ", \"kernel\": \""
         << r.engine->kernel << "\", \"threads\": " << r.engine->threads
         << ", \"ms\": " << fmt(r.engine->ms, 1) << "}";
  } else {
    json << "null";
  }
  json << ",\n     \"sampled_lb\": "
       << (r.sampled_lb ? fmt(*r.sampled_lb) : std::string("null"))
       << ",\n     \"skipped\": [";
  for (std::size_t i = 0; i < r.skipped.size(); ++i) {
    json << (i == 0 ? "" : ", ") << "\"" << r.skipped[i] << "\"";
  }
  json << "]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt =
      BenchOptions::parse(argc, argv, {"out", "full", "data-dir"});
  Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  require(!(full && opt.quick), "bench_scale: pick one of --quick / --full");
  const std::string mode =
      opt.quick ? "quick" : (full ? "full" : "default");
  const std::string data_dir = cli.get_string("data-dir", QC_DATA_DIR);
  const std::string out = cli.get_string("out", "");
  const auto cache_dir = fs::temp_directory_path() / "qc_bench_scale";
  fs::create_directories(cache_dir);

  banner("Million-node substrate: load paths + baselines at 10^4..10^6",
         "text parse vs varint decode vs raw mmap view; flat BFS, double "
         "sweep,\nO(D)-round distributed eccentricity, full EccEngine on "
         "the bit-parallel kernel");

  std::vector<ScaleRow> rows;

  // --- 10k: the p2p-Gnutella04-sized graph, all three load paths. ---
  {
    ScaleRow r;
    r.dataset = "synth-p2p-10k";
    const auto txt = data_dir + "/synth-p2p-10k.txt";
    const auto qcg = data_dir + "/synth-p2p-10k.qcg";
    const auto raw = (cache_dir / "synth-p2p-10k.raw.qcg").string();
    auto text_load = time_load(txt);
    r.text_load_ms = text_load.ms;
    r.varint_load_ms = time_load(qcg).ms;
    graph::write_qcg_file(raw, text_load.g, graph::QcgEncoding::kRawCsr);
    auto [mapped, raw_ms] = time_load(raw);
    r.raw_load_ms = raw_ms;
    r.mapped = mapped.is_view();
    r.n = mapped.n();
    r.m = mapped.m();
    measure_bfs(mapped, opt.quick ? 4 : 8, r);
    r.congest = congest_ecc(mapped);
    if (full) {
      r.engine = engine_sweep(mapped);
    } else {
      skip(r, "ecc_engine full sweep", mode + ": pass --full");
    }
    rows.push_back(std::move(r));
  }

  // --- 100k: the acceptance-scale dataset, varint + raw mmap. ---
  {
    ScaleRow r;
    r.dataset = "synth-p2p-100k";
    const auto qcg = data_dir + "/synth-p2p-100k.qcg";
    const auto raw = (cache_dir / "synth-p2p-100k.raw.qcg").string();
    auto varint_load = time_load(qcg);
    r.varint_load_ms = varint_load.ms;
    graph::write_qcg_file(raw, varint_load.g, graph::QcgEncoding::kRawCsr);
    auto [mapped, raw_ms] = time_load(raw);
    r.raw_load_ms = raw_ms;
    r.mapped = mapped.is_view();
    r.n = mapped.n();
    r.m = mapped.m();
    measure_bfs(mapped, opt.quick ? 4 : 8, r);
    if (!opt.quick) {
      r.congest = congest_ecc(mapped);
    } else {
      skip(r, "congest eccentricity", "quick");
    }
    if (full) {
      r.engine = engine_sweep(mapped);
    } else {
      skip(r, "ecc_engine full sweep", mode + ": pass --full");
    }
    rows.push_back(std::move(r));
  }

  // --- 1M: generated once, cached as raw .qcg under the temp dir. ---
  if (full) {
    ScaleRow r;
    r.dataset = "pa-1m";
    const auto raw = (cache_dir / "pa-1m.raw.qcg").string();
    if (!graph::is_qcg_file(raw)) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto g = graph::make_from_spec("pa:1000000:3:42");
      std::cout << "generated pa:1000000:3:42 in " << fmt(ms_since(t0), 0)
                << " ms, caching " << raw << "\n";
      graph::write_qcg_file(raw, g, graph::QcgEncoding::kRawCsr);
    }
    auto [mapped, raw_ms] = time_load(raw);
    r.raw_load_ms = raw_ms;
    r.mapped = mapped.is_view();
    r.n = mapped.n();
    r.m = mapped.m();
    measure_bfs(mapped, 8, r);
    r.congest = congest_ecc(mapped);
    // Sampled 32-source eccentricity lower bound: kept as a cheap
    // cross-check of the exhaustive sweep below.
    graph::BfsScratch scratch;
    std::uint32_t best = r.dsweep_lb;
    for (std::uint32_t i = 0; i < 32; ++i) {
      const auto root = static_cast<graph::NodeId>(
          (static_cast<std::uint64_t>(i) * mapped.n()) / 32);
      graph::flat_bfs_distances(mapped, root, scratch);
      best = std::max(best, scratch.finite_ecc);
    }
    r.sampled_lb = best;
    // The exhaustive n-BFS sweep — infeasible on the flat kernel (hours),
    // feasible on the bit-parallel one. This is the row PR 7 exists for.
    r.engine = engine_sweep(mapped);
    check_internal(r.engine->diameter >= *r.sampled_lb,
                   "bench_scale: exhaustive diameter below sampled bound");
    rows.push_back(std::move(r));
  } else {
    ScaleRow r;
    r.dataset = "pa-1m";
    skip(r, "all configs (generate + load + BFS + congest + ecc_engine)",
         mode + ": pass --full");
    rows.push_back(std::move(r));
  }

  std::cout << "\n";
  Table t({"dataset", "n", "m", "text ms", "varint ms", "raw ms", "mapped",
           "bfs ms", "dsweep lb", "congest rounds", "engine D",
           "engine ms"});
  for (const auto& r : rows) {
    t.add_row({r.dataset, fmt(r.n), fmt(r.m), opt_num(r.text_load_ms),
               opt_num(r.varint_load_ms), opt_num(r.raw_load_ms),
               r.mapped ? "yes" : "no", fmt(r.bfs_avg_ms, 3),
               fmt(r.dsweep_lb),
               r.congest ? fmt(r.congest->rounds) : std::string("-"),
               r.engine ? fmt(r.engine->diameter) : std::string("-"),
               r.engine ? fmt(r.engine->ms, 1) : std::string("-")});
  }
  t.print(std::cout);

  std::ostringstream json;
  json << "{\n  \"bench\": \"scale\",\n  \"mode\": \"" << mode << "\",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    emit_row(json, rows[i], i + 1 == rows.size());
  }
  json << "  ]\n}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_scale: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
