// Figure 4 / Theorems 8, 10 and 2: the HW12 gadget realizes a
// (Theta(n), Theta(n^2), 2, 3)-reduction; simulating a diameter algorithm
// on G_n(x,y) yields a two-party DISJ protocol (Theorem 10), and combining
// with the BGK+15 bound gives the Omega~(sqrt(n)) floor of Theorem 2 that
// the Theorem 1 algorithm matches on these networks.

#include <cmath>

#include "algos/diameter_classical.hpp"
#include "bench/harness.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/reductions.hpp"
#include "commcc/two_party.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;
using namespace qc::commcc;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 4 / HW12 reduction, Theorem 10 simulation, Theorem 2 floor",
         "diameter 2-vs-3 of G_n(x,y) decides DISJ_{s^2}; quantum rounds on "
         "these networks sit a constant factor above the sqrt(n) floor");

  std::vector<std::uint32_t> svals =
      opt.quick ? std::vector<std::uint32_t>{4, 8}
                : std::vector<std::uint32_t>{4, 8, 16, 24, 32};

  Table t({"s", "n", "k=s^2", "b", "quantum rounds r", "floor sqrt(k/b)",
           "r/floor", "2-party msgs", "2-party qubits", "DISJ ok"});
  std::vector<double> xs, ys;
  Rng rng(opt.seed);
  for (auto s : svals) {
    auto red = hw12_reduction(s);
    bool all_ok = true;
    double rounds = 0, msgs = 0, qubits = 0;
    for (int trial = 0; trial < 2; ++trial) {
      const bool intersecting = trial % 2 == 0;
      auto [x, y] = random_disj_instance(red.k, intersecting, rng);
      DiameterSolver solver = [&](const graph::Graph& g,
                                  const congest::NetworkConfig& net) {
        core::QuantumConfig cfg;
        cfg.net = net;
        cfg.oracle = core::OracleMode::kDirect;
        cfg.seed = opt.seed + s + trial;
        auto rep = core::quantum_diameter_exact(g, cfg);
        return std::pair{rep.diameter,
                         static_cast<std::uint32_t>(rep.total_rounds)};
      };
      auto run = two_party_diameter_protocol(red, x, y, solver);
      all_ok = all_ok && (run.decided_disjoint == !intersecting);
      rounds = std::max(rounds, static_cast<double>(run.rounds));
      msgs = static_cast<double>(run.costs.messages);
      qubits = static_cast<double>(run.costs.qubits);
    }
    const double floor = theorem10_round_floor(red.k, red.b());
    xs.push_back(red.num_nodes);
    ys.push_back(rounds);
    t.add_row({fmt(s), fmt(red.num_nodes), fmt(red.k), fmt(red.b()),
               fmt(rounds, 0), fmt(floor, 1), fmt(rounds / floor, 1),
               fmt(msgs, 0), fmt(qubits, 0), all_ok ? "yes" : "NO"});
    check_internal(all_ok, "two-party protocol decided DISJ wrong");
    check_internal(rounds >= floor,
                   "algorithm beat the Theorem 2 lower bound?!");
  }
  t.print(std::cout);
  print_fit("  quantum rounds on gadgets ~ n^e", xs, ys, 0.5);
  std::cout
      << "  Theorem 2: any quantum algorithm needs Omega~(sqrt(n)) rounds "
         "to tell diameter 2 from 3;\n  Theorem 1's O~(sqrt(nD)) = "
         "O~(sqrt(n)) at D<=3 matches it — upper meets lower (tight).\n";

  // The BGK+15 tradeoff the proof leans on: an m-message protocol needs
  // k/m + m qubits; the simulated protocol's (m, qubits) pair must respect
  // it (up to polylog).
  {
    auto red = hw12_reduction(16);
    std::cout << "\nBGK+15 consistency at s=16 (k=" << red.k << "):\n";
    Table bt({"messages m", "bound k/m+m", "simulated qubits", "respects"});
    for (double m : {10.0, 50.0, 200.0}) {
      const double bound = bgk_lower_bound(red.k, m);
      // A simulated protocol with m messages has r = m/2 rounds and ships
      // r*b*bw qubits.
      const auto costs = theorem10_transform(
          static_cast<std::uint32_t>(m / 2), red.b(),
          congest_bandwidth_bits(red.num_nodes));
      bt.add_row({fmt(m, 0), fmt(bound, 0),
                  fmt(static_cast<double>(costs.qubits), 0),
                  costs.qubits >= bound ? "yes" : "no (needs more rounds)"});
    }
    bt.print(std::cout);
    std::cout << "  rows where the capacity falls below the bound are "
                 "infeasible — that forces r = Omega~(sqrt(k/b)).\n";
  }

  // Table 1's (3/2 - eps)-approximation row: a 3/2-approximation is
  // allowed to answer 2 on a diameter-3 network (3 <= 3/2 * 2), so it
  // cannot decide DISJ on these gadgets — which is exactly why the
  // classical Omega~(n) hardness extends to (3/2 - eps)-approximation
  // and why the quantum approx algorithm does not contradict Theorem 2.
  {
    auto red = hw12_reduction(8);
    Rng rng2(opt.seed + 99);
    std::cout << "\n(3/2-eps)-approximation cannot decide 2-vs-3:\n";
    Table at({"instance", "true D", "exact algo", "3/2-approx estimate",
              "approx separates?"});
    for (bool inter : {false, true}) {
      auto [x, y] = random_disj_instance(red.k, inter, rng2);
      auto g = red.instantiate(x, y);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      cfg.seed = opt.seed + (inter ? 1 : 2);
      auto exact = core::quantum_diameter_exact(g, cfg);
      auto approx = core::quantum_diameter_approx(g, cfg);
      check_internal(!approx.aborted, "approx aborted on gadget");
      at.add_row({std::string(inter ? "intersecting" : "disjoint"),
                  fmt(exact.diameter), fmt(exact.diameter),
                  fmt(approx.estimate),
                  std::string(inter && approx.estimate == 2
                                  ? "no (allowed by the 3/2 guarantee)"
                                  : "-")});
    }
    at.print(std::cout);
    std::cout << "  estimate 2 on a diameter-3 instance is within the 3/2 "
                 "guarantee — approximation weaker than decision.\n";
  }

  // Section 2.2 background, executable: the Theta~(sqrt(k)) quantum
  // communication complexity of DISJ ([BCW98] upper bound via distributed
  // Grover; [Raz03] lower bound). Many messages, few qubits — exactly the
  // regime [BGK+15]'s k/m + m rules out for round-starved protocols.
  {
    std::cout << "\nSection 2.2: quantum two-party DISJ at Theta~(sqrt(k)) "
                 "qubits:\n";
    Table qt({"k", "disjoint?", "messages m", "qubits", "sqrt(k)",
              "BGK bound k/m+m"});
    Rng rng3(opt.seed + 7);
    for (std::size_t k : {64u, 256u, 1024u, 4096u}) {
      auto [x, y] = random_disj_instance(k, false, rng3);
      auto run = quantum_disjointness_protocol(x, y, 0.1, rng3);
      check_internal(run.is_disjoint, "quantum DISJ protocol wrong");
      qt.add_row({fmt(k), "yes", fmt(run.messages), fmt(run.qubits),
                  fmt(std::sqrt(double(k)), 0),
                  fmt(bgk_lower_bound(double(k), double(run.messages)), 0)});
    }
    qt.print(std::cout);
    std::cout << "  qubit volume tracks sqrt(k)*log k; with unbounded "
                 "messages sqrt(k) suffices, but squeezing the\n  same "
                 "protocol into r rounds forces r(b log n) >= k/r — the "
                 "engine behind Theorems 2 and 3.\n";
  }
  return 0;
}
