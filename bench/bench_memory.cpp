// Theorem 1's memory claim: O(log^2 n) qubits per node (the leader carries
// the log(1/eps) recorded amplification outcomes of log n qubits each; all
// other nodes hold O(log n)). Also audits the classical procedures'
// per-node bit usage measured live on the simulator.

#include "algos/diameter_classical.hpp"
#include "bench/harness.hpp"
#include "core/quantum_diameter.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Memory audit (Theorem 1: O(log^2 n) qubits per node)",
         "per-node and leader qubit counts vs n; classical working memory "
         "measured live via NodeProgram::memory_bits");

  Table t({"n", "log2 n", "per-node qubits", "leader qubits",
           "leader/log^2 n", "classical max bits/node"});
  std::vector<double> xs, yper, ylead;
  for (std::uint32_t n : opt.quick
                             ? std::vector<std::uint32_t>{64, 256}
                             : std::vector<std::uint32_t>{32, 64, 128, 256,
                                                          512, 1024}) {
    const std::uint32_t d = 8;
    auto g = workload(n, d, opt.seed + n);
    core::QuantumConfig cfg;
    cfg.oracle = core::OracleMode::kDirect;
    auto rep = core::quantum_diameter_exact(g, cfg);
    check_internal(rep.diameter == d, "wrong diameter in memory bench");

    auto classical = algos::classical_exact_diameter(g);
    const double lg = std::log2(static_cast<double>(n));
    xs.push_back(n);
    yper.push_back(static_cast<double>(rep.per_node_memory_qubits));
    ylead.push_back(static_cast<double>(rep.leader_memory_qubits));
    t.add_row({fmt(n), fmt(lg, 1), fmt(rep.per_node_memory_qubits),
               fmt(rep.leader_memory_qubits),
               fmt(static_cast<double>(rep.leader_memory_qubits) / (lg * lg),
                   2),
               fmt(classical.stats.max_node_memory_bits)});
  }
  t.print(std::cout);
  // log-log exponent of memory vs n should be ~0 (polylog, not polynomial).
  const auto fit_per = fit_power_law(xs, yper);
  const auto fit_lead = fit_power_law(xs, ylead);
  std::cout << "  per-node qubits ~ n^" << fmt(fit_per.slope, 3)
            << ", leader qubits ~ n^" << fmt(fit_lead.slope, 3)
            << "  (both ~0: polylogarithmic, not polynomial)\n"
            << "  leader/log^2 n stays bounded: the O(log^2 n) claim.\n";
  return 0;
}
