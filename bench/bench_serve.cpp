// Serve-layer load generator: quantifies what keeping graphs resident in
// qcongestd buys over the one-shot CLI lifecycle.
//
// Baseline ("per-invocation"): every diameter answer pays the full
// load_graph_file + EccEngine construction + n-BFS eccentricity sweep —
// the cost of `qcongest diameter @file` from a cold process, measured
// in-process so process spawn/teardown is *excluded* (the gap below is
// therefore an underestimate of the real CLI gap).
//
// Resident: an in-process Server on a Unix socket with the dataset loaded
// and the eccentricity table forced once; N concurrent clients then issue
// cache-hit queries (diameter / radius / ecc) through the full protocol —
// framing, admission, thread-pool dispatch — and per-request latencies are
// aggregated into p50/p99 and throughput.
//
// Gates (check_internal, so CI fails loudly if they regress):
//   * the served diameter is bit-identical to a direct EccEngine's,
//   * the resident phase does zero BFS work (bfs_runs frozen),
//   * per-invocation median >= 10x the resident p50.
//
// Modes: --quick (CI smoke, fewer requests), default. Emits a JSON summary
// (stdout and --out=FILE); full-mode rows are committed as BENCH_serve.json.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

namespace fs = std::filesystem;

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

struct ResidentPhase {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  std::uint64_t requests = 0;
};

// One client connection issuing `requests` cache-hit queries, cycling
// diameter / radius / ecc(v); per-request latencies land in `lat_us`.
void client_loop(const std::string& endpoint, const std::string& key,
                 std::uint32_t n, int requests, int stride,
                 std::vector<double>& lat_us) {
  auto client = serve::Client::connect(endpoint);
  lat_us.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    serve::Request req;
    req.path = key;
    switch (i % 3) {
      case 0: req.op = serve::Op::kDiameter; break;
      case 1: req.op = serve::Op::kRadius; break;
      default:
        req.op = serve::Op::kEcc;
        req.arg = static_cast<std::uint64_t>((i * stride) % n);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto resp = client.call_ok(req);
    lat_us.push_back(ms_since(t0) * 1000.0);
    check_internal(resp.status == serve::Status::kOk,
                   "bench_serve: resident query failed");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(
      argc, argv, {"out", "dataset", "clients", "requests"});
  Cli cli(argc, argv);
  const std::string dataset =
      cli.get_string("dataset", std::string(QC_DATA_DIR) +
                                    "/synth-p2p-10k.qcg");
  const int clients =
      static_cast<int>(cli.get_int_in("clients", 4, 1, 256));
  const int requests_per_client = static_cast<int>(cli.get_int_in(
      "requests", opt.quick ? 250 : 2500, 1, 1 << 24));
  const std::string out = cli.get_string("out", "");

  banner("Resident-graph serving vs per-invocation lifecycle",
         "qcongestd keeps the graph and its compute-once eccentricity "
         "table in memory;\nevery query after the first skips load + "
         "EccEngine + n-BFS sweep entirely");

  // --- Baseline: the full per-invocation lifecycle, median of trials. ---
  std::vector<double> cold_ms;
  std::uint32_t diameter_direct = 0;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  for (int t = 0; t < std::max(2, opt.trials); ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto g = graph::load_graph_file(dataset);
    graph::EccEngine engine(g);
    diameter_direct = engine.diameter();
    cold_ms.push_back(ms_since(t0));
    n = g.n();
    m = g.m();
  }
  const double cold_median_ms = quantile(cold_ms, 0.5);
  std::cout << "per-invocation: load + engine + sweep = "
            << fmt(cold_median_ms, 1) << " ms median over "
            << cold_ms.size() << " runs (diameter " << diameter_direct
            << ", n = " << n << ", m = " << m << ")\n";

  // --- Resident: in-process server, one warm-up, then the query storm. ---
  const auto sock =
      (fs::temp_directory_path() /
       ("qc_bench_serve_" + std::to_string(static_cast<long long>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch()
                                    .count())) +
        ".sock"))
          .string();
  serve::ServerOptions sopts;
  sopts.unix_path = sock;
  serve::Server server(sopts);
  server.start();
  const std::string endpoint = "unix:" + sock;

  double load_ms = 0, first_query_ms = 0;
  {
    auto warm = serve::Client::connect(endpoint);
    auto t0 = std::chrono::steady_clock::now();
    const auto loaded = warm.call_ok({serve::Op::kLoad, dataset, 0});
    load_ms = ms_since(t0);
    check_internal(loaded.value == n, "bench_serve: server n mismatch");
    t0 = std::chrono::steady_clock::now();
    const auto first = warm.call_ok({serve::Op::kDiameter, dataset, 0});
    first_query_ms = ms_since(t0);
    check_internal(first.value == diameter_direct,
                   "bench_serve: served diameter differs from the direct "
                   "EccEngine answer");
  }
  const auto resident = server.registry().get(dataset);
  check_internal(resident != nullptr, "bench_serve: graph not resident");
  const std::uint64_t bfs_before = resident->engine().bfs_runs();

  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  const auto storm_t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(client_loop, endpoint, dataset, n,
                           requests_per_client, 2 * c + 1,
                           std::ref(lat[static_cast<std::size_t>(c)]));
    }
    for (auto& th : threads) th.join();
  }
  const double storm_ms = ms_since(storm_t0);
  check_internal(resident->engine().bfs_runs() == bfs_before,
                 "bench_serve: resident queries ran BFS work");

  ResidentPhase phase;
  std::vector<double> all;
  for (auto& per_client : lat) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  phase.requests = all.size();
  phase.qps = static_cast<double>(phase.requests) / (storm_ms / 1000.0);
  std::vector<double> copy = all;
  phase.p50_us = quantile(std::move(copy), 0.5);
  phase.p99_us = quantile(std::move(all), 0.99);
  server.stop();
  std::error_code ec;
  fs::remove(sock, ec);

  const double speedup = cold_median_ms * 1000.0 / phase.p50_us;
  check_internal(speedup >= 10.0,
                 "bench_serve: resident p50 is not >= 10x faster than the "
                 "per-invocation lifecycle");

  Table t({"phase", "p50", "p99", "qps", "notes"});
  t.add_row({"per-invocation", fmt(cold_median_ms, 1) + " ms", "-", "-",
             "load + engine + n-BFS sweep, every time"});
  t.add_row({"resident load", fmt(load_ms, 1) + " ms", "-", "-",
             "once per graph (mmap/varint decode)"});
  t.add_row({"first query", fmt(first_query_ms, 1) + " ms", "-", "-",
             "pays the compute-once sweep"});
  t.add_row({"resident query", fmt(phase.p50_us, 1) + " us",
             fmt(phase.p99_us, 1) + " us", fmt(phase.qps, 0),
             std::to_string(clients) + " clients, 0 BFS runs"});
  t.print(std::cout);
  std::cout << "\nspeedup: resident p50 is " << fmt(speedup, 0)
            << "x faster than per-invocation (gate: >= 10x)\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve\",\n  \"mode\": \""
       << (opt.quick ? "quick" : "default") << "\",\n  \"dataset\": \""
       << fs::path(dataset).filename().string() << "\",\n  \"n\": " << n
       << ", \"m\": " << m << ",\n  \"clients\": " << clients
       << ", \"requests\": " << phase.requests << ",\n"
       << "  \"per_invocation_ms\": " << fmt(cold_median_ms, 2) << ",\n"
       << "  \"resident\": {\"load_ms\": " << fmt(load_ms, 2)
       << ", \"first_query_ms\": " << fmt(first_query_ms, 2)
       << ", \"p50_us\": " << fmt(phase.p50_us, 1)
       << ", \"p99_us\": " << fmt(phase.p99_us, 1)
       << ", \"qps\": " << fmt(phase.qps, 0) << ", \"bfs_runs_delta\": 0},\n"
       << "  \"diameter\": " << diameter_direct
       << ", \"speedup_p50\": " << fmt(speedup, 0) << "\n}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_serve: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
