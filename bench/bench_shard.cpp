// Scaling profile of the sharded multi-process CONGEST backend against the
// in-process sequential engine, on the flooding workload: every node
// broadcasts a two-field message every round, so every directed edge
// carries one delivery per round — the densest traffic the model allows,
// and close to the worst case for the shard boundary.
//
// Two workloads:
//   * toy (default): the synthetic fixed-diameter random graph the bench
//     has always used (--n/--d override the size);
//   * --dataset=FILE: any graph file (.qcg container, edge list, SNAP raw),
//     e.g. data/synth-p2p-10k.qcg — a partition-structure-bearing graph
//     where the greedy partitioner's cut reduction is visible.
//
// Rows: the in-process sequential engine, then ShardedNetwork at
// W ∈ {1, 2, 4, 8} workers under the contiguous partitioner and
// W ∈ {2, 4, 8} under the greedy (cut-minimizing) one. Per row the table
// reports the static boundary fraction, the coordinator's barrier wait per
// round and the boundary bytes moved per round (shm mesh + spill).
//
// Every sharded row is gated on bit-identical parity with the sequential
// run — message count, bit count, round count, quiescence flag, and an
// order-sensitive per-node inbox checksum recovered through the
// state-harvest path. A parity failure is a hard nonzero exit on every
// run, not just under --check. `--check` additionally arms the
// zero-allocation gates: this binary installs the alloc probe, the timed
// reps must not allocate on the coordinator, and every worker arms its own
// probe after warmup (ShardConfig::verify_zero_alloc_from_round) — a
// steady-state allocation on either side of the barrier fails the bench.
// `--out=FILE` emits the JSON summary that seeds BENCH_shard.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "congest/network.hpp"
#include "congest/shard/partition.hpp"
#include "congest/shard/sharded_network.hpp"
#include "graph/io.hpp"
#include "util/alloc_probe.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

QC_INSTALL_ALLOC_PROBE();

using namespace qc;
using namespace qc::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Order-sensitive hash fold; summing per-node hashes gives a workload
/// checksum every engine must reproduce exactly on fault-free runs.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Flooding program: broadcast (id, round) each round, hash everything
/// heard. Serializes its hash so the sharded engine's harvest can bring
/// the checksum back to the coordinator for the parity gate.
class Flood final : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override { blast(ctx); }

  void on_round(congest::NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      sum_ = mix(mix(mix(sum_, in.port), in.msg.field(0)), in.msg.field(1));
    }
    blast(ctx);
  }

  void serialize_state(congest::Message& out) const override {
    out.push(sum_, 64);
  }
  void restore_state(const congest::Message& in) override {
    require(in.num_fields() == 1, "Flood::restore_state: bad shape");
    sum_ = in.field(0);
  }

  std::uint64_t sum() const { return sum_; }

 private:
  static void blast(congest::NodeContext& ctx) {
    congest::Message m;
    m.push(ctx.id(), ctx.id_bits());
    m.push(ctx.round() & 0xFFFFu, 16);
    ctx.broadcast(m);
  }

  std::uint64_t sum_ = 0;
};

struct Result {
  double ms = 0.0;                   ///< best (min) timed repetition
  std::uint64_t messages = 0;        ///< deliveries in that repetition
  std::uint64_t total_messages = 0;  ///< deliveries across all repetitions
  std::uint64_t total_bits = 0;
  std::uint64_t rounds = 0;          ///< total rounds across all repetitions
  bool quiesced = false;             ///< final phase's quiescence flag
  std::uint64_t checksum = 0;
  std::uint64_t boundary_arcs = 0;   ///< directed edges crossing shards
  std::uint64_t timed_allocs = 0;    ///< coordinator heap allocs in the reps
  // From ShardedNetwork::perf(), accumulated over warmup + reps:
  double barrier_us_per_round = 0.0;
  double boundary_bytes_per_round = 0.0;
  std::uint64_t events_elided = 0;
  std::uint64_t spilled_frames = 0;

  double msgs_per_sec() const {
    return static_cast<double>(messages) / std::max(ms, 1e-9) * 1e3;
  }
  double ns_per_delivery() const {
    return ms * 1e6 / static_cast<double>(std::max<std::uint64_t>(messages, 1));
  }
};

/// One benchmark pass over any engine with the Network-shaped API:
/// init, warmup, `reps` timed phases, then the per-node checksum. The
/// sequence of run_rounds calls is identical for every engine, so the
/// accumulated stats are directly comparable. The coordinator-side alloc
/// probe brackets exactly the timed reps: warmup owns every one-time
/// capacity growth, so a warmed steady state must stay at zero.
template <typename Net>
Result drive(Net& net, const graph::Graph& g, std::uint32_t warm,
             std::uint32_t rounds, std::uint32_t reps) {
  net.init_programs([](graph::NodeId) { return std::make_unique<Flood>(); });
  net.run_rounds(warm);
  Result r;
  const std::uint64_t a0 = qc::alloc_probe_count();
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const congest::RunStats st = net.run_rounds(rounds);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < r.ms) {
      r.ms = ms;
      r.messages = st.messages;
    }
    r.total_messages += st.messages;
    r.total_bits += st.bits;
    r.quiesced = st.quiesced;
  }
  r.timed_allocs = qc::alloc_probe_count() - a0;
  r.rounds = net.stats().rounds;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    r.checksum += net.template program_as<Flood>(v).sum();
  }
  return r;
}

Result run_sequential(const graph::Graph& g, std::uint64_t seed,
                      std::uint32_t warm, std::uint32_t rounds,
                      std::uint32_t reps) {
  congest::NetworkConfig cfg;
  cfg.seed = seed;
  congest::Network net(g, cfg);
  return drive(net, g, warm, rounds, reps);
}

Result run_sharded(const graph::Graph& g, std::uint32_t shards,
                   std::shared_ptr<const congest::shard::Partitioner> part,
                   bool check, std::uint64_t seed, std::uint32_t warm,
                   std::uint32_t rounds, std::uint32_t reps) {
  congest::shard::ShardConfig cfg;
  cfg.shards = shards;
  cfg.net.seed = seed;
  cfg.partitioner = std::move(part);
  // Workers arm their own alloc probes after the warmup rounds; a
  // steady-state allocation in any worker fails its run (and thus the
  // bench) with a descriptive error.
  if (check) cfg.verify_zero_alloc_from_round = warm;
  congest::shard::ShardedNetwork net(g, cfg);
  Result r = drive(net, g, warm, rounds, reps);
  for (std::uint32_t s = 0; s < shards; ++s) {
    r.boundary_arcs +=
        congest::shard::boundary_arcs(g, net.assignment(), s).size();
  }
  const auto& perf = net.perf();
  const double per_round =
      1.0 / static_cast<double>(std::max<std::uint64_t>(perf.rounds, 1));
  r.barrier_us_per_round =
      static_cast<double>(perf.barrier_wait_us) * per_round;
  r.boundary_bytes_per_round =
      static_cast<double>(perf.boundary_bytes) * per_round;
  r.events_elided = perf.events_elided;
  r.spilled_frames = perf.spilled_frames;
  net.shutdown();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(
      argc, argv, {"out", "n", "d", "rounds", "check", "dataset"});
  Cli cli(argc, argv);
  const std::string dataset = cli.get_string("dataset", "");
  const auto n =
      static_cast<std::uint32_t>(cli.get_int("n", opt.quick ? 192 : 512));
  const auto d =
      static_cast<std::uint32_t>(cli.get_int("d", opt.quick ? 12 : 32));
  const std::uint32_t default_rounds =
      dataset.empty() ? (opt.quick ? 40u : 160u) : (opt.quick ? 12u : 40u);
  const auto rounds =
      static_cast<std::uint32_t>(cli.get_int("rounds", default_rounds));
  const bool check = cli.get_bool("check", false);
  const std::string out = cli.get_string("out", "");
  const std::uint32_t warm = 8;
  const std::uint32_t reps = dataset.empty() ? (opt.quick ? 2 : 4)
                                             : (opt.quick ? 1 : 2);

  banner("sharded multi-process engine vs in-process sequential",
         "flooding workload: one delivery per directed edge per round; "
         "every sharded row must be bit-identical to the sequential run");

  std::string workload_name = "toy";
  graph::Graph g = [&] {
    if (dataset.empty()) return workload(n, d, opt.seed);
    workload_name = dataset;
    std::cout << "dataset: " << dataset << "\n";
    return graph::load_graph_file(dataset);
  }();

  const auto contiguous =
      std::make_shared<congest::shard::ContiguousPartitioner>();
  const auto greedy = std::make_shared<congest::shard::GreedyGrowPartitioner>();

  struct NamedResult {
    std::string name;
    std::uint32_t shards;  ///< 0 = in-process
    Result r;
  };
  std::vector<NamedResult> results;
  results.push_back({"seq", 0, run_sequential(g, opt.seed, warm, rounds, reps)});
  for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
    results.push_back({"shard_w" + std::to_string(w), w,
                       run_sharded(g, w, contiguous, check, opt.seed, warm,
                                   rounds, reps)});
  }
  for (const std::uint32_t w : {2u, 4u, 8u}) {
    results.push_back({"shard_w" + std::to_string(w) + "_greedy", w,
                       run_sharded(g, w, greedy, check, opt.seed, warm,
                                   rounds, reps)});
  }

  const Result& seq = results[0].r;
  const std::uint64_t arcs_total = 2ull * g.m();

  Table t({"config", "ms", "msgs/sec", "ns/delivery", "boundary%",
           "barrier us/rd", "bytes/rd", "vs seq"});
  for (const auto& nr : results) {
    const double bfrac =
        100.0 * static_cast<double>(nr.r.boundary_arcs) /
        static_cast<double>(std::max<std::uint64_t>(arcs_total, 1));
    const bool sharded = nr.shards != 0;
    t.add_row({nr.name, fmt(nr.r.ms, 1), fmt(nr.r.msgs_per_sec(), 0),
               fmt(nr.r.ns_per_delivery(), 1),
               sharded ? fmt(bfrac, 1) : std::string("-"),
               sharded ? fmt(nr.r.barrier_us_per_round, 0) : std::string("-"),
               sharded ? fmt(nr.r.boundary_bytes_per_round, 0)
                       : std::string("-"),
               fmt(seq.ms / std::max(nr.r.ms, 1e-9), 2) + "x"});
  }
  t.print(std::cout);

  // Parity gates: every sharded configuration must agree with the
  // sequential engine on every observable — these run on every invocation
  // and are the reason this bench doubles as a stress test in CI.
  for (const auto& nr : results) {
    if (nr.shards == 0) continue;
    check_internal(nr.r.total_messages == seq.total_messages &&
                       nr.r.total_bits == seq.total_bits,
                   nr.name + " disagrees with the sequential engine on "
                             "message/bit totals");
    check_internal(nr.r.rounds == seq.rounds &&
                       nr.r.quiesced == seq.quiesced,
                   nr.name + " disagrees with the sequential engine on "
                             "rounds/quiescence");
    check_internal(nr.r.checksum == seq.checksum,
                   nr.name + " harvested a different inbox checksum than "
                             "the sequential engine");
  }
  check_internal(seq.total_messages > 0, "workload delivered no messages");
  // The greedy partitioner must never cut more than contiguous does at the
  // same W (it falls back to contiguous-like growth in the worst case and
  // exploits locality when the graph has any).
  for (const auto& nr : results) {
    if (nr.name.find("_greedy") == std::string::npos) continue;
    for (const auto& base : results) {
      if (base.name == "shard_w" + std::to_string(nr.shards)) {
        check_internal(nr.r.boundary_arcs <= base.r.boundary_arcs,
                       nr.name + " cut MORE boundary arcs than contiguous");
      }
    }
  }
  if (check) {
    // Zero-allocation gates. Worker-side violations already failed inside
    // run_sharded; this pins the coordinator's barrier loop.
    for (const auto& nr : results) {
      if (nr.shards == 0) continue;
      check_internal(nr.r.timed_allocs == 0,
                     nr.name + " coordinator allocated " +
                         std::to_string(nr.r.timed_allocs) +
                         " time(s) during the timed steady-state reps");
    }
    std::cout << "\ncheck mode: parity + zero-alloc assertions passed for "
                 "every worker count\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"shard_scaling\",\n"
       << "  \"workload\": \"" << workload_name << "\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"n\": " << g.n() << ",\n"
       << "  \"edges\": " << g.m() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"warmup_rounds\": " << warm << ",\n"
       << "  \"bandwidth_bits\": " << congest_bandwidth_bits(g.n()) << ",\n"
       << "  \"configs\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& nr = results[i];
    json << "    \"" << nr.name << "\": {\"ms\": " << fmt(nr.r.ms, 3)
         << ", \"messages\": " << nr.r.messages
         << ", \"msgs_per_sec\": " << fmt(nr.r.msgs_per_sec(), 0)
         << ", \"ns_per_delivery\": " << fmt(nr.r.ns_per_delivery(), 1)
         << ", \"boundary_arcs\": " << nr.r.boundary_arcs
         << ", \"barrier_us_per_round\": " << fmt(nr.r.barrier_us_per_round, 1)
         << ", \"boundary_bytes_per_round\": "
         << fmt(nr.r.boundary_bytes_per_round, 0)
         << ", \"events_elided\": " << nr.r.events_elided
         << ", \"spilled_frames\": " << nr.r.spilled_frames
         << ", \"speedup_vs_seq\": "
         << fmt(seq.ms / std::max(nr.r.ms, 1e-9), 3) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"parity\": \"bit-identical\",\n"
       << "  \"results_equal\": true\n"
       << "}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_shard: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
