// Scaling profile of the sharded multi-process CONGEST backend against the
// in-process sequential engine, on the flooding workload: every node
// broadcasts a two-field message every round, so every directed edge
// carries one delivery per round — the densest traffic the model allows,
// and (on a random graph with no partition locality) close to the worst
// case for the shard boundary, since most edges cross worker boundaries
// and every crossing delivery is serialized through the round barrier.
//
// Rows: the in-process sequential engine, then ShardedNetwork at
// W ∈ {1, 2, 4, 8} workers. Every sharded row is gated on bit-identical
// parity with the sequential run — message count, bit count, round count,
// quiescence flag, and an order-sensitive per-node inbox checksum
// recovered through the state-harvest path. A parity failure is a hard
// nonzero exit on every run, not just under --check; `--check` only makes
// that explicit in the output. `--out=FILE` emits the JSON summary that
// seeds BENCH_shard.json at the repo root.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "congest/network.hpp"
#include "congest/shard/partition.hpp"
#include "congest/shard/sharded_network.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Order-sensitive hash fold; summing per-node hashes gives a workload
/// checksum every engine must reproduce exactly on fault-free runs.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Flooding program: broadcast (id, round) each round, hash everything
/// heard. Serializes its hash so the sharded engine's harvest can bring
/// the checksum back to the coordinator for the parity gate.
class Flood final : public congest::NodeProgram {
 public:
  void on_start(congest::NodeContext& ctx) override { blast(ctx); }

  void on_round(congest::NodeContext& ctx) override {
    for (const auto& in : ctx.inbox()) {
      sum_ = mix(mix(mix(sum_, in.port), in.msg.field(0)), in.msg.field(1));
    }
    blast(ctx);
  }

  void serialize_state(congest::Message& out) const override {
    out.push(sum_, 64);
  }
  void restore_state(const congest::Message& in) override {
    require(in.num_fields() == 1, "Flood::restore_state: bad shape");
    sum_ = in.field(0);
  }

  std::uint64_t sum() const { return sum_; }

 private:
  static void blast(congest::NodeContext& ctx) {
    congest::Message m;
    m.push(ctx.id(), ctx.id_bits());
    m.push(ctx.round() & 0xFFFFu, 16);
    ctx.broadcast(m);
  }

  std::uint64_t sum_ = 0;
};

struct Result {
  double ms = 0.0;                   ///< best (min) timed repetition
  std::uint64_t messages = 0;        ///< deliveries in that repetition
  std::uint64_t total_messages = 0;  ///< deliveries across all repetitions
  std::uint64_t total_bits = 0;
  std::uint64_t rounds = 0;          ///< total rounds across all repetitions
  bool quiesced = false;             ///< final phase's quiescence flag
  std::uint64_t checksum = 0;
  std::uint64_t boundary_arcs = 0;   ///< directed edges crossing shards

  double msgs_per_sec() const {
    return static_cast<double>(messages) / std::max(ms, 1e-9) * 1e3;
  }
  double ns_per_delivery() const {
    return ms * 1e6 / static_cast<double>(std::max<std::uint64_t>(messages, 1));
  }
};

/// One benchmark pass over any engine with the Network-shaped API:
/// init, warmup, `reps` timed phases, then the per-node checksum. The
/// sequence of run_rounds calls is identical for every engine, so the
/// accumulated stats are directly comparable.
template <typename Net>
Result drive(Net& net, const graph::Graph& g, std::uint32_t warm,
             std::uint32_t rounds, std::uint32_t reps) {
  net.init_programs([](graph::NodeId) { return std::make_unique<Flood>(); });
  net.run_rounds(warm);
  Result r;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const congest::RunStats st = net.run_rounds(rounds);
    const double ms = ms_since(t0);
    if (rep == 0 || ms < r.ms) {
      r.ms = ms;
      r.messages = st.messages;
    }
    r.total_messages += st.messages;
    r.total_bits += st.bits;
    r.quiesced = st.quiesced;
  }
  r.rounds = net.stats().rounds;
  for (graph::NodeId v = 0; v < g.n(); ++v) {
    r.checksum += net.template program_as<Flood>(v).sum();
  }
  return r;
}

Result run_sequential(const graph::Graph& g, std::uint64_t seed,
                      std::uint32_t warm, std::uint32_t rounds,
                      std::uint32_t reps) {
  congest::NetworkConfig cfg;
  cfg.seed = seed;
  congest::Network net(g, cfg);
  return drive(net, g, warm, rounds, reps);
}

Result run_sharded(const graph::Graph& g, std::uint32_t shards,
                   std::uint64_t seed, std::uint32_t warm,
                   std::uint32_t rounds, std::uint32_t reps) {
  congest::shard::ShardConfig cfg;
  cfg.shards = shards;
  cfg.net.seed = seed;
  congest::shard::ShardedNetwork net(g, cfg);
  Result r = drive(net, g, warm, rounds, reps);
  for (std::uint32_t s = 0; s < shards; ++s) {
    r.boundary_arcs +=
        congest::shard::boundary_arcs(g, net.assignment(), s).size();
  }
  net.shutdown();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt =
      BenchOptions::parse(argc, argv, {"out", "n", "d", "rounds", "check"});
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint32_t>(cli.get_int("n", opt.quick ? 192 : 512));
  const auto d =
      static_cast<std::uint32_t>(cli.get_int("d", opt.quick ? 12 : 32));
  const auto rounds =
      static_cast<std::uint32_t>(cli.get_int("rounds", opt.quick ? 40 : 160));
  const bool check = cli.get_bool("check", false);
  const std::string out = cli.get_string("out", "");
  const std::uint32_t warm = 8;
  const std::uint32_t reps = opt.quick ? 2 : 4;

  banner("sharded multi-process engine vs in-process sequential",
         "flooding workload: one delivery per directed edge per round; "
         "every sharded row must be bit-identical to the sequential run");

  const auto g = workload(n, d, opt.seed);

  struct NamedResult {
    std::string name;
    std::uint32_t shards;  ///< 0 = in-process
    Result r;
  };
  std::vector<NamedResult> results;
  results.push_back({"seq", 0, run_sequential(g, opt.seed, warm, rounds, reps)});
  for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
    results.push_back({"shard_w" + std::to_string(w), w,
                       run_sharded(g, w, opt.seed, warm, rounds, reps)});
  }

  const Result& seq = results[0].r;
  const std::uint64_t arcs_total = 2ull * g.m();

  Table t({"config", "ms", "messages", "msgs/sec", "ns/delivery",
           "boundary%", "vs seq"});
  for (const auto& nr : results) {
    const double bfrac =
        100.0 * static_cast<double>(nr.r.boundary_arcs) /
        static_cast<double>(std::max<std::uint64_t>(arcs_total, 1));
    t.add_row({nr.name, fmt(nr.r.ms, 1), fmt(nr.r.messages),
               fmt(nr.r.msgs_per_sec(), 0), fmt(nr.r.ns_per_delivery(), 1),
               nr.shards == 0 ? std::string("-") : fmt(bfrac, 1),
               fmt(seq.ms / std::max(nr.r.ms, 1e-9), 2) + "x"});
  }
  t.print(std::cout);

  // Parity gates: every sharded configuration must agree with the
  // sequential engine on every observable — these run on every invocation
  // and are the reason this bench doubles as a stress test in CI.
  for (const auto& nr : results) {
    if (nr.shards == 0) continue;
    check_internal(nr.r.total_messages == seq.total_messages &&
                       nr.r.total_bits == seq.total_bits,
                   nr.name + " disagrees with the sequential engine on "
                             "message/bit totals");
    check_internal(nr.r.rounds == seq.rounds &&
                       nr.r.quiesced == seq.quiesced,
                   nr.name + " disagrees with the sequential engine on "
                             "rounds/quiescence");
    check_internal(nr.r.checksum == seq.checksum,
                   nr.name + " harvested a different inbox checksum than "
                             "the sequential engine");
  }
  check_internal(seq.total_messages > 0, "workload delivered no messages");
  if (check) {
    std::cout << "\ncheck mode: parity assertions passed for every worker "
                 "count\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"shard_scaling\",\n"
       << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"edges\": " << g.m() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"warmup_rounds\": " << warm << ",\n"
       << "  \"bandwidth_bits\": " << congest_bandwidth_bits(n) << ",\n"
       << "  \"configs\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& nr = results[i];
    json << "    \"" << nr.name << "\": {\"ms\": " << fmt(nr.r.ms, 3)
         << ", \"messages\": " << nr.r.messages
         << ", \"msgs_per_sec\": " << fmt(nr.r.msgs_per_sec(), 0)
         << ", \"ns_per_delivery\": " << fmt(nr.r.ns_per_delivery(), 1)
         << ", \"boundary_arcs\": " << nr.r.boundary_arcs
         << ", \"speedup_vs_seq\": "
         << fmt(seq.ms / std::max(nr.r.ms, 1e-9), 3) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"parity\": \"bit-identical\",\n"
       << "  \"results_equal\": true\n"
       << "}\n";
  std::cout << "\n" << json.str();
  if (!out.empty()) {
    std::ofstream f(out);
    require(f.good(), "bench_shard: cannot open --out file " + out);
    f << json.str();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}
