// Figure 2 / Proposition 4: the Evaluation procedure computes
// f(u0) = max_{v in S(u0)} ecc(v) in O(d) rounds with O(log n) memory and
// no congestion (Lemmas 2-4 are asserted inside the implementation; this
// bench sweeps the parameters and reports the measured budgets).

#include "algos/bfs_tree.hpp"
#include "algos/evaluation.hpp"
#include "bench/harness.hpp"
#include "graph/algorithms.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 2 / the Evaluation procedure (Proposition 4)",
         "rounds linear in d = ecc(leader); zero bandwidth violations; "
         "result equals the centralized reference on every run");

  // ---- Rounds vs d at fixed n.
  {
    const std::uint32_t n = opt.quick ? 128 : 256;
    Table t({"n", "d=ecc(root)", "steps=2d", "|S(u0)| (median)", "rounds",
             "rounds/d", "max msg bits", "bw"});
    std::vector<double> xs, ys;
    for (std::uint32_t d : {4u, 8u, 16u, 32u, 64u}) {
      auto g = workload(n, d, opt.seed + d);
      auto tree = algos::build_bfs_tree(g, 0).tree;
      auto num = graph::dfs_numbering(tree.to_bfs_tree());
      const std::uint32_t steps = 2 * tree.height;
      double rounds = 0, window = 0, max_bits = 0;
      int samples = 0;
      for (graph::NodeId u0 = 0; u0 < g.n();
           u0 += std::max(1u, g.n() / 8)) {
        auto eval =
            algos::evaluate_window_ecc(g, tree, u0, steps);
        check_internal(eval.stats.violations == 0, "congestion in Figure 2");
        check_internal(
            eval.max_ecc == graph::max_ecc_in_segment(g, num, u0, steps),
            "Figure 2 result mismatch");
        rounds = static_cast<double>(eval.stats.rounds);  // u0-independent
        window += static_cast<double>(eval.window.size());
        max_bits = std::max(max_bits,
                            static_cast<double>(eval.stats.max_edge_bits));
        ++samples;
      }
      window /= samples;
      xs.push_back(tree.height);
      ys.push_back(rounds);
      t.add_row({fmt(n), fmt(tree.height), fmt(steps), fmt(window, 1),
                 fmt(rounds, 0),
                 fmt(rounds / std::max(1u, tree.height), 1), fmt(max_bits, 0),
                 fmt(congest_bandwidth_bits(n))});
    }
    t.print(std::cout);
    print_fit("  rounds ~ d^e", xs, ys, 1.0);
    std::cout << "  (the Figure 2 budget is 2d + (6d+2) + (d+1) ~ 9d)\n\n";
  }

  // ---- Window coverage (Lemma 1): the fraction of starting points whose
  // window contains a fixed target is at least d/2n.
  {
    const std::uint32_t n = opt.quick ? 128 : 200;
    Table t({"d", "min coverage over v", "Lemma 1 floor d/2n"});
    for (std::uint32_t d : {8u, 16u, 32u}) {
      auto g = workload(n, d, opt.seed + 91 * d);
      auto tree = graph::bfs_tree(g, 0);
      auto num = graph::dfs_numbering(tree);
      const std::uint32_t steps = 2 * tree.height;
      double min_cov = 1.0;
      for (graph::NodeId v = 0; v < g.n(); v += std::max(1u, g.n() / 16)) {
        std::uint32_t covered = 0;
        for (graph::NodeId u = 0; u < g.n(); ++u) {
          auto seg = graph::segment_window(num, u, steps);
          covered += seg.tau_prime[v] >= 0 ? 1 : 0;
        }
        min_cov = std::min(
            min_cov, static_cast<double>(covered) / static_cast<double>(n));
      }
      const double floor = static_cast<double>(tree.height) / (2.0 * n);
      check_internal(min_cov >= floor, "Lemma 1 coverage violated");
      t.add_row({fmt(tree.height), fmt(min_cov, 3), fmt(floor, 3)});
    }
    t.print(std::cout);
    std::cout << "  coverage >= d/2n everywhere: Lemma 1 (P_opt bound) "
                 "holds on real tours.\n";
  }
  return 0;
}
