// Table 1, lower-bound rows (Theorems 2 and 3) on the Figure 8
// construction: the subdivided ACHK16 gadget G'_n(x,y) has diameter d+4 or
// d+5 according to DISJ, and the measured quantum rounds on these networks
// always sit above the Omega~(sqrt(nD/s)) floor while the Theorem 1 upper
// bound tracks O~(sqrt(nD)) — together bracketing the true complexity for
// polylog-memory algorithms.

#include "bench/harness.hpp"
#include "commcc/disjointness.hpp"
#include "commcc/reductions.hpp"
#include "commcc/two_party.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;
using namespace qc::commcc;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 8 / Theorem 3: large-diameter lower bound",
         "G'_n(x,y) decides DISJ_k via diameter d+4 vs d+5; quantum rounds "
         "stay between the Theorem 3 floor and the Theorem 1 ceiling");

  const std::uint32_t k = opt.quick ? 8 : 16;
  auto red = achk16_reduction(k);
  Rng rng(opt.seed);

  Table t({"d", "n'", "D (disj)", "D (inter)", "quantum rounds r",
           "floor sqrt(n'D/s)", "ceiling ~sqrt(n'D)", "diam ok"});
  std::vector<double> xs, ys;
  for (std::uint32_t d : opt.quick ? std::vector<std::uint32_t>{2, 8}
                                   : std::vector<std::uint32_t>{2, 4, 8, 16,
                                                                32}) {
    auto [x0, y0] = random_disj_instance(red.k, false, rng);
    auto [x1, y1] = random_disj_instance(red.k, true, rng);
    auto g0 = subdivide_cut(red, x0, y0, d);
    auto g1 = subdivide_cut(red, x1, y1, d);

    const auto d0 = graph::diameter(g0);
    const auto d1 = graph::diameter(g1);
    const bool diam_ok = d0 == red.d1 + d && d1 == red.d2 + d;
    check_internal(diam_ok, "Figure 8 diameter dichotomy failed");

    core::QuantumConfig cfg;
    cfg.oracle = core::OracleMode::kDirect;
    cfg.seed = opt.seed + d;
    auto rep0 = core::quantum_diameter_exact(g0, cfg);
    auto rep1 = core::quantum_diameter_exact(g1, cfg);
    check_internal(rep0.diameter == d0 && rep1.diameter == d1,
                   "quantum algorithm wrong on gadget");
    const double rounds = static_cast<double>(
        std::max(rep0.total_rounds, rep1.total_rounds));

    const double n_prime = g0.n();
    // Polylog memory per node: the Theorem 1 algorithm uses O(log^2 n).
    const double s_mem =
        static_cast<double>(rep0.per_node_memory_qubits);
    const double floor = theorem3_round_floor(n_prime, d0, s_mem);
    const double ceiling = std::sqrt(n_prime * d0);

    check_internal(rounds >= floor, "beat the Theorem 3 floor?!");
    // n' grows with d in this family (n' = n + b*d), so the predicted law
    // is rounds ~ sqrt(n'*D): fit against the product.
    xs.push_back(n_prime * d0);
    ys.push_back(rounds);
    t.add_row({fmt(d), fmt(g0.n()), fmt(d0), fmt(d1), fmt(rounds, 0),
               fmt(floor, 1), fmt(ceiling, 1), diam_ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  print_fit("  quantum rounds vs (n'*D) on gadgets ~ (n'D)^e", xs, ys, 0.5);
  std::cout
      << "  Theorems 1 + 3 bracket the polylog-memory complexity at "
         "Theta~(sqrt(nD)); the floor uses the algorithm's own\n"
         "  measured per-node memory s = O(log^2 n) as Theorem 3's s.\n";
  return 0;
}
