// Figure 1 / Proposition 1: distributed BFS-tree construction finishes in
// O(ecc(leader)) rounds with O(log n)-bit messages, on every topology
// family.

#include "algos/bfs_tree.hpp"
#include "bench/harness.hpp"
#include "graph/algorithms.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Figure 1 / BFS-tree construction (Proposition 1)",
         "rounds tracked against ecc(root); trees verified against the "
         "centralized reference; messages stay within O(log n) bits");

  struct Case {
    std::string name;
    graph::Graph g;
  };
  Rng rng(opt.seed);
  std::vector<Case> cases;
  cases.push_back({"path(200)", graph::make_path(200)});
  cases.push_back({"cycle(201)", graph::make_cycle(201)});
  cases.push_back({"star(200)", graph::make_star(200)});
  cases.push_back({"grid(14x14)", graph::make_grid(14, 14)});
  cases.push_back({"torus(10x10)", graph::make_torus(10, 10)});
  cases.push_back({"tree(255,ary2)", graph::make_balanced_tree(255, 2)});
  cases.push_back({"barbell(40,30)", graph::make_barbell(40, 30)});
  cases.push_back({"er(300,p=.02)", graph::make_connected_er(300, 0.02, rng)});
  cases.push_back(
      {"diam(400,24)", graph::make_random_with_diameter(400, 24, rng)});

  Table t({"topology", "n", "m", "ecc(root)", "rounds", "rounds/ecc",
           "max msg bits", "bw limit"});
  for (const auto& c : cases) {
    auto out = algos::build_bfs_tree(c.g, 0);
    auto ref = graph::bfs_tree(c.g, 0);
    check_internal(out.tree.parent == ref.parent && out.tree.depth == ref.depth,
                   "distributed BFS tree mismatch in bench");
    const double ecc = std::max(1u, ref.height);
    t.add_row({c.name, fmt(c.g.n()), fmt(c.g.m()), fmt(ref.height),
               fmt(out.stats.rounds),
               fmt(static_cast<double>(out.stats.rounds) / ecc, 2),
               fmt(out.stats.max_edge_bits),
               fmt(congest_bandwidth_bits(c.g.n()))});
  }
  t.print(std::cout);
  std::cout << "  rounds/ecc stays ~1 across shapes: the O(D) bound of "
               "Proposition 1.\n";
  return 0;
}
