#pragma once

// Shared helpers for the paper-reproduction benchmark harness. Each bench
// binary regenerates one table/figure of the evaluation (see DESIGN.md §3):
// it sweeps the workload parameters, measures CONGEST rounds on the
// simulator, prints a table, and fits the scaling exponent against the
// paper's prediction. Absolute constants are simulator-specific; the
// *shape* (exponents, separations, crossovers) is what reproduces.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace qc::bench {

/// Standard banner so bench outputs are self-describing in logs.
inline void banner(const std::string& title, const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n" << claim << "\n\n";
}

/// Median of `trials` runs of `f(seed)`. Moves the sample vector into
/// quantile() — the selection-based implementation partitions in place, so
/// no copy is made.
template <typename F>
double median_over_seeds(int trials, std::uint64_t base_seed, F&& f) {
  std::vector<double> xs;
  xs.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    xs.push_back(static_cast<double>(f(base_seed + t)));
  }
  return quantile(std::move(xs), 0.5);
}

/// Prints a fitted power law y ~ x^e next to the paper's predicted
/// exponent.
inline void print_fit(const std::string& label, std::span<const double> xs,
                      std::span<const double> ys, double predicted) {
  const auto fit = fit_power_law(xs, ys);
  std::cout << label << ": measured exponent " << fmt(fit.slope, 3)
            << " (paper predicts ~" << fmt(predicted, 2)
            << ", R^2 = " << fmt(fit.r2, 3) << ")\n";
}

/// The main workload family: connected graph with exactly the requested
/// diameter (decouples n from D — the axis Table 1 is about).
inline graph::Graph workload(std::uint32_t n, std::uint32_t d,
                             std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

/// Quick-mode switch: `--quick` shrinks sweeps for smoke runs; the default
/// sizes are chosen so every bench completes in seconds.
///
/// Parsing is strict: malformed values (--trials=abc) and flags outside
/// {--quick, --trials, --seed, --metrics-out} + `extra` abort with a
/// message instead of silently running the default sweep.
///
/// `--metrics-out=FILE` arms a qc::metrics capture for the whole bench
/// run: the session lives inside the returned options object and writes
/// the JSONL when the options go out of scope at the end of main.
struct BenchOptions {
  bool quick = false;
  int trials = 3;
  std::uint64_t seed = 1234;
  std::string metrics_out;
  std::shared_ptr<metrics::ScopedExport> metrics_session;

  static BenchOptions parse(int argc, char** argv,
                            const std::vector<std::string>& extra = {}) {
    try {
      Cli cli(argc, argv);
      std::vector<std::string> allowed = {"quick", "trials", "seed",
                                          "metrics-out"};
      allowed.insert(allowed.end(), extra.begin(), extra.end());
      cli.expect_flags(allowed);
      BenchOptions o;
      o.quick = cli.get_bool("quick", false);
      o.trials = static_cast<int>(cli.get_int("trials", o.quick ? 2 : 3));
      o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1234));
      o.metrics_out = cli.get_string("metrics-out", "");
      o.metrics_session =
          std::make_shared<metrics::ScopedExport>(o.metrics_out);
      return o;
    } catch (const Error& e) {  // bench mains have no try/catch of their own
      std::cerr << "error: " << e.what() << "\n";
      std::exit(2);
    }
  }
};

}  // namespace qc::bench
