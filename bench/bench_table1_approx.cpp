// Table 1, rows "3/2-approximation": classical O~(sqrt(n) + D)
// [LP13, HPRW14] versus quantum O~(cbrt(n*D) + D) (Theorem 4), plus the
// approximation-quality guarantee D-bar <= D <= 3*D-bar/2.

#include "algos/hprw.hpp"
#include "bench/harness.hpp"
#include "core/quantum_approx.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"

using namespace qc;
using namespace qc::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  banner("Table 1 / 3/2-approximation",
         "classical O~(sqrt(n)+D) [LP13,HPRW14] vs quantum O~(cbrt(nD)+D) "
         "(Theorem 4); every estimate checked against 2D/3 <= est <= D");

  // ---- Round complexity vs n at fixed small D.
  {
    const std::uint32_t d = 8;
    std::vector<std::uint32_t> ns =
        opt.quick ? std::vector<std::uint32_t>{64, 128}
                  : std::vector<std::uint32_t>{64, 128, 256, 512, 768};
    Table t({"n", "D", "classical rounds", "quantum rounds", "cl est", "qu est"});
    std::vector<double> xs, yc, yq;
    for (auto n : ns) {
      double c_rounds = 0, q_rounds = 0;
      std::uint32_t c_est = 0, q_est = 0;
      c_rounds = median_over_seeds(opt.trials, opt.seed + n, [&](auto s) {
        auto g = workload(n, d, s);
        congest::NetworkConfig net;
        net.seed = s;
        auto rep = algos::classical_approx_diameter(g, 0, net);
        check_internal(!rep.aborted, "classical approx aborted");
        check_internal(rep.estimate <= d && 3 * rep.estimate >= 2 * d,
                       "classical approx guarantee violated");
        c_est = rep.estimate;
        return static_cast<double>(rep.stats.rounds);
      });
      q_rounds = median_over_seeds(opt.trials, opt.seed + n, [&](auto s) {
        auto g = workload(n, d, s);
        core::QuantumConfig cfg;
        cfg.oracle = core::OracleMode::kDirect;
        cfg.seed = s;
        cfg.net.seed = s;
        auto rep = core::quantum_diameter_approx(g, cfg);
        check_internal(!rep.aborted, "quantum approx aborted");
        check_internal(rep.estimate <= d && 3 * rep.estimate >= 2 * d,
                       "quantum approx guarantee violated");
        q_est = rep.estimate;
        return static_cast<double>(rep.total_rounds);
      });
      xs.push_back(n);
      yc.push_back(c_rounds);
      yq.push_back(q_rounds);
      t.add_row({fmt(n), fmt(d), fmt(c_rounds, 0), fmt(q_rounds, 0),
                 fmt(c_est), fmt(q_est)});
    }
    std::cout << "Round complexity vs n (D = " << d << "):\n";
    t.print(std::cout);
    print_fit("  classical rounds ~ n^e", xs, yc, 0.5);
    print_fit("  quantum rounds   ~ n^e", xs, yq, 1.0 / 3.0);
    std::cout << "\n";
  }

  // ---- Quality histogram: how tight is the estimate in practice.
  {
    const std::uint32_t n = opt.quick ? 96 : 192;
    Table t({"D", "exact", "classical est", "quantum est", "est/D (quantum)"});
    for (std::uint32_t d : {6u, 12u, 24u, 48u}) {
      auto g = workload(n, d, opt.seed + d);
      congest::NetworkConfig net;
      auto c = algos::classical_approx_diameter(g, 0, net);
      core::QuantumConfig cfg;
      cfg.oracle = core::OracleMode::kDirect;
      auto q = core::quantum_diameter_approx(g, cfg);
      t.add_row({fmt(d), fmt(d), fmt(c.estimate), fmt(q.estimate),
                 fmt(static_cast<double>(q.estimate) / d, 2)});
    }
    std::cout << "Approximation quality (n = " << n << "):\n";
    t.print(std::cout);
    std::cout << "  guarantee: est in [2D/3, D]; observed estimates are "
                 "typically much tighter\n";
  }
  return 0;
}
