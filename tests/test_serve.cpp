// The serve layer, end to end: wire-protocol codec round-trips and
// adversarial rejection paths, frame IO over real fds (truncation, caps,
// clean EOF), GraphRegistry load-once semantics under concurrency, the
// Server op switch checked bit-identical against a direct EccEngine, and
// full socket round-trips with concurrent clients, malformed peers,
// admission rejection and per-request timeouts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QC_TEST_HAVE_SOCKETS 1
#include <unistd.h>
#else
#define QC_TEST_HAVE_SOCKETS 0
#endif

namespace qc::serve {
namespace {

namespace fs = std::filesystem;

// Scratch file under the system temp dir, removed on scope exit. Names are
// prefixed per test so parallel ctest binaries never collide.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() / ("qc_test_serve_" + tag)).string()) {
    std::error_code ec;
    fs::remove(path, ec);  // a crashed previous run may have left one
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string path;
};

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Writes `g` as a .qcg file and returns it re-read, so tests compare the
// server's answers against an engine over the *same* decoded bytes.
graph::Graph write_graph(const std::string& path, const graph::Graph& g) {
  graph::write_qcg_file(path, g);
  return graph::read_qcg_file(path);
}

void store_le32(std::uint8_t* p, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(x >> (8 * i));
}

// ---------------------------------------------------------------------------
// Protocol codec: round-trips and rejection of every malformed shape.
// ---------------------------------------------------------------------------

TEST(Protocol, RequestRoundTripsEveryOp) {
  for (std::uint8_t op = 0; op <= kMaxOp; ++op) {
    Request req;
    req.op = static_cast<Op>(op);
    req.path = op % 2 ? "data/some graph \"x\".qcg" : "";
    req.arg = 0x0123456789abcdefull + op;
    const auto payload = encode_request(req);
    const Request back = decode_request(payload);
    EXPECT_EQ(back.op, req.op);
    EXPECT_EQ(back.path, req.path);
    EXPECT_EQ(back.arg, req.arg);
  }
}

TEST(Protocol, ResponseRoundTripsEveryStatus) {
  for (std::uint8_t s = 0; s <= kMaxStatus; ++s) {
    Response resp;
    resp.status = static_cast<Status>(s);
    resp.value = 0xfedcba9876543210ull;
    resp.aux = 42 + s;
    resp.message = "answer with\nnewline and nul-free text";
    const Response back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.value, resp.value);
    EXPECT_EQ(back.aux, resp.aux);
    EXPECT_EQ(back.message, resp.message);
  }
}

TEST(Protocol, RejectsWrongVersion) {
  auto payload = encode_request({Op::kPing, "", 0});
  payload[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_request(payload), ProtocolError);
  auto rp = encode_response({Status::kOk, 0, 0, ""});
  rp[0] = 0;
  EXPECT_THROW(decode_response(rp), ProtocolError);
}

TEST(Protocol, RejectsUnknownOpAndStatusBytes) {
  auto payload = encode_request({Op::kPing, "", 0});
  payload[1] = kMaxOp + 1;
  EXPECT_THROW(decode_request(payload), ProtocolError);
  payload[1] = 0xff;
  EXPECT_THROW(decode_request(payload), ProtocolError);
  auto rp = encode_response({Status::kOk, 0, 0, ""});
  rp[1] = kMaxStatus + 1;
  EXPECT_THROW(decode_response(rp), ProtocolError);
}

TEST(Protocol, RejectsNonzeroReservedBytes) {
  auto payload = encode_request({Op::kDiameter, "g.qcg", 0});
  payload[2] = 1;
  EXPECT_THROW(decode_request(payload), ProtocolError);
  payload[2] = 0;
  payload[3] = 7;
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, RejectsTruncatedAndOverlongPayloads) {
  const auto payload = encode_request({Op::kLoad, "abc.qcg", 9});
  // Every strict prefix is short: either below the fixed header or
  // disagreeing with the path-length field.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        decode_request(std::span(payload.data(), len)), ProtocolError)
        << "prefix length " << len;
  }
  auto longer = payload;
  longer.push_back(0);  // trailing garbage must not be ignored
  EXPECT_THROW(decode_request(longer), ProtocolError);
}

TEST(Protocol, RejectsPathLengthAboveCap) {
  // encode_request refuses to build one, so craft the payload by hand.
  EXPECT_THROW(
      encode_request({Op::kLoad, std::string(kMaxPathBytes + 1, 'x'), 0}),
      InvalidArgumentError);
  std::vector<std::uint8_t> payload = {kProtocolVersion,
                                       static_cast<std::uint8_t>(Op::kLoad),
                                       0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                       0, 0, 0, 0};
  store_le32(payload.data() + 12, kMaxPathBytes + 1);
  payload.resize(16 + kMaxPathBytes + 1, 'x');
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, ResponseTruncatesOversizedMessage) {
  Response resp{Status::kError, 0, 0,
                std::string(kMaxMessageBytes + 1000, 'e')};
  const Response back = decode_response(encode_response(resp));
  EXPECT_EQ(back.message.size(), kMaxMessageBytes);
}

TEST(Protocol, OpAndStatusNames) {
  EXPECT_STREQ(op_name(Op::kDiameter), "diameter");
  EXPECT_STREQ(op_name(Op::kGraphInfo), "graph-info");
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kRejected), "rejected");
}

#if QC_TEST_HAVE_SOCKETS

// ---------------------------------------------------------------------------
// Frame IO over real fds: a pipe gives the same read()/write() semantics
// as a stream socket without needing a listener.
// ---------------------------------------------------------------------------

struct Pipe {
  int rd = -1, wr = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    rd = fds[0];
    wr = fds[1];
  }
  ~Pipe() {
    close_wr();
    if (rd >= 0) ::close(rd);
  }
  void close_wr() {
    if (wr >= 0) ::close(wr);
    wr = -1;
  }
};

TEST(FrameIo, RoundTripOverPipe) {
  Pipe p;
  const auto out = encode_request({Op::kEcc, "g.qcg", 17});
  write_frame(p.wr, out);
  std::vector<std::uint8_t> in;
  ASSERT_TRUE(read_frame(p.rd, in));
  EXPECT_EQ(in, out);
  const Request req = decode_request(in);
  EXPECT_EQ(req.op, Op::kEcc);
  EXPECT_EQ(req.arg, 17u);
}

TEST(FrameIo, CleanEofReturnsFalse) {
  Pipe p;
  p.close_wr();
  std::vector<std::uint8_t> in;
  EXPECT_FALSE(read_frame(p.rd, in));
}

TEST(FrameIo, EofInsideLengthPrefixThrows) {
  Pipe p;
  const std::uint8_t half[2] = {4, 0};
  ASSERT_EQ(::write(p.wr, half, 2), 2);
  p.close_wr();
  std::vector<std::uint8_t> in;
  EXPECT_THROW(read_frame(p.rd, in), ProtocolError);
}

TEST(FrameIo, EofInsidePayloadThrows) {
  Pipe p;
  std::uint8_t prefix[4];
  store_le32(prefix, 10);  // announce 10 bytes, deliver 3
  ASSERT_EQ(::write(p.wr, prefix, 4), 4);
  const std::uint8_t some[3] = {1, 2, 3};
  ASSERT_EQ(::write(p.wr, some, 3), 3);
  p.close_wr();
  std::vector<std::uint8_t> in;
  EXPECT_THROW(read_frame(p.rd, in), ProtocolError);
}

TEST(FrameIo, ZeroLengthFrameThrows) {
  Pipe p;
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(p.wr, zero, 4), 4);
  std::vector<std::uint8_t> in;
  EXPECT_THROW(read_frame(p.rd, in), ProtocolError);
}

TEST(FrameIo, LengthAboveCapThrowsWithoutReadingPayload) {
  Pipe p;
  std::uint8_t prefix[4];
  store_le32(prefix, 65);  // one past the caller's cap below
  ASSERT_EQ(::write(p.wr, prefix, 4), 4);
  std::vector<std::uint8_t> in;
  EXPECT_THROW(read_frame(p.rd, in, /*max_frame_bytes=*/64), ProtocolError);
}

TEST(FrameIo, WriteFrameRejectsEmptyAndOversized) {
  Pipe p;
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(write_frame(p.wr, empty), InvalidArgumentError);
  // The oversized check fires before any allocation-heavy work; use a
  // span over a small buffer with a lying size? No — build it for real
  // once, it is only 1 MiB + 1.
  const std::vector<std::uint8_t> big(kMaxFrameBytes + 1, 0);
  EXPECT_THROW(write_frame(p.wr, big), InvalidArgumentError);
}

#endif  // QC_TEST_HAVE_SOCKETS

// ---------------------------------------------------------------------------
// GraphRegistry: load-once semantics, unload, failure retry.
// ---------------------------------------------------------------------------

TEST(Registry, LoadOnceAcrossConcurrentCallers) {
  TempFile f("registry_once.qcg");
  write_graph(f.path, graph::make_grid(10, 10));

  GraphRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<ResidentGraph>> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&reg, &got, t, &f] { got[static_cast<std::size_t>(t)] =
                                    reg.load(f.path); });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(got[static_cast<std::size_t>(t)], got[0])
        << "caller " << t << " got a different ResidentGraph";
  }
  EXPECT_EQ(reg.loads_performed(), 1u);
  EXPECT_EQ(got[0]->graph().n(), 100u);
  ASSERT_EQ(reg.keys().size(), 1u);
  EXPECT_EQ(reg.keys()[0], f.path);
}

TEST(Registry, GetNeverTriggersALoad) {
  TempFile f("registry_get.qcg");
  write_graph(f.path, graph::make_path(5));
  GraphRegistry reg;
  EXPECT_EQ(reg.get(f.path), nullptr);
  EXPECT_EQ(reg.loads_performed(), 0u);
  reg.load(f.path);
  EXPECT_NE(reg.get(f.path), nullptr);
  EXPECT_EQ(reg.loads_performed(), 1u);
}

TEST(Registry, UnloadThenReloadLoadsAgain) {
  TempFile f("registry_unload.qcg");
  write_graph(f.path, graph::make_cycle(6));
  GraphRegistry reg;
  reg.load(f.path);
  EXPECT_TRUE(reg.unload(f.path));
  EXPECT_FALSE(reg.unload(f.path));  // second unload: not resident
  EXPECT_EQ(reg.get(f.path), nullptr);
  reg.load(f.path);
  EXPECT_EQ(reg.loads_performed(), 2u);
}

TEST(Registry, FailedLoadIsForgottenAndRetryable) {
  TempFile f("registry_retry.qcg");
  GraphRegistry reg;
  EXPECT_THROW(reg.load(f.path), Error);  // file does not exist
  EXPECT_EQ(reg.get(f.path), nullptr);
  EXPECT_TRUE(reg.keys().empty());
  // Fix the file; the registry must not have cached the failure.
  write_graph(f.path, graph::make_star(7));
  const auto resident = reg.load(f.path);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->graph().n(), 7u);
}

TEST(Registry, UnloadKeepsInFlightReferencesAlive) {
  TempFile f("registry_alive.qcg");
  write_graph(f.path, graph::make_complete(5));
  GraphRegistry reg;
  const auto resident = reg.load(f.path);
  EXPECT_TRUE(reg.unload(f.path));
  // The handed-out shared_ptr must keep the graph (and its mapped
  // storage) usable after the registry dropped its reference.
  EXPECT_EQ(resident->graph().n(), 5u);
  EXPECT_EQ(resident->engine().diameter(), 1u);
}

// TSan target: hammer every registry entry point from many threads. The
// assertions are deliberately weak — the point is the interleaving.
TEST(Registry, ConcurrentLoadGetUnloadStress) {
  TempFile fa("registry_stress_a.qcg"), fb("registry_stress_b.qcg");
  write_graph(fa.path, graph::make_grid(6, 6));
  write_graph(fb.path, graph::make_torus(4, 4));
  GraphRegistry reg;
  std::atomic<bool> failed{false};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        const std::string& path = (t % 2 == 0) ? fa.path : fb.path;
        for (int i = 0; i < 50; ++i) {
          switch ((t + i) % 4) {
            case 0: {
              const auto r = reg.load(path);
              if (r == nullptr || r->graph().n() == 0) failed.store(true);
              break;
            }
            case 1: {
              const auto r = reg.get(path);
              if (r != nullptr && r->graph().n() == 0) failed.store(true);
              break;
            }
            case 2:
              reg.unload(path);
              break;
            default:
              (void)reg.keys();
              (void)reg.loads_performed();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_FALSE(failed.load());
}

// ---------------------------------------------------------------------------
// Server::execute — the op switch, no sockets in the loop.
// ---------------------------------------------------------------------------

TEST(ServerExecute, AnswersBitIdenticalToDirectEngine) {
  TempFile f("exec_ident.qcg");
  const auto g = write_graph(f.path, graph::make_from_spec("diam:400:9"));
  graph::EccEngine direct(g);

  Server server({});
  const auto loaded = server.execute({Op::kLoad, f.path, 0});
  ASSERT_EQ(loaded.status, Status::kOk) << loaded.message;
  EXPECT_EQ(loaded.value, g.n());
  EXPECT_EQ(loaded.aux, g.m());

  const auto diam = server.execute({Op::kDiameter, f.path, 0});
  ASSERT_EQ(diam.status, Status::kOk);
  EXPECT_EQ(diam.value, direct.diameter());

  const auto radius = server.execute({Op::kRadius, f.path, 0});
  ASSERT_EQ(radius.status, Status::kOk);
  EXPECT_EQ(radius.value, direct.radius());
  EXPECT_EQ(radius.aux, direct.center());

  for (graph::NodeId v = 0; v < g.n(); ++v) {
    const auto ecc = server.execute({Op::kEcc, f.path, v});
    ASSERT_EQ(ecc.status, Status::kOk);
    ASSERT_EQ(ecc.value, direct.eccentricity(v)) << "vertex " << v;
  }

  const auto girth = server.execute({Op::kGirth, f.path, 0});
  ASSERT_EQ(girth.status, Status::kOk);
  EXPECT_EQ(girth.value, graph::girth(g));
}

TEST(ServerExecute, SecondQueryDoesNoBfsWork) {
  TempFile f("exec_cached.qcg");
  write_graph(f.path, graph::make_barbell(20, 9));
  Server server({});
  ASSERT_EQ(server.execute({Op::kLoad, f.path, 0}).status, Status::kOk);
  const auto resident = server.registry().get(f.path);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->engine().bfs_runs(), 0u);  // load did no BFS

  const auto first = server.execute({Op::kDiameter, f.path, 0});
  ASSERT_EQ(first.status, Status::kOk);
  const std::uint64_t runs_after_first = resident->engine().bfs_runs();
  EXPECT_GT(runs_after_first, 0u);
  EXPECT_LE(runs_after_first, resident->graph().n());

  // diameter again, radius, every ecc: all served from the computed
  // table — the BFS counter must not move.
  EXPECT_EQ(server.execute({Op::kDiameter, f.path, 0}).value, first.value);
  EXPECT_EQ(server.execute({Op::kRadius, f.path, 0}).status, Status::kOk);
  for (graph::NodeId v = 0; v < resident->graph().n(); ++v) {
    ASSERT_EQ(server.execute({Op::kEcc, f.path, v}).status, Status::kOk);
  }
  EXPECT_EQ(resident->engine().bfs_runs(), runs_after_first);
}

TEST(ServerExecute, ApproxBoundsBracketTheDiameter) {
  TempFile f("exec_approx.qcg");
  const auto g = write_graph(f.path, graph::make_from_spec("diam:300:12"));
  graph::EccEngine direct(g);
  Server server({});
  ASSERT_EQ(server.execute({Op::kLoad, f.path, 0}).status, Status::kOk);
  const auto approx = server.execute({Op::kApprox, f.path, 0});
  ASSERT_EQ(approx.status, Status::kOk);
  EXPECT_LE(approx.value, direct.diameter());   // lower bound
  EXPECT_GE(approx.aux, direct.diameter());     // 2*lb upper bound
  EXPECT_EQ(approx.aux, 2 * approx.value);
}

TEST(ServerExecute, ErrorsAreAnswersNotCrashes) {
  TempFile f("exec_errors.qcg");
  write_graph(f.path, graph::make_path(4));
  Server server({});

  // Query against a graph nobody loaded.
  const auto absent = server.execute({Op::kDiameter, "no/such.qcg", 0});
  EXPECT_EQ(absent.status, Status::kError);
  EXPECT_NE(absent.message.find("not resident"), std::string::npos);

  // Load failures: missing file, empty file, sub-header .qcg — each must
  // come back as a clean kError, and the server must keep serving.
  const auto missing = server.execute({Op::kLoad, "no/such.qcg", 0});
  EXPECT_EQ(missing.status, Status::kError);
  EXPECT_FALSE(missing.message.empty());

  TempFile empty("exec_empty.qcg");
  write_bytes(empty.path, {});
  const auto from_empty = server.execute({Op::kLoad, empty.path, 0});
  EXPECT_EQ(from_empty.status, Status::kError);
  EXPECT_FALSE(from_empty.message.empty());

  TempFile tiny("exec_tiny.qcg");
  write_bytes(tiny.path, {'Q', 'C', 'G', 'R', 'A', 'P', 'H', '1'});
  const auto from_tiny = server.execute({Op::kLoad, tiny.path, 0});
  EXPECT_EQ(from_tiny.status, Status::kError);
  EXPECT_NE(from_tiny.message.find("shorter"), std::string::npos)
      << from_tiny.message;

  // Still alive: a good load + query works, and the failed paths never
  // became resident.
  ASSERT_EQ(server.execute({Op::kLoad, f.path, 0}).status, Status::kOk);
  EXPECT_EQ(server.execute({Op::kDiameter, f.path, 0}).value, 3u);
  EXPECT_EQ(server.registry().get(empty.path), nullptr);

  // Vertex out of range, unload of a non-resident key.
  const auto bad_v = server.execute({Op::kEcc, f.path, 4});
  EXPECT_EQ(bad_v.status, Status::kError);
  EXPECT_NE(bad_v.message.find("out of range"), std::string::npos);
  EXPECT_EQ(server.execute({Op::kUnload, "no/such.qcg", 0}).status,
            Status::kError);
}

TEST(ServerExecute, PingEchoesAndStatsListsResidents) {
  TempFile f("exec_stats.qcg");
  write_graph(f.path, graph::make_cycle(8));
  Server server({});
  const auto pong = server.execute({Op::kPing, "", 12345});
  EXPECT_EQ(pong.status, Status::kOk);
  EXPECT_EQ(pong.value, 12345u);

  ASSERT_EQ(server.execute({Op::kLoad, f.path, 0}).status, Status::kOk);
  const auto stats = server.execute({Op::kStats, "", 0});
  ASSERT_EQ(stats.status, Status::kOk);
  EXPECT_EQ(stats.value, 1u);  // one resident graph
  EXPECT_NE(stats.message.find("\"resident\""), std::string::npos);
  EXPECT_NE(stats.message.find(f.path), std::string::npos);
}

#if QC_TEST_HAVE_SOCKETS

// ---------------------------------------------------------------------------
// Full socket round-trips.
// ---------------------------------------------------------------------------

TEST(ServerSocket, EndToEndOverUnixSocket) {
  TempFile sock("e2e.sock"), logf("e2e.jsonl"), data("e2e.qcg");
  const auto g = write_graph(data.path, graph::make_from_spec("diam:250:7"));
  graph::EccEngine direct(g);

  ServerOptions opts;
  opts.unix_path = sock.path;
  opts.request_log = logf.path;
  Server server(opts);
  server.start();
  EXPECT_EQ(server.endpoint(), "unix:" + sock.path);

  auto client = Client::connect("unix:" + sock.path);
  EXPECT_EQ(client.call_ok({Op::kPing, "", 7}).value, 7u);
  const auto loaded = client.call_ok({Op::kLoad, data.path, 0});
  EXPECT_EQ(loaded.value, g.n());
  const auto d1 = client.call_ok({Op::kDiameter, data.path, 0});
  const auto d2 = client.call_ok({Op::kDiameter, data.path, 0});
  EXPECT_EQ(d1.value, direct.diameter());
  EXPECT_EQ(d2.value, d1.value);
  EXPECT_EQ(client.call_ok({Op::kRadius, data.path, 0}).value,
            direct.radius());
  EXPECT_EQ(client.call_ok({Op::kEcc, data.path, 3}).value,
            direct.eccentricity(3));
  const auto info = client.call_ok({Op::kGraphInfo, data.path, 0});
  EXPECT_EQ(info.value, g.n());
  EXPECT_EQ(info.aux, g.m());
  EXPECT_NE(info.message.find("\"format\""), std::string::npos);

  // An op-level error must not close the connection.
  const auto bad = client.call({Op::kEcc, data.path, g.n()});
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_EQ(client.call_ok({Op::kPing, "", 1}).value, 1u);

  // kShutdown answers, then wait() returns.
  EXPECT_EQ(client.call_ok({Op::kShutdown, "", 0}).status, Status::kOk);
  server.wait();
  server.stop();

  // Request log: one JSONL object per request, with the schema fields.
  std::ifstream log(logf.path);
  ASSERT_TRUE(log.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(log, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"request_id\":"), std::string::npos);
    EXPECT_NE(line.find("\"op\":\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":\""), std::string::npos);
    EXPECT_NE(line.find("\"latency_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"bfs_runs\":"), std::string::npos);
    EXPECT_NE(line.find("\"rounds\":"), std::string::npos);
  }
  EXPECT_EQ(lines, server.stats().requests.load());
  EXPECT_EQ(server.stats().bad_requests.load(), 0u);
}

TEST(ServerSocket, ConcurrentClientsGetBitIdenticalAnswers) {
  TempFile sock("multi.sock"), data("multi.qcg");
  const auto g = write_graph(data.path, graph::make_from_spec("diam:400:11"));
  graph::EccEngine direct(g);
  direct.diameter();  // force the reference table up front

  ServerOptions opts;
  opts.unix_path = sock.path;
  Server server(opts);
  server.start();

  constexpr int kClients = 6;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        auto client = Client::connect("unix:" + sock.path);
        // Every client races load + the full query mix.
        if (client.call_ok({Op::kLoad, data.path, 0}).value != g.n()) {
          mismatches.fetch_add(1);
        }
        if (client.call_ok({Op::kDiameter, data.path, 0}).value !=
            direct.diameter()) {
          mismatches.fetch_add(1);
        }
        const auto radius = client.call_ok({Op::kRadius, data.path, 0});
        if (radius.value != direct.radius() ||
            radius.aux != direct.center()) {
          mismatches.fetch_add(1);
        }
        for (graph::NodeId v = static_cast<graph::NodeId>(t); v < g.n();
             v += kClients) {
          if (client.call_ok({Op::kEcc, data.path, v}).value !=
              direct.eccentricity(v)) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  // Load-once held across clients, and the whole query storm ran exactly
  // one eccentricity sweep.
  EXPECT_EQ(server.registry().loads_performed(), 1u);
  const auto resident = server.registry().get(data.path);
  ASSERT_NE(resident, nullptr);
  EXPECT_GT(resident->engine().bfs_runs(), 0u);
  EXPECT_LE(resident->engine().bfs_runs(), g.n());
  EXPECT_EQ(server.stats().errors.load(), 0u);
  server.stop();
}

TEST(ServerSocket, TcpLoopbackWithEphemeralPort) {
  ServerOptions opts;  // unix_path empty, tcp_port 0 → ephemeral loopback
  Server server(opts);
  server.start();
  ASSERT_GT(server.port(), 0);
  EXPECT_EQ(server.endpoint(),
            "127.0.0.1:" + std::to_string(server.port()));
  auto client =
      Client::connect("127.0.0.1:" + std::to_string(server.port()));
  EXPECT_EQ(client.call_ok({Op::kPing, "", 99}).value, 99u);
  server.stop();
}

TEST(ServerSocket, MalformedFrameGetsBadRequestAndCloses) {
  TempFile sock("badframe.sock");
  ServerOptions opts;
  opts.unix_path = sock.path;
  Server server(opts);
  server.start();

  auto client = Client::connect("unix:" + sock.path);
  auto payload = encode_request({Op::kPing, "", 0});
  payload[0] = kProtocolVersion + 1;  // bad version inside a valid frame
  write_frame(client.fd(), payload);
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(read_frame(client.fd(), raw));
  const Response resp = decode_response(raw);
  EXPECT_EQ(resp.status, Status::kBadRequest);
  // After a framing error the server closes the connection…
  EXPECT_FALSE(read_frame(client.fd(), raw));
  // …but keeps accepting fresh ones.
  auto client2 = Client::connect("unix:" + sock.path);
  EXPECT_EQ(client2.call_ok({Op::kPing, "", 5}).value, 5u);
  EXPECT_EQ(server.stats().bad_requests.load(), 1u);
  server.stop();
}

TEST(ServerSocket, FrameAboveServerCapIsRejected) {
  TempFile sock("cap.sock");
  ServerOptions opts;
  opts.unix_path = sock.path;
  opts.max_frame_bytes = 64;  // shrink the cap instead of sending 1 MiB+
  Server server(opts);
  server.start();

  auto client = Client::connect("unix:" + sock.path);
  const auto payload =
      encode_request({Op::kLoad, std::string(200, 'p'), 0});
  ASSERT_GT(payload.size(), 64u);
  write_frame(client.fd(), payload);
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(read_frame(client.fd(), raw));
  EXPECT_EQ(decode_response(raw).status, Status::kBadRequest);
  server.stop();
}

TEST(ServerSocket, TimeoutThenRejectionThenRecovery) {
  TempFile sock("timeout.sock"), data("timeout.qcg");
  // Big enough that the first eccentricity sweep takes well over the
  // 10 ms deadline (the same shape at 10k nodes measures ~100+ ms).
  write_graph(data.path, graph::make_grid(100, 100));

  ServerOptions opts;
  opts.unix_path = sock.path;
  opts.max_pending = 1;
  opts.timeout_ms = 10;
  Server server(opts);
  // Preload directly so the load itself is not subject to the deadline.
  server.registry().load(data.path);
  server.start();

  auto client = Client::connect("unix:" + sock.path);
  // The sweep blows the deadline; the admission slot stays occupied until
  // the abandoned worker finishes, so the next graph op is rejected
  // (ping would not be — control ops bypass admission, tested below).
  EXPECT_EQ(client.call({Op::kDiameter, data.path, 0}).status,
            Status::kTimeout);
  EXPECT_EQ(client.call({Op::kStats, "", 0}).status, Status::kRejected);

  // Once the worker drains, the server recovers and the now-cached
  // diameter answers within any deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  Response resp;
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    resp = client.call({Op::kDiameter, data.path, 0});
  } while (resp.status != Status::kOk &&
           std::chrono::steady_clock::now() < deadline);
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.value, 198u);  // grid diameter rows+cols-2

  EXPECT_GE(server.stats().timeouts.load(), 1u);
  EXPECT_GE(server.stats().rejected.load(), 1u);
  server.stop();
}

TEST(ServerSocket, PingAndShutdownBypassAdmissionAndDeadline) {
  TempFile sock("ctl.sock"), data("ctl.qcg");
  // Same shape as the timeout test: the first sweep takes far longer than
  // the deadline, so the single admission slot stays saturated while the
  // abandoned worker drains.
  write_graph(data.path, graph::make_grid(100, 100));

  ServerOptions opts;
  opts.unix_path = sock.path;
  opts.max_pending = 1;
  opts.timeout_ms = 5;
  Server server(opts);
  server.registry().load(data.path);
  server.start();

  auto client = Client::connect("unix:" + sock.path);
  EXPECT_EQ(client.call({Op::kDiameter, data.path, 0}).status,
            Status::kTimeout);
  // Graph ops are turned away while the slot is occupied…
  EXPECT_EQ(client.call({Op::kStats, "", 0}).status, Status::kRejected);
  // …but control ops do no graph work and answer inline: a saturated
  // daemon still acks liveness probes and, above all, obeys shutdown
  // instead of rejecting or timing it out.
  EXPECT_EQ(client.call_ok({Op::kPing, "", 3}).value, 3u);
  EXPECT_EQ(client.call_ok({Op::kShutdown, "", 0}).status, Status::kOk);
  server.wait();
  server.stop();
}

TEST(ServerSocket, ClientVanishingBeforeItsReplyDoesNotKillTheServer) {
  TempFile sock("gone.sock"), data("gone.qcg");
  // Big enough that the first reply is still being computed when the
  // client disconnects, so the server's write hits a closed peer.
  write_graph(data.path, graph::make_grid(60, 60));

  ServerOptions opts;
  opts.unix_path = sock.path;
  Server server(opts);
  server.registry().load(data.path);
  server.start();

  for (int i = 0; i < 3; ++i) {
    auto client = Client::connect("unix:" + sock.path);
    write_frame(client.fd(), encode_request({Op::kDiameter, data.path, 0}));
    // Scope exit closes the socket without ever reading the reply. The
    // server's write must surface as EPIPE on that connection — never as
    // a daemon-killing SIGPIPE.
  }

  auto client = Client::connect("unix:" + sock.path);
  EXPECT_EQ(client.call_ok({Op::kPing, "", 11}).value, 11u);
  EXPECT_EQ(client.call_ok({Op::kDiameter, data.path, 0}).value, 118u);
  server.stop();
}

#if defined(__linux__)

// A long-running daemon must not accumulate one fd per past connection
// (RLIMIT_NOFILE is ~1024 by default — a daemon that leaks per query dies
// after a thousand queries). /proc/self/fd gives an exact count.
TEST(ServerSocket, FinishedConnectionsReleaseTheirFds) {
  TempFile sock("reap.sock");
  ServerOptions opts;
  opts.unix_path = sock.path;
  Server server(opts);
  server.start();

  const auto count_fds = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         fs::directory_iterator("/proc/self/fd")) {
      ++n;
    }
    return n;
  };

  // Warm up one connection so the baseline includes every steady-state
  // fd (listener, log, metrics…), then let it drain.
  {
    auto warm = Client::connect("unix:" + sock.path);
    EXPECT_EQ(warm.call_ok({Op::kPing, "", 1}).value, 1u);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::size_t baseline = count_fds();

  for (std::uint64_t i = 0; i < 64; ++i) {
    auto client = Client::connect("unix:" + sock.path);
    EXPECT_EQ(client.call_ok({Op::kPing, "", i}).value, i);
  }

  // Each server-side reader notices the EOF and closes its fd on its own
  // schedule; poll until the count returns to the baseline (a leak of one
  // fd per connection would sit 64 above it and never come down).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::size_t now = count_fds();
  while (now > baseline + 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    now = count_fds();
  }
  EXPECT_LE(now, baseline + 4);
  server.stop();
}

#endif  // __linux__

#endif  // QC_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace qc::serve
