// The shared eccentricity engine (graph/ecc_engine.hpp): the flat BFS
// kernel, the compute-once eccentricity cache, and the sparse-table
// segment-max structure — each checked against the naive reference
// implementations in graph/algorithms.hpp, which stay in the tree as
// ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/ecc_engine.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::graph {
namespace {

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return make_random_with_diameter(n, d, rng);
}

std::vector<Graph> test_graphs() {
  std::vector<Graph> gs;
  gs.push_back(make_path(1));
  gs.push_back(make_path(2));
  gs.push_back(make_path(17));
  gs.push_back(make_star(9));
  gs.push_back(make_cycle(12));
  gs.push_back(make_grid(4, 5));
  Rng rng(42);
  gs.push_back(make_connected_er(40, 0.12, rng));
  gs.push_back(random_graph(60, 7, 7));
  return gs;
}

TEST(FlatBfs, MatchesReferenceBfs) {
  BfsScratch scratch;
  for (const Graph& g : test_graphs()) {
    for (NodeId root = 0; root < g.n(); root += (g.n() > 8 ? 5 : 1)) {
      const BfsResult ref = bfs(g, root);
      const std::uint32_t ecc = flat_bfs_distances(g, root, scratch);
      ASSERT_EQ(scratch.dist.size(), ref.dist.size());
      for (NodeId v = 0; v < g.n(); ++v) {
        EXPECT_EQ(scratch.dist[v], ref.dist[v]) << "root " << root;
      }
      EXPECT_EQ(ecc, eccentricity(g, root));
    }
  }
}

TEST(FlatBfs, DisconnectedMarksUnreachable) {
  const std::vector<Edge> edges = {{0, 1}, {2, 3}};  // {2,3} unreachable
  const Graph g = Graph::from_edges(4, edges);
  BfsScratch scratch;
  // The kernel's return value is the *global* eccentricity: kUnreachable
  // as soon as any vertex is missed. The component-local maximum and the
  // reach count land in the scratch.
  EXPECT_EQ(flat_bfs_distances(g, 0, scratch), kUnreachable);
  EXPECT_EQ(scratch.dist[1], 1u);
  EXPECT_EQ(scratch.dist[2], kUnreachable);
  EXPECT_EQ(scratch.dist[3], kUnreachable);
  EXPECT_EQ(scratch.finite_ecc, 1u);
  EXPECT_EQ(scratch.reached, 2u);
}

TEST(EccEngine, AllEccentricitiesMatchNaive) {
  for (const Graph& g : test_graphs()) {
    EccEngine engine(g, 1);
    const auto& all = engine.all();
    ASSERT_EQ(all.size(), g.n());
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(all[v], eccentricity(g, v)) << "vertex " << v;
      EXPECT_EQ(engine.eccentricity(v), all[v]);
    }
    EXPECT_EQ(engine.diameter(), *std::max_element(all.begin(), all.end()));
    EXPECT_EQ(engine.radius(), *std::min_element(all.begin(), all.end()));
    EXPECT_EQ(engine.eccentricity(engine.center()), engine.radius());
  }
}

TEST(EccEngine, AgreesWithClassicalBaselines) {
  const Graph g = random_graph(80, 9, 3);
  EccEngine engine(g);
  EXPECT_EQ(engine.diameter(), diameter(g));
  EXPECT_EQ(engine.radius(), radius(g));
  EXPECT_EQ(engine.center(), center(g));
  EXPECT_EQ(engine.all(), all_eccentricities(g));
}

TEST(EccEngine, ExactlyOneBfsPerVertex) {
  const Graph g = random_graph(64, 6, 11);
  EccEngine engine(g, 2);
  EXPECT_EQ(engine.bfs_runs(), 0u);  // lazy until first query
  engine.diameter();
  EXPECT_EQ(engine.bfs_runs(), g.n());
  // Repeated queries never re-run BFS.
  engine.all();
  engine.radius();
  for (NodeId v = 0; v < g.n(); ++v) engine.eccentricity(v);
  EXPECT_EQ(engine.bfs_runs(), g.n());
}

TEST(EccEngine, SerialAndParallelAgree) {
  // Large enough to cross the parallel cutoff (256).
  const Graph g = random_graph(300, 12, 5);
  EccEngine serial(g, 1);
  EccEngine parallel(g, 4);
  EXPECT_EQ(serial.all(), parallel.all());
  EXPECT_EQ(parallel.bfs_runs(), g.n());
}

TEST(SegmentMax, MatchesNaiveOnFullTree) {
  for (const Graph& g : test_graphs()) {
    const BfsTree tree = bfs_tree(g, 0);
    const DfsNumbering num = dfs_numbering(tree);
    EccEngine engine(g, 1);
    const EccEngine::SegmentMax seg = engine.segment_max(num);
    const std::uint32_t len = num.walk_length();
    const std::vector<std::uint32_t> steps_to_try = {
        0, 1, 2, len / 2, len == 0 ? 0 : len - 1, len, len + 3, 2 * len};
    for (NodeId u = 0; u < g.n(); ++u) {
      if (!num.in_walk[u]) continue;
      for (std::uint32_t steps : steps_to_try) {
        EXPECT_EQ(seg.max_ecc_in_segment(u, steps),
                  max_ecc_in_segment(g, num, u, steps))
            << "u=" << u << " steps=" << steps << " n=" << g.n();
      }
    }
  }
}

TEST(SegmentMax, MatchesNaiveOnInducedSubtree) {
  const Graph g = random_graph(50, 6, 19);
  const BfsTree tree = bfs_tree(g, 0);
  // Keep the s closest vertices to the root (ancestor-closed by depth),
  // the shape Figure 3's set R takes.
  const std::uint32_t s = 20;
  std::vector<std::pair<std::uint32_t, NodeId>> by_depth;
  for (NodeId v = 0; v < g.n(); ++v) by_depth.push_back({tree.depth[v], v});
  std::sort(by_depth.begin(), by_depth.end());
  std::vector<bool> keep(g.n(), false);
  for (std::uint32_t i = 0; i < s; ++i) keep[by_depth[i].second] = true;
  const BfsTree sub = induced_subtree(tree, keep);
  const DfsNumbering num = dfs_numbering(sub);

  EccEngine engine(g, 1);
  const EccEngine::SegmentMax seg = engine.segment_max(num);
  for (NodeId u = 0; u < g.n(); ++u) {
    if (!num.in_walk[u]) continue;
    for (std::uint32_t steps : {0u, 3u, num.walk_length()}) {
      EXPECT_EQ(seg.max_ecc_in_segment(u, steps),
                max_ecc_in_segment(g, num, u, steps))
          << "u=" << u << " steps=" << steps;
    }
  }
}

TEST(SegmentMax, RejectsNodesOutsideWalk) {
  const Graph g = random_graph(30, 5, 23);
  const BfsTree tree = bfs_tree(g, 0);
  std::vector<bool> keep(g.n(), false);
  keep[0] = true;  // root only
  const DfsNumbering num = dfs_numbering(induced_subtree(tree, keep));
  EccEngine engine(g, 1);
  const EccEngine::SegmentMax seg = engine.segment_max(num);
  // The root is the whole walk: every query returns ecc(root).
  EXPECT_EQ(seg.max_ecc_in_segment(0, 10), engine.eccentricity(0));
  // Nodes outside the walk are rejected, same contract as the naive path.
  NodeId outside = 1;
  while (outside < g.n() && num.in_walk[outside]) ++outside;
  ASSERT_LT(outside, g.n());
  EXPECT_THROW(seg.max_ecc_in_segment(outside, 1), Error);
}

TEST(SegmentMax, SingleVertexGraph) {
  const Graph g = make_path(1);
  const DfsNumbering num = dfs_numbering(bfs_tree(g, 0));
  EccEngine engine(g, 1);
  const EccEngine::SegmentMax seg = engine.segment_max(num);
  EXPECT_EQ(seg.max_ecc_in_segment(0, 0), 0u);
  EXPECT_EQ(seg.max_ecc_in_segment(0, 5), 0u);
}

}  // namespace
}  // namespace qc::graph
