// The .qcg binary container, end to end: round-trip fidelity across
// generator families and both encodings, writer determinism, zero-copy
// mapped views vs owned decodes, header/payload rejection paths on
// crafted and corrupted files, the varint codec, and the O(1)-allocation
// guarantee of the load path.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/qcg.hpp"
#include "util/alloc_probe.hpp"
#include "util/error.hpp"

QC_INSTALL_ALLOC_PROBE();

namespace qc::graph {
namespace {

namespace fs = std::filesystem;

// Scratch file under the system temp dir, removed on scope exit. Names are
// prefixed per test so parallel ctest binaries never collide.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() / ("qc_test_qcg_" + tag)).string()) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string path;
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void store_le64_at(std::vector<std::uint8_t>& b, std::size_t off,
                   std::uint64_t x) {
  for (int i = 0; i < 8; ++i) b[off + i] = static_cast<std::uint8_t>(x >> (8 * i));
}

// Builds a syntactically well-formed kDeltaVarint file with an arbitrary
// adjacency stream — the hook for feeding the reader CSR contracts the
// writer could never produce.
void write_crafted_varint(const std::string& path, std::uint64_t n,
                          std::uint64_t arcs,
                          const std::vector<std::uint8_t>& stream) {
  std::vector<std::uint8_t> file(kQcgHeaderBytes, 0);
  for (int i = 0; i < 8; ++i)
    file[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(kQcgMagic[i]);
  file[8] = 1;   // version lo
  file[10] = 1;  // kDeltaVarint
  store_le64_at(file, 16, n);
  store_le64_at(file, 24, arcs);
  store_le64_at(file, 32, 0);  // offsets_bytes (unused for varint)
  store_le64_at(file, 40, stream.size());
  store_le64_at(file, 48, qcgdetail::fnv1a(stream.data(), stream.size()));
  file.insert(file.end(), stream.begin(), stream.end());
  write_bytes(path, file);
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  const auto ao = a.csr_offsets(), bo = b.csr_offsets();
  const auto an = a.csr_neighbors(), bn = b.csr_neighbors();
  EXPECT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin()));
  EXPECT_TRUE(std::equal(an.begin(), an.end(), bn.begin()));
}

struct QcgCase {
  const char* spec;
  QcgEncoding encoding;
};

class QcgRoundTrip : public ::testing::TestWithParam<QcgCase> {};

TEST_P(QcgRoundTrip, PreservesCsrExactly) {
  const auto& c = GetParam();
  const auto g = make_from_spec(c.spec);
  TempFile f(std::string("rt_") + c.spec + "_" +
             (c.encoding == QcgEncoding::kRawCsr ? "raw" : "varint"));
  for (auto& ch : f.path)
    if (ch == ':') ch = '_';
  write_qcg_file(f.path, g, c.encoding);
  const auto back = read_qcg_file(f.path);
  expect_same_graph(g, back);

  const auto info = qcg_info_file(f.path);
  EXPECT_EQ(info.version, kQcgVersion);
  EXPECT_EQ(info.encoding, c.encoding);
  EXPECT_EQ(info.n, g.n());
  EXPECT_EQ(info.m(), g.m());
  EXPECT_EQ(info.file_bytes, fs::file_size(f.path));
}

INSTANTIATE_TEST_SUITE_P(
    Families, QcgRoundTrip,
    ::testing::Values(QcgCase{"path:50", QcgEncoding::kRawCsr},
                      QcgCase{"path:50", QcgEncoding::kDeltaVarint},
                      QcgCase{"cycle:33", QcgEncoding::kDeltaVarint},
                      QcgCase{"star:17", QcgEncoding::kRawCsr},
                      QcgCase{"complete:12", QcgEncoding::kDeltaVarint},
                      QcgCase{"torus:6:7", QcgEncoding::kRawCsr},
                      QcgCase{"hypercube:5", QcgEncoding::kDeltaVarint},
                      QcgCase{"tree:40:3", QcgEncoding::kRawCsr},
                      QcgCase{"er:60:0.12:3", QcgEncoding::kDeltaVarint},
                      QcgCase{"er:60:0.12:3", QcgEncoding::kRawCsr},
                      QcgCase{"pa:64:3:9", QcgEncoding::kDeltaVarint},
                      QcgCase{"pa:64:3:9", QcgEncoding::kRawCsr},
                      QcgCase{"diam:50:9:5", QcgEncoding::kDeltaVarint}));

TEST(Qcg, TinyGraphsRoundTrip) {
  for (const auto enc : {QcgEncoding::kRawCsr, QcgEncoding::kDeltaVarint}) {
    const auto tag = enc == QcgEncoding::kRawCsr ? "raw" : "varint";
    {
      const auto g = Graph::from_edges(1, std::vector<Edge>{});
      TempFile f(std::string("tiny1_") + tag);
      write_qcg_file(f.path, g, enc);
      const auto back = read_qcg_file(f.path);
      EXPECT_EQ(back.n(), 1u);
      EXPECT_EQ(back.m(), 0u);
    }
    {
      const auto g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
      TempFile f(std::string("tiny2_") + tag);
      write_qcg_file(f.path, g, enc);
      const auto back = read_qcg_file(f.path);
      expect_same_graph(g, back);
      EXPECT_TRUE(back.has_edge(0, 1));
    }
  }
}

TEST(Qcg, WriterIsDeterministic) {
  const auto g = make_from_spec("pa:300:3:11");
  for (const auto enc : {QcgEncoding::kRawCsr, QcgEncoding::kDeltaVarint}) {
    TempFile a("det_a"), b("det_b");
    write_qcg_file(a.path, g, enc);
    write_qcg_file(b.path, g, enc);
    EXPECT_EQ(read_bytes(a.path), read_bytes(b.path));
  }
}

TEST(Qcg, VarintIsSmallerThanRaw) {
  const auto g = make_from_spec("pa:500:3:4");
  TempFile raw("size_raw"), var("size_var");
  write_qcg_file(raw.path, g, QcgEncoding::kRawCsr);
  write_qcg_file(var.path, g, QcgEncoding::kDeltaVarint);
  EXPECT_LT(fs::file_size(var.path), fs::file_size(raw.path));
}

TEST(Qcg, MappedViewMatchesOwnedDecode) {
  const auto g = make_from_spec("pa:200:3:7");
  TempFile raw("view_raw"), var("view_var");
  write_qcg_file(raw.path, g, QcgEncoding::kRawCsr);
  write_qcg_file(var.path, g, QcgEncoding::kDeltaVarint);
  const auto mapped = read_qcg_file(raw.path);
  const auto owned = read_qcg_file(var.path);
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_TRUE(mapped.is_view());
  }
  EXPECT_FALSE(owned.is_view());
  expect_same_graph(mapped, owned);
  // Same traversal results through both storage paths.
  for (const NodeId root : {NodeId{0}, NodeId{17}, NodeId{199}}) {
    EXPECT_EQ(bfs(mapped, root).dist, bfs(owned, root).dist);
  }
  EXPECT_EQ(diameter(mapped), diameter(owned));
}

TEST(Qcg, MappedViewOutlivesReaderScope) {
  TempFile f("view_lifetime");
  write_qcg_file(f.path, make_from_spec("cycle:64"), QcgEncoding::kRawCsr);
  Graph g = [&] { return read_qcg_file(f.path); }();  // mapping moved out
  EXPECT_EQ(g.n(), 64u);
  EXPECT_EQ(eccentricity(g, 0), 32u);
}

TEST(Qcg, IsQcgFileProbe) {
  TempFile qcg("probe_ok"), txt("probe_txt"), tiny("probe_tiny");
  write_qcg_file(qcg.path, make_from_spec("path:5"));
  EXPECT_TRUE(is_qcg_file(qcg.path));
  write_bytes(txt.path, {'5', '\n', '0', ' ', '1', '\n'});
  EXPECT_FALSE(is_qcg_file(txt.path));
  write_bytes(tiny.path, {'Q', 'C'});  // shorter than the magic
  EXPECT_FALSE(is_qcg_file(tiny.path));
  EXPECT_FALSE(is_qcg_file("/nonexistent/graph.qcg"));
}

class QcgReject : public ::testing::Test {
 protected:
  // A known-good varint file to corrupt, rebuilt per test.
  std::vector<std::uint8_t> good_file() {
    TempFile f("reject_base");
    write_qcg_file(f.path, make_from_spec("er:40:0.15:2"));
    return read_bytes(f.path);
  }

  void expect_rejected(const std::vector<std::uint8_t>& bytes,
                       const char* why) {
    TempFile f("reject_case");
    write_bytes(f.path, bytes);
    EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError) << why;
  }
};

TEST_F(QcgReject, BadMagic) {
  auto b = good_file();
  b[0] ^= 0x01;
  expect_rejected(b, "magic");
}

TEST_F(QcgReject, TruncatedHeader) {
  auto b = good_file();
  b.resize(kQcgHeaderBytes / 2);
  expect_rejected(b, "header truncation");
}

TEST_F(QcgReject, TruncatedPayload) {
  auto b = good_file();
  ASSERT_GT(b.size(), kQcgHeaderBytes + 5);
  b.resize(b.size() - 5);
  expect_rejected(b, "payload truncation");
}

TEST_F(QcgReject, HeaderPayloadLengthMismatch) {
  auto b = good_file();
  const std::uint64_t claimed = b.size() - kQcgHeaderBytes;
  store_le64_at(b, 40, claimed + 8);  // neighbors_bytes beyond EOF
  expect_rejected(b, "inflated neighbors_bytes");
  auto c = good_file();
  store_le64_at(c, 40, claimed - 1);  // payload longer than the header says
  expect_rejected(c, "deflated neighbors_bytes");
}

TEST_F(QcgReject, UnknownVersionOrEncoding) {
  auto b = good_file();
  b[8] = 2;  // version 2
  expect_rejected(b, "future version");
  auto c = good_file();
  c[10] = 7;  // encoding 7
  expect_rejected(c, "unknown encoding");
}

TEST_F(QcgReject, OddArcCount) {
  auto b = good_file();
  std::uint64_t arcs = 0;
  for (int i = 0; i < 8; ++i)
    arcs |= static_cast<std::uint64_t>(b[24 + i]) << (8 * i);
  store_le64_at(b, 24, arcs + 1);
  expect_rejected(b, "odd arcs");
}

TEST_F(QcgReject, RawFinalOffsetDisagreesWithArcCount) {
  // Crafted raw-CSR files whose offsets[n] disagrees with the header arc
  // count, with the checksum recomputed the way an attacker would. The
  // neighbors section is sized from the header, so an unchecked inflated
  // offsets[n] would send the CSR validation reading far past the end of
  // the mapping; the cross-check must fire before any neighbor access.
  const auto g = make_from_spec("path:8");  // n=8, arcs=14
  TempFile f("raw_bad_final_off");
  write_qcg_file(f.path, g, QcgEncoding::kRawCsr);
  const std::size_t final_off = kQcgHeaderBytes + 4 * 8;  // offsets[8]

  auto inflated = read_bytes(f.path);
  inflated[final_off] = 0xF0;
  inflated[final_off + 1] = 0xFF;
  inflated[final_off + 2] = 0xFF;
  inflated[final_off + 3] = 0xFF;  // offsets[8] = 0xFFFFFFF0 arcs
  store_le64_at(inflated, 48,
                qcgdetail::fnv1a(inflated.data() + kQcgHeaderBytes,
                                 inflated.size() - kQcgHeaderBytes));
  expect_rejected(inflated, "inflated offsets[n] with matching checksum");

  auto deflated = read_bytes(f.path);
  deflated[final_off] = 13;  // one short of the 14 header arcs
  store_le64_at(deflated, 48,
                qcgdetail::fnv1a(deflated.data() + kQcgHeaderBytes,
                                 deflated.size() - kQcgHeaderBytes));
  expect_rejected(deflated, "deflated offsets[n] with matching checksum");
}

TEST_F(QcgReject, ChecksumCatchesPayloadFlip) {
  auto b = good_file();
  b[kQcgHeaderBytes + 3] ^= 0x40;
  expect_rejected(b, "payload bit flip");
}

TEST_F(QcgReject, ChecksumVerificationIsSkippable) {
  auto b = good_file();
  store_le64_at(b, 48, 0xDEADBEEFull);  // corrupt the stored checksum only
  TempFile f("reject_cksum");
  write_bytes(f.path, b);
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
  // The payload itself is intact, so the opt-out load must succeed and
  // decode the original graph.
  const auto g = read_qcg_file(f.path, {.verify_checksum = false});
  EXPECT_EQ(g.n(), 40u);
}

TEST_F(QcgReject, NonZeroReservedFields) {
  auto b = good_file();
  b[12] = 1;  // reserved u32 at offset 12
  expect_rejected(b, "reserved field");
}

TEST_F(QcgReject, SubHeaderFilesFailCleanly) {
  // Zero-byte, one-byte, magic-only and 63-byte files: every sub-header
  // size must fail with the specific "shorter than the 64-byte header"
  // InvalidArgumentError — never a wild read or a confusing downstream
  // parse error. Pinned because the serve daemon forwards these messages
  // verbatim to clients on a failed `load`.
  const std::vector<std::size_t> sizes = {0, 1, sizeof(kQcgMagic),
                                          kQcgHeaderBytes - 1};
  for (const std::size_t size : sizes) {
    std::vector<std::uint8_t> bytes(size, 0);
    for (std::size_t i = 0; i < std::min(size, sizeof(kQcgMagic)); ++i) {
      bytes[i] = static_cast<std::uint8_t>(kQcgMagic[i]);
    }
    TempFile f("tiny_" + std::to_string(size));
    write_bytes(f.path, bytes);
    try {
      read_qcg_file(f.path);
      FAIL() << "read_qcg_file accepted a " << size << "-byte file";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("shorter"), std::string::npos)
          << "size " << size << ": " << e.what();
    }
    EXPECT_THROW(qcg_info_file(f.path), InvalidArgumentError)
        << "size " << size;
  }
}

TEST(QcgLoadFile, TinyAndEmptyFilesFailCleanlyViaAutoDetect) {
  // load_graph_file auto-detects by magic: a magic-prefixed stub follows
  // the .qcg path (header-size error), a zero-byte file follows the
  // edge-list path (empty-input error). Both are clean
  // InvalidArgumentErrors a server can return to a client.
  TempFile empty("load_empty");
  write_bytes(empty.path, {});
  try {
    load_graph_file(empty.path);
    FAIL() << "load_graph_file accepted an empty file";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos)
        << e.what();
  }

  TempFile stub("load_stub");
  std::vector<std::uint8_t> magic_only;
  for (const char c : kQcgMagic) {
    magic_only.push_back(static_cast<std::uint8_t>(c));
  }
  write_bytes(stub.path, magic_only);
  try {
    load_graph_file(stub.path);
    FAIL() << "load_graph_file accepted a magic-only stub";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("shorter"), std::string::npos)
        << e.what();
  }

  EXPECT_THROW(load_graph_file("no/such/graph.qcg"), InvalidArgumentError);
}

// Structural CSR contracts on hand-crafted streams the writer cannot emit.
TEST_F(QcgReject, CraftedSelfLoop) {
  TempFile f("craft_loop");
  // n=2, arcs=2: v0 -> {1}, v1 -> {1} (self-loop at 1).
  write_crafted_varint(f.path, 2, 2, {1, 1, 1, 1});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST_F(QcgReject, CraftedAsymmetricAdjacency) {
  TempFile f("craft_asym");
  // n=3, arcs=2: v0 -> {1}, v1 -> {}, v2 -> {1}; 1 lists neither back-edge.
  write_crafted_varint(f.path, 3, 2, {1, 1, 0, 1, 1});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST_F(QcgReject, CraftedZeroDelta) {
  TempFile f("craft_dup");
  // v0 -> {1, 1} via a zero gap (duplicate neighbor).
  write_crafted_varint(f.path, 2, 4, {2, 1, 0, 2, 0, 0});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST_F(QcgReject, CraftedNeighborOutOfRange) {
  TempFile f("craft_oor");
  // n=2 but v0's first neighbor is 5.
  write_crafted_varint(f.path, 2, 2, {1, 5, 1, 0});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST_F(QcgReject, CraftedDegreeSumMismatch) {
  TempFile f("craft_sum");
  // Stream encodes 2 arcs; header claims 4.
  write_crafted_varint(f.path, 2, 4, {1, 1, 1, 0});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST_F(QcgReject, CraftedTrailingBytes) {
  TempFile f("craft_trail");
  // Valid 0-1 edge followed by a stray byte inside the declared stream.
  write_crafted_varint(f.path, 2, 2, {1, 1, 1, 0, 0});
  EXPECT_THROW(read_qcg_file(f.path), InvalidArgumentError);
}

TEST(QcgVarint, RoundTripsBoundaryValues) {
  for (const std::uint64_t x :
       {0ull, 1ull, 127ull, 128ull, 255ull, 300ull, 16383ull, 16384ull,
        (1ull << 32) - 1, 1ull << 32, 1ull << 63, ~0ull}) {
    std::vector<std::uint8_t> buf;
    qcgdetail::varint_append(buf, x);
    std::size_t pos = 0;
    EXPECT_EQ(qcgdetail::varint_read(buf.data(), buf.size(), pos), x);
    EXPECT_EQ(pos, buf.size()) << x;
  }
  // Encoding lengths at the 7-bit boundaries.
  std::vector<std::uint8_t> one, two;
  qcgdetail::varint_append(one, 127);
  qcgdetail::varint_append(two, 128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
}

TEST(QcgVarint, RejectsMalformedEncodings) {
  std::size_t pos = 0;
  const std::uint8_t truncated[] = {0x80};
  EXPECT_THROW(qcgdetail::varint_read(truncated, 1, pos),
               InvalidArgumentError);
  pos = 0;
  const std::uint8_t overlong[] = {0x80, 0x00};  // 0 padded to two bytes
  EXPECT_THROW(qcgdetail::varint_read(overlong, 2, pos),
               InvalidArgumentError);
  pos = 0;
  std::uint8_t too_wide[11];
  for (auto& byte : too_wide) byte = 0x80;
  EXPECT_THROW(qcgdetail::varint_read(too_wide, 11, pos),
               InvalidArgumentError);
  // Only bit 0 of the 10th byte fits in 64 bits: a final byte with higher
  // payload bits set is a second spelling of the same value (0x41 and 0x01
  // would both decode to 1<<63) and must be rejected, while the canonical
  // encoding of 1<<63 still decodes.
  pos = 0;
  std::uint8_t noncanonical[10];
  for (auto& byte : noncanonical) byte = 0x80;
  noncanonical[9] = 0x41;
  EXPECT_THROW(qcgdetail::varint_read(noncanonical, 10, pos),
               InvalidArgumentError);
  pos = 0;
  noncanonical[9] = 0x01;
  EXPECT_EQ(qcgdetail::varint_read(noncanonical, 10, pos), 1ull << 63);
  EXPECT_EQ(pos, 10u);
}

TEST(QcgVarint, ChecksumIsOrderSensitive) {
  const std::uint8_t ab[] = {'a', 'b'};
  const std::uint8_t ba[] = {'b', 'a'};
  EXPECT_NE(qcgdetail::fnv1a(ab, 2), qcgdetail::fnv1a(ba, 2));
  EXPECT_EQ(qcgdetail::fnv1a(ab, 0), 14695981039346656037ull);
}

// The load path allocates O(1) times regardless of graph size: the number
// of operator-new calls for a 50x larger graph must equal the small one's.
// (Raw mapped loads touch the heap only for the mapping object and control
// blocks; varint decodes add the two CSR vectors.)
std::uint64_t count_load_allocs(const std::string& path) {
  const auto before = alloc_probe_count().load();
  const auto g = read_qcg_file(path);
  const auto after = alloc_probe_count().load();
  EXPECT_GT(g.n(), 0u);  // keep the load observable
  return after - before;
}

TEST(QcgAllocs, LoadIsConstantAllocation) {
  const auto small = make_from_spec("pa:200:3:5");
  const auto big = make_from_spec("pa:10000:3:5");
  for (const auto enc : {QcgEncoding::kRawCsr, QcgEncoding::kDeltaVarint}) {
    TempFile fs_("alloc_s"), fb("alloc_b");
    ASSERT_EQ(fs_.path.size(), fb.path.size());  // identical string costs
    write_qcg_file(fs_.path, small, enc);
    write_qcg_file(fb.path, big, enc);
    const auto a_small = count_load_allocs(fs_.path);
    const auto a_big = count_load_allocs(fb.path);
    EXPECT_EQ(a_small, a_big)
        << (enc == QcgEncoding::kRawCsr ? "raw" : "varint");
    EXPECT_LE(a_big, 32u);
  }
}

}  // namespace
}  // namespace qc::graph
