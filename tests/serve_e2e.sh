#!/bin/sh
# End-to-end ctest fixture for the serve layer: starts qcongestd on a
# unique Unix socket, drives it with the qcongest client against the
# checked-in 10k dataset, validates the JSONL request log, and checks a
# clean daemon shutdown (exit 0) via the client `shutdown` op.
#
# Usage: serve_e2e.sh <qcongestd> <qcongest> <data-dir> <work-dir>
#
# The expected answers (diameter 7, radius 5, ecc(0) 5) are pinned
# properties of data/synth-p2p-10k.qcg, cross-checked by test_dataset.

set -u

QCONGESTD="$1"
QCONGEST="$2"
DATA_DIR="$3"
WORK_DIR="$4"

DATASET="$DATA_DIR/synth-p2p-10k.qcg"
SOCK="$WORK_DIR/serve_e2e_$$.sock"
LOG="$WORK_DIR/serve_e2e_$$.jsonl"
DAEMON_OUT="$WORK_DIR/serve_e2e_$$.out"
SERVER="unix:$SOCK"

rm -f "$SOCK" "$LOG" "$DAEMON_OUT"

fail() {
    echo "serve_e2e: FAIL: $1" >&2
    [ -f "$DAEMON_OUT" ] && sed 's/^/serve_e2e: daemon: /' "$DAEMON_OUT" >&2
    kill "$DAEMON_PID" 2>/dev/null
    exit 1
}

# Answers must match the client's --quiet output exactly.
expect() {
    want="$1"; shift
    got=$("$QCONGEST" "$@" --server="$SERVER" --quiet) \
        || fail "command failed: $*"
    [ "$got" = "$want" ] || fail "$*: expected '$want', got '$got'"
}

"$QCONGESTD" --socket="$SOCK" --request-log="$LOG" >"$DAEMON_OUT" 2>&1 &
DAEMON_PID=$!

# Readiness: poll ping until the daemon prints its listening line and the
# socket answers (bounded at ~15 s).
tries=0
until "$QCONGEST" ping --server="$SERVER" --quiet >/dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -lt 150 ] || fail "daemon did not become ready"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited before ready"
    sleep 0.1
done
grep -q "listening on $SERVER" "$DAEMON_OUT" \
    || fail "missing readiness line in daemon output"

# A query before load must be a clean error, not a daemon death.
if "$QCONGEST" diameter "$DATASET" --server="$SERVER" --quiet 2>/dev/null
then
    fail "diameter before load unexpectedly succeeded"
fi
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on a bad query"

# Loading a non-graph must come back as an error answer too.
if "$QCONGEST" load "$0" --server="$SERVER" --quiet 2>/dev/null; then
    fail "load of a shell script unexpectedly succeeded"
fi
kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on a bad load"

"$QCONGEST" load "$DATASET" --server="$SERVER" >/dev/null \
    || fail "load failed"
expect 7 diameter "$DATASET"      # first call pays the ecc sweep
expect 7 diameter "$DATASET"      # second call is a pure cache hit
expect 5 radius "$DATASET"
expect 5 ecc "$DATASET" --v=0
"$QCONGEST" graph-info "$DATASET" --server="$SERVER" | grep -q '"bfs_runs"' \
    || fail "graph-info missing bfs_runs"
"$QCONGEST" stats --server="$SERVER" | grep -q '"resident"' \
    || fail "stats missing resident list"

# The second *answered* diameter must have been served without BFS work
# (the deliberate pre-load error above also logs an op:diameter line).
second_diam=$(grep '"op":"diameter"' "$LOG" | grep '"status":"ok"' \
    | sed -n '2p')
[ -n "$second_diam" ] || fail "request log lacks a second diameter line"
echo "$second_diam" | grep -q '"bfs_runs":0' \
    || fail "second diameter ran BFS work: $second_diam"

# Every logged request carries the full schema.
requests=0
while IFS= read -r line; do
    requests=$((requests + 1))
    for field in '"request_id":' '"op":"' '"graph":' '"status":"' \
                 '"value":' '"latency_us":' '"bfs_runs":' '"rounds":'; do
        case "$line" in
            *"$field"*) ;;
            *) fail "log line $requests missing $field: $line" ;;
        esac
    done
done < "$LOG"
[ "$requests" -ge 8 ] || fail "expected >= 8 logged requests, saw $requests"

# Clean shutdown through the protocol; the daemon must exit 0 and report
# its served-request summary.
"$QCONGEST" shutdown --server="$SERVER" --quiet >/dev/null \
    || fail "shutdown op failed"
wait "$DAEMON_PID"
status=$?
[ "$status" -eq 0 ] || fail "daemon exited with status $status"
grep -q "qcongestd: served" "$DAEMON_OUT" || fail "missing served summary"

rm -f "$SOCK" "$LOG" "$DAEMON_OUT"
echo "serve_e2e: PASS ($requests requests logged)"
exit 0
