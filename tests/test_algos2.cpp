// Deeper distributed-algorithm behaviors: aggregation primitives across
// shapes, source-detection edge cases, HPRW preparation internals, and
// per-program memory discipline measured live.

#include <gtest/gtest.h>

#include <algorithm>

#include "algos/apsp_census.hpp"
#include "algos/bfs_tree.hpp"
#include "algos/diameter_classical.hpp"
#include "algos/evaluation.hpp"
#include "algos/hprw.hpp"
#include "algos/leader_election.hpp"
#include "algos/source_detection.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/bits.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"

namespace qc::algos {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------
// Aggregation primitives across tree shapes.
// ---------------------------------------------------------------------------

class AggregationShapes : public ::testing::TestWithParam<int> {
 protected:
  Graph make() const {
    switch (GetParam()) {
      case 0: return graph::make_path(25);          // deep chain
      case 1: return graph::make_star(25);          // flat star
      case 2: return graph::make_balanced_tree(31, 2);
      case 3: return graph::make_complete(12);      // height-1 tree
      default: return random_graph(30, 6, 500 + GetParam());
    }
  }
};

TEST_P(AggregationShapes, MinMaxSumAllCorrect) {
  auto g = make();
  auto tree = build_bfs_tree(g, 0).tree;
  std::vector<std::uint64_t> vals(g.n()), ids(g.n()), zero(g.n(), 0);
  std::uint64_t expect_min = ~0ULL, expect_max = 0, expect_sum = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    vals[v] = (v * 997 + 13) % 32;
    ids[v] = v;
    expect_min = std::min(expect_min, vals[v]);
    expect_max = std::max(expect_max, vals[v]);
    expect_sum += vals[v];
  }
  // Stay within the O(log n) bandwidth: 10-bit sums + 6-bit ids <= 16.
  const std::uint32_t bits = 10;
  EXPECT_EQ(aggregate_to_root(g, tree, AggregateOp::kMax, vals, ids, bits, 6)
                .primary,
            expect_max);
  EXPECT_EQ(aggregate_to_root(g, tree, AggregateOp::kMin, vals, ids, bits, 6)
                .primary,
            expect_min);
  EXPECT_EQ(aggregate_to_root(g, tree, AggregateOp::kSum, vals, zero, bits,
                              1)
                .primary,
            expect_sum);
}

TEST_P(AggregationShapes, ArgminPicksSmallestIdOnTies) {
  auto g = make();
  auto tree = build_bfs_tree(g, 0).tree;
  std::vector<std::uint64_t> vals(g.n(), 7), ids(g.n());
  for (NodeId v = 0; v < g.n(); ++v) ids[v] = v;
  auto out = aggregate_to_root(g, tree, AggregateOp::kMin, vals, ids, 8, 8);
  EXPECT_EQ(out.primary, 7u);
  EXPECT_EQ(out.secondary, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AggregationShapes,
                         ::testing::Range(0, 7));

TEST(Broadcast, ValueSurvivesDeepTrees) {
  auto g = graph::make_path(80);
  auto tree = build_bfs_tree(g, 0).tree;
  auto out = broadcast_from_root(g, tree, 0xABCDE, 20);
  EXPECT_EQ(out.status, PhaseStatus::kQuiesced);
  EXPECT_GE(out.stats.rounds, 79u);
  EXPECT_LE(out.stats.rounds, 82u);
}

TEST(Broadcast, NonTreeNeighborsIgnoreCopies) {
  // On a complete graph the flood sends n-1 messages per node but each
  // node accepts only its parent's copy; the broadcast must still be
  // exactly one level deep.
  auto g = graph::make_complete(10);
  auto tree = build_bfs_tree(g, 3).tree;
  auto out = broadcast_from_root(g, tree, 5, 8);
  EXPECT_LE(out.stats.rounds, 3u);
}

// ---------------------------------------------------------------------------
// Source detection edge cases.
// ---------------------------------------------------------------------------

TEST(SourceDetection, AllNodesAsSources) {
  auto g = random_graph(25, 5, 601);
  std::vector<bool> everyone(g.n(), true);
  auto out = detect_sources(g, everyone);
  auto dist = graph::apsp(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId s = 0; s < g.n(); ++s) {
      EXPECT_EQ(out.distances[v].at(s), dist[s][v]);
    }
  }
}

TEST(SourceDetection, FirstHopsAreValidShortestPathBranches) {
  auto g = random_graph(30, 6, 602);
  std::vector<bool> everyone(g.n(), true);
  auto out = detect_sources(g, everyone);
  auto dist = graph::apsp(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId s = 0; s < g.n(); ++s) {
      const NodeId h = out.first_hops[v].at(s);
      if (v == s) {
        EXPECT_EQ(h, s);
        continue;
      }
      // h must be a depth-1 vertex of *some* shortest s->v path: adjacent
      // to s, and d(h, v) = d(s, v) - 1.
      EXPECT_TRUE(g.has_edge(s, h)) << "s=" << s << " v=" << v;
      EXPECT_EQ(dist[h][v] + 1, dist[s][v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST(SourceDetection, StarTopologyWorstCaseFanIn) {
  auto g = graph::make_star(40);
  std::vector<bool> sources(g.n(), false);
  for (NodeId v = 1; v <= 20; ++v) sources[v] = true;  // 20 leaf sources
  auto out = detect_sources(g, sources);
  // The center must learn all 20 sources through 39 independent edges,
  // but each *leaf* learns them serialized through its single edge:
  // O(|S| + D) rounds.
  EXPECT_LE(out.stats.rounds, 20u + 2 + 24);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(out.distances[v].size(), 20u);
  }
}

TEST(SourceDetection, MessagesRespectBandwidth) {
  auto g = random_graph(64, 8, 603);
  std::vector<bool> sources(g.n(), false);
  sources[0] = sources[17] = sources[42] = true;
  auto out = detect_sources(g, sources);  // kEnforce would throw otherwise
  EXPECT_EQ(out.stats.violations, 0u);
  EXPECT_LE(out.stats.max_edge_bits, congest_bandwidth_bits(g.n()));
}

// ---------------------------------------------------------------------------
// HPRW preparation internals.
// ---------------------------------------------------------------------------

TEST(HprwPrep, SampleEccentricitiesAreExact) {
  auto g = random_graph(50, 9, 604);
  auto prep = hprw_preparation(g, 5);
  ASSERT_FALSE(prep.aborted);
  std::uint32_t expect = 0;
  for (NodeId s : prep.sample) {
    expect = std::max(expect, graph::eccentricity(g, s));
  }
  EXPECT_EQ(prep.max_ecc_sample, expect);
}

TEST(HprwPrep, LargerSMeansSmallerSample) {
  auto g = random_graph(80, 8, 605);
  congest::NetworkConfig cfg;
  auto small_s = hprw_preparation(g, 2, cfg);
  auto large_s = hprw_preparation(g, 40, cfg);
  ASSERT_FALSE(small_s.aborted);
  ASSERT_FALSE(large_s.aborted);
  EXPECT_GT(small_s.sample.size(), large_s.sample.size());
}

TEST(HprwPrep, RIsExactlySizeS) {
  auto g = random_graph(60, 7, 606);
  for (std::uint32_t s : {1u, 3u, 10u, 60u, 100u}) {
    auto prep = hprw_preparation(g, s);
    ASSERT_FALSE(prep.aborted);
    EXPECT_EQ(prep.r_size, std::min(s, g.n())) << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// Memory discipline, measured live.
// ---------------------------------------------------------------------------

TEST(MemoryDiscipline, Figure12ProgramsStayLogarithmic) {
  // The max memory_bits across all nodes of the O(log n)-state programs
  // must not grow with n beyond a log factor.
  std::vector<double> ns, mems;
  for (std::uint32_t n : {32u, 128u, 512u}) {
    auto g = random_graph(n, 8, 607 + n);
    auto tree_out = build_bfs_tree(g, 0);
    auto eval = evaluate_window_ecc(g, tree_out.tree, 1,
                                    2 * tree_out.tree.height);
    ns.push_back(n);
    mems.push_back(static_cast<double>(
        std::max(tree_out.stats.max_node_memory_bits,
                 eval.stats.max_node_memory_bits)));
  }
  const auto fit = fit_power_law(ns, mems);
  EXPECT_LT(fit.slope, 0.3) << "per-node memory grows polynomially!";
}

TEST(MemoryDiscipline, SourceDetectionIsDeliberatelyPolynomial) {
  std::vector<double> ns, mems;
  for (std::uint32_t n : {24u, 48u, 96u}) {
    auto g = random_graph(n, 6, 608 + n);
    std::vector<bool> everyone(g.n(), true);
    auto out = detect_sources(g, everyone);
    ns.push_back(n);
    mems.push_back(static_cast<double>(out.stats.max_node_memory_bits));
  }
  const auto fit = fit_power_law(ns, mems);
  EXPECT_GT(fit.slope, 0.7) << "the census memory should scale ~n";
}

// ---------------------------------------------------------------------------
// Cross-checks among the baselines.
// ---------------------------------------------------------------------------

TEST(BaselineConsistency, DiameterFromThreeRoutes) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto g = random_graph(36, 8, 609 + seed);
    const auto a = classical_exact_diameter(g).diameter;
    const auto b = classical_apsp_census(g).diameter;
    const auto c = graph::diameter(g);
    EXPECT_EQ(a, c);
    EXPECT_EQ(b, c);
  }
}

TEST(BaselineConsistency, CensusEccVsEvaluationFullTour) {
  auto g = random_graph(30, 6, 612);
  auto census = classical_apsp_census(g);
  auto tree = build_bfs_tree(g, 0).tree;
  auto eval = evaluate_window_ecc(g, tree, 0, 2 * (g.n() - 1));
  const auto max_ecc =
      *std::max_element(census.eccentricity.begin(),
                        census.eccentricity.end());
  EXPECT_EQ(eval.max_ecc, max_ecc);
}

TEST(LeaderElection, RoundsTrackDiameterNotSize) {
  // Same n, very different D: flood-max cost follows D.
  auto deep = graph::make_path(120);
  auto flat = graph::make_star(120);
  const auto deep_rounds = elect_leader(deep).stats.rounds;
  const auto flat_rounds = elect_leader(flat).stats.rounds;
  EXPECT_GT(deep_rounds, 100u);
  EXPECT_LT(flat_rounds, 8u);
}

}  // namespace
}  // namespace qc::algos
