#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace qc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), InvalidArgumentError);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(3);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 80);  // within 10% of expectation
  }
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_in(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.02);
}

TEST(Rng, ChildStreamsAreIndependent) {
  Rng parent(99);
  Rng c0 = parent.child(0), c1 = parent.child(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c0() == c1()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ChildIsDeterministic) {
  Rng parent(99);
  Rng a = parent.child(5), b = parent.child(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SampleWithoutReplacement) {
  Rng r(21);
  auto s = r.sample_without_replacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto v : s) EXPECT_LT(v, 100u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Rng, SampleFullSet) {
  Rng r(22);
  auto s = r.sample_without_replacement(5, 5);
  EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Stats, SummaryBasics) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  auto s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.p25, 0.0);
  EXPECT_EQ(s.p75, 0.0);
}

TEST(Stats, SummaryQuartilesOddSample) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Stats, SummaryQuartilesEvenSample) {
  std::vector<double> xs{1, 2, 3, 4};
  auto s = summarize(xs);
  // Linear interpolation at rank p*(n-1): p25 -> 0.75, p75 -> 2.25.
  EXPECT_DOUBLE_EQ(s.p25, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.p75, 3.25);
}

TEST(Stats, SummarySingleElement) {
  std::vector<double> xs{42.0};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p25, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.p75, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, LinearFitExact) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};  // y = 1 + 2x
  auto f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitDegenerate) {
  std::vector<double> xs{2, 2, 2}, ys{1, 2, 3};
  auto f = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(Stats, PowerLawFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 10; x <= 1000; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5));
  }
  auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(Stats, PowerLawRejectsNonPositive) {
  std::vector<double> xs{1, 0}, ys{1, 1};
  EXPECT_THROW(fit_power_law(xs, ys), InvalidArgumentError);
  std::vector<double> neg_y_xs{1, 2}, neg_ys{1, -1};
  EXPECT_THROW(fit_power_law(neg_y_xs, neg_ys), InvalidArgumentError);
}

TEST(Stats, PowerLawRejectsSizeMismatch) {
  std::vector<double> xs{1, 2, 3}, ys{1, 2};
  EXPECT_THROW(fit_power_law(xs, ys), InvalidArgumentError);
  std::vector<double> one{1};
  EXPECT_THROW(fit_power_law(one, one), InvalidArgumentError);
}

TEST(Stats, CorrelationSigns) {
  std::vector<double> xs{1, 2, 3, 4}, up{1, 2, 3, 4}, down{4, 3, 2, 1};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Stats, CorrelationRejectsBadSizes) {
  std::vector<double> xs{1, 2, 3}, ys{1, 2};
  EXPECT_THROW(correlation(xs, ys), InvalidArgumentError);
  std::vector<double> one{1};
  EXPECT_THROW(correlation(one, one), InvalidArgumentError);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

// Regression test for the nth_element-based quantile(): pins bit-identical
// results to the original copy-sort-interpolate implementation on random
// samples across the whole percentile range.
TEST(Stats, QuantileMatchesSortedReference) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(40);
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.next_double() * 1000.0 - 500.0;
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      // Reference: the old implementation, inlined.
      const double rank = p * static_cast<double>(n - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const auto hi = std::min(lo + 1, n - 1);
      const double frac = rank - static_cast<double>(lo);
      const double expected =
          sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
      EXPECT_EQ(quantile(xs, p), expected)
          << "trial " << trial << " n " << n << " p " << p;
      EXPECT_EQ(quantile_sorted(sorted, p), expected)
          << "trial " << trial << " n " << n << " p " << p;
    }
  }
}

TEST(Stats, QuantileSortedMatchesQuantile) {
  std::vector<double> sorted{1, 2, 4, 8, 16};
  for (double p : {0.0, 0.2, 0.35, 0.5, 0.8, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, p),
                     quantile(std::vector<double>(sorted), p));
  }
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgumentError);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "pos1",
                        "--name=x"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("name", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, RejectsMalformedNumericValues) {
  // Regression: get_int/get_double used to return 0 for unparsable values
  // (atoll semantics), so `--trials=abc` silently ran with 0 trials.
  const char* argv[] = {"prog", "--n=12x",  "--trials=abc", "--p=0.5.3",
                        "--ok=3", "--f=2.5", "--flag=maybe"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgumentError);
  EXPECT_THROW(cli.get_int("trials", 0), InvalidArgumentError);
  EXPECT_THROW(cli.get_double("p", 0.0), InvalidArgumentError);
  EXPECT_THROW(cli.get_bool("flag", false), InvalidArgumentError);
  EXPECT_EQ(cli.get_int("ok", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("f", 0.0), 2.5);
}

TEST(Cli, BoolAcceptsCommonSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, UnknownFlagsAreReported) {
  const char* argv[] = {"prog", "--seed=1", "--trialz=5", "pos"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_TRUE(cli.unknown_flags({"seed", "trialz"}).empty());
  const auto unknown = cli.unknown_flags({"seed", "trials"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "trialz");  // positionals are not flags
  EXPECT_NO_THROW(cli.expect_flags({"seed", "trialz"}));
  EXPECT_THROW(cli.expect_flags({"seed", "trials"}), InvalidArgumentError);
}

TEST(Cli, RejectsOutOfRangeIntegers) {
  // Regression: strtoll saturates to INT64_MAX/MIN on overflow and the old
  // parser accepted the saturated value, so --n=99999999999999999999 ran
  // with a silently clamped n. The errno/ERANGE check turns that into the
  // same InvalidArgumentError as a malformed digit string.
  const char* argv[] = {"prog", "--n=99999999999999999999",
                        "--m=-99999999999999999999",
                        "--max=9223372036854775807",
                        "--min=-9223372036854775808"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgumentError);
  EXPECT_THROW(cli.get_int("m", 0), InvalidArgumentError);
  // The exact endpoints still parse: ERANGE only fires past them.
  EXPECT_EQ(cli.get_int("max", 0), INT64_MAX);
  EXPECT_EQ(cli.get_int("min", 0), INT64_MIN);
}

TEST(Cli, RejectsOverflowingDoubles) {
  const char* argv[] = {"prog", "--big=1e999", "--tiny=1e-999",
                        "--neg=-1e999"};
  Cli cli(4, const_cast<char**>(argv));
  // Overflow saturates to +-HUGE_VAL and is rejected; underflow to a
  // denormal (or zero) is a legitimate tiny value and is kept.
  EXPECT_THROW(cli.get_double("big", 0.0), InvalidArgumentError);
  EXPECT_THROW(cli.get_double("neg", 0.0), InvalidArgumentError);
  double tiny = 1.0;
  EXPECT_NO_THROW(tiny = cli.get_double("tiny", 0.0));
  EXPECT_GE(tiny, 0.0);
  EXPECT_LT(tiny, 1e-300);
}

TEST(Cli, GetIntInEnforcesBounds) {
  const char* argv[] = {"prog", "--port=65536", "--ok=8080", "--neg=-1",
                        "--huge=99999999999999999999"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int_in("ok", 0, 0, 65535), 8080);
  EXPECT_EQ(cli.get_int_in("missing", 42, 0, 65535), 42);
  EXPECT_THROW(cli.get_int_in("port", 0, 0, 65535), InvalidArgumentError);
  EXPECT_THROW(cli.get_int_in("neg", 0, 0, 65535), InvalidArgumentError);
  // Overflow is caught by the underlying parse, not the range clamp.
  EXPECT_THROW(cli.get_int_in("huge", 0, 0, 65535), InvalidArgumentError);
  // Inclusive endpoints are in range.
  EXPECT_EQ(cli.get_int_in("ok", 0, 8080, 8080), 8080);
}

namespace fsys = std::filesystem;

// Scratch file under the system temp dir, removed on scope exit.
struct UtilTempFile {
  explicit UtilTempFile(const std::string& tag)
      : path((fsys::temp_directory_path() / ("qc_test_util_" + tag))
                 .string()) {}
  ~UtilTempFile() {
    std::error_code ec;
    fsys::remove(path, ec);
  }
  std::string path;
};

TEST(MappedFile, PortableFallbackMatchesMmapPath) {
  UtilTempFile f("mmap_parity");
  std::string content;
  for (int i = 0; i < 1000; ++i) content += "payload line " + std::to_string(i) + "\n";
  {
    std::ofstream out(f.path, std::ios::binary);
    out << content;
  }
  const auto mapped = MappedFile::open(f.path);
  const auto portable = MappedFile::open_portable(f.path);
  ASSERT_EQ(mapped.size(), content.size());
  ASSERT_EQ(portable.size(), content.size());
  EXPECT_EQ(std::memcmp(mapped.data(), portable.data(), content.size()), 0);
}

TEST(MappedFile, PortableFallbackEmptyFile) {
  UtilTempFile f("mmap_empty");
  { std::ofstream out(f.path, std::ios::binary); }
  const auto portable = MappedFile::open_portable(f.path);
  EXPECT_EQ(portable.size(), 0u);
  const auto mapped = MappedFile::open(f.path);
  EXPECT_EQ(mapped.size(), 0u);
}

TEST(MappedFile, PortableFallbackErrorPaths) {
  // Regression: the fallback used to size files with fseek/ftell into a
  // long (truncating >2 GiB on LP32) and ignored IO failures. Sizing now
  // goes through std::filesystem and every failure is a clean throw.
  EXPECT_THROW(MappedFile::open_portable("no/such/file.bin"),
               InvalidArgumentError);
  EXPECT_THROW(MappedFile::open_portable(
                   fsys::temp_directory_path().string()),  // a directory
               InvalidArgumentError);
  EXPECT_THROW(MappedFile::open("no/such/file.bin"), InvalidArgumentError);
}

TEST(Bits, Widths) {
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 1u);
  EXPECT_EQ(bit_width_for(3), 2u);
  EXPECT_EQ(bit_width_for(256), 8u);
  EXPECT_EQ(bit_width_for(257), 9u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, BandwidthScalesLogarithmically) {
  EXPECT_EQ(congest_bandwidth_bits(1024), 40u);
  EXPECT_GE(congest_bandwidth_bits(2), 16u);  // floor for tiny graphs
  EXPECT_GT(congest_bandwidth_bits(1u << 20),
            congest_bandwidth_bits(1u << 10));
}

TEST(Bits, BitAt) {
  EXPECT_EQ(bit_at(0b1010, 1), 1u);
  EXPECT_EQ(bit_at(0b1010, 0), 0u);
  EXPECT_EQ(bit_at(0b1010, 3), 1u);
}

TEST(Error, RequireThrows) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "nope"), InvalidArgumentError);
  EXPECT_THROW(check_internal(false, "bug"), InternalError);
}

}  // namespace
}  // namespace qc
