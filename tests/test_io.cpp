#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qc::graph {
namespace {

TEST(EdgeListIo, RoundTrip) {
  Rng rng(3);
  auto g = make_connected_er(40, 0.08, rng);
  std::stringstream ss;
  write_edge_list(ss, g, "round trip test");
  auto g2 = read_edge_list(ss);
  EXPECT_EQ(g2.n(), g.n());
  EXPECT_EQ(g2.m(), g.m());
  EXPECT_EQ(g2.edges(), g.edges());
}

TEST(EdgeListIo, CommentsAndBlankLines) {
  std::stringstream ss("# header\n\n4\n# edge block\n0 1\n1 2\n\n2 3\n");
  auto g = read_edge_list(ss);
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(EdgeListIo, Errors) {
  std::stringstream empty("# nothing\n");
  EXPECT_THROW(read_edge_list(empty), InvalidArgumentError);
  std::stringstream oor("3\n0 7\n");
  EXPECT_THROW(read_edge_list(oor), InvalidArgumentError);
  std::stringstream short_line("3\n0\n");
  EXPECT_THROW(read_edge_list(short_line), InvalidArgumentError);
  EXPECT_THROW(read_edge_list_file("/nonexistent/file.txt"),
               InvalidArgumentError);
}

struct SpecCase {
  const char* spec;
  std::uint32_t n;
  std::uint32_t diameter;  // kUnreachable = don't check
};

class SpecParser : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecParser, BuildsExpectedGraph) {
  const auto& c = GetParam();
  auto g = make_from_spec(c.spec);
  EXPECT_EQ(g.n(), c.n) << c.spec;
  EXPECT_TRUE(g.is_connected()) << c.spec;
  if (c.diameter != kUnreachable) {
    EXPECT_EQ(diameter(g), c.diameter) << c.spec;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpecParser,
    ::testing::Values(SpecCase{"path:10", 10, 9},
                      SpecCase{"cycle:12", 12, 6},
                      SpecCase{"star:7", 7, 2},
                      SpecCase{"complete:5", 5, 1},
                      SpecCase{"grid:3:4", 12, 5},
                      SpecCase{"torus:4:4", 16, 4},
                      SpecCase{"tree:15:2", 15, 6},
                      SpecCase{"hypercube:4", 16, 4},
                      SpecCase{"barbell:4:3", 10, 5},
                      SpecCase{"caterpillar:20:8", 20, kUnreachable},
                      SpecCase{"er:30:0.1:5", 30, kUnreachable},
                      SpecCase{"regular:30:4:5", 30, kUnreachable},
                      SpecCase{"pa:30:2:5", 30, kUnreachable},
                      SpecCase{"clusters:10:2:5", 20, kUnreachable},
                      SpecCase{"diam:50:9:5", 50, 9}));

TEST(SpecParser, SeedsAreRespected) {
  auto a = make_from_spec("er:30:0.1:1");
  auto b = make_from_spec("er:30:0.1:1");
  auto c = make_from_spec("er:30:0.1:2");
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(SpecParser, BadSpecsThrowWithHelp) {
  try {
    make_from_spec("nosuch:5");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("generator specs"),
              std::string::npos);
  }
  EXPECT_THROW(make_from_spec("grid:3"), InvalidArgumentError);
}

TEST(SpecHelp, MentionsEveryFamily) {
  const auto h = spec_help();
  for (const char* fam :
       {"path", "cycle", "grid", "torus", "hypercube", "er", "regular",
        "pa", "clusters", "diam"}) {
    EXPECT_NE(h.find(fam), std::string::npos) << fam;
  }
}

}  // namespace
}  // namespace qc::graph
