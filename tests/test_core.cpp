#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "core/quantum_approx.hpp"
#include "core/quantum_diameter.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace qc::core {
namespace {

using graph::Graph;
using graph::NodeId;

Graph random_graph(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  Rng rng(seed);
  return graph::make_random_with_diameter(n, d, rng);
}

// ---------------------------------------------------------------------------
// The generic optimizer (Theorem 7).
// ---------------------------------------------------------------------------

TEST(Optimizer, FindsMaximumAndAccountsRounds) {
  OptimizationProblem p;
  p.domain_size = 64;
  p.evaluate = [](std::size_t x) {
    return static_cast<std::int64_t>((x * 7) % 41);
  };
  p.t_init = 100;
  p.t_setup = 10;
  p.t_eval_forward = 25;
  p.epsilon = 1.0 / 64;
  p.delta = 0.05;
  Rng rng(3);
  auto rep = distributed_quantum_optimize(p, rng);
  std::int64_t best = 0;
  for (std::size_t x = 0; x < 64; ++x) {
    best = std::max(best, p.evaluate(x));
  }
  EXPECT_EQ(rep.value, best);
  // The accounting identity must hold exactly.
  const std::uint64_t expect_rounds =
      p.t_init + rep.costs.setup_invocations * 10ULL +
      rep.costs.grover_iterations * (2ULL * 2 * 25 + 2ULL * 10) +
      rep.costs.candidate_evaluations * 25ULL;
  EXPECT_EQ(rep.total_rounds, expect_rounds);
  EXPECT_GT(rep.costs.grover_iterations, 0u);
  EXPECT_LE(rep.distinct_evaluations, 64u);
}

TEST(Optimizer, MemoizationBoundsDistinctEvaluations) {
  int raw_calls = 0;
  OptimizationProblem p;
  p.domain_size = 32;
  p.evaluate = [&raw_calls](std::size_t x) {
    ++raw_calls;
    return static_cast<std::int64_t>(x);
  };
  p.t_init = 0;
  p.t_setup = 1;
  p.t_eval_forward = 1;
  p.epsilon = 1.0 / 32;
  Rng rng(4);
  auto rep = distributed_quantum_optimize(p, rng);
  EXPECT_EQ(rep.value, 31);
  EXPECT_EQ(static_cast<std::uint64_t>(raw_calls), rep.distinct_evaluations);
  EXPECT_LE(raw_calls, 32);
}

TEST(Optimizer, SupportRestrictsDomain) {
  OptimizationProblem p;
  p.domain_size = 100;
  p.support = {10, 20, 30};
  p.evaluate = [](std::size_t x) { return static_cast<std::int64_t>(x); };
  p.t_setup = 1;
  p.t_eval_forward = 1;
  p.epsilon = 1.0 / 3;
  Rng rng(5);
  auto rep = distributed_quantum_optimize(p, rng);
  EXPECT_EQ(rep.argmax, 30u);
}

TEST(Optimizer, MemoryScalesWithLogDomainAndLogEps) {
  OptimizationProblem p;
  p.domain_size = 1 << 12;
  p.evaluate = [](std::size_t) { return std::int64_t{0}; };
  p.t_setup = 1;
  p.t_eval_forward = 1;
  p.epsilon = 1.0 / (1 << 12);
  Rng rng(6);
  auto rep = distributed_quantum_optimize(p, rng);
  // per-node: O(log |X|); leader: O(log|X| * log(1/eps)).
  EXPECT_LE(rep.per_node_memory_qubits, 5u * 12 + 20);
  EXPECT_LE(rep.leader_memory_qubits, rep.per_node_memory_qubits + 13u * 12);
  EXPECT_GT(rep.leader_memory_qubits, rep.per_node_memory_qubits);
}

// ---------------------------------------------------------------------------
// Theorem 1 and Section 3.1.
// ---------------------------------------------------------------------------

class QuantumExactSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(QuantumExactSweep, ComputesExactDiameter) {
  const auto [n, d] = GetParam();
  auto g = random_graph(n, d, 17 * n + d);
  QuantumConfig cfg;
  cfg.delta = 0.02;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    cfg.seed = seed;
    auto rep = quantum_diameter_exact(g, cfg);
    EXPECT_EQ(rep.diameter, d) << "n=" << n << " d=" << d << " seed=" << seed;
    EXPECT_EQ(rep.leader, n - 1);
    EXPECT_GE(rep.ecc_leader, (d + 1) / 2);
    EXPECT_LE(rep.ecc_leader, d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QuantumExactSweep,
    ::testing::Values(std::pair{12u, 3u}, std::pair{20u, 5u},
                      std::pair{32u, 8u}, std::pair{40u, 4u},
                      std::pair{48u, 12u}, std::pair{64u, 6u}));

TEST(QuantumExact, StandardFamilies) {
  QuantumConfig cfg;
  EXPECT_EQ(quantum_diameter_exact(graph::make_path(16), cfg).diameter, 15u);
  EXPECT_EQ(quantum_diameter_exact(graph::make_cycle(12), cfg).diameter, 6u);
  EXPECT_EQ(quantum_diameter_exact(graph::make_star(10), cfg).diameter, 2u);
  EXPECT_EQ(quantum_diameter_exact(graph::make_grid(4, 5), cfg).diameter, 7u);
  EXPECT_EQ(quantum_diameter_exact(graph::make_complete(8), cfg).diameter,
            1u);
}

TEST(QuantumExact, TrivialGraphs) {
  QuantumConfig cfg;
  EXPECT_EQ(quantum_diameter_exact(graph::make_path(1), cfg).diameter, 0u);
  EXPECT_EQ(quantum_diameter_exact(graph::make_path(2), cfg).diameter, 1u);
}

TEST(QuantumExact, DirectOracleMatchesSimulated) {
  auto g = random_graph(36, 9, 99);
  QuantumConfig sim_cfg, dir_cfg;
  sim_cfg.oracle = OracleMode::kSimulate;
  dir_cfg.oracle = OracleMode::kDirect;
  sim_cfg.seed = dir_cfg.seed = 5;
  auto a = quantum_diameter_exact(g, sim_cfg);
  auto b = quantum_diameter_exact(g, dir_cfg);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.total_rounds, b.total_rounds);  // same seed, same trajectory
  EXPECT_EQ(a.costs.grover_iterations, b.costs.grover_iterations);
}

TEST(QuantumExact, ReferencePathUsesAtMostNBfsRuns) {
  // The shared EccEngine answers every branch's f(u) from one eccentricity
  // table: at most one BFS per vertex for the whole run, versus Theta(n*d)
  // for the per-branch naive evaluation it replaced.
  auto g = random_graph(48, 8, 21);
  QuantumConfig cfg;
  cfg.oracle = OracleMode::kDirect;
  auto rep = quantum_diameter_exact(g, cfg);
  EXPECT_EQ(rep.diameter, 8u);
  EXPECT_GT(rep.reference_bfs_runs, 0u);
  EXPECT_LE(rep.reference_bfs_runs, g.n());

  cfg.oracle = OracleMode::kSimulate;  // cross-check path: same bound
  auto sim = quantum_diameter_exact(g, cfg);
  EXPECT_LE(sim.reference_bfs_runs, g.n());
}

TEST(QuantumSimple, AlsoExactButSlower) {
  auto g = random_graph(30, 10, 7);
  QuantumConfig cfg;
  cfg.seed = 11;
  auto simple = quantum_diameter_simple(g, cfg);
  auto final = quantum_diameter_exact(g, cfg);
  EXPECT_EQ(simple.diameter, 10u);
  EXPECT_EQ(final.diameter, 10u);
}

TEST(QuantumExact, RoundAccountingIdentity) {
  auto g = random_graph(28, 6, 13);
  QuantumConfig cfg;
  cfg.seed = 3;
  auto rep = quantum_diameter_exact(g, cfg);
  const std::uint64_t expect =
      rep.init_rounds +
      rep.costs.setup_invocations * static_cast<std::uint64_t>(rep.t_setup) +
      rep.costs.grover_iterations *
          (4ULL * rep.t_eval_forward + 2ULL * rep.t_setup) +
      rep.costs.candidate_evaluations *
          static_cast<std::uint64_t>(rep.t_eval_forward);
  EXPECT_EQ(rep.total_rounds, expect);
  EXPECT_GT(rep.init_rounds, 0u);
  EXPECT_GT(rep.t_setup, 0u);
  EXPECT_GT(rep.t_eval_forward, 0u);
}

TEST(QuantumExact, EvalCostIsLinearInEccLeader) {
  // T_eval = O(d): the heart of Theorem 1's O(sqrt(nD)) bound.
  auto g = random_graph(60, 12, 21);
  QuantumConfig cfg;
  auto rep = quantum_diameter_exact(g, cfg);
  // 3*(2d) token + (6d+2) pipeline + (d+1) convergecast = 13d+3.
  EXPECT_LE(rep.t_eval_forward, 14 * rep.ecc_leader + 10);
}

TEST(QuantumExact, MemoryIsPolylog) {
  // Theorem 1: O(log^2 n) qubits per node.
  for (std::uint32_t n : {16u, 64u, 128u}) {
    auto g = random_graph(n, 4, n);
    auto rep = quantum_diameter_exact(g, QuantumConfig{});
    const double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(rep.per_node_memory_qubits),
              40 * log_n + 40);
    EXPECT_LE(static_cast<double>(rep.leader_memory_qubits),
              40 * log_n * log_n + 80);
  }
}

TEST(QuantumExact, FewerGroverIterationsThanSimple) {
  // The Section 3.2 windowing raises P_opt from 1/n to d/2n; for d >> 1
  // the final algorithm needs about sqrt(d/2) times fewer iterations.
  auto g = graph::make_path(96);
  QuantumConfig cfg;
  double simple_iters = 0, final_iters = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    cfg.oracle = OracleMode::kDirect;
    simple_iters += static_cast<double>(
        quantum_diameter_simple(g, cfg).costs.grover_iterations);
    final_iters += static_cast<double>(
        quantum_diameter_exact(g, cfg).costs.grover_iterations);
  }
  EXPECT_LT(final_iters * 2, simple_iters);
}

// ---------------------------------------------------------------------------
// Theorem 4 (quantum 3/2 approximation).
// ---------------------------------------------------------------------------

class QuantumApproxSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(QuantumApproxSweep, EstimateWithinGuarantee) {
  const auto [n, d] = GetParam();
  auto g = random_graph(n, d, 23 * n + d);
  QuantumConfig cfg;
  cfg.seed = 9;
  auto rep = quantum_diameter_approx(g, cfg);
  ASSERT_FALSE(rep.aborted);
  const std::uint32_t diam = graph::diameter(g);
  EXPECT_LE(rep.estimate, diam) << "n=" << n << " d=" << d;
  EXPECT_GE(3 * rep.estimate, 2 * diam) << "n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, QuantumApproxSweep,
    ::testing::Values(std::pair{24u, 6u}, std::pair{40u, 8u},
                      std::pair{56u, 5u}, std::pair{64u, 12u},
                      std::pair{80u, 10u}));

TEST(QuantumApprox, ExplicitS) {
  auto g = random_graph(48, 8, 31);
  QuantumConfig cfg;
  auto rep = quantum_diameter_approx(g, cfg, 6);
  ASSERT_FALSE(rep.aborted);
  EXPECT_EQ(rep.s_used, 6u);
  const std::uint32_t diam = graph::diameter(g);
  EXPECT_LE(rep.estimate, diam);
  EXPECT_GE(3 * rep.estimate, 2 * diam);
}

TEST(QuantumApprox, SingletonR) {
  auto g = random_graph(30, 6, 37);
  QuantumConfig cfg;
  auto rep = quantum_diameter_approx(g, cfg, 1);
  ASSERT_FALSE(rep.aborted);
  const std::uint32_t diam = graph::diameter(g);
  EXPECT_LE(rep.estimate, diam);
  EXPECT_GE(3 * rep.estimate, 2 * diam);
}

TEST(QuantumApprox, PhaseBreakdownAddsUp) {
  auto g = random_graph(50, 10, 41);
  QuantumConfig cfg;
  auto rep = quantum_diameter_approx(g, cfg);
  ASSERT_FALSE(rep.aborted);
  EXPECT_EQ(rep.total_rounds, rep.prep_rounds + rep.quantum_rounds);
  EXPECT_GT(rep.prep_rounds, 0u);
}

TEST(QuantumApprox, TrivialGraphs) {
  EXPECT_EQ(quantum_diameter_approx(graph::make_path(1)).estimate, 0u);
  EXPECT_EQ(quantum_diameter_approx(graph::make_path(2)).estimate, 1u);
}

}  // namespace
}  // namespace qc::core
